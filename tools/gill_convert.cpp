// gill-convert — convert between the MRT archive format and the RIS-Live
// style NDJSON stream format.
//
//   gill-convert to-json updates.mrt updates.ndjson
//   gill-convert to-mrt  updates.ndjson updates.mrt
#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli_util.hpp"
#include "feed/live_feed.hpp"
#include "mrt/mrt.hpp"

int main(int argc, char** argv) {
  using namespace gill;
  const cli::Args args(argc, argv);
  if (args.positionals().size() != 3 ||
      (args.positionals()[0] != "to-json" &&
       args.positionals()[0] != "to-mrt") ||
      args.has("help")) {
    cli::usage(
        "usage: gill-convert to-json <in.mrt> <out.ndjson>\n"
        "       gill-convert to-mrt  <in.ndjson> <out.mrt>\n"
        "       (either form accepts --metrics <path|->)\n");
  }
  const std::string in = args.positionals()[1];
  const std::string out = args.positionals()[2];

  if (args.positionals()[0] == "to-json") {
    const auto stream = mrt::read_stream(in);
    if (!stream) {
      std::fprintf(stderr, "error: cannot read %s\n", in.c_str());
      return 1;
    }
    const std::string ndjson = feed::encode_stream_ndjson(*stream);
    std::ofstream file(out, std::ios::binary);
    file << ndjson;
    if (!file.good()) {
      std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("converted %zu updates to NDJSON (%zu bytes)\n",
                stream->size(), ndjson.size());
    if (args.has("metrics") && !cli::dump_metrics(args.get("metrics", "-"))) {
      return 1;
    }
    return 0;
  }

  std::ifstream file(in, std::ios::binary);
  if (!file.good()) {
    std::fprintf(stderr, "error: cannot read %s\n", in.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  const auto stream = feed::decode_stream_ndjson(buffer.str());
  if (!stream) {
    std::fprintf(stderr, "error: %s is not a valid NDJSON update stream\n",
                 in.c_str());
    return 1;
  }
  if (!mrt::write_stream(*stream, out)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("converted %zu updates to MRT\n", stream->size());
  if (args.has("metrics") && !cli::dump_metrics(args.get("metrics", "-"))) {
    return 1;
  }
  return 0;
}
