// gill-simulate — generate a synthetic Internet and a BGP collection
// window, and write the results as MRT archives.
//
//   gill-simulate --ases 400 --vps 80 --hours 2 --seed 7
//       --out updates.mrt --ribs ribs.mrt
//
// The update archive is what a collection platform would store; the RIB
// archive is the day-0 snapshot. Both feed gill-analyze / gill-filter.
#include <cstdio>
#include <memory>
#include <random>

#include "cli_util.hpp"
#include "mrt/mrt.hpp"
#include "netbase/prefix_alloc.hpp"
#include "simulator/workload.hpp"
#include "topology/generator.hpp"

int main(int argc, char** argv) {
  using namespace gill;
  const cli::Args args(argc, argv);
  if (args.has("help")) {
    cli::usage(
        "usage: gill-simulate [--ases N] [--vps K] [--hours H] [--seed S]\n"
        "                     [--hotspot F] --out updates.mrt [--ribs r.mrt]\n"
        "                     [--metrics <path|->]\n");
  }
  auto& registry = metrics::default_registry();
  auto& updates_written = registry.counter(
      "gill_simulate_updates_written_total", "Updates written to the archive");
  auto& ribs_written = registry.counter(
      "gill_simulate_rib_entries_written_total", "RIB entries written");
  auto run_timer = std::make_unique<metrics::Timer>(registry.histogram(
      "gill_simulate_run_duration_us", "Wall-clock microseconds per run"));
  const long ases_raw = args.get_int("ases", 400);
  const long vps_raw = args.get_int("vps", 80);
  const auto hours = args.get_int("hours", 2);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const double hotspot = std::atof(args.get("hotspot", "0.3").c_str());
  const std::string out = args.get("out", "updates.mrt");
  // Harness scripts branch on our status code: reject a nonsensical
  // scenario up front instead of silently emitting a degenerate archive.
  if (ases_raw <= 0 || vps_raw <= 0 || hours <= 0 || hotspot < 0.0 ||
      hotspot > 1.0) {
    std::fprintf(stderr,
                 "error: --ases/--vps/--hours must be positive and "
                 "--hotspot within [0,1]\n");
    return 2;
  }
  const auto ases = static_cast<std::uint32_t>(ases_raw);
  const auto vps = static_cast<std::uint32_t>(vps_raw);

  const auto topology = topo::generate_artificial({.as_count = ases,
                                                   .seed = seed});
  sim::InternetConfig config;
  std::mt19937_64 rng(seed + 1);
  std::vector<bgp::AsNumber> order(ases);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);
  for (std::uint32_t vp = 0; vp < vps && vp < ases; ++vp) {
    config.vp_hosts.push_back(order[vp]);
  }
  config.prefixes = net::PrefixAllocator::assign(ases, rng, 6);
  config.rng_seed = seed + 2;
  config.path_exploration_probability = 0.3;
  sim::Internet internet(topology, config);

  if (args.has("ribs")) {
    const auto ribs = internet.rib_dump(0);
    mrt::Writer writer;
    for (const auto& entry : ribs) writer.write_rib_entry(entry);
    if (!writer.save(args.get("ribs", ""))) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   args.get("ribs", "").c_str());
      return 1;
    }
    std::printf("wrote %zu RIB entries to %s\n", ribs.size(),
                args.get("ribs", "").c_str());
    ribs_written.inc(ribs.size());
  }

  sim::WorkloadConfig workload;
  workload.seed = seed + 3;
  workload.duration = hours * 3600;
  workload.hotspot_fraction = hotspot;
  const auto stream = sim::generate_workload(internet, 10, workload);
  if (stream.empty()) {
    std::fprintf(stderr, "error: scenario produced no updates\n");
    return 1;
  }
  if (!mrt::write_stream(stream, out)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  // Round-trip decode check: a truncated or malformed archive must fail
  // the run, not get discovered by whatever consumes the file next.
  const auto reread = mrt::read_stream(out);
  if (!reread || reread->size() != stream.size()) {
    std::fprintf(stderr,
                 "error: %s does not decode back to the %zu updates "
                 "written (got %zu)\n",
                 out.c_str(), stream.size(), reread ? reread->size() : 0);
    return 1;
  }
  std::printf("wrote %zu updates (%zu VPs, %zu prefixes, %ldh) to %s\n",
              stream.size(), stream.vps().size(), stream.prefixes().size(),
              hours, out.c_str());

  std::size_t events = 0;
  for (const auto& truth : internet.ground_truth()) {
    (void)truth;
    ++events;
  }
  std::printf("ground truth: %zu events (not exported; rerun with the same "
              "seed to regenerate)\n", events);
  updates_written.inc(stream.size());
  run_timer.reset();  // observe the run duration before the dump
  if (args.has("metrics") && !cli::dump_metrics(args.get("metrics", "-"))) {
    return 1;
  }
  return 0;
}
