// The closed-loop scenario harness (DESIGN.md §13): replays simulated
// routing incidents — route leaks, sub-prefix hijacks — into a REAL
// gill-collectord over live loopback TCP sessions shaped with per-VP
// latency/jitter/loss/bandwidth, then scores what the collector actually
// streamed (/v1/stream) and archived (/v1/data) against the simulator's
// ground truth. The verdict is machine-readable JSON; the exit status is 0
// only when every scenario's anomaly was detected end to end.
//
//   gill-scenariod --collectord ./gill-collectord --scenario route-leak
//       --scenario subprefix-hijack --latency-ms 15 --jitter-ms 5
//       --loss 0.02 --verdict verdict.json
//
// With --in-memory the harness embeds its own collect::Platform on a
// logical clock instead — fully deterministic under --seed (the
// determinism tests compare --archive-out bytes across runs and across
// --analysis-threads settings).
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "harness/driver.hpp"
#include "harness/http_client.hpp"
#include "harness/scenario.hpp"

namespace {

constexpr const char* kUsage =
    "usage: gill-scenariod [options]\n"
    "  --scenario NAME        route-leak | subprefix-hijack (repeatable;\n"
    "                         default: both)\n"
    "  --collectord PATH      fork/exec this gill-collectord binary and\n"
    "                         drive it over loopback TCP\n"
    "  --bgp-port N           drive an already-running collector instead\n"
    "  --http-port N          ... its operator-plane port\n"
    "  --host IP              ... its address (default 127.0.0.1)\n"
    "  --in-memory            embed the platform; deterministic logical clock\n"
    "  --archive-out PATH     (in-memory) write the archived MRT bytes here\n"
    "  --analysis-threads N   (in-memory) platform analysis pool size\n"
    "  --latency-ms N         one-way link latency per VP session (default 10)\n"
    "  --jitter-ms N          uniform jitter on top of latency (default 4)\n"
    "  --loss P               UPDATE loss probability, 0..1 (default 0.01)\n"
    "  --bandwidth-kbps N     per-session serialization cap (default off)\n"
    "  --ases N               topology size (default 48)\n"
    "  --vps N                vantage-point sessions (default 12)\n"
    "  --shards N             run the forked collectord with\n"
    "                         --ingest-shards N (default 1; -1 per core);\n"
    "                         recorded in the verdict\n"
    "  --seed N               scenario + shaping + pacing seed (default 1)\n"
    "  --rate N               mean event rate/s for the pacing model (default 50)\n"
    "  --replay-ms N          event replay window (default 3000)\n"
    "  --settle-ms N          post-replay drain (default 2500)\n"
    "  --timeout-ms N         per-scenario watchdog (default 60000)\n"
    "  --verdict PATH         write the JSON verdict here (default stdout)\n";

/// Binds an ephemeral loopback port, records it, releases it. Racy by
/// nature, fine for a test harness.
std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  std::uint16_t port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      port = ntohs(addr.sin_port);
    }
  }
  ::close(fd);
  return port;
}

struct Collectord {
  pid_t pid = -1;
  std::uint16_t bgp_port = 0;
  std::uint16_t http_port = 0;
  std::string archive_dir;

  ~Collectord() { stop(); }

  bool start(const std::string& binary, long ingest_shards) {
    bgp_port = pick_free_port();
    http_port = pick_free_port();
    if (bgp_port == 0 || http_port == 0 || bgp_port == http_port) {
      return false;
    }
    char dir_template[] = "/tmp/gill-scenario-XXXXXX";
    if (::mkdtemp(dir_template) == nullptr) return false;
    archive_dir = dir_template;
    const std::string bgp = std::to_string(bgp_port);
    const std::string http = std::to_string(http_port);
    const std::string shards = std::to_string(ingest_shards);
    pid = ::fork();
    if (pid < 0) return false;
    if (pid == 0) {
      ::execl(binary.c_str(), binary.c_str(), "--bind", "127.0.0.1",
              "--listen-port", bgp.c_str(), "--http-port", http.c_str(),
              "--archive-dir", archive_dir.c_str(), "--rotate-secs", "1",
              "--tick-ms", "20", "--ingest-shards", shards.c_str(),
              static_cast<char*>(nullptr));
      std::fprintf(stderr, "scenariod: exec %s failed: %s\n", binary.c_str(),
                   std::strerror(errno));
      ::_exit(127);
    }
    // Wait for the operator plane to come up.
    for (int i = 0; i < 200; ++i) {
      const auto health =
          gill::harness::http_get("127.0.0.1", http_port, "/v1/healthz", 250);
      if (health && health->status == 200) return true;
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        pid = -1;
        return false;  // child died during startup
      }
      ::usleep(50 * 1000);
    }
    return false;
  }

  void stop() {
    if (pid <= 0) return;
    ::kill(pid, SIGTERM);
    int status = 0;
    for (int i = 0; i < 100; ++i) {
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        pid = -1;
        return;
      }
      ::usleep(50 * 1000);
    }
    ::kill(pid, SIGKILL);
    ::waitpid(pid, &status, 0);
    pid = -1;
  }
};

bool write_file(const std::string& path, const void* data, std::size_t size) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const bool ok = std::fwrite(data, 1, size, file) == size;
  std::fclose(file);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gill;
  const cli::Args args(argc, argv);
  if (args.has("help")) cli::usage(kUsage);

  std::vector<harness::ScenarioKind> kinds;
  for (const std::string& name : args.get_all("scenario")) {
    const auto kind = harness::parse_scenario_kind(name);
    if (!kind) {
      std::fprintf(stderr, "scenariod: unknown scenario '%s'\n", name.c_str());
      return 2;
    }
    kinds.push_back(*kind);
  }
  if (kinds.empty()) {
    kinds = {harness::ScenarioKind::kRouteLeak,
             harness::ScenarioKind::kSubprefixHijack};
  }

  const bool in_memory = args.has("in-memory");
  const std::string collectord_path = args.get("collectord", "");
  if (!in_memory && collectord_path.empty() && !args.has("bgp-port")) {
    std::fprintf(stderr,
                 "scenariod: need --collectord, --bgp-port/--http-port, or "
                 "--in-memory\n%s",
                 kUsage);
    return 2;
  }

  harness::ScenarioConfig base;
  base.as_count = static_cast<std::size_t>(args.get_int("ases", 48));
  base.vp_count = static_cast<std::size_t>(args.get_int("vps", 12));
  base.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  base.link.latency_ms = static_cast<double>(args.get_int("latency-ms", 10));
  base.link.jitter_ms = static_cast<double>(args.get_int("jitter-ms", 4));
  base.link.loss_rate = std::strtod(args.get("loss", "0.01").c_str(), nullptr);
  base.link.bandwidth_bytes_per_sec =
      static_cast<double>(args.get_int("bandwidth-kbps", 0)) * 125.0;
  base.pacing.mean_rate_per_sec =
      static_cast<double>(args.get_int("rate", 50));

  harness::DriverConfig driver_config;
  driver_config.host = args.get("host", "127.0.0.1");
  driver_config.replay_ms = static_cast<double>(args.get_int("replay-ms", 3000));
  driver_config.settle_ms = static_cast<double>(args.get_int("settle-ms", 2500));
  driver_config.timeout_ms =
      static_cast<double>(args.get_int("timeout-ms", 60000));
  driver_config.analysis_threads =
      static_cast<std::size_t>(args.get_int("analysis-threads", 0));
  const long ingest_shards = args.get_int("shards", 1);

  bool all_passed = true;
  std::string json = "{\"scenarios\":[";
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    harness::ScenarioConfig config = base;
    config.kind = kinds[i];
    config.seed = base.seed + i;  // decorrelate shaping/pacing across runs

    Collectord child;
    harness::DriverConfig run_config = driver_config;
    if (!in_memory) {
      if (!collectord_path.empty()) {
        if (!child.start(collectord_path, ingest_shards)) {
          std::fprintf(stderr, "scenariod: cannot start %s\n",
                       collectord_path.c_str());
          return 1;
        }
        run_config.bgp_port = child.bgp_port;
        run_config.http_port = child.http_port;
        run_config.ingest_shards = static_cast<std::size_t>(
            ingest_shards > 0 ? ingest_shards : 1);
      } else {
        run_config.bgp_port =
            static_cast<std::uint16_t>(args.get_int("bgp-port", 0));
        run_config.http_port =
            static_cast<std::uint16_t>(args.get_int("http-port", 0));
      }
    }

    try {
      harness::Scenario scenario = harness::build_scenario(config);
      harness::ScenarioDriver driver(scenario, run_config);
      const harness::ScenarioVerdict verdict =
          in_memory ? driver.run_in_memory() : driver.run_tcp();
      if (i) json.push_back(',');
      json += verdict.to_json();
      all_passed = all_passed && verdict.passed;
      std::fprintf(stderr,
                   "scenariod: %s %s (sent %zu, archived %zu, "
                   "completeness %.3f, lost %zu)\n",
                   scenario.name.c_str(), verdict.passed ? "PASS" : "FAIL",
                   verdict.updates_sent, verdict.updates_delivered,
                   verdict.delivery_completeness, verdict.link_lost_updates);
      if (in_memory && args.has("archive-out")) {
        const std::string out = args.get("archive-out", "");
        // Suffix per scenario when several run, so files don't clobber.
        const std::string path =
            kinds.size() == 1 ? out : out + "." + scenario.name;
        if (!write_file(path, driver.archived_bytes().data(),
                        driver.archived_bytes().size())) {
          std::fprintf(stderr, "scenariod: cannot write %s\n", path.c_str());
          return 1;
        }
      }
    } catch (const std::exception& error) {
      std::fprintf(stderr, "scenariod: scenario %s failed: %s\n",
                   std::string(harness::to_string(kinds[i])).c_str(),
                   error.what());
      return 1;
    }
  }
  json += "],\"passed\":";
  json += all_passed ? "true" : "false";
  json += "}\n";

  const std::string verdict_path = args.get("verdict", "-");
  if (verdict_path == "-" || verdict_path.empty()) {
    std::fwrite(json.data(), 1, json.size(), stdout);
  } else if (!write_file(verdict_path, json.data(), json.size())) {
    std::fprintf(stderr, "scenariod: cannot write %s\n", verdict_path.c_str());
    return 1;
  }
  return all_passed ? 0 : 1;
}
