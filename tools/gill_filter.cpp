// gill-filter — run GILL's sampling pipeline: train on one archive,
// filter another, write the retained updates.
//
//   gill-filter --train train.mrt --in eval.mrt --out retained.mrt
//       [--ribs ribs.mrt] [--no-anchors] [--granularity asp]
#include <cstdio>

#include "cli_util.hpp"
#include "mrt/mrt.hpp"
#include "sampling/gill_pipeline.hpp"

int main(int argc, char** argv) {
  using namespace gill;
  const cli::Args args(argc, argv);
  if (!args.has("train") || !args.has("in") || args.has("help")) {
    cli::usage(
        "usage: gill-filter --train train.mrt --in eval.mrt --out out.mrt\n"
        "                   [--ribs ribs.mrt] [--no-anchors]\n"
        "                   [--granularity coarse|asp|asp-comm]\n"
        "                   [--print-filters] [--metrics <path|->]\n");
  }
  auto& registry = metrics::default_registry();
  auto& updates_retained = registry.counter(
      "gill_filter_updates_retained_total", "Updates kept by the filter set");
  auto& updates_discarded = registry.counter(
      "gill_filter_updates_discarded_total", "Updates dropped by the filters");
  const auto training = mrt::read_stream(args.get("train", ""));
  if (!training) {
    std::fprintf(stderr, "error: cannot read %s\n",
                 args.get("train", "").c_str());
    return 1;
  }
  bgp::UpdateStream ribs;
  if (args.has("ribs")) {
    const auto loaded = mrt::read_stream(args.get("ribs", ""));
    if (!loaded) {
      std::fprintf(stderr, "error: cannot read %s\n",
                   args.get("ribs", "").c_str());
      return 1;
    }
    ribs = *loaded;
  }

  sample::GillConfig config;
  config.use_anchors = !args.has("no-anchors");
  const std::string granularity = args.get("granularity", "coarse");
  if (granularity == "asp") {
    config.granularity = filt::Granularity::kVpPrefixPath;
  } else if (granularity == "asp-comm") {
    config.granularity = filt::Granularity::kVpPrefixPathComm;
  }

  // Without topology knowledge, event selection falls back to random.
  const auto result = sample::run_gill_pipeline(ribs, *training, {}, config);
  std::printf("trained on %zu updates: %zu drop rules, %zu anchors, "
              "|U|/|V| = %.3f\n",
              training->size(), result.filters.drop_rule_count(),
              result.anchors.size(),
              result.component1.retained_fraction());
  if (args.has("print-filters")) {
    std::printf("%s", result.filters.describe().c_str());
  }

  const auto eval = mrt::read_stream(args.get("in", ""));
  if (!eval) {
    std::fprintf(stderr, "error: cannot read %s\n", args.get("in", "").c_str());
    return 1;
  }
  bgp::UpdateStream retained;
  const auto stats = filt::apply_filters(result.filters, *eval, &retained);
  std::printf("filtered %s: %zu -> %zu updates (%.1f%% discarded)\n",
              args.get("in", "").c_str(), eval->size(), retained.size(),
              stats.matched_fraction() * 100.0);
  updates_retained.inc(retained.size());
  updates_discarded.inc(eval->size() - retained.size());

  const std::string out = args.get("out", "retained.mrt");
  if (!mrt::write_stream(retained, out)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  if (args.has("metrics") && !cli::dump_metrics(args.get("metrics", "-"))) {
    return 1;
  }
  return 0;
}
