// Tiny argv helper shared by the command-line tools.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "metrics/metrics.hpp"

namespace gill::cli {

/// Parses "--key value" pairs and bare positionals.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const std::string key = arg.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          options_[key] = argv[++i];
        } else {
          options_[key] = "1";  // boolean flag
        }
        all_.emplace_back(key, options_[key]);
      } else {
        positionals_.push_back(arg);
      }
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options_.find(key);
    return it == options_.end() ? fallback : it->second;
  }
  long get_int(const std::string& key, long fallback) const {
    const auto it = options_.find(key);
    return it == options_.end() ? fallback : std::strtol(it->second.c_str(),
                                                         nullptr, 10);
  }
  bool has(const std::string& key) const { return options_.contains(key); }
  /// Every value of a repeatable option, in argv order (get() returns only
  /// the last occurrence) — e.g. several --dial targets.
  std::vector<std::string> get_all(const std::string& key) const {
    std::vector<std::string> values;
    for (const auto& [k, v] : all_) {
      if (k == key) values.push_back(v);
    }
    return values;
  }
  const std::vector<std::string>& positionals() const { return positionals_; }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::pair<std::string, std::string>> all_;  // argv order
  std::vector<std::string> positionals_;
};

[[noreturn]] inline void usage(const char* text) {
  std::fprintf(stderr, "%s", text);
  std::exit(2);
}

/// Writes the process-wide Prometheus text exposition to `target` ("-"
/// means stdout) — the common handler for each tool's `--metrics` flag.
/// Returns false when the file cannot be opened.
inline bool dump_metrics(const std::string& target) {
  const std::string text =
      gill::metrics::default_registry().expose_prometheus();
  if (target == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return true;
  }
  std::FILE* file = std::fopen(target.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "error: cannot write metrics to %s\n",
                 target.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), file);
  std::fclose(file);
  return true;
}

}  // namespace gill::cli
