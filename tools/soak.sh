#!/usr/bin/env bash
# Flap-storm soak: builds the soak-labeled chaos tests (tests/soak_test.cpp,
# the /v1/stream distribution-plane tests in tests/stream_test.cpp and the
# sharded ingest-plane storm in tests/sharded_test.cpp: flaps spread across
# a 4-shard fleet while merge refreshes run on the analysis pool)
# plus the scenario-labeled closed-loop harness (tests/scenario_test.cpp:
# route-leak and sub-prefix-hijack replays driving a real gill-collectord
# over shaped loopback TCP) and the archive group (tests/archive_test.cpp
# and tests/query_engine_test.cpp: on-disk footer/torn-tail parsing under
# ASan, the query-under-churn race — parallel scans vs sealing vs GC —
# under TSan) under BOTH sanitizer configurations and runs them in one
# invocation:
#
#   1. GILL_SANITIZE=ON      (ASan + UBSan — memory safety under the storm)
#   2. GILL_SANITIZE=thread  (TSan — races in the session/transport layers)
#
# The storm size scales via the environment:
#
#   GILL_SOAK_PEERS=160 GILL_SOAK_ROUNDS=3 tools/soak.sh
#
# Each configuration builds into its own tree (build-soak-asan /
# build-soak-tsan) so the soak never perturbs the main build/ directory.
set -euo pipefail

cd "$(dirname "$0")/.."

: "${GILL_SOAK_PEERS:=120}"
: "${GILL_SOAK_ROUNDS:=3}"
export GILL_SOAK_PEERS GILL_SOAK_ROUNDS

jobs="$(nproc 2>/dev/null || echo 2)"
run_one() {
  local mode="$1" dir="$2"
  echo "=== soak [$mode]: ${GILL_SOAK_PEERS} peers x ${GILL_SOAK_ROUNDS} rounds ==="
  cmake -B "$dir" -S . -DGILL_SANITIZE="$mode" > "$dir.configure.log" 2>&1 \
    || { cat "$dir.configure.log"; return 1; }
  cmake --build "$dir" -j"$jobs" \
    --target soak_test stream_test sharded_test scenario_test bench_scenario \
              archive_test query_engine_test \
              gill-scenariod gill-collectord gill-simulate \
    > "$dir.build.log" 2>&1 \
    || { tail -50 "$dir.build.log"; return 1; }
  (cd "$dir" && ctest -L 'soak|scenario|archive' --output-on-failure)
}

run_one ON build-soak-asan
run_one thread build-soak-tsan
echo "=== soak: both sanitizer configurations passed ==="
