// The live collector daemon (§8): the GILL platform behind real sockets.
// Listens for inbound BGP peerings (and optionally BMP feeds, RFC 7854)
// over TCP, drives the sessions from a sharded ingest plane — N epoll
// event loops, one per core (--ingest-shards), each owning its sessions
// outright (DESIGN.md §14) — and serves the versioned operator plane over
// HTTP from a separate control loop: GET /v1/metrics (Prometheus),
// GET /v1/healthz (JSON peer health), the archive retrieval routes
// (/v1/data, /v1/segments) and the live distribution plane
// (GET /v1/stream — every accepted update fanned out to filtered
// subscribers in real time). The pre-/v1 unversioned spellings had a
// one-release grace window as aliases and now answer 404.
//
//   gill-collectord --listen-port 1790 --http-port 9179 --ingest-shards -1 &
//   curl -s localhost:9179/v1/metrics | grep gill_collector_peers
//   curl -N 'localhost:9179/v1/stream?prefix=10.0.0.0/8'
//
// Share-nothing by design (DESIGN.md §7/§14): a session's transport, FSM
// and RIB live on exactly one shard's loop thread, so the daemon hot path
// never takes a lock; the merge plane stitches per-shard mirrors into one
// deterministic stream for the sampling pipeline.
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <map>
#include <memory>

#include "archive/archive_writer.hpp"
#include "archive/query_engine.hpp"
#include "cli_util.hpp"
#include "collector/platform.hpp"
#include "collector/sharded.hpp"
#include "daemon/bmp_ingest.hpp"
#include "net/event_loop.hpp"
#include "net/http_endpoint.hpp"
#include "net/overload.hpp"
#include "net/stream.hpp"
#include "net/tcp_transport.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

constexpr const char* kUsage =
    "usage: gill-collectord [options]\n"
    "  --listen-port N        BGP listen port (default 1790; 179 needs root)\n"
    "  --bmp-port N           BMP listen port (default: disabled)\n"
    "  --http-port N          HTTP port for the /v1 operator plane (default 9179)\n"
    "  --bind IP              bind address, IPv4 or IPv6 (default 0.0.0.0)\n"
    "  --dial HOST:PORT:ASN   dial an outbound peering (repeatable; IPv6\n"
    "                         hosts in brackets: [::1]:1790:65001)\n"
    "  --local-as N           our AS number (default 65000)\n"
    "  --ingest-shards N      ingest event loops (one thread + SO_REUSEPORT\n"
    "                         listener each): -1 one per core, default 1\n"
    "  --max-peers N          refuse sessions beyond this (default 4096)\n"
    "  --tick-ms N            session tick interval (default 200)\n"
    "  --rib-dump-interval N  per-session RIB snapshot period, seconds (default off)\n"
    "  --analysis-threads N   worker pool for filter refreshes: -1 auto,\n"
    "                         0 synchronous on the loop thread (default -1)\n"
    "  --archive PATH         save the in-memory MRT archive to PATH on shutdown\n"
    "  --archive-dir DIR      rotated on-disk segment store; serves GET /v1/data\n"
    "                         and GET /v1/segments on the HTTP port\n"
    "  --rotate-secs N        segment rotation boundary (default 900)\n"
    "  --archive-compress     zstd-compress segment payloads at seal time\n"
    "                         (raw fallback when the build lacks zstd)\n"
    "  --archive-cache-bytes N  hot-segment cache budget over decompressed\n"
    "                         payloads (default 64 MiB; 0 disables)\n"
    "  --archive-query-threads N  scan pool for /v1/data: -1 auto, 0 scans\n"
    "                         inline on the control loop (default -1)\n"
    "  --archive-max-bytes N  retention: delete oldest windows while the\n"
    "                         store exceeds N payload bytes (default off)\n"
    "  --archive-max-age-secs N  retention: delete windows older than N\n"
    "                         seconds (default off)\n"
    "  --snapshot-secs N      RIB snapshot period into the segment store\n"
    "                         (default: --rib-dump-interval)\n"
    "  --duration N           run N seconds then exit (default: until SIGINT)\n"
    "  --gr-timeout N         graceful-restart stale retention window, seconds\n"
    "                         (default 120; 0 disables RFC 4724 GR)\n"
    "  --max-peer-rate N      per-peer ingest cap, bytes/second (default off)\n"
    "  --queue-watermark N    per-peer inbound queue high watermark, bytes;\n"
    "                         reads pause above it (default 1 MiB; 0 off)\n"
    "  --accept-rate N        per-source accepts/second before new\n"
    "                         connections are refused (default off)\n"
    "  --mem-watermark N      process RSS bytes that trigger degraded mode\n"
    "                         (defer refreshes/snapshots, shed weakest VPs;\n"
    "                         default off)\n"
    "  --stream-max-subscribers N  concurrent /v1/stream subscribers before\n"
    "                         new ones get 503 (default 1024)\n"
    "  --stream-queue-bytes N per-subscriber queue high watermark, bytes;\n"
    "                         slow readers are trimmed above it and evicted\n"
    "                         if they never drain (default 1 MiB)\n"
    "  --metrics <path|->     dump the Prometheus exposition at exit\n";

/// Splits a --dial target HOST:PORT:ASN (host may be a bracketed IPv6
/// literal, so parse from the right). Returns false on malformed input.
bool parse_dial_target(const std::string& spec, std::string& host,
                       std::uint16_t& port, gill::bgp::AsNumber& asn) {
  const std::size_t asn_colon = spec.rfind(':');
  if (asn_colon == std::string::npos || asn_colon == 0) return false;
  const std::size_t port_colon = spec.rfind(':', asn_colon - 1);
  if (port_colon == std::string::npos || port_colon == 0) return false;
  host = spec.substr(0, port_colon);
  const long port_value =
      std::strtol(spec.c_str() + port_colon + 1, nullptr, 10);
  const long asn_value = std::strtol(spec.c_str() + asn_colon + 1, nullptr, 10);
  if (port_value <= 0 || port_value > 65535 || asn_value <= 0) return false;
  port = static_cast<std::uint16_t>(port_value);
  asn = static_cast<gill::bgp::AsNumber>(asn_value);
  return !host.empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gill;
  const cli::Args args(argc, argv);
  if (args.has("help")) cli::usage(kUsage);

  const std::string bind_ip = args.get("bind", "0.0.0.0");
  const auto listen_port =
      static_cast<std::uint16_t>(args.get_int("listen-port", 1790));
  const long bmp_port = args.get_int("bmp-port", 0);
  const auto http_port =
      static_cast<std::uint16_t>(args.get_int("http-port", 9179));
  const auto local_as =
      static_cast<bgp::AsNumber>(args.get_int("local-as", 65000));
  const long max_peers = args.get_int("max-peers", 4096);
  const long ingest_shards = args.get_int("ingest-shards", 1);
  const long tick_ms = args.get_int("tick-ms", 200);
  const long rib_dump_interval = args.get_int("rib-dump-interval", 0);
  const long analysis_threads = args.get_int("analysis-threads", -1);
  const long duration = args.get_int("duration", 0);
  const std::string archive_dir = args.get("archive-dir", "");
  const long rotate_secs = args.get_int("rotate-secs", 900);
  const bool archive_compress = args.has("archive-compress");
  const long archive_cache_bytes =
      args.get_int("archive-cache-bytes", 64 * 1024 * 1024);
  const long archive_query_threads = args.get_int("archive-query-threads", -1);
  const long archive_max_bytes = args.get_int("archive-max-bytes", 0);
  const long archive_max_age_secs = args.get_int("archive-max-age-secs", 0);
  const long snapshot_secs = args.get_int("snapshot-secs", rib_dump_interval);
  const long gr_timeout = args.get_int("gr-timeout", 120);
  const long max_peer_rate = args.get_int("max-peer-rate", 0);
  const long queue_watermark = args.get_int("queue-watermark", 1024 * 1024);
  const long accept_rate = args.get_int("accept-rate", 0);
  const long mem_watermark = args.get_int("mem-watermark", 0);
  const long stream_max_subscribers =
      args.get_int("stream-max-subscribers", 1024);
  const long stream_queue_bytes =
      args.get_int("stream-queue-bytes", 1024 * 1024);

  metrics::Registry& registry = metrics::default_registry();
  // The control loop: HTTP, BMP feeds, stream fan-out, archive rotation
  // and the merge cadence. BGP sessions live on the ingest shards.
  // Destruction order matters: the loop must outlive every fd owner below.
  net::EventLoop loop;

  collect::ShardedPlatformConfig config;
  config.shards = ingest_shards < 0
                      ? par::auto_thread_count()
                      : static_cast<std::size_t>(
                            ingest_shards > 0 ? ingest_shards : 1);
  config.platform.local_as = local_as;
  config.platform.registry = &registry;
  // The merged filter refresh runs on the merge plane's worker pool so no
  // loop thread ever stalls mid-pipeline (DESIGN.md §9/§14).
  config.analysis_threads =
      analysis_threads < 0 ? par::auto_thread_count()
                           : static_cast<std::size_t>(analysis_threads);
  // RFC 4724 graceful restart: a flapping peer's RIB is retained as stale
  // for --gr-timeout seconds and resynced by delta instead of replayed.
  config.platform.gr.enabled = gr_timeout > 0;
  if (gr_timeout > 0) {
    config.platform.gr.max_stale_time = static_cast<bgp::Timestamp>(gr_timeout);
    config.platform.gr.restart_time = static_cast<std::uint16_t>(
        gr_timeout < 4095 ? gr_timeout : 4095);  // 12-bit wire field
  }
  if (mem_watermark > 0) {
    // The watermark acts globally: the control tick samples the RSS once
    // and every shard's check reads that same number.
    config.platform.overload.mem_high_watermark =
        static_cast<std::size_t>(mem_watermark);
  }
  // Per-peer ingest policing: a token bucket caps bytes/second and a
  // bounded inbound queue pauses EPOLLIN above the high watermark (real
  // TCP backpressure — the sender's window closes, not our memory). Both
  // stay shard-local: they police one session each, lock-free.
  config.ingest_limits.max_bytes_per_sec = static_cast<double>(max_peer_rate);
  config.ingest_limits.queue_high_watermark =
      queue_watermark > 0 ? static_cast<std::size_t>(queue_watermark) : 0;
  config.max_peers = static_cast<std::size_t>(max_peers);
  // Per-source accept rate cap, shared across every shard's listener: a
  // flap storm spread over N SO_REUSEPORT sockets is still one storm.
  config.accept_rate = static_cast<double>(accept_rate);
  config.on_session = [](std::size_t shard, bgp::VpId vp,
                         const std::string& peer_ip) {
    std::fprintf(stderr, "[collectord] vp%u peering from %s (shard %zu)\n",
                 vp, peer_ip.c_str(), shard);
  };
  // The per-session snapshot interval: --snapshot-secs routes RIB dumps
  // into the segment store, --rib-dump-interval is the historical flag for
  // the in-memory store; both feed the same daemon machinery.
  const long effective_rib_interval =
      snapshot_secs > 0 ? snapshot_secs : rib_dump_interval;
  if (effective_rib_interval > 0) {
    config.rib_dump_interval =
        static_cast<bgp::Timestamp>(effective_rib_interval);
  }
  collect::ShardedPlatform platform(config);

  // The on-disk segment store (§8: "stores the collected BGP updates in a
  // public database"). Disk I/O runs on a one-worker pool so the event
  // loop never blocks in write()/fsync(); the writer serializes its jobs
  // anyway, so one worker loses nothing.
  // Destruction runs in reverse declaration order, and it matters: the
  // writer's retention jobs invalidate the cache (cache after writer is
  // destroyed-before — so declare cache FIRST), engine cursors scan on the
  // query pool through cache and pins, and the engine itself dies before
  // any of them.
  std::unique_ptr<par::ThreadPool> archive_pool;        // writer I/O (1 thread)
  std::unique_ptr<par::ThreadPool> archive_query_pool;  // /v1/data scans
  std::unique_ptr<archive::SegmentCache> archive_cache;
  std::unique_ptr<archive::SegmentPins> archive_pins;
  std::unique_ptr<archive::SegmentWriter> archive_writer;
  std::unique_ptr<archive::QueryEngine> archive_engine;
  if (!archive_dir.empty()) {
    archive_pool = std::make_unique<par::ThreadPool>(1, &registry);
    archive::SegmentWriterConfig archive_config;
    archive_config.directory = archive_dir;
    archive_config.rotate_secs = static_cast<bgp::Timestamp>(
        rotate_secs > 0 ? rotate_secs : 900);
    archive_config.compress = archive_compress;
    archive_config.pool = archive_pool.get();
    archive_config.registry = &registry;
    archive_writer =
        std::make_unique<archive::SegmentWriter>(std::move(archive_config));
    if (!archive_writer->open()) {
      std::fprintf(stderr, "error: cannot open archive dir %s\n",
                   archive_dir.c_str());
      return 1;
    }
    if (archive_compress && !archive::compression_available()) {
      std::fprintf(stderr,
                   "[collectord] warning: --archive-compress but this build "
                   "lacks zstd; sealing raw\n");
    }
    // The query plane (DESIGN.md §15): ONE engine shared by every request,
    // refreshed only when the writer's manifest generation moves — not a
    // fresh manifest load per GET like the old per-request reader.
    const std::size_t query_threads =
        archive_query_threads < 0
            ? par::auto_thread_count()
            : static_cast<std::size_t>(archive_query_threads);
    if (query_threads > 0) {
      archive_query_pool =
          std::make_unique<par::ThreadPool>(query_threads, &registry);
    }
    archive::SegmentCacheConfig cache_config;
    cache_config.max_bytes = archive_cache_bytes > 0
                                 ? static_cast<std::size_t>(archive_cache_bytes)
                                 : 0;
    cache_config.registry = &registry;
    archive_cache = std::make_unique<archive::SegmentCache>(cache_config);
    archive_pins = std::make_unique<archive::SegmentPins>();
    archive::QueryEngineConfig engine_config;
    engine_config.directory = archive_dir;
    engine_config.pool = archive_query_pool.get();
    engine_config.cache = archive_cache.get();
    engine_config.pins = archive_pins.get();
    engine_config.registry = &registry;
    archive_engine = std::make_unique<archive::QueryEngine>(engine_config);
    if (!archive_engine->open()) {
      std::fprintf(stderr, "error: cannot open archive dir %s\n",
                   archive_dir.c_str());
      return 1;
    }
  }
  // N shard threads write the archive tee concurrently; the LockedSink
  // serializes them (and the control thread's rotation ticks below).
  std::unique_ptr<collect::LockedSink> archive_sink;
  if (archive_writer) {
    archive_sink = std::make_unique<collect::LockedSink>(archive_writer.get());
    platform.set_archive(archive_sink.get());
  }

  const auto now_seconds = [&loop] {
    return static_cast<bgp::Timestamp>(loop.now_ms() / 1000);
  };

  // One SO_REUSEPORT listener per shard (kernel spreads the sessions); the
  // round-robin dispatcher takes over automatically where the option is
  // unavailable. Admission (peer cap, accept governor) is global.
  if (!platform.listen(bind_ip, listen_port)) {
    std::fprintf(stderr, "error: cannot listen on %s:%u\n", bind_ip.c_str(),
                 listen_port);
    return 1;
  }

  // Outbound peerings (--dial): we initiate the TCP connection, so these
  // sessions re-dial on teardown (retry policy armed, unlike accepted
  // peers where the remote re-establishes). Spread round-robin over the
  // shards before the fleet starts.
  for (const std::string& spec : args.get_all("dial")) {
    std::string host;
    std::uint16_t port = 0;
    bgp::AsNumber asn = 0;
    if (!parse_dial_target(spec, host, port, asn)) {
      std::fprintf(stderr, "error: bad --dial target '%s' "
                   "(want HOST:PORT:ASN)\n", spec.c_str());
      return 1;
    }
    if (!platform.dial(host, port, asn)) {
      std::fprintf(stderr, "error: cannot dial %s\n", spec.c_str());
      return 1;
    }
    std::fprintf(stderr, "[collectord] dialing %s:%u (AS%u)\n",
                 host.c_str(), port, asn);
  }

  // BMP feeds are ingest-only byte streams (no session FSM): one decoder
  // per connection, read straight off the loop. The stream hub is built
  // later (it needs the HTTP endpoint); this pointer is filled in before
  // the loop runs, so every accepted BMP feed publishes into it too.
  net::StreamHub* live_stream = nullptr;
  std::map<int, std::unique_ptr<daemon::BmpIngest>> bmp_streams;
  bgp::VpId next_bmp_vp = 100000;  // label space disjoint from BGP VPs
  net::TcpListener bmp_listener(loop, &registry);
  if (bmp_port > 0) {
    const bool bmp_ok = bmp_listener.listen(
        bind_ip, static_cast<std::uint16_t>(bmp_port),
        [&](int fd, std::string peer_ip, std::uint16_t) {
          auto ingest = std::make_unique<daemon::BmpIngest>(
              next_bmp_vp++, &platform.filters(), nullptr, &registry);
          auto* raw = ingest.get();
          raw->set_mirror([&live_stream](const bgp::Update& update) {
            if (live_stream != nullptr) live_stream->publish(update);
          });
          bmp_streams.emplace(fd, std::move(ingest));
          loop.add(fd, net::kReadable, [&, fd, raw](std::uint32_t) {
            std::uint8_t buffer[16384];
            for (;;) {
              const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
              if (n > 0) {
                raw->feed(std::span(buffer, static_cast<std::size_t>(n)),
                          now_seconds());
                continue;
              }
              if (n < 0 && errno == EINTR) continue;
              if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
              loop.remove(fd);  // EOF or error: stream over
              ::close(fd);
              bmp_streams.erase(fd);
              return;
            }
          });
          std::fprintf(stderr, "[collectord] BMP feed from %s\n",
                       peer_ip.c_str());
        });
    if (!bmp_ok) {
      std::fprintf(stderr, "error: cannot listen on %s:%ld (BMP)\n",
                   bind_ip.c_str(), bmp_port);
      return 1;
    }
  }

  net::HttpEndpoint http(loop, &registry);
  http.serve_metrics(registry);
  http.route("/v1/healthz", [&platform] {
    net::HttpResponse response;
    response.content_type = "application/json";
    response.body = collect::to_json(platform.health_snapshot());
    return response;
  });
  if (archive_engine) {
    // Data-retrieval plane: /v1/data streams framed MRT chunked with
    // bounded memory through the shared query engine — bloom-pruned,
    // scanned in parallel, served from the hot-segment cache, and the
    // cursor pins its snapshot so retention never deletes under it.
    // /v1/segments lists the manifest from the same snapshot.
    auto* engine = archive_engine.get();
    http.route("/v1/data", [engine](const net::HttpRequest& request) {
      archive::QueryOptions options;
      std::uint64_t value = 0;
      if (const auto* start = request.get("start")) {
        if (!net::parse_u64(*start, &value)) {
          return net::error_response(400, "bad_param",
                                     "bad start '" + *start +
                                         "': want a decimal timestamp");
        }
        options.start = static_cast<bgp::Timestamp>(value);
      }
      if (const auto* end = request.get("end")) {
        if (!net::parse_u64(*end, &value)) {
          return net::error_response(400, "bad_param",
                                     "bad end '" + *end +
                                         "': want a decimal timestamp");
        }
        options.end = static_cast<bgp::Timestamp>(value);
      }
      if (const auto* vp = request.get("vp")) {
        if (!net::parse_u64(*vp, &value) || value > UINT32_MAX) {
          return net::error_response(
              400, "bad_param", "bad vp '" + *vp + "': want a decimal VP id");
        }
        options.vp = static_cast<bgp::VpId>(value);
      }
      if (const auto* prefix = request.get("prefix")) {
        const auto parsed = gill::net::Prefix::parse(*prefix);
        if (!parsed) {
          return net::error_response(400, "bad_param",
                                     "bad prefix '" + *prefix +
                                         "': want CIDR like 10.0.0.0/8");
        }
        options.prefix = *parsed;
      }
      auto cursor = engine->query(options);
      net::HttpResponse response;
      response.content_type = "application/octet-stream";
      response.producer = [cursor](std::string& out) {
        return cursor->next_chunk(out);
      };
      return response;
    });
    http.route("/v1/segments", [engine](const net::HttpRequest&) {
      net::HttpResponse response;
      response.content_type = "application/json";
      response.body = engine->segments_json();
      return response;
    });
  }

  // The live distribution plane (GET /v1/stream): every accepted update —
  // BGP sessions and BMP feeds alike — fans out to filtered subscribers.
  net::StreamConfig stream_config;
  stream_config.max_subscribers =
      stream_max_subscribers > 0
          ? static_cast<std::size_t>(stream_max_subscribers)
          : 0;
  if (stream_queue_bytes > 0) {
    stream_config.queue_high_bytes =
        static_cast<std::size_t>(stream_queue_bytes);
  }
  net::StreamHub stream_hub(http, stream_config, &registry);
  live_stream = &stream_hub;
  platform.set_stream_publisher(
      [&stream_hub](const bgp::Update& update) { stream_hub.publish(update); });

  if (!http.listen(bind_ip, http_port)) {
    std::fprintf(stderr, "error: cannot listen on %s:%u (HTTP)\n",
                 bind_ip.c_str(), http_port);
    return 1;
  }

  // Each shard's own timer wheel drives its sessions (poll decoded bytes,
  // expire hold timers, emit keepalives, flush socket backlogs); the
  // control tick here samples the memory watermark, fans the stream
  // outboxes into the hub, runs the merge cadence and rotates the archive.
  platform.start(static_cast<std::uint64_t>(tick_ms));
  std::uint64_t seen_manifest_generation = 0;
  loop.call_every(static_cast<std::uint64_t>(tick_ms), [&] {
    platform.control_tick(now_seconds());
    if (archive_writer) {
      archive_sink->with_lock([&] { archive_writer->tick(now_seconds()); });
      // The engine re-reads the manifest only when it actually changed
      // (seal or GC) — the whole point of the shared engine over the old
      // per-request reader.
      const std::uint64_t generation = archive_writer->manifest_generation();
      if (generation != seen_manifest_generation) {
        seen_manifest_generation = generation;
        archive_engine->refresh();
      }
    }
  });
  // Retention/GC runs on its own slower cadence as a serialized writer job
  // (never racing a seal); deleted files leave the cache immediately.
  archive::RetentionPolicy retention_policy;
  retention_policy.max_bytes =
      archive_max_bytes > 0 ? static_cast<std::uint64_t>(archive_max_bytes)
                            : 0;
  retention_policy.max_age_secs =
      archive_max_age_secs > 0
          ? static_cast<bgp::Timestamp>(archive_max_age_secs)
          : 0;
  if (archive_writer && retention_policy.enabled()) {
    loop.call_every(5000, [&] {
      archive_writer->run_retention(
          retention_policy, archive_pins.get(), now_seconds(),
          [cache = archive_cache.get(),
           directory = archive_dir](const std::string& file) {
            cache->invalidate(directory, file);
          });
    });
  }
  if (duration > 0) {
    loop.call_after(static_cast<std::uint64_t>(duration) * 1000,
                    [&loop] { loop.stop(); });
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::fprintf(stderr,
               "[collectord] AS%u: BGP on %s:%u%s (%zu ingest shard%s, %s), "
               "HTTP on %s:%u (/v1/metrics, /v1/healthz, /v1/stream)\n",
               local_as, bind_ip.c_str(), platform.port(),
               bmp_port > 0 ? " (+BMP)" : "", platform.shard_count(),
               platform.shard_count() == 1 ? "" : "s",
               platform.reuse_port_active() ? "SO_REUSEPORT" : "dispatcher",
               bind_ip.c_str(), http.port());
  while (!loop.stopped() && g_stop == 0) {
    loop.run_once(100);
  }

  // Quiesce the ingest fleet first: once the shard threads are joined,
  // every harvest below runs single-threaded.
  platform.stop();
  std::fprintf(stderr,
               "[collectord] shutting down: %zu peers, %zu BMP streams, "
               "%zu updates stored\n",
               platform.peer_count(), bmp_streams.size(),
               platform.stored_updates());
  const std::string archive = args.get("archive", "");
  if (!archive.empty()) {
    if (platform.save_archive(archive)) {
      std::fprintf(stderr, "[collectord] archive saved to %s\n",
                   archive.c_str());
    } else {
      std::fprintf(stderr, "error: cannot save archive to %s\n",
                   archive.c_str());
    }
  }
  // Drain every asynchronous producer BEFORE the final metrics dump: the
  // archive writer's in-flight disk jobs and any merged filter refresh
  // still on the analysis pool would otherwise mutate counters after (or
  // while) the exposition is rendered — the dump must reflect the run.
  platform.wait_for_refresh();
  if (archive_writer) {
    archive_writer->close();  // seal the active segment + wait for I/O
    std::fprintf(stderr, "[collectord] archive: %llu segments sealed in %s\n",
                 static_cast<unsigned long long>(
                     archive_writer->segments_sealed()),
                 archive_dir.c_str());
  }
  if (args.has("metrics") && !cli::dump_metrics(args.get("metrics", "-"))) {
    return 1;
  }
  for (auto& [fd, stream] : bmp_streams) {
    loop.remove(fd);
    ::close(fd);
  }
  return 0;
}
