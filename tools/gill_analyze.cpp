// gill-analyze — inspect an MRT update archive: volume, per-VP/prefix
// breakdown, §4.2 redundancy fractions, and the Component #1 classification
// (what GILL would discard).
//
//   gill-analyze updates.mrt [--defs] [--component1]
#include <cstdio>
#include <map>
#include <memory>

#include "bgp/delta.hpp"
#include "cli_util.hpp"
#include "mrt/mrt.hpp"
#include "redundancy/component1.hpp"
#include "redundancy/definitions.hpp"

int main(int argc, char** argv) {
  using namespace gill;
  const cli::Args args(argc, argv);
  if (args.positionals().empty() || args.has("help")) {
    cli::usage("usage: gill-analyze <updates.mrt> [--defs] [--component1]\n"
               "                    [--metrics <path|->]\n");
  }
  auto& registry = metrics::default_registry();
  auto& updates_read = registry.counter("gill_analyze_updates_read_total",
                                        "Updates read from the archive");
  auto& withdrawals_read = registry.counter(
      "gill_analyze_withdrawals_read_total", "Withdrawals among them");
  auto run_timer = std::make_unique<metrics::Timer>(registry.histogram(
      "gill_analyze_run_duration_us", "Wall-clock microseconds per run"));
  const auto stream = mrt::read_stream(args.positionals()[0]);
  if (!stream) {
    std::fprintf(stderr, "error: cannot read %s\n",
                 args.positionals()[0].c_str());
    return 1;
  }

  const auto vps = stream->vps();
  const auto prefixes = stream->prefixes();
  std::size_t withdrawals = 0;
  bgp::Timestamp first = 0, last = 0;
  std::map<bgp::VpId, std::size_t> per_vp;
  for (const auto& update : *stream) {
    if (update.withdrawal) ++withdrawals;
    if (first == 0 || update.time < first) first = update.time;
    last = std::max(last, update.time);
    ++per_vp[update.vp];
  }
  std::printf("%zu updates (%zu withdrawals), %zu VPs, %zu prefixes, "
              "window [%lld, %lld]\n",
              stream->size(), withdrawals, vps.size(), prefixes.size(),
              static_cast<long long>(first), static_cast<long long>(last));
  updates_read.inc(stream->size());
  withdrawals_read.inc(withdrawals);

  // Busiest VPs.
  std::vector<std::pair<std::size_t, bgp::VpId>> ranked;
  for (const auto& [vp, count] : per_vp) ranked.emplace_back(count, vp);
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("busiest VPs:");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, ranked.size()); ++i) {
    std::printf(" vp%u(%zu)", ranked[i].second, ranked[i].first);
  }
  std::printf("\n");

  if (args.has("defs")) {
    const auto annotated = bgp::DeltaTracker::annotate_stream(*stream);
    const red::RedundancyAnalyzer analyzer(annotated);
    std::printf("redundant updates: Def.1 %.1f%%  Def.2 %.1f%%  Def.3 "
                "%.1f%%\n",
                analyzer.redundant_update_fraction(red::Definition::kDef1) *
                    100.0,
                analyzer.redundant_update_fraction(red::Definition::kDef2) *
                    100.0,
                analyzer.redundant_update_fraction(red::Definition::kDef3) *
                    100.0);
    std::printf("redundant VPs (>90%% rule): Def.1 %.1f%%  Def.2 %.1f%%  "
                "Def.3 %.1f%%\n",
                analyzer.redundant_vp_fraction(red::Definition::kDef1) * 100.0,
                analyzer.redundant_vp_fraction(red::Definition::kDef2) * 100.0,
                analyzer.redundant_vp_fraction(red::Definition::kDef3) *
                    100.0);
  }

  if (args.has("component1")) {
    const auto result = red::find_redundant_updates(*stream);
    std::printf("Component #1: |U|/|V| = %.3f (mean RP %.3f); %zu redundant "
                "(vp, prefix) pairs of %zu\n",
                result.retained_fraction(), result.mean_rp,
                result.redundant.size(),
                result.redundant.size() + result.nonredundant.size());
  }
  run_timer.reset();  // observe the run duration before the dump
  if (args.has("metrics") && !cli::dump_metrics(args.get("metrics", "-"))) {
    return 1;
  }
  return 0;
}
