// Deterministic fault injection for BGP sessions: a FaultyTransport
// decorates the in-memory Transport and perturbs traffic at message
// granularity (both endpoints write exactly one encoded message per call).
// Peering with thousands of VPs over the public Internet means flaky TCP
// sessions are the norm, not the exception (§8/§9); this module lets the
// chaos tests reproduce that world under a fixed seed.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "daemon/daemon.hpp"

namespace gill::daemon {

/// Per-message fault probabilities in [0, 1]. Faults compose: a message can
/// be both truncated and corrupted; a reset wins over everything else.
struct FaultProfile {
  double corrupt_rate = 0.0;    // flip 1-4 random bytes
  double truncate_rate = 0.0;   // cut the message short
  double duplicate_rate = 0.0;  // deliver the message twice
  double reorder_rate = 0.0;    // hold the message back one slot
  double drop_rate = 0.0;       // silently discard the message
  double reset_rate = 0.0;      // tear the whole connection down
  std::uint64_t seed = 0;
};

struct FaultStats {
  std::size_t delivered = 0;       // messages that reached a queue
  std::size_t corrupted = 0;
  std::size_t truncated = 0;
  std::size_t duplicated = 0;
  std::size_t reordered = 0;
  std::size_t dropped = 0;
  std::size_t resets = 0;
  std::size_t lost_disconnected = 0;  // writes into a dead connection
};

/// Transport decorator injecting seeded faults on every write. Endpoints
/// are oblivious: corruption surfaces as decode errors, truncation as
/// resynchronization, resets as a new transport epoch. Subclasses (e.g. the
/// harness ShapedTransport) may layer timing models on top of the faults.
class FaultyTransport : public Transport {
 public:
  explicit FaultyTransport(FaultProfile profile)
      : profile_(profile), rng_(profile.seed) {}

  void write_to_daemon(std::span<const std::uint8_t> message) override {
    deliver(to_daemon, held_to_daemon_, message);
  }
  void write_to_peer(std::span<const std::uint8_t> message) override {
    deliver(to_peer, held_to_peer_, message);
  }
  void reconnect() override {
    held_to_daemon_.clear();
    held_to_peer_.clear();
    Transport::reconnect();
  }

  const FaultStats& fault_stats() const noexcept { return stats_; }
  /// Live-adjusts the fault rates (e.g. a calm-down phase after a chaos
  /// run). The RNG stream continues; determinism under a seed is kept.
  void set_profile(const FaultProfile& profile) {
    const auto seed = profile_.seed;
    profile_ = profile;
    profile_.seed = seed;
  }

 private:
  void deliver(ByteQueue& queue, std::vector<std::uint8_t>& held,
               std::span<const std::uint8_t> message);
  double roll() { return uniform_(rng_); }

  FaultProfile profile_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
  FaultStats stats_;
  // One held-back message per direction (reordering buffer).
  std::vector<std::uint8_t> held_to_daemon_;
  std::vector<std::uint8_t> held_to_peer_;
};

}  // namespace gill::daemon
