#include "daemon/bmp_ingest.hpp"

namespace gill::daemon {

namespace {
metrics::Labels bmp_labels(VpId vp) { return {{"vp", std::to_string(vp)}}; }
}  // namespace

BmpCounters::BmpCounters(metrics::Registry& registry, VpId vp)
    : messages(registry.counter("gill_bmp_messages_total",
                                "BMP messages decoded", bmp_labels(vp))),
      route_monitoring(registry.counter("gill_bmp_route_monitoring_total",
                                        "BMP Route Monitoring messages",
                                        bmp_labels(vp))),
      peer_events(registry.counter("gill_bmp_peer_events_total",
                                   "BMP Peer Up/Down events",
                                   bmp_labels(vp))),
      updates_received(registry.counter(
          "gill_bmp_updates_received_total",
          "Per-prefix announcements/withdrawals unwrapped", bmp_labels(vp))),
      updates_filtered(registry.counter(
          "gill_bmp_updates_filtered_total",
          "Updates discarded by the filter table", bmp_labels(vp))),
      updates_stored(registry.counter("gill_bmp_updates_stored_total",
                                      "Updates written to the MRT archive",
                                      bmp_labels(vp))),
      garbage_bytes(registry.counter("gill_bmp_garbage_bytes_total",
                                     "Undecodable bytes skipped",
                                     bmp_labels(vp))) {}

BmpIngestStats BmpIngest::stats() const noexcept {
  BmpIngestStats stats;
  stats.messages = counters_.messages.value();
  stats.route_monitoring = counters_.route_monitoring.value();
  stats.peer_events = counters_.peer_events.value();
  stats.updates_received = counters_.updates_received.value();
  stats.updates_filtered = counters_.updates_filtered.value();
  stats.updates_stored = counters_.updates_stored.value();
  stats.garbage_bytes = counters_.garbage_bytes.value();
  return stats;
}

void BmpIngest::ingest(const wire::BmpRouteMonitoring& monitoring,
                       Timestamp now) {
  const Timestamp when = monitoring.peer.timestamp_sec != 0
                             ? static_cast<Timestamp>(
                                   monitoring.peer.timestamp_sec)
                             : now;
  auto process = [&](Update update) {
    counters_.updates_received.inc();
    if (mirror_) mirror_(update);
    if (filters_ && !filters_->accept(update)) {
      counters_.updates_filtered.inc();
      return;
    }
    if (store_) {
      store_->store(update);
      counters_.updates_stored.inc();
    }
  };

  const auto& message = monitoring.update;
  auto withdrawal = [&](const net::Prefix& prefix) {
    Update update;
    update.vp = vp_;
    update.time = when;
    update.prefix = prefix;
    update.withdrawal = true;
    process(std::move(update));
  };
  auto announcement = [&](const net::Prefix& prefix) {
    Update update;
    update.vp = vp_;
    update.time = when;
    update.prefix = prefix;
    update.path = message.path;
    update.communities = message.communities;
    process(std::move(update));
  };
  for (const auto& prefix : message.withdrawn) withdrawal(prefix);
  for (const auto& prefix : message.withdrawn_v6) withdrawal(prefix);
  for (const auto& prefix : message.nlri) announcement(prefix);
  for (const auto& prefix : message.nlri_v6) announcement(prefix);
}

void BmpIngest::feed(std::span<const std::uint8_t> data, Timestamp now) {
  pending_.insert(pending_.end(), data.begin(), data.end());
  std::size_t offset = 0;
  while (offset < pending_.size()) {
    std::size_t consumed = 0;
    const auto message = wire::decode_bmp(
        std::span(pending_.data() + offset, pending_.size() - offset),
        consumed);
    if (!message) {
      if (consumed == 0) break;  // incomplete
      counters_.garbage_bytes.inc(consumed);
      offset += consumed;
      continue;
    }
    offset += consumed;
    counters_.messages.inc();
    if (const auto* monitoring =
            std::get_if<wire::BmpRouteMonitoring>(&*message)) {
      counters_.route_monitoring.inc();
      ingest(*monitoring, now);
    } else if (std::holds_alternative<wire::BmpPeerUp>(*message) ||
               std::holds_alternative<wire::BmpPeerDown>(*message)) {
      counters_.peer_events.inc();
    }
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(offset));
}

}  // namespace gill::daemon
