#include "daemon/bmp_ingest.hpp"

namespace gill::daemon {

void BmpIngest::ingest(const wire::BmpRouteMonitoring& monitoring,
                       Timestamp now) {
  const Timestamp when = monitoring.peer.timestamp_sec != 0
                             ? static_cast<Timestamp>(
                                   monitoring.peer.timestamp_sec)
                             : now;
  auto process = [&](Update update) {
    ++stats_.updates_received;
    if (mirror_) mirror_(update);
    if (filters_ && !filters_->accept(update)) {
      ++stats_.updates_filtered;
      return;
    }
    if (store_) {
      store_->store(update);
      ++stats_.updates_stored;
    }
  };

  const auto& message = monitoring.update;
  auto withdrawal = [&](const net::Prefix& prefix) {
    Update update;
    update.vp = vp_;
    update.time = when;
    update.prefix = prefix;
    update.withdrawal = true;
    process(std::move(update));
  };
  auto announcement = [&](const net::Prefix& prefix) {
    Update update;
    update.vp = vp_;
    update.time = when;
    update.prefix = prefix;
    update.path = message.path;
    update.communities = message.communities;
    process(std::move(update));
  };
  for (const auto& prefix : message.withdrawn) withdrawal(prefix);
  for (const auto& prefix : message.withdrawn_v6) withdrawal(prefix);
  for (const auto& prefix : message.nlri) announcement(prefix);
  for (const auto& prefix : message.nlri_v6) announcement(prefix);
}

void BmpIngest::feed(std::span<const std::uint8_t> data, Timestamp now) {
  pending_.insert(pending_.end(), data.begin(), data.end());
  std::size_t offset = 0;
  while (offset < pending_.size()) {
    std::size_t consumed = 0;
    const auto message = wire::decode_bmp(
        std::span(pending_.data() + offset, pending_.size() - offset),
        consumed);
    if (!message) {
      if (consumed == 0) break;  // incomplete
      stats_.garbage_bytes += consumed;
      offset += consumed;
      continue;
    }
    offset += consumed;
    ++stats_.messages;
    if (const auto* monitoring =
            std::get_if<wire::BmpRouteMonitoring>(&*message)) {
      ++stats_.route_monitoring;
      ingest(*monitoring, now);
    } else if (std::holds_alternative<wire::BmpPeerUp>(*message) ||
               std::holds_alternative<wire::BmpPeerDown>(*message)) {
      ++stats_.peer_events;
    }
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(offset));
}

}  // namespace gill::daemon
