// The custom BGP daemon of §8 (C in the paper, C++ here): one daemon
// instance peers with exactly one BGP router, decodes RFC 4271 messages,
// applies GILL's filters to incoming updates, and stores what survives in
// the MRT archive. An in-memory byte transport makes sessions fully
// testable and lets the fake-peer load experiments of Table 1 run without
// a network; net::TcpTransport carries the same byte stream over a real
// socket for live peering (gill_collectord).
//
// Sessions are restartable: a torn-down daemon re-enters Idle, waits out an
// exponential backoff (RetryPolicy) and re-initiates the handshake, clearing
// its per-session RIB so the peer's replay repopulates it. Faults are
// injected below this layer by FaultyTransport (faults.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <random>
#include <span>
#include <vector>

#include "bgp/rib.hpp"
#include "filters/filters.hpp"
#include "metrics/metrics.hpp"
#include "mrt/mrt.hpp"
#include "wire/messages.hpp"

namespace gill::daemon {

using bgp::Timestamp;
using bgp::Update;
using bgp::VpId;

/// One direction of an in-memory byte pipe: a contiguous buffer with a head
/// index (ring-like), so the hot ingest path appends and drains in bulk
/// instead of copying byte by byte through a deque.
class ByteQueue {
 public:
  void write(std::span<const std::uint8_t> data);
  /// Drains up to `max` bytes into a contiguous vector.
  std::vector<std::uint8_t> read(std::size_t max = SIZE_MAX);
  /// Zero-copy view of every unread byte (valid until the next write).
  /// peek + consume is the partial-drain path socket senders need: a short
  /// send() keeps the unsent tail queued without copying it back.
  std::span<const std::uint8_t> peek() const noexcept {
    return {buffer_.data() + head_, size()};
  }
  /// Discards the first `n` unread bytes (clamped to size()).
  void consume(std::size_t n) noexcept;
  std::size_t size() const noexcept { return buffer_.size() - head_; }
  bool empty() const noexcept { return head_ == buffer_.size(); }
  void clear() noexcept {
    buffer_.clear();
    head_ = 0;
  }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t head_ = 0;  // first unread byte
};

/// A duplex in-memory transport. Endpoint A is the daemon, B the peer.
/// Writes go through virtual hooks so decorators (FaultyTransport) can
/// intercept at message granularity — both endpoints write exactly one
/// encoded message per call. The connection can drop like a TCP reset:
/// while down, writes are discarded and `epoch()` tells endpoints to throw
/// away half-parsed buffers. net::TcpTransport subclasses this to carry
/// one side of the pipe over a real socket (the unused direction's queue
/// becomes the send backlog).
struct Transport {
  Transport() = default;
  virtual ~Transport() = default;

  ByteQueue to_daemon;
  ByteQueue to_peer;

  virtual void write_to_daemon(std::span<const std::uint8_t> message) {
    if (connected_) to_daemon.write(message);
  }
  virtual void write_to_peer(std::span<const std::uint8_t> message) {
    if (connected_) to_peer.write(message);
  }

  bool connected() const noexcept { return connected_; }
  /// Bumped on every disconnect; endpoints that observe a new epoch must
  /// drop any partially-received bytes.
  std::uint64_t epoch() const noexcept { return epoch_; }

  /// A TCP reset: both in-flight directions are lost. Virtual so a real
  /// socket transport (net::TcpTransport) can close its fd when an
  /// endpoint tears the session down.
  virtual void disconnect() {
    connected_ = false;
    ++epoch_;
    to_daemon.clear();
    to_peer.clear();
  }
  /// Re-opens the pipe (a fresh TCP connection).
  virtual void reconnect() { connected_ = true; }

 private:
  bool connected_ = true;
  std::uint64_t epoch_ = 0;
};

/// RFC 4271 session states (simplified: no TCP layer, so Connect/Active
/// collapse into kConnect).
enum class SessionState : std::uint8_t {
  kIdle,
  kConnect,
  kOpenSent,
  kOpenConfirm,
  kEstablished,
};

std::string_view to_string(SessionState state) noexcept;

/// Exponential backoff with deterministic jitter for session re-initiation.
/// `delay(attempt)` is a pure function of the policy and the attempt index,
/// so a reconnect schedule is exactly reproducible under a fixed seed.
struct RetryPolicy {
  Timestamp base = 1;        // first retry delay (seconds)
  Timestamp cap = 64;        // backoff ceiling
  double multiplier = 2.0;   // geometric growth per attempt
  double jitter = 0.25;      // subtract up to this fraction, seeded
  std::uint64_t jitter_seed = 0;

  /// Delay before reconnect attempt `attempt` (0-based), in
  /// [raw * (1 - jitter), raw] where raw = min(cap, base * multiplier^n).
  Timestamp delay(std::size_t attempt) const;
};

/// RFC 4724 graceful-restart policy for the collector's (helper) side of a
/// session. When enabled and the peer also advertises the capability, a
/// session drop retains the RIB as *stale* instead of purging it: entries
/// the peer re-advertises before its End-of-RIB are refreshed in place,
/// entries it does not are swept as synthetic withdrawals, and the whole
/// stale set is flushed if the peer stays away past the restart window.
/// A flap therefore costs a delta, not a full RIB replay, and mirrors /
/// filters / storage see no spurious withdraw storm.
struct GracefulRestartConfig {
  bool enabled = true;
  /// Restart time advertised in our OPEN (12-bit wire field, seconds).
  std::uint16_t restart_time = 120;
  /// Upper bound on stale-route retention, regardless of the restart time
  /// the peer advertised.
  Timestamp max_stale_time = 120;
};

/// The in-memory MRT sink shared by the daemons (the on-disk counterpart
/// is archive::SegmentWriter; both implement mrt::Sink).
class MrtStore : public mrt::Sink {
 public:
  void store(const Update& update) override { writer_.write_update(update); }
  void store_rib_entry(const Update& entry) override {
    writer_.write_rib_entry(entry);
  }
  std::size_t stored() const noexcept { return writer_.record_count(); }
  const mrt::Writer& writer() const noexcept { return writer_; }
  bool save(const std::string& path) const { return writer_.save(path); }

 private:
  mrt::Writer writer_;
};

/// A value snapshot of one session's counters, read from the metric
/// registry by BgpDaemon::stats(). This is a *view*: the authoritative
/// state lives in registry counters (gill_daemon_*_total{vp=...}) that the
/// daemon increments on the hot path; nothing mutates this struct.
struct DaemonStats {
  std::size_t messages_received = 0;
  std::size_t updates_received = 0;   // individual prefix announcements
  std::size_t updates_filtered = 0;   // discarded by the filter table
  std::size_t updates_stored = 0;
  std::size_t garbage_bytes = 0;      // resynchronized bytes
  std::size_t notifications_sent = 0;
  std::size_t decode_errors = 0;      // malformed messages / garbage runs
  std::size_t resyncs = 0;            // RIB cleared for replay on reconnect
  std::size_t reconnects = 0;         // OPENs re-sent after a teardown
  std::size_t keepalives_sent = 0;    // generated by tick()
  // RFC 4724 graceful restart (gill_gr_*).
  std::size_t gr_negotiated = 0;      // sessions established with GR agreed
  std::size_t eor_sent = 0;           // End-of-RIB markers we sent
  std::size_t eor_received = 0;       // End-of-RIB markers the peer sent
  std::size_t stale_retained = 0;     // routes kept stale at teardown
  std::size_t stale_refreshed = 0;    // identical re-advertisements suppressed
  std::size_t stale_swept = 0;        // not re-advertised, withdrawn at EoR
  std::size_t stale_expired = 0;      // flushed when the restart window closed
};

/// Registry-backed instruments for one peering session, resolved ONCE at
/// construction (labeled {vp="..."}) so every hot-path increment is a
/// single relaxed atomic add — no per-event name/label lookups.
struct SessionCounters {
  SessionCounters(metrics::Registry& registry, VpId vp);

  metrics::Counter& messages_received;
  metrics::Counter& updates_received;
  metrics::Counter& updates_filtered;
  metrics::Counter& updates_stored;
  metrics::Counter& garbage_bytes;
  metrics::Counter& notifications_sent;
  metrics::Counter& resyncs;
  metrics::Counter& reconnects;
  metrics::Counter& keepalives_sent;
  metrics::Counter& gr_negotiated;
  metrics::Counter& eor_sent;
  metrics::Counter& eor_received;
  metrics::Counter& stale_retained;
  metrics::Counter& stale_refreshed;
  metrics::Counter& stale_swept;
  metrics::Counter& stale_expired;
  metrics::Histogram& message_bytes;  // wire size of each decoded message
};

/// One BGP daemon instance (one peering session).
class BgpDaemon {
 public:
  /// `filters` and `store` may be null (no filtering / no storage).
  /// `registry` is where the session's counters are registered (labeled
  /// {vp="..."}); when null the daemon owns a private registry, so
  /// stand-alone sessions stay isolated from each other.
  BgpDaemon(VpId vp, bgp::AsNumber local_as, Transport& transport,
            const filt::FilterTable* filters, MrtStore* store,
            metrics::Registry* registry = nullptr);

  /// Initiates the session (sends OPEN, enters OpenSent).
  void start(Timestamp now);

  /// Processes pending bytes from the peer; `now` stamps stored updates.
  void poll(Timestamp now);

  /// Timer tick: expires the hold timer, generates keepalives, and — when a
  /// retry policy is armed — re-initiates torn-down sessions after backoff.
  void tick(Timestamp now);

  /// Arms automatic session re-initiation: every teardown (hold expiry,
  /// NOTIFICATION, FSM error, transport reset) schedules a reconnect after
  /// `policy.delay(attempt)`. Without a policy the session is single-shot.
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  bool auto_reconnect() const noexcept { return retry_.has_value(); }

  /// RFC 4724 policy (helper mode). Takes effect on the next OPEN we send;
  /// GR is *negotiated* only when the peer's OPEN also carries the
  /// capability, so sessions with plain peers behave exactly as before
  /// (full purge + resync on reconnect).
  void set_graceful_restart(const GracefulRestartConfig& gr) { gr_ = gr; }
  /// True while the current (or most recent) Established session agreed GR.
  bool gr_negotiated() const noexcept { return gr_negotiated_; }
  /// True between a GR teardown and the resync sweep (stale routes held).
  bool gr_syncing() const noexcept { return gr_syncing_; }
  /// When stale routes are held, the time they get flushed; 0 otherwise.
  Timestamp stale_deadline() const noexcept { return stale_deadline_; }
  /// When a reconnect is pending, the time it fires; 0 otherwise.
  Timestamp next_reconnect_at() const noexcept { return reconnect_at_; }

  SessionState state() const noexcept { return state_; }
  /// A consistent value snapshot of the session counters (reads the
  /// registry; the returned struct is a copy, never live state).
  DaemonStats stats() const noexcept;
  /// The registry holding this session's counters.
  metrics::Registry& metrics() const noexcept { return *registry_; }
  bgp::AsNumber peer_as() const noexcept { return peer_as_; }

  /// The last NOTIFICATION this daemon sent (teardown code/subcode), if
  /// any. The transport closes right after the send, so this is the only
  /// place the cause of death stays observable.
  const std::optional<wire::NotificationMessage>& last_notification_sent()
      const noexcept {
    return last_notification_;
  }

  /// Pre-filter tap used by the orchestrator's temporary mirroring
  /// (Fig. 9): sees every decoded update before the filters run.
  void set_mirror(std::function<void(const Update&)> mirror) {
    mirror_ = std::move(mirror);
  }

  /// Second storage destination, written in addition to the MrtStore:
  /// the collector points every daemon at its on-disk archive writer, so
  /// acknowledged updates and RIB snapshots land in rotated segments.
  void set_archive(mrt::Sink* archive) { archive_ = archive; }

  /// §8: "store either RIBs every eight hours or every update". Enables
  /// periodic RIB snapshots: the daemon tracks the session's table and
  /// tick() writes a TABLE_DUMP-style snapshot every `interval` seconds.
  void enable_rib_dumps(Timestamp interval) { rib_dump_interval_ = interval; }
  const bgp::Rib& rib() const noexcept { return rib_; }
  std::size_t rib_dumps_written() const noexcept { return rib_dumps_; }

  /// Overload degraded mode: while set, tick() skips periodic RIB
  /// snapshots (they re-arm as soon as the platform recovers).
  void set_defer_rib_dumps(bool defer) { defer_rib_dumps_ = defer; }

 private:
  void send(const wire::Message& message);
  wire::OpenMessage make_open() const;
  void handle(const wire::Message& message, Timestamp now);
  /// Tears the session down. When `notify` is set a NOTIFICATION with
  /// `code`/`subcode` is sent first (pointless on a dead transport, where
  /// the write is silently dropped). Schedules a reconnect if armed.
  void teardown(Timestamp now, bool notify, std::uint8_t code,
                std::uint8_t subcode);
  void reconnect_now(Timestamp now);
  void ingest_update(const wire::UpdateMessage& update, Timestamp now);
  /// The shared per-update path: mirror, RIB, filters, storage. Synthetic
  /// updates (stale-route sweeps) skip the updates_received counter — they
  /// were never on the wire.
  void process_update(Update update, bool synthetic);
  /// Withdraws every still-stale RIB entry through process_update and ends
  /// the resync window; `counter` says why (swept at EoR vs. expired).
  void flush_stale(Timestamp now, metrics::Counter& counter);
  /// Bumps gill_daemon_decode_errors_total{vp=...,kind=...}; the per-kind
  /// children are resolved lazily (errors are off the hot path).
  void count_decode_error(wire::DecodeError error);

  /// Number of wire::DecodeError enumerators (the kind-label cardinality).
  static constexpr std::size_t kDecodeErrorKinds = 8;

  VpId vp_;
  bgp::AsNumber local_as_;
  Transport* transport_;
  const filt::FilterTable* filters_;
  MrtStore* store_;
  mrt::Sink* archive_ = nullptr;
  std::unique_ptr<metrics::Registry> own_registry_;  // when none was supplied
  metrics::Registry* registry_;
  SessionCounters counters_;
  std::array<metrics::Counter*, kDecodeErrorKinds> decode_error_counters_{};
  SessionState state_ = SessionState::kIdle;
  bgp::AsNumber peer_as_ = 0;
  std::uint16_t hold_time_ = 90;
  Timestamp last_heard_ = 0;
  Timestamp last_keepalive_ = 0;
  std::vector<std::uint8_t> pending_;
  bool reset_requested_ = false;
  bool in_garbage_run_ = false;
  std::function<void(const Update&)> mirror_;
  bgp::Rib rib_;
  Timestamp rib_dump_interval_ = 0;  // 0 = disabled
  Timestamp last_rib_dump_ = 0;
  std::size_t rib_dumps_ = 0;
  bool defer_rib_dumps_ = false;
  // RFC 4724 graceful restart (helper mode).
  GracefulRestartConfig gr_;
  bool peer_gr_enabled_ = false;       // peer's OPEN carried capability 64
  std::uint16_t peer_gr_restart_time_ = 0;
  bool gr_negotiated_ = false;         // both sides agreed, this session
  bool gr_syncing_ = false;            // stale routes held, awaiting EoR
  Timestamp stale_deadline_ = 0;
  // Reconnect FSM bookkeeping.
  std::optional<RetryPolicy> retry_;
  std::size_t attempt_ = 0;          // consecutive failed sessions
  Timestamp reconnect_at_ = 0;       // 0 = no reconnect pending
  bool ever_established_ = false;
  std::uint64_t seen_epoch_ = 0;
  std::optional<wire::NotificationMessage> last_notification_;
};

/// A scripted remote router for tests and load generation: completes the
/// handshake and replays an update stream onto the wire. Survives
/// connection resets: a new transport epoch clears its half-parsed buffer
/// and it re-answers the daemon's next OPEN.
class FakePeer {
 public:
  FakePeer(bgp::AsNumber as, Transport& transport)
      : as_(as), transport_(&transport), seen_epoch_(transport.epoch()) {}

  /// Responds to daemon messages (handshake). Call after daemon polls.
  void poll();

  /// Sends one BGP UPDATE for `update` (announcement or withdrawal).
  void send_update(const Update& update);

  /// Sends a burst of `count` synthetic updates for distinct prefixes.
  void send_synthetic_burst(std::size_t count, std::uint32_t prefix_base);

  /// Refreshes the daemon's hold timer.
  void send_keepalive();

  /// Advertises RFC 4724 GR in this peer's OPEN replies; `restarting` sets
  /// the Restart State flag (the peer claims it just came back).
  void enable_graceful_restart(std::uint16_t restart_time = 120,
                               bool restarting = false) {
    gr_enabled_ = true;
    gr_restart_time_ = restart_time;
    gr_restarting_ = restarting;
  }

  /// Sends the RFC 4724 End-of-RIB marker (a minimal empty UPDATE).
  void send_end_of_rib();

  bool established() const noexcept { return established_; }

 private:
  void send(const wire::Message& message);

  bgp::AsNumber as_;
  Transport* transport_;
  bool established_ = false;
  bool gr_enabled_ = false;
  bool gr_restarting_ = false;
  std::uint16_t gr_restart_time_ = 120;
  std::vector<std::uint8_t> pending_;
  std::uint64_t seen_epoch_ = 0;
};

/// Table 1 capacity model: a single CPU processes updates at measured
/// per-stage costs; offered load beyond capacity is lost. Defaults are
/// calibrated from this repository's micro-benchmarks (decode+filter is
/// cheap; the disk write dominates, as §8 observes).
struct CapacityModel {
  double decode_cost_us = 1.0;   // wire decode per update
  double filter_cost_us = 0.5;   // hash-table filter lookup
  double store_cost_us = 19.5;   // MRT encode + disk write
  double cpu_budget_us_per_s = 1e6;  // one core

  /// Fraction of updates lost given `peers` sessions each sending
  /// `updates_per_hour`, with filters discarding `match_fraction` of the
  /// updates before the store stage (0 when filters are off).
  double loss_fraction(std::size_t peers, double updates_per_hour,
                       bool filters_on, double match_fraction) const;
};

}  // namespace gill::daemon
