// The custom BGP daemon of §8 (C in the paper, C++ here): one daemon
// instance peers with exactly one BGP router, decodes RFC 4271 messages,
// applies GILL's filters to incoming updates, and stores what survives in
// the MRT archive. An in-memory byte transport replaces TCP so sessions are
// fully testable and the fake-peer load experiments of Table 1 run without
// a network.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <random>
#include <span>
#include <vector>

#include "bgp/rib.hpp"
#include "filters/filters.hpp"
#include "mrt/mrt.hpp"
#include "wire/messages.hpp"

namespace gill::daemon {

using bgp::Timestamp;
using bgp::Update;
using bgp::VpId;

/// One direction of an in-memory byte pipe.
class ByteQueue {
 public:
  void write(std::span<const std::uint8_t> data) {
    buffer_.insert(buffer_.end(), data.begin(), data.end());
  }
  /// Drains up to `max` bytes into a contiguous vector.
  std::vector<std::uint8_t> read(std::size_t max = SIZE_MAX);
  std::size_t size() const noexcept { return buffer_.size(); }
  bool empty() const noexcept { return buffer_.empty(); }

 private:
  std::deque<std::uint8_t> buffer_;
};

/// A duplex in-memory transport. Endpoint A is the daemon, B the peer.
struct Transport {
  ByteQueue to_daemon;
  ByteQueue to_peer;
};

/// RFC 4271 session states (simplified: no TCP layer, so Connect/Active
/// collapse into kConnect).
enum class SessionState : std::uint8_t {
  kIdle,
  kConnect,
  kOpenSent,
  kOpenConfirm,
  kEstablished,
};

std::string_view to_string(SessionState state) noexcept;

/// The MRT archive sink shared by the daemons.
class MrtStore {
 public:
  void store(const Update& update) { writer_.write_update(update); }
  void store_rib_entry(const Update& entry) { writer_.write_rib_entry(entry); }
  std::size_t stored() const noexcept { return writer_.record_count(); }
  const mrt::Writer& writer() const noexcept { return writer_; }
  bool save(const std::string& path) const { return writer_.save(path); }

 private:
  mrt::Writer writer_;
};

struct DaemonStats {
  std::size_t messages_received = 0;
  std::size_t updates_received = 0;   // individual prefix announcements
  std::size_t updates_filtered = 0;   // discarded by the filter table
  std::size_t updates_stored = 0;
  std::size_t garbage_bytes = 0;      // resynchronized bytes
  std::size_t notifications_sent = 0;
};

/// One BGP daemon instance (one peering session).
class BgpDaemon {
 public:
  /// `filters` and `store` may be null (no filtering / no storage).
  BgpDaemon(VpId vp, bgp::AsNumber local_as, Transport& transport,
            const filt::FilterTable* filters, MrtStore* store);

  /// Initiates the session (sends OPEN, enters OpenSent).
  void start(Timestamp now);

  /// Processes pending bytes from the peer; `now` stamps stored updates.
  void poll(Timestamp now);

  /// Timer tick: hold-time expiry tears the session down.
  void tick(Timestamp now);

  SessionState state() const noexcept { return state_; }
  const DaemonStats& stats() const noexcept { return stats_; }
  bgp::AsNumber peer_as() const noexcept { return peer_as_; }

  /// Pre-filter tap used by the orchestrator's temporary mirroring
  /// (Fig. 9): sees every decoded update before the filters run.
  void set_mirror(std::function<void(const Update&)> mirror) {
    mirror_ = std::move(mirror);
  }

  /// §8: "store either RIBs every eight hours or every update". Enables
  /// periodic RIB snapshots: the daemon tracks the session's table and
  /// tick() writes a TABLE_DUMP-style snapshot every `interval` seconds.
  void enable_rib_dumps(Timestamp interval) { rib_dump_interval_ = interval; }
  const bgp::Rib& rib() const noexcept { return rib_; }
  std::size_t rib_dumps_written() const noexcept { return rib_dumps_; }

 private:
  void send(const wire::Message& message);
  void handle(const wire::Message& message, Timestamp now);
  void reset(std::uint8_t code, std::uint8_t subcode);
  void ingest_update(const wire::UpdateMessage& update, Timestamp now);

  VpId vp_;
  bgp::AsNumber local_as_;
  Transport* transport_;
  const filt::FilterTable* filters_;
  MrtStore* store_;
  SessionState state_ = SessionState::kIdle;
  bgp::AsNumber peer_as_ = 0;
  std::uint16_t hold_time_ = 90;
  Timestamp last_heard_ = 0;
  DaemonStats stats_;
  std::vector<std::uint8_t> pending_;
  bool reset_requested_ = false;
  std::function<void(const Update&)> mirror_;
  bgp::Rib rib_;
  Timestamp rib_dump_interval_ = 0;  // 0 = disabled
  Timestamp last_rib_dump_ = 0;
  std::size_t rib_dumps_ = 0;
};

/// A scripted remote router for tests and load generation: completes the
/// handshake and replays an update stream onto the wire.
class FakePeer {
 public:
  FakePeer(bgp::AsNumber as, Transport& transport)
      : as_(as), transport_(&transport) {}

  /// Responds to daemon messages (handshake). Call after daemon polls.
  void poll();

  /// Sends one BGP UPDATE for `update` (announcement or withdrawal).
  void send_update(const Update& update);

  /// Sends a burst of `count` synthetic updates for distinct prefixes.
  void send_synthetic_burst(std::size_t count, std::uint32_t prefix_base);

  /// Refreshes the daemon's hold timer.
  void send_keepalive();

  bool established() const noexcept { return established_; }

 private:
  void send(const wire::Message& message);

  bgp::AsNumber as_;
  Transport* transport_;
  bool established_ = false;
  std::vector<std::uint8_t> pending_;
};

/// Table 1 capacity model: a single CPU processes updates at measured
/// per-stage costs; offered load beyond capacity is lost. Defaults are
/// calibrated from this repository's micro-benchmarks (decode+filter is
/// cheap; the disk write dominates, as §8 observes).
struct CapacityModel {
  double decode_cost_us = 1.0;   // wire decode per update
  double filter_cost_us = 0.5;   // hash-table filter lookup
  double store_cost_us = 19.5;   // MRT encode + disk write
  double cpu_budget_us_per_s = 1e6;  // one core

  /// Fraction of updates lost given `peers` sessions each sending
  /// `updates_per_hour`, with filters discarding `match_fraction` of the
  /// updates before the store stage (0 when filters are off).
  double loss_fraction(std::size_t peers, double updates_per_hour,
                       bool filters_on, double match_fraction) const;
};

}  // namespace gill::daemon
