// BMP ingestion adaptor (§14): lets a router feed GILL through the BGP
// Monitoring Protocol instead of a native peering session. Route
// Monitoring messages are unwrapped into stored updates and pushed through
// the same mirror -> filter -> store pipeline as the BGP daemon's.
#pragma once

#include <functional>

#include "daemon/daemon.hpp"
#include "wire/bmp.hpp"

namespace gill::daemon {

/// Value snapshot of one BMP stream's counters, read from the metric
/// registry by BmpIngest::stats() — same view contract as DaemonStats.
struct BmpIngestStats {
  std::size_t messages = 0;
  std::size_t route_monitoring = 0;
  std::size_t peer_events = 0;       // peer up/down
  std::size_t updates_received = 0;  // per-prefix announcements/withdrawals
  std::size_t updates_filtered = 0;
  std::size_t updates_stored = 0;
  std::size_t garbage_bytes = 0;
};

/// Registry-backed instruments for one BMP stream (gill_bmp_*{vp=...}),
/// resolved once at construction.
struct BmpCounters {
  BmpCounters(metrics::Registry& registry, VpId vp);

  metrics::Counter& messages;
  metrics::Counter& route_monitoring;
  metrics::Counter& peer_events;
  metrics::Counter& updates_received;
  metrics::Counter& updates_filtered;
  metrics::Counter& updates_stored;
  metrics::Counter& garbage_bytes;
};

/// Stateful decoder for one BMP byte stream.
class BmpIngest {
 public:
  /// `vp` identifies the monitored router; `filters`/`store` may be null.
  /// `registry` hosts the stream's counters; when null the ingest owns a
  /// private registry (isolated stand-alone use).
  BmpIngest(VpId vp, const filt::FilterTable* filters, MrtStore* store,
            metrics::Registry* registry = nullptr)
      : vp_(vp),
        filters_(filters),
        store_(store),
        own_registry_(registry ? nullptr
                               : std::make_unique<metrics::Registry>()),
        registry_(registry ? registry : own_registry_.get()),
        counters_(*registry_, vp) {}

  /// Feeds raw bytes; `now` stamps stored updates (BMP's per-peer
  /// timestamp is preferred when present).
  void feed(std::span<const std::uint8_t> data, Timestamp now);

  /// A consistent value snapshot read from the registry counters.
  BmpIngestStats stats() const noexcept;
  metrics::Registry& metrics() const noexcept { return *registry_; }

  /// Pre-filter tap (same contract as BgpDaemon::set_mirror).
  void set_mirror(std::function<void(const Update&)> mirror) {
    mirror_ = std::move(mirror);
  }

 private:
  void ingest(const wire::BmpRouteMonitoring& monitoring, Timestamp now);

  VpId vp_;
  const filt::FilterTable* filters_;
  MrtStore* store_;
  std::unique_ptr<metrics::Registry> own_registry_;
  metrics::Registry* registry_;
  BmpCounters counters_;
  std::vector<std::uint8_t> pending_;
  std::function<void(const Update&)> mirror_;
};

}  // namespace gill::daemon
