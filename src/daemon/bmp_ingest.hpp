// BMP ingestion adaptor (§14): lets a router feed GILL through the BGP
// Monitoring Protocol instead of a native peering session. Route
// Monitoring messages are unwrapped into stored updates and pushed through
// the same mirror -> filter -> store pipeline as the BGP daemon's.
#pragma once

#include <functional>

#include "daemon/daemon.hpp"
#include "wire/bmp.hpp"

namespace gill::daemon {

struct BmpIngestStats {
  std::size_t messages = 0;
  std::size_t route_monitoring = 0;
  std::size_t peer_events = 0;       // peer up/down
  std::size_t updates_received = 0;  // per-prefix announcements/withdrawals
  std::size_t updates_filtered = 0;
  std::size_t updates_stored = 0;
  std::size_t garbage_bytes = 0;
};

/// Stateful decoder for one BMP byte stream.
class BmpIngest {
 public:
  /// `vp` identifies the monitored router; `filters`/`store` may be null.
  BmpIngest(VpId vp, const filt::FilterTable* filters, MrtStore* store)
      : vp_(vp), filters_(filters), store_(store) {}

  /// Feeds raw bytes; `now` stamps stored updates (BMP's per-peer
  /// timestamp is preferred when present).
  void feed(std::span<const std::uint8_t> data, Timestamp now);

  const BmpIngestStats& stats() const noexcept { return stats_; }

  /// Pre-filter tap (same contract as BgpDaemon::set_mirror).
  void set_mirror(std::function<void(const Update&)> mirror) {
    mirror_ = std::move(mirror);
  }

 private:
  void ingest(const wire::BmpRouteMonitoring& monitoring, Timestamp now);

  VpId vp_;
  const filt::FilterTable* filters_;
  MrtStore* store_;
  BmpIngestStats stats_;
  std::vector<std::uint8_t> pending_;
  std::function<void(const Update&)> mirror_;
};

}  // namespace gill::daemon
