#include "daemon/faults.hpp"

namespace gill::daemon {

void FaultyTransport::deliver(ByteQueue& queue,
                              std::vector<std::uint8_t>& held,
                              std::span<const std::uint8_t> message) {
  if (!connected()) {
    ++stats_.lost_disconnected;
    return;
  }
  if (roll() < profile_.reset_rate) {
    ++stats_.resets;
    held_to_daemon_.clear();
    held_to_peer_.clear();
    disconnect();
    return;
  }
  if (roll() < profile_.drop_rate) {
    ++stats_.dropped;
    return;
  }

  std::vector<std::uint8_t> bytes(message.begin(), message.end());
  if (roll() < profile_.truncate_rate && bytes.size() > 1) {
    bytes.resize(1 + rng_() % (bytes.size() - 1));
    ++stats_.truncated;
  }
  if (roll() < profile_.corrupt_rate && !bytes.empty()) {
    const std::size_t flips = 1 + rng_() % 4;
    for (std::size_t i = 0; i < flips; ++i) {
      bytes[rng_() % bytes.size()] ^=
          static_cast<std::uint8_t>(1 + rng_() % 255);
    }
    ++stats_.corrupted;
  }
  const bool duplicate = roll() < profile_.duplicate_rate;
  if (roll() < profile_.reorder_rate && held.empty()) {
    // Hold this message back; it rides behind the next one in this
    // direction. A reset in between loses it, like any in-flight byte.
    held = std::move(bytes);
    ++stats_.reordered;
    return;
  }
  queue.write(bytes);
  ++stats_.delivered;
  if (duplicate) {
    queue.write(bytes);
    ++stats_.duplicated;
  }
  if (!held.empty()) {
    queue.write(held);
    held.clear();
    ++stats_.delivered;
  }
}

}  // namespace gill::daemon
