#include "daemon/daemon.hpp"

#include <algorithm>
#include <cmath>

namespace gill::daemon {

namespace {
/// Dead bytes at the front of a ByteQueue buffer are reclaimed once they
/// pass this size and dominate the buffer.
constexpr std::size_t kCompactThreshold = 4096;
}  // namespace

void ByteQueue::write(std::span<const std::uint8_t> data) {
  if (head_ > 0) {
    if (head_ == buffer_.size()) {
      buffer_.clear();
      head_ = 0;
    } else if (head_ >= kCompactThreshold && head_ * 2 >= buffer_.size()) {
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

std::vector<std::uint8_t> ByteQueue::read(std::size_t max) {
  const std::size_t n = std::min(max, size());
  const auto begin = buffer_.begin() + static_cast<std::ptrdiff_t>(head_);
  std::vector<std::uint8_t> out(begin, begin + static_cast<std::ptrdiff_t>(n));
  head_ += n;
  if (head_ == buffer_.size()) {
    buffer_.clear();
    head_ = 0;
  }
  return out;
}

std::string_view to_string(SessionState state) noexcept {
  switch (state) {
    case SessionState::kIdle: return "Idle";
    case SessionState::kConnect: return "Connect";
    case SessionState::kOpenSent: return "OpenSent";
    case SessionState::kOpenConfirm: return "OpenConfirm";
    case SessionState::kEstablished: return "Established";
  }
  return "?";
}

Timestamp RetryPolicy::delay(std::size_t attempt) const {
  double raw = static_cast<double>(base);
  for (std::size_t i = 0; i < attempt && raw < static_cast<double>(cap); ++i) {
    raw *= multiplier;
  }
  raw = std::min(raw, static_cast<double>(cap));
  // One independent draw per attempt index: the schedule is a pure function
  // of (policy, attempt), reproducible regardless of call order.
  std::mt19937_64 rng(jitter_seed ^ (0x9E3779B97F4A7C15ULL * (attempt + 1)));
  const double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
  const double jittered = raw * (1.0 - jitter * u);
  return std::max<Timestamp>(1, static_cast<Timestamp>(std::llround(jittered)));
}

BgpDaemon::BgpDaemon(VpId vp, bgp::AsNumber local_as, Transport& transport,
                     const filt::FilterTable* filters, MrtStore* store)
    : vp_(vp),
      local_as_(local_as),
      transport_(&transport),
      filters_(filters),
      store_(store),
      seen_epoch_(transport.epoch()) {}

void BgpDaemon::send(const wire::Message& message) {
  const auto bytes = wire::encode(message);
  transport_->write_to_peer(bytes);
}

void BgpDaemon::start(Timestamp now) {
  wire::OpenMessage open;
  open.as = local_as_;
  open.hold_time = hold_time_;
  open.bgp_id = 0x0A000001;
  send(open);
  state_ = SessionState::kOpenSent;
  last_heard_ = now;
  last_keepalive_ = now;
}

void BgpDaemon::teardown(Timestamp now, bool notify, std::uint8_t code,
                         std::uint8_t subcode) {
  if (notify && transport_->connected()) {
    send(wire::NotificationMessage{code, subcode});
    ++stats_.notifications_sent;
    last_notification_ = wire::NotificationMessage{code, subcode};
  }
  state_ = SessionState::kIdle;
  peer_as_ = 0;
  // Buffered bytes are dropped by poll() once it observes the teardown; they
  // cannot be cleared here because poll() may be iterating the buffer.
  reset_requested_ = true;
  in_garbage_run_ = false;
  // BGP closes the underlying connection after the NOTIFICATION; in-flight
  // bytes in both directions are lost.
  if (transport_->connected()) transport_->disconnect();
  seen_epoch_ = transport_->epoch();
  if (retry_) {
    reconnect_at_ = now + retry_->delay(attempt_);
    ++attempt_;
  }
}

void BgpDaemon::reconnect_now(Timestamp now) {
  if (!transport_->connected()) transport_->reconnect();
  seen_epoch_ = transport_->epoch();
  pending_.clear();
  reset_requested_ = false;
  in_garbage_run_ = false;
  // The old session's table is stale; the peer's replay repopulates it.
  if (ever_established_) ++stats_.resyncs;
  rib_ = bgp::Rib{};
  wire::OpenMessage open;
  open.as = local_as_;
  open.hold_time = hold_time_;
  open.bgp_id = 0x0A000001;
  send(open);
  state_ = SessionState::kOpenSent;
  last_heard_ = now;
  last_keepalive_ = now;
  reconnect_at_ = 0;
  ++stats_.reconnects;
}

void BgpDaemon::ingest_update(const wire::UpdateMessage& message,
                              Timestamp now) {
  auto process = [&](Update update) {
    ++stats_.updates_received;
    if (mirror_) mirror_(update);
    if (rib_dump_interval_ > 0) rib_.apply(update);
    if (filters_ && !filters_->accept(update)) {
      ++stats_.updates_filtered;
      return;
    }
    if (store_) {
      store_->store(update);
      ++stats_.updates_stored;
    }
  };

  for (const auto& prefix : message.withdrawn) {
    Update update;
    update.vp = vp_;
    update.time = now;
    update.prefix = prefix;
    update.withdrawal = true;
    process(std::move(update));
  }
  for (const auto& prefix : message.withdrawn_v6) {
    Update update;
    update.vp = vp_;
    update.time = now;
    update.prefix = prefix;
    update.withdrawal = true;
    process(std::move(update));
  }
  auto announce = [&](const net::Prefix& prefix) {
    Update update;
    update.vp = vp_;
    update.time = now;
    update.prefix = prefix;
    update.path = message.path;
    update.communities = message.communities;
    process(std::move(update));
  };
  for (const auto& prefix : message.nlri) announce(prefix);
  for (const auto& prefix : message.nlri_v6) announce(prefix);
}

void BgpDaemon::handle(const wire::Message& message, Timestamp now) {
  ++stats_.messages_received;
  last_heard_ = now;
  switch (wire::type_of(message)) {
    case wire::MessageType::kOpen: {
      if (state_ != SessionState::kOpenSent &&
          state_ != SessionState::kConnect) {
        teardown(now, true, 6, 0);  // FSM error
        return;
      }
      peer_as_ = std::get<wire::OpenMessage>(message).as;
      send(wire::KeepaliveMessage{});
      state_ = SessionState::kOpenConfirm;
      return;
    }
    case wire::MessageType::kKeepalive: {
      if (state_ == SessionState::kOpenConfirm) {
        state_ = SessionState::kEstablished;
        attempt_ = 0;  // a full session resets the backoff schedule
        ever_established_ = true;
        last_keepalive_ = now;
      }
      return;
    }
    case wire::MessageType::kUpdate: {
      if (state_ != SessionState::kEstablished) {
        teardown(now, true, 5, 0);  // FSM error: update before Established
        return;
      }
      ingest_update(std::get<wire::UpdateMessage>(message), now);
      return;
    }
    case wire::MessageType::kNotification: {
      teardown(now, false, 0, 0);  // peer closed the session
      return;
    }
  }
}

void BgpDaemon::poll(Timestamp now) {
  if (transport_->epoch() != seen_epoch_) {
    // The connection died under us (transport-level reset).
    seen_epoch_ = transport_->epoch();
    pending_.clear();
    in_garbage_run_ = false;
    if (state_ != SessionState::kIdle) teardown(now, false, 0, 0);
  }
  if (!transport_->connected()) {
    if (state_ != SessionState::kIdle) teardown(now, false, 0, 0);
    return;
  }
  if (state_ == SessionState::kIdle) {
    // No session: whatever the pipe carries belongs to no conversation.
    transport_->to_daemon.read();
    pending_.clear();
    reset_requested_ = false;
    return;
  }

  const auto incoming = transport_->to_daemon.read();
  pending_.insert(pending_.end(), incoming.begin(), incoming.end());

  std::size_t offset = 0;
  while (offset < pending_.size()) {
    std::size_t consumed = 0;
    wire::DecodeError error = wire::DecodeError::kNone;
    const auto message = wire::decode(
        std::span(pending_.data() + offset, pending_.size() - offset),
        consumed, error);
    if (message) {
      in_garbage_run_ = false;
      handle(*message, now);
      offset += consumed;
      if (reset_requested_) break;  // drop the rest of the buffer
    } else if (consumed > 0) {
      if (error == wire::DecodeError::kBadMarker ||
          error == wire::DecodeError::kBadLength) {
        stats_.garbage_bytes += consumed;
        // A contiguous garbage run counts as one decode error, however many
        // bytes the resynchronization walks over.
        if (!in_garbage_run_) {
          ++stats_.decode_errors;
          in_garbage_run_ = true;
        }
      } else {
        ++stats_.decode_errors;  // structurally invalid message, skipped whole
        in_garbage_run_ = false;
      }
      offset += consumed;
    } else {
      break;  // incomplete message: wait for more bytes
    }
  }
  if (reset_requested_) {
    pending_.clear();
    reset_requested_ = false;
  } else {
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(offset));
  }
}

void BgpDaemon::tick(Timestamp now) {
  if (transport_->epoch() != seen_epoch_) {
    seen_epoch_ = transport_->epoch();
    pending_.clear();
    in_garbage_run_ = false;
    if (state_ != SessionState::kIdle) teardown(now, false, 0, 0);
  } else if (!transport_->connected() && state_ != SessionState::kIdle) {
    teardown(now, false, 0, 0);
  }
  if (state_ != SessionState::kIdle && now - last_heard_ > hold_time_) {
    teardown(now, true, 4, 0);  // hold timer expired
  }
  if (state_ == SessionState::kEstablished) {
    // Keepalive generation (RFC 4271 suggests a third of the hold time).
    const Timestamp interval = std::max<Timestamp>(1, hold_time_ / 3);
    if (now - last_keepalive_ >= interval) {
      send(wire::KeepaliveMessage{});
      ++stats_.keepalives_sent;
      last_keepalive_ = now;
    }
  }
  if (state_ == SessionState::kIdle && retry_.has_value() &&
      reconnect_at_ != 0 && now >= reconnect_at_) {
    reconnect_now(now);
  }
  // Periodic RIB snapshot (§8): the current table, stamped `now`, written
  // as TABLE_DUMP-style records alongside the update records.
  if (rib_dump_interval_ > 0 && store_ != nullptr &&
      now - last_rib_dump_ >= rib_dump_interval_ && !rib_.empty()) {
    const auto snapshot = rib_.dump(vp_, now);
    for (const auto& entry : snapshot) store_->store_rib_entry(entry);
    last_rib_dump_ = now;
    ++rib_dumps_;
  }
}

void FakePeer::send(const wire::Message& message) {
  transport_->write_to_daemon(wire::encode(message));
}

void FakePeer::poll() {
  if (transport_->epoch() != seen_epoch_) {
    // The connection was reset: the half-parsed buffer belongs to a dead
    // conversation, and the session has to be re-established.
    seen_epoch_ = transport_->epoch();
    pending_.clear();
    established_ = false;
  }
  if (!transport_->connected()) return;
  const auto incoming = transport_->to_peer.read();
  pending_.insert(pending_.end(), incoming.begin(), incoming.end());
  std::size_t offset = 0;
  while (offset < pending_.size()) {
    std::size_t consumed = 0;
    const auto message = wire::decode(
        std::span(pending_.data() + offset, pending_.size() - offset),
        consumed);
    if (!message) {
      if (consumed == 0) break;
      offset += consumed;
      continue;
    }
    offset += consumed;
    switch (wire::type_of(*message)) {
      case wire::MessageType::kOpen: {
        wire::OpenMessage open;
        open.as = as_;
        open.bgp_id = 0x0A000002;
        send(open);
        send(wire::KeepaliveMessage{});
        break;
      }
      case wire::MessageType::kKeepalive:
        established_ = true;
        break;
      case wire::MessageType::kNotification:
        established_ = false;
        break;
      default:
        break;
    }
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(offset));
}

void FakePeer::send_keepalive() { send(wire::KeepaliveMessage{}); }

void FakePeer::send_update(const Update& update) {
  wire::UpdateMessage message;
  if (update.withdrawal) {
    if (update.prefix.family() == net::Family::v4) {
      message.withdrawn.push_back(update.prefix);
    } else {
      message.withdrawn_v6.push_back(update.prefix);
    }
  } else {
    if (update.prefix.family() == net::Family::v4) {
      message.nlri.push_back(update.prefix);
    } else {
      message.nlri_v6.push_back(update.prefix);
    }
    message.path = update.path;
    message.communities = update.communities;
    message.next_hop = 0x0A000002;
  }
  send(message);
}

void FakePeer::send_synthetic_burst(std::size_t count,
                                    std::uint32_t prefix_base) {
  for (std::size_t i = 0; i < count; ++i) {
    Update update;
    update.prefix = net::Prefix(
        net::IpAddress::v4(prefix_base + (static_cast<std::uint32_t>(i) << 8)),
        24);
    update.path = bgp::AsPath{as_, as_ + 1, as_ + 2};
    send_update(update);
  }
}

double CapacityModel::loss_fraction(std::size_t peers,
                                    double updates_per_hour, bool filters_on,
                                    double match_fraction) const {
  const double updates_per_second =
      static_cast<double>(peers) * updates_per_hour / 3600.0;
  const double matched = filters_on ? match_fraction : 0.0;
  const double per_update_cost =
      decode_cost_us + (filters_on ? filter_cost_us : 0.0) +
      (1.0 - matched) * store_cost_us;
  const double demand = updates_per_second * per_update_cost;
  if (demand <= cpu_budget_us_per_s) return 0.0;
  return 1.0 - cpu_budget_us_per_s / demand;
}

}  // namespace gill::daemon
