#include "daemon/daemon.hpp"

#include <algorithm>

namespace gill::daemon {

std::vector<std::uint8_t> ByteQueue::read(std::size_t max) {
  const std::size_t n = std::min(max, buffer_.size());
  std::vector<std::uint8_t> out(buffer_.begin(),
                                buffer_.begin() + static_cast<std::ptrdiff_t>(n));
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(n));
  return out;
}

std::string_view to_string(SessionState state) noexcept {
  switch (state) {
    case SessionState::kIdle: return "Idle";
    case SessionState::kConnect: return "Connect";
    case SessionState::kOpenSent: return "OpenSent";
    case SessionState::kOpenConfirm: return "OpenConfirm";
    case SessionState::kEstablished: return "Established";
  }
  return "?";
}

BgpDaemon::BgpDaemon(VpId vp, bgp::AsNumber local_as, Transport& transport,
                     const filt::FilterTable* filters, MrtStore* store)
    : vp_(vp),
      local_as_(local_as),
      transport_(&transport),
      filters_(filters),
      store_(store) {}

void BgpDaemon::send(const wire::Message& message) {
  const auto bytes = wire::encode(message);
  transport_->to_peer.write(bytes);
}

void BgpDaemon::start(Timestamp now) {
  wire::OpenMessage open;
  open.as = local_as_;
  open.hold_time = hold_time_;
  open.bgp_id = 0x0A000001;
  send(open);
  state_ = SessionState::kOpenSent;
  last_heard_ = now;
}

void BgpDaemon::reset(std::uint8_t code, std::uint8_t subcode) {
  send(wire::NotificationMessage{code, subcode});
  ++stats_.notifications_sent;
  state_ = SessionState::kIdle;
  peer_as_ = 0;
  // Buffered bytes are dropped by poll() once it observes the reset; they
  // cannot be cleared here because poll() is iterating the buffer.
  reset_requested_ = true;
}

void BgpDaemon::ingest_update(const wire::UpdateMessage& message,
                              Timestamp now) {
  auto process = [&](Update update) {
    ++stats_.updates_received;
    if (mirror_) mirror_(update);
    if (rib_dump_interval_ > 0) rib_.apply(update);
    if (filters_ && !filters_->accept(update)) {
      ++stats_.updates_filtered;
      return;
    }
    if (store_) {
      store_->store(update);
      ++stats_.updates_stored;
    }
  };

  for (const auto& prefix : message.withdrawn) {
    Update update;
    update.vp = vp_;
    update.time = now;
    update.prefix = prefix;
    update.withdrawal = true;
    process(std::move(update));
  }
  for (const auto& prefix : message.withdrawn_v6) {
    Update update;
    update.vp = vp_;
    update.time = now;
    update.prefix = prefix;
    update.withdrawal = true;
    process(std::move(update));
  }
  auto announce = [&](const net::Prefix& prefix) {
    Update update;
    update.vp = vp_;
    update.time = now;
    update.prefix = prefix;
    update.path = message.path;
    update.communities = message.communities;
    process(std::move(update));
  };
  for (const auto& prefix : message.nlri) announce(prefix);
  for (const auto& prefix : message.nlri_v6) announce(prefix);
}

void BgpDaemon::handle(const wire::Message& message, Timestamp now) {
  ++stats_.messages_received;
  last_heard_ = now;
  switch (wire::type_of(message)) {
    case wire::MessageType::kOpen: {
      if (state_ != SessionState::kOpenSent &&
          state_ != SessionState::kConnect) {
        reset(6, 0);  // FSM error
        return;
      }
      peer_as_ = std::get<wire::OpenMessage>(message).as;
      send(wire::KeepaliveMessage{});
      state_ = SessionState::kOpenConfirm;
      return;
    }
    case wire::MessageType::kKeepalive: {
      if (state_ == SessionState::kOpenConfirm) {
        state_ = SessionState::kEstablished;
      }
      return;
    }
    case wire::MessageType::kUpdate: {
      if (state_ != SessionState::kEstablished) {
        reset(5, 0);  // FSM error: update before Established
        return;
      }
      ingest_update(std::get<wire::UpdateMessage>(message), now);
      return;
    }
    case wire::MessageType::kNotification: {
      state_ = SessionState::kIdle;
      peer_as_ = 0;
      return;
    }
  }
}

void BgpDaemon::poll(Timestamp now) {
  const auto incoming = transport_->to_daemon.read();
  pending_.insert(pending_.end(), incoming.begin(), incoming.end());

  std::size_t offset = 0;
  while (offset < pending_.size()) {
    std::size_t consumed = 0;
    const auto message = wire::decode(
        std::span(pending_.data() + offset, pending_.size() - offset),
        consumed);
    if (message) {
      handle(*message, now);
      offset += consumed;
      if (reset_requested_) break;  // drop the rest of the buffer
    } else if (consumed > 0) {
      stats_.garbage_bytes += consumed;
      offset += consumed;
    } else {
      break;  // incomplete message: wait for more bytes
    }
  }
  if (reset_requested_) {
    pending_.clear();
    reset_requested_ = false;
  } else {
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(offset));
  }
}

void BgpDaemon::tick(Timestamp now) {
  if (state_ == SessionState::kEstablished ||
      state_ == SessionState::kOpenConfirm) {
    if (now - last_heard_ > hold_time_) {
      reset(4, 0);  // hold timer expired
    }
  }
  // Periodic RIB snapshot (§8): the current table, stamped `now`, written
  // as TABLE_DUMP-style records alongside the update records.
  if (rib_dump_interval_ > 0 && store_ != nullptr &&
      now - last_rib_dump_ >= rib_dump_interval_ && !rib_.empty()) {
    const auto snapshot = rib_.dump(vp_, now);
    for (const auto& entry : snapshot) store_->store_rib_entry(entry);
    last_rib_dump_ = now;
    ++rib_dumps_;
  }
}

void FakePeer::send(const wire::Message& message) {
  transport_->to_daemon.write(wire::encode(message));
}

void FakePeer::poll() {
  const auto incoming = transport_->to_peer.read();
  pending_.insert(pending_.end(), incoming.begin(), incoming.end());
  std::size_t offset = 0;
  while (offset < pending_.size()) {
    std::size_t consumed = 0;
    const auto message = wire::decode(
        std::span(pending_.data() + offset, pending_.size() - offset),
        consumed);
    if (!message) {
      if (consumed == 0) break;
      offset += consumed;
      continue;
    }
    offset += consumed;
    switch (wire::type_of(*message)) {
      case wire::MessageType::kOpen: {
        wire::OpenMessage open;
        open.as = as_;
        open.bgp_id = 0x0A000002;
        send(open);
        send(wire::KeepaliveMessage{});
        break;
      }
      case wire::MessageType::kKeepalive:
        established_ = true;
        break;
      default:
        break;
    }
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(offset));
}

void FakePeer::send_keepalive() { send(wire::KeepaliveMessage{}); }

void FakePeer::send_update(const Update& update) {
  wire::UpdateMessage message;
  if (update.withdrawal) {
    if (update.prefix.family() == net::Family::v4) {
      message.withdrawn.push_back(update.prefix);
    } else {
      message.withdrawn_v6.push_back(update.prefix);
    }
  } else {
    if (update.prefix.family() == net::Family::v4) {
      message.nlri.push_back(update.prefix);
    } else {
      message.nlri_v6.push_back(update.prefix);
    }
    message.path = update.path;
    message.communities = update.communities;
    message.next_hop = 0x0A000002;
  }
  send(message);
}

void FakePeer::send_synthetic_burst(std::size_t count,
                                    std::uint32_t prefix_base) {
  for (std::size_t i = 0; i < count; ++i) {
    Update update;
    update.prefix = net::Prefix(
        net::IpAddress::v4(prefix_base + (static_cast<std::uint32_t>(i) << 8)),
        24);
    update.path = bgp::AsPath{as_, as_ + 1, as_ + 2};
    send_update(update);
  }
}

double CapacityModel::loss_fraction(std::size_t peers,
                                    double updates_per_hour, bool filters_on,
                                    double match_fraction) const {
  const double updates_per_second =
      static_cast<double>(peers) * updates_per_hour / 3600.0;
  const double matched = filters_on ? match_fraction : 0.0;
  const double per_update_cost =
      decode_cost_us + (filters_on ? filter_cost_us : 0.0) +
      (1.0 - matched) * store_cost_us;
  const double demand = updates_per_second * per_update_cost;
  if (demand <= cpu_budget_us_per_s) return 0.0;
  return 1.0 - cpu_budget_us_per_s / demand;
}

}  // namespace gill::daemon
