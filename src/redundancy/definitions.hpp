// The three gradually stricter redundancy definitions of §4.2 and the
// update-level / VP-level redundancy measurements built on them (Fig. 6).
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/delta.hpp"

namespace gill::red {

using bgp::AnnotatedUpdate;
using bgp::Timestamp;
using bgp::VpId;

/// §4.2: Def. 1 = condition 1; Def. 2 = conditions 1+2; Def. 3 = 1+2+3.
enum class Definition : int { kDef1 = 1, kDef2 = 2, kDef3 = 3 };

/// Condition 1: |t1 - t2| < 100 s and p1 == p2.
bool condition1(const AnnotatedUpdate& u1, const AnnotatedUpdate& u2) noexcept;

/// Condition 2: (L1 \ L1w) ⊆ (L2 \ L2w) — new links of u1 included in u2's.
bool condition2(const AnnotatedUpdate& u1, const AnnotatedUpdate& u2) noexcept;

/// Condition 3: (C1 \ C1w) ⊆ (C2 \ C2w) — for community values.
bool condition3(const AnnotatedUpdate& u1, const AnnotatedUpdate& u2) noexcept;

/// Is u1 redundant with u2 under `definition`? (Asymmetric for Defs 2/3.)
bool redundant_with(const AnnotatedUpdate& u1, const AnnotatedUpdate& u2,
                    Definition definition) noexcept;

/// Aggregate redundancy measurements over one annotated stream.
class RedundancyAnalyzer {
 public:
  /// `updates` must be time-sorted (annotate_stream preserves order).
  explicit RedundancyAnalyzer(const std::vector<AnnotatedUpdate>& updates);

  /// Fraction of updates redundant with at least one *other* update
  /// (the §4.2 measurement: 97% / 77% / 70% on real RIS+RV data).
  double redundant_update_fraction(Definition definition) const;

  /// §4.2 VP-level rule: VP1 is redundant with VP2 if more than `threshold`
  /// of VP1's updates are redundant with at least one update from VP2.
  /// Returns the boolean matrix indexed by position in vps().
  std::vector<std::vector<bool>> vp_redundancy_matrix(
      Definition definition, double threshold = 0.9) const;

  /// Fraction of VPs redundant with at least one other VP (Fig. 6).
  double redundant_vp_fraction(Definition definition,
                               double threshold = 0.9) const;

  const std::vector<VpId>& vps() const noexcept { return vps_; }

 private:
  const std::vector<AnnotatedUpdate>* updates_;
  std::vector<VpId> vps_;
  /// Update indices grouped by prefix, time-sorted within each group.
  std::vector<std::vector<std::size_t>> by_prefix_;
};

}  // namespace gill::red
