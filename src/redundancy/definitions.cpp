#include "redundancy/definitions.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace gill::red {

bool condition1(const AnnotatedUpdate& u1,
                const AnnotatedUpdate& u2) noexcept {
  if (u1.update.prefix != u2.update.prefix) return false;
  const Timestamp dt = u1.update.time > u2.update.time
                           ? u1.update.time - u2.update.time
                           : u2.update.time - u1.update.time;
  return dt < bgp::kTimestampSlack;
}

namespace {

template <typename T>
bool sorted_includes(const std::vector<T>& sub, const std::vector<T>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

}  // namespace

bool condition2(const AnnotatedUpdate& u1,
                const AnnotatedUpdate& u2) noexcept {
  // L and Lw are disjoint by construction, so L \ Lw == L; computing the
  // difference anyway keeps the code aligned with the paper's notation.
  return sorted_includes(u1.effective_links(), u2.effective_links());
}

bool condition3(const AnnotatedUpdate& u1,
                const AnnotatedUpdate& u2) noexcept {
  return sorted_includes(u1.effective_communities(),
                         u2.effective_communities());
}

bool redundant_with(const AnnotatedUpdate& u1, const AnnotatedUpdate& u2,
                    Definition definition) noexcept {
  if (!condition1(u1, u2)) return false;
  if (definition == Definition::kDef1) return true;
  if (!condition2(u1, u2)) return false;
  if (definition == Definition::kDef2) return true;
  return condition3(u1, u2);
}

RedundancyAnalyzer::RedundancyAnalyzer(
    const std::vector<AnnotatedUpdate>& updates)
    : updates_(&updates) {
  std::map<net::Prefix, std::vector<std::size_t>> groups;
  std::map<VpId, bool> vp_seen;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    groups[updates[i].update.prefix].push_back(i);
    vp_seen[updates[i].update.vp] = true;
  }
  by_prefix_.reserve(groups.size());
  for (auto& [prefix, indices] : groups) {
    by_prefix_.push_back(std::move(indices));
  }
  vps_.reserve(vp_seen.size());
  for (const auto& [vp, _] : vp_seen) vps_.push_back(vp);
}

double RedundancyAnalyzer::redundant_update_fraction(
    Definition definition) const {
  const auto& updates = *updates_;
  if (updates.empty()) return 0.0;
  std::size_t redundant = 0;
  for (const auto& group : by_prefix_) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      const AnnotatedUpdate& u1 = updates[group[i]];
      bool found = false;
      // Scan the 100 s neighborhood in both directions (time-sorted group).
      for (std::size_t j = i; j-- > 0 && !found;) {
        const AnnotatedUpdate& u2 = updates[group[j]];
        if (u1.update.time - u2.update.time >= bgp::kTimestampSlack) break;
        found = redundant_with(u1, u2, definition);
      }
      for (std::size_t j = i + 1; j < group.size() && !found; ++j) {
        const AnnotatedUpdate& u2 = updates[group[j]];
        if (u2.update.time - u1.update.time >= bgp::kTimestampSlack) break;
        found = redundant_with(u1, u2, definition);
      }
      if (found) ++redundant;
    }
  }
  return static_cast<double>(redundant) / static_cast<double>(updates.size());
}

std::vector<std::vector<bool>> RedundancyAnalyzer::vp_redundancy_matrix(
    Definition definition, double threshold) const {
  const auto& updates = *updates_;
  const std::size_t v = vps_.size();
  std::unordered_map<VpId, std::size_t> vp_index;
  for (std::size_t i = 0; i < v; ++i) vp_index[vps_[i]] = i;

  // counts[a][b] = number of updates from VP a redundant with >=1 update
  // from VP b.
  std::vector<std::vector<std::size_t>> counts(v,
                                               std::vector<std::size_t>(v, 0));
  std::vector<std::size_t> totals(v, 0);
  std::vector<bool> matched(v);

  for (const auto& group : by_prefix_) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      const AnnotatedUpdate& u1 = updates[group[i]];
      const std::size_t a = vp_index[u1.update.vp];
      ++totals[a];
      std::fill(matched.begin(), matched.end(), false);
      for (std::size_t j = i; j-- > 0;) {
        const AnnotatedUpdate& u2 = updates[group[j]];
        if (u1.update.time - u2.update.time >= bgp::kTimestampSlack) break;
        if (redundant_with(u1, u2, definition)) {
          matched[vp_index[u2.update.vp]] = true;
        }
      }
      for (std::size_t j = i + 1; j < group.size(); ++j) {
        const AnnotatedUpdate& u2 = updates[group[j]];
        if (u2.update.time - u1.update.time >= bgp::kTimestampSlack) break;
        if (redundant_with(u1, u2, definition)) {
          matched[vp_index[u2.update.vp]] = true;
        }
      }
      for (std::size_t b = 0; b < v; ++b) {
        if (matched[b] && b != a) ++counts[a][b];
      }
    }
  }

  std::vector<std::vector<bool>> result(v, std::vector<bool>(v, false));
  for (std::size_t a = 0; a < v; ++a) {
    if (totals[a] == 0) continue;
    for (std::size_t b = 0; b < v; ++b) {
      if (a == b) continue;
      result[a][b] = static_cast<double>(counts[a][b]) >
                     threshold * static_cast<double>(totals[a]);
    }
  }
  return result;
}

double RedundancyAnalyzer::redundant_vp_fraction(Definition definition,
                                                 double threshold) const {
  if (vps_.empty()) return 0.0;
  const auto matrix = vp_redundancy_matrix(definition, threshold);
  std::size_t redundant = 0;
  for (std::size_t a = 0; a < vps_.size(); ++a) {
    if (std::any_of(matrix[a].begin(), matrix[a].end(),
                    [](bool x) { return x; })) {
      ++redundant;
    }
  }
  return static_cast<double>(redundant) / static_cast<double>(vps_.size());
}

}  // namespace gill::red
