// Correlation groups (§17.1): per-prefix sets of update attributes that
// appear together within the 100 s correlation window. Within a prefix an
// update is identified by (VP, AS path, communities, withdrawal flag); a
// group's weight counts how many bursts produced exactly that attribute set.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bgp/update.hpp"

namespace gill::red {

using bgp::AsPath;
using bgp::CommunitySet;
using bgp::Timestamp;
using bgp::Update;
using bgp::VpId;

/// Update identity *within a correlation group* (prefix and time excluded).
struct UpdateSignature {
  VpId vp = 0;
  AsPath path;
  CommunitySet communities;
  bool withdrawal = false;

  static UpdateSignature of(const Update& update) {
    return UpdateSignature{update.vp, update.path, update.communities,
                           update.withdrawal};
  }

  friend bool operator==(const UpdateSignature&,
                         const UpdateSignature&) noexcept = default;
};

struct UpdateSignatureHash {
  std::size_t operator()(const UpdateSignature& s) const noexcept {
    std::uint64_t h = bgp::AsPathHash{}(s.path);
    h = h * 1099511628211ull ^ s.vp;
    for (const auto c : s.communities) h = h * 1099511628211ull ^ c.packed();
    h = h * 1099511628211ull ^ (s.withdrawal ? 1 : 0);
    return static_cast<std::size_t>(h);
  }
};

/// One correlation group: a deduplicated, canonically ordered attribute set
/// plus its occurrence weight.
struct CorrelationGroup {
  std::vector<UpdateSignature> members;  // sorted canonical order
  std::uint32_t weight = 1;
};

/// The correlation groups of a single prefix with a signature index.
class PrefixCorrelations {
 public:
  /// Builds groups from the prefix's updates (must be time-sorted).
  /// A burst is a maximal run of updates where consecutive inter-arrival
  /// gaps stay below `window`.
  static PrefixCorrelations build(const std::vector<Update>& updates,
                                  Timestamp window = bgp::kTimestampSlack);

  const std::vector<CorrelationGroup>& groups() const noexcept {
    return groups_;
  }

  /// Corr(p, u): ids of groups containing `signature` (empty if unseen).
  const std::vector<std::uint32_t>& groups_containing(
      const UpdateSignature& signature) const;

  /// maxweight(Corr(p, u)): the members of the heaviest group containing
  /// `signature`; ties break toward the lowest group id (deterministic
  /// stand-in for the paper's random pick). Returns nullptr if unseen.
  const CorrelationGroup* heaviest_group_for(
      const UpdateSignature& signature) const;

 private:
  std::vector<CorrelationGroup> groups_;
  std::unordered_map<UpdateSignature, std::vector<std::uint32_t>,
                     UpdateSignatureHash>
      index_;
};

}  // namespace gill::red
