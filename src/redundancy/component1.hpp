// Component #1 (§6, §17): find redundant BGP updates.
//   Step 1: build per-prefix correlation groups over a training window.
//   Step 2: per-prefix greedy VP selection by reconstitution power, keeping
//           all-or-nothing per (VP, prefix).
//   Step 3: cross-prefix deduplication — when several prefixes' selected
//           update sets are identical (up to the prefix and the 100 s time
//           slack), keep one representative prefix and classify the rest
//           as redundant.
// The output is exactly what filter generation (§7) consumes: the set of
// (VP, prefix) pairs whose updates are redundant.
#pragma once

#include <unordered_set>

#include "bgp/update.hpp"
#include "redundancy/reconstitution.hpp"

namespace gill::par {
class ThreadPool;
}  // namespace gill::par

namespace gill::red {

struct Component1Config {
  Timestamp correlation_window = bgp::kTimestampSlack;
  /// Stop the greedy selection once RP reaches this value (§17.2: 0.94).
  double rp_threshold = 0.94;
  /// Enable cross-prefix deduplication (step 3).
  bool cross_prefix = true;
};

/// A (VP, prefix) pair — the granularity of both classification and filters.
struct VpPrefix {
  VpId vp = 0;
  net::Prefix prefix;
  friend bool operator==(const VpPrefix&, const VpPrefix&) noexcept = default;
};

struct VpPrefixHash {
  std::size_t operator()(const VpPrefix& key) const noexcept {
    // splitmix64 finalizer: the VP id lands in the low bits, so the old
    // `prefix_hash * 31 + vp` clustered dense VP populations (0..N) into
    // runs of adjacent buckets; a full-width mix spreads both inputs.
    std::uint64_t x = net::hash_value(key.prefix) +
                      0x9E3779B97F4A7C15ull * (std::uint64_t{key.vp} + 1);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

using VpPrefixSet = std::unordered_set<VpPrefix, VpPrefixHash>;

struct Component1Result {
  /// (VP, prefix) pairs classified redundant — to be dropped by filters.
  VpPrefixSet redundant;
  /// (VP, prefix) pairs classified nonredundant — retained.
  VpPrefixSet nonredundant;
  std::size_t total_updates = 0;
  std::size_t nonredundant_updates = 0;  // |U|
  /// |U| / |V| — 0.16 after step 2, ~0.07 after step 3 on RIS/RV (§6).
  double retained_fraction() const {
    return total_updates == 0 ? 0.0
                              : static_cast<double>(nonredundant_updates) /
                                    static_cast<double>(total_updates);
  }
  /// Mean final reconstitution power across prefixes.
  double mean_rp = 0.0;
};

/// Runs the full Component #1 pipeline over a training stream. With a pool,
/// the per-prefix correlation/greedy stage (steps 1-2) fans out across the
/// workers; the output is byte-identical to the serial path (per-prefix work
/// is independent, and the cross-prefix aggregation preserves prefix order).
/// A null pool — or GILL_ANALYSIS_SERIAL in the environment — runs serially.
Component1Result find_redundant_updates(const bgp::UpdateStream& training,
                                        const Component1Config& config = {},
                                        par::ThreadPool* pool = nullptr);

}  // namespace gill::red
