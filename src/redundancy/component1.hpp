// Component #1 (§6, §17): find redundant BGP updates.
//   Step 1: build per-prefix correlation groups over a training window.
//   Step 2: per-prefix greedy VP selection by reconstitution power, keeping
//           all-or-nothing per (VP, prefix).
//   Step 3: cross-prefix deduplication — when several prefixes' selected
//           update sets are identical (up to the prefix and the 100 s time
//           slack), keep one representative prefix and classify the rest
//           as redundant.
// The output is exactly what filter generation (§7) consumes: the set of
// (VP, prefix) pairs whose updates are redundant.
#pragma once

#include <unordered_set>

#include "bgp/update.hpp"
#include "redundancy/reconstitution.hpp"

namespace gill::red {

struct Component1Config {
  Timestamp correlation_window = bgp::kTimestampSlack;
  /// Stop the greedy selection once RP reaches this value (§17.2: 0.94).
  double rp_threshold = 0.94;
  /// Enable cross-prefix deduplication (step 3).
  bool cross_prefix = true;
};

/// A (VP, prefix) pair — the granularity of both classification and filters.
struct VpPrefix {
  VpId vp = 0;
  net::Prefix prefix;
  friend bool operator==(const VpPrefix&, const VpPrefix&) noexcept = default;
};

struct VpPrefixHash {
  std::size_t operator()(const VpPrefix& key) const noexcept {
    return static_cast<std::size_t>(net::hash_value(key.prefix) * 31 +
                                    key.vp);
  }
};

using VpPrefixSet = std::unordered_set<VpPrefix, VpPrefixHash>;

struct Component1Result {
  /// (VP, prefix) pairs classified redundant — to be dropped by filters.
  VpPrefixSet redundant;
  /// (VP, prefix) pairs classified nonredundant — retained.
  VpPrefixSet nonredundant;
  std::size_t total_updates = 0;
  std::size_t nonredundant_updates = 0;  // |U|
  /// |U| / |V| — 0.16 after step 2, ~0.07 after step 3 on RIS/RV (§6).
  double retained_fraction() const {
    return total_updates == 0 ? 0.0
                              : static_cast<double>(nonredundant_updates) /
                                    static_cast<double>(total_updates);
  }
  /// Mean final reconstitution power across prefixes.
  double mean_rp = 0.0;
};

/// Runs the full Component #1 pipeline over a training stream.
Component1Result find_redundant_updates(const bgp::UpdateStream& training,
                                        const Component1Config& config = {});

}  // namespace gill::red
