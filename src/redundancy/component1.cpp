#include "redundancy/component1.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "parallel/thread_pool.hpp"

namespace gill::red {

namespace {

/// Signature of one prefix's selected update set for step 3: the sequence
/// of (VP, path, communities, quantized time) of its nonredundant updates.
/// Two prefixes with equal signatures carry the same information.
std::uint64_t selection_signature(const std::vector<Update>& updates,
                                  const std::vector<VpId>& selected_vps,
                                  Timestamp window) {
  std::uint64_t h = 14695981039346656037ull;
  UpdateSignatureHash hasher;
  for (const Update& u : updates) {
    if (!std::binary_search(selected_vps.begin(), selected_vps.end(), u.vp)) {
      continue;
    }
    h ^= hasher(UpdateSignature::of(u));
    h *= 1099511628211ull;
    h ^= static_cast<std::uint64_t>(u.time / window);  // 100 s quantization
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Component1Result find_redundant_updates(const bgp::UpdateStream& training,
                                        const Component1Config& config,
                                        par::ThreadPool* pool) {
  Component1Result result;
  result.total_updates = training.size();

  // Partition by prefix, preserving time order.
  std::map<net::Prefix, std::vector<Update>> by_prefix;
  for (const Update& u : training) by_prefix[u.prefix].push_back(u);

  struct PrefixSelection {
    net::Prefix prefix;
    std::vector<VpId> all_vps;
    std::vector<VpId> selected;  // sorted
    std::size_t selected_updates = 0;
    std::uint64_t signature = 0;
    double final_rp = 0.0;
  };

  // Steps 1-2 are per-prefix independent — the embarrassingly parallel hot
  // stage. Every shard writes only its own index range of `selections`, and
  // the aggregation below walks prefixes in map order, so the result (down
  // to the floating-point mean) matches the serial loop exactly.
  std::vector<std::vector<Update>*> prefix_updates;
  std::vector<const net::Prefix*> prefix_keys;
  prefix_updates.reserve(by_prefix.size());
  prefix_keys.reserve(by_prefix.size());
  for (auto& [prefix, updates] : by_prefix) {
    prefix_keys.push_back(&prefix);
    prefix_updates.push_back(&updates);
  }
  std::vector<PrefixSelection> selections(by_prefix.size());
  const auto analyze = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      std::vector<Update>& updates = *prefix_updates[i];
      PrefixSelection& selection = selections[i];
      selection.prefix = *prefix_keys[i];
      {
        std::set<VpId> vps;
        for (const Update& u : updates) vps.insert(u.vp);
        selection.all_vps.assign(vps.begin(), vps.end());
      }
      PrefixReconstitution reconstitution(updates, config.correlation_window);
      auto greedy = reconstitution.greedy_select(config.rp_threshold);
      selection.final_rp = greedy.final_rp;
      selection.selected = std::move(greedy.selected_vps);
      std::sort(selection.selected.begin(), selection.selected.end());
      selection.selected_updates = greedy.selected_update_count;
      selection.signature = selection_signature(updates, selection.selected,
                                                config.correlation_window);
    }
  };
  if (pool != nullptr && !par::serial_forced() && selections.size() > 1) {
    pool->parallel_for(selections.size(), analyze);
  } else {
    analyze(0, selections.size());
  }

  double rp_sum = 0.0;
  for (const auto& selection : selections) rp_sum += selection.final_rp;
  result.mean_rp =
      selections.empty() ? 1.0 : rp_sum / static_cast<double>(selections.size());

  // Step 3: group prefixes by identical selected-set signatures; only the
  // first prefix of each group keeps its selection.
  std::unordered_map<std::uint64_t, std::size_t> representative;
  for (auto& selection : selections) {
    bool is_representative = true;
    if (config.cross_prefix && !selection.selected.empty()) {
      auto [it, inserted] =
          representative.try_emplace(selection.signature, 0);
      is_representative = inserted;
    }
    for (VpId vp : selection.all_vps) {
      const bool keep =
          is_representative &&
          std::binary_search(selection.selected.begin(),
                             selection.selected.end(), vp);
      if (keep) {
        result.nonredundant.insert(VpPrefix{vp, selection.prefix});
      } else {
        result.redundant.insert(VpPrefix{vp, selection.prefix});
      }
    }
    if (is_representative) {
      result.nonredundant_updates += selection.selected_updates;
    }
  }
  return result;
}

}  // namespace gill::red
