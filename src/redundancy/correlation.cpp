#include "redundancy/correlation.hpp"

#include <algorithm>
#include <map>

namespace gill::red {

namespace {

bool signature_less(const UpdateSignature& a, const UpdateSignature& b) {
  if (a.vp != b.vp) return a.vp < b.vp;
  if (a.path != b.path) return a.path < b.path;
  if (a.communities != b.communities) return a.communities < b.communities;
  return a.withdrawal < b.withdrawal;
}

/// Canonical (sorted, deduplicated) form of a burst's attribute set.
std::vector<UpdateSignature> canonicalize(std::vector<UpdateSignature> set) {
  std::sort(set.begin(), set.end(), signature_less);
  set.erase(std::unique(set.begin(), set.end()), set.end());
  return set;
}

std::uint64_t set_hash(const std::vector<UpdateSignature>& set) {
  std::uint64_t h = 14695981039346656037ull;
  UpdateSignatureHash hasher;
  for (const auto& s : set) {
    h ^= hasher(s);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

PrefixCorrelations PrefixCorrelations::build(const std::vector<Update>& updates,
                                             Timestamp window) {
  PrefixCorrelations result;
  // Map from canonical-set hash to candidate group ids (collision-checked).
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_set_hash;

  std::vector<UpdateSignature> burst;
  Timestamp last_time = 0;
  auto flush = [&] {
    if (burst.empty()) return;
    std::vector<UpdateSignature> canonical = canonicalize(std::move(burst));
    burst.clear();
    const std::uint64_t h = set_hash(canonical);
    for (std::uint32_t id : by_set_hash[h]) {
      if (result.groups_[id].members == canonical) {
        ++result.groups_[id].weight;
        return;
      }
    }
    const auto id = static_cast<std::uint32_t>(result.groups_.size());
    by_set_hash[h].push_back(id);
    for (const auto& member : canonical) {
      result.index_[member].push_back(id);
    }
    result.groups_.push_back(CorrelationGroup{std::move(canonical), 1});
  };

  for (const Update& update : updates) {
    if (!burst.empty() && update.time - last_time >= window) flush();
    burst.push_back(UpdateSignature::of(update));
    last_time = update.time;
  }
  flush();
  return result;
}

const std::vector<std::uint32_t>& PrefixCorrelations::groups_containing(
    const UpdateSignature& signature) const {
  static const std::vector<std::uint32_t> kEmpty;
  const auto it = index_.find(signature);
  return it == index_.end() ? kEmpty : it->second;
}

const CorrelationGroup* PrefixCorrelations::heaviest_group_for(
    const UpdateSignature& signature) const {
  const auto& ids = groups_containing(signature);
  const CorrelationGroup* best = nullptr;
  for (std::uint32_t id : ids) {
    const CorrelationGroup& group = groups_[id];
    if (!best || group.weight > best->weight) best = &group;
  }
  return best;
}

}  // namespace gill::red
