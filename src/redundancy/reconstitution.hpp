// Reconstitution power (§17.2): how much of a prefix's update set V can be
// identically rebuilt from a subset U using the correlation groups, and the
// greedy per-VP selection of the least redundant updates.
#pragma once

#include <vector>

#include "redundancy/correlation.hpp"

namespace gill::red {

/// Per-prefix reconstitution analysis over a fixed update set V.
class PrefixReconstitution {
 public:
  /// `updates` = V for one prefix, time-sorted.
  PrefixReconstitution(std::vector<Update> updates,
                       Timestamp window = bgp::kTimestampSlack);

  /// RP(V, U) where U = all updates of V sent by the VPs in `selected_vps`.
  /// Reconstitution follows §17.2: every u in U reconstitutes the members
  /// of its heaviest correlation group stamped with u's timestamp; matches
  /// against V require identical attributes and a < 100 s timestamp gap.
  double reconstitution_power(const std::vector<VpId>& selected_vps) const;

  /// One greedy pass (§17.2): iteratively adds the VP whose updates most
  /// improve RP until `rp_threshold` is reached or no VP helps.
  struct GreedyResult {
    std::vector<VpId> selected_vps;
    /// RP after each selection (drives Fig. 11).
    std::vector<double> rp_curve;
    /// |U| / |V| after each selection.
    std::vector<double> retained_fraction_curve;
    double final_rp = 0.0;
    std::size_t selected_update_count = 0;
  };
  GreedyResult greedy_select(double rp_threshold = 0.94) const;

  const std::vector<Update>& updates() const noexcept { return updates_; }
  const PrefixCorrelations& correlations() const noexcept { return corr_; }

  /// Fraction of reconstituted updates that do NOT match anything in V —
  /// the "false positive rate" §17.2 reports as 4.6% on real data.
  double incorrect_reconstitution_fraction(
      const std::vector<VpId>& selected_vps) const;

 private:
  /// Marks (in `matched`) the updates of V reconstituted by `selected_vps`;
  /// returns the number of reconstituted candidates that matched nothing.
  std::size_t reconstitute(const std::vector<VpId>& selected_vps,
                           std::vector<bool>& matched,
                           std::size_t* candidate_count) const;

  /// Number of additional updates of V the VP at `vp_position` (an index
  /// into vps_) would reconstitute on top of `matched`. With commit=false
  /// the matched vector is left untouched.
  std::size_t marginal_gain(std::size_t vp_position,
                            std::vector<bool>& matched, bool commit) const;

  std::vector<Update> updates_;
  PrefixCorrelations corr_;
  Timestamp window_;
  /// V indexed by signature -> time-sorted update indices, for matching.
  std::unordered_map<UpdateSignature, std::vector<std::size_t>,
                     UpdateSignatureHash>
      by_signature_;
  std::vector<VpId> vps_;
  std::vector<std::vector<std::size_t>> updates_by_vp_;  // parallel to vps_
};

}  // namespace gill::red
