#include "redundancy/reconstitution.hpp"

#include <algorithm>
#include <map>
#include <queue>

namespace gill::red {

PrefixReconstitution::PrefixReconstitution(std::vector<Update> updates,
                                           Timestamp window)
    : updates_(std::move(updates)),
      corr_(PrefixCorrelations::build(updates_, window)),
      window_(window) {
  std::map<VpId, std::vector<std::size_t>> by_vp;
  for (std::size_t i = 0; i < updates_.size(); ++i) {
    by_signature_[UpdateSignature::of(updates_[i])].push_back(i);
    by_vp[updates_[i].vp].push_back(i);
  }
  for (auto& [vp, indices] : by_vp) {
    vps_.push_back(vp);
    updates_by_vp_.push_back(std::move(indices));
  }
}

std::size_t PrefixReconstitution::reconstitute(
    const std::vector<VpId>& selected_vps, std::vector<bool>& matched,
    std::size_t* candidate_count) const {
  matched.assign(updates_.size(), false);
  std::size_t unmatched_candidates = 0;
  std::size_t candidates = 0;

  for (VpId vp : selected_vps) {
    const auto it = std::lower_bound(vps_.begin(), vps_.end(), vp);
    if (it == vps_.end() || *it != vp) continue;
    const auto& indices = updates_by_vp_[it - vps_.begin()];
    for (std::size_t index : indices) {
      const Update& u = updates_[index];
      const CorrelationGroup* group =
          corr_.heaviest_group_for(UpdateSignature::of(u));
      if (!group) continue;
      // Reconstitute every member of the group at u's timestamp and try to
      // match it against an unmatched update of V.
      for (const UpdateSignature& member : group->members) {
        ++candidates;
        const auto vit = by_signature_.find(member);
        bool found = false;
        if (vit != by_signature_.end()) {
          for (std::size_t candidate : vit->second) {
            if (matched[candidate]) continue;
            const Timestamp dt = updates_[candidate].time > u.time
                                     ? updates_[candidate].time - u.time
                                     : u.time - updates_[candidate].time;
            if (dt < window_) {
              matched[candidate] = true;
              found = true;
              break;
            }
          }
          // Already-matched duplicates still count as correct: the
          // reconstitution produced an update that exists in V.
          if (!found) {
            for (std::size_t candidate : vit->second) {
              const Timestamp dt = updates_[candidate].time > u.time
                                       ? updates_[candidate].time - u.time
                                       : u.time - updates_[candidate].time;
              if (dt < window_) {
                found = true;
                break;
              }
            }
          }
        }
        if (!found) ++unmatched_candidates;
      }
    }
  }
  if (candidate_count) *candidate_count = candidates;
  return unmatched_candidates;
}

double PrefixReconstitution::reconstitution_power(
    const std::vector<VpId>& selected_vps) const {
  if (updates_.empty()) return 1.0;
  std::vector<bool> matched;
  reconstitute(selected_vps, matched, nullptr);
  const auto count = static_cast<std::size_t>(
      std::count(matched.begin(), matched.end(), true));
  return static_cast<double>(count) / static_cast<double>(updates_.size());
}

double PrefixReconstitution::incorrect_reconstitution_fraction(
    const std::vector<VpId>& selected_vps) const {
  std::vector<bool> matched;
  std::size_t candidates = 0;
  const std::size_t unmatched = reconstitute(selected_vps, matched, &candidates);
  return candidates == 0 ? 0.0
                         : static_cast<double>(unmatched) /
                               static_cast<double>(candidates);
}

std::size_t PrefixReconstitution::marginal_gain(std::size_t vp_position,
                                                std::vector<bool>& matched,
                                                bool commit) const {
  std::size_t gained = 0;
  std::vector<std::size_t> touched;
  for (const std::size_t index : updates_by_vp_[vp_position]) {
    const Update& u = updates_[index];
    const CorrelationGroup* group =
        corr_.heaviest_group_for(UpdateSignature::of(u));
    if (!group) continue;
    for (const UpdateSignature& member : group->members) {
      const auto vit = by_signature_.find(member);
      if (vit == by_signature_.end()) continue;
      for (const std::size_t candidate : vit->second) {
        if (matched[candidate]) continue;
        const Timestamp dt = updates_[candidate].time > u.time
                                 ? updates_[candidate].time - u.time
                                 : u.time - updates_[candidate].time;
        if (dt < window_) {
          matched[candidate] = true;
          touched.push_back(candidate);
          ++gained;
          break;
        }
      }
    }
  }
  if (!commit) {
    for (const std::size_t index : touched) matched[index] = false;
  }
  return gained;
}

PrefixReconstitution::GreedyResult PrefixReconstitution::greedy_select(
    double rp_threshold) const {
  GreedyResult result;
  if (updates_.empty()) {
    result.final_rp = 1.0;
    return result;
  }

  // Lazy greedy: marginal gains only shrink as the matched set grows (the
  // objective is close to submodular), so stale upper bounds from previous
  // rounds prune most candidate evaluations.
  std::vector<bool> matched(updates_.size(), false);
  std::size_t matched_count = 0;
  std::size_t selected_updates = 0;
  std::vector<VpId> selected;

  struct Entry {
    std::size_t gain;  // possibly stale upper bound
    std::size_t vp_position;
  };
  auto compare = [](const Entry& a, const Entry& b) {
    return a.gain < b.gain;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(compare)> queue(
      compare);
  for (std::size_t position = 0; position < vps_.size(); ++position) {
    queue.push(Entry{updates_.size() + 1, position});  // force evaluation
  }

  const auto total = static_cast<double>(updates_.size());
  while (!queue.empty() &&
         static_cast<double>(matched_count) / total < rp_threshold) {
    Entry top = queue.top();
    queue.pop();
    const std::size_t fresh_gain =
        marginal_gain(top.vp_position, matched, /*commit=*/false);
    if (fresh_gain == 0) continue;  // this VP can never help again
    if (!queue.empty() && fresh_gain < queue.top().gain) {
      top.gain = fresh_gain;  // stale: requeue with the updated bound
      queue.push(top);
      continue;
    }
    // Accept: commit the matches.
    matched_count += marginal_gain(top.vp_position, matched, /*commit=*/true);
    selected.push_back(vps_[top.vp_position]);
    selected_updates += updates_by_vp_[top.vp_position].size();
    result.rp_curve.push_back(static_cast<double>(matched_count) / total);
    result.retained_fraction_curve.push_back(
        static_cast<double>(selected_updates) / total);
  }

  result.selected_vps = std::move(selected);
  result.final_rp = static_cast<double>(matched_count) / total;
  result.selected_update_count = selected_updates;
  return result;
}

}  // namespace gill::red
