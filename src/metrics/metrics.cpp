#include "metrics/metrics.hpp"

#include <ctime>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>

namespace gill::metrics {

namespace {

/// Map key for one (name, labels) child. Separators below any printable
/// character so the map order groups families and orders children
/// deterministically.
std::string child_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  for (const auto& [label, value] : labels) {
    key += '\x01';
    key += label;
    key += '\x02';
    key += value;
  }
  return key;
}

/// Renders a double so that the Prometheus and JSON expositions agree
/// byte-for-byte: integral values print as integers, the rest round-trip
/// through %.17g.
std::string format_number(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 9.007199254740992e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%lld",
                  static_cast<long long>(value));
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// `{k1="v1",k2="v2"}` with escaped values; empty for label-less children.
/// `extra` appends one pre-rendered pair (the histogram `le`).
std::string render_labels(const Labels& labels, std::string_view extra = {}) {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [label, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += label;
    out += "=\"";
    out += escape_label_value(value);
    out += '"';
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

}  // namespace

std::string_view to_string(MetricType type) noexcept {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::int64_t coarse_now_ms() noexcept {
#if defined(CLOCK_MONOTONIC_COARSE)
  timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC_COARSE, &ts) == 0) {
    return std::int64_t{ts.tv_sec} * 1000 + ts.tv_nsec / 1000000;
  }
#endif
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Gauge::add(double delta) noexcept {
  // CAS loop instead of the C++20 atomic<double>::fetch_add so the code
  // stays correct on standard libraries that lack the floating-point
  // overload.
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
  updated_ms_.store(coarse_now_ms(), std::memory_order_relaxed);
}

Histogram::Histogram(std::size_t finite_buckets)
    : finite_buckets_(std::max<std::size_t>(1, std::min<std::size_t>(
                                                   finite_buckets, 63))),
      counts_(new std::atomic<std::uint64_t>[finite_buckets_ + 1]) {
  for (std::size_t i = 0; i <= finite_buckets_; ++i) counts_[i] = 0;
}

void Histogram::observe(std::uint64_t value) noexcept {
  // Bucket i covers (2^(i-1), 2^i]; 0 and 1 land in bucket 0. A value
  // above the last finite bound goes into the overflow (+Inf) slot.
  const std::size_t index =
      value <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(value - 1));
  counts_[std::min(index, finite_buckets_)].fetch_add(
      1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

Registry::Entry& Registry::resolve(MetricType type, std::string_view name,
                                   std::string_view help, Labels&& labels,
                                   std::size_t finite_buckets) {
  std::sort(labels.begin(), labels.end());
  std::string key = child_key(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) return it->second;
  Entry entry;
  entry.type = type;
  entry.name = std::string(name);
  entry.help = std::string(help);
  entry.labels = std::move(labels);
  switch (type) {
    case MetricType::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      entry.histogram = std::make_unique<Histogram>(finite_buckets);
      break;
  }
  return entries_.emplace(std::move(key), std::move(entry)).first->second;
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           Labels labels) {
  return *resolve(MetricType::kCounter, name, help, std::move(labels), 0)
              .counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       Labels labels) {
  return *resolve(MetricType::kGauge, name, help, std::move(labels), 0).gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               Labels labels, std::size_t finite_buckets) {
  return *resolve(MetricType::kHistogram, name, help, std::move(labels),
                  finite_buckets)
              .histogram;
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  std::vector<MetricSnapshot> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSnapshot sample;
    sample.name = entry.name;
    sample.type = entry.type;
    sample.help = entry.help;
    sample.labels = entry.labels;
    switch (entry.type) {
      case MetricType::kCounter:
        sample.value = static_cast<double>(entry.counter->value());
        sample.updated_ms = entry.counter->last_update_ms();
        break;
      case MetricType::kGauge:
        sample.value = entry.gauge->value();
        sample.updated_ms = entry.gauge->last_update_ms();
        break;
      case MetricType::kHistogram: {
        const Histogram& histogram = *entry.histogram;
        std::uint64_t running = 0;
        sample.buckets.reserve(histogram.finite_buckets());
        for (std::size_t i = 0; i < histogram.finite_buckets(); ++i) {
          running += histogram.bucket_count(i);
          sample.buckets.push_back({histogram.bucket_le(i), running});
        }
        sample.sum = histogram.sum();
        sample.count = histogram.count();
        break;
      }
    }
    out.push_back(std::move(sample));
  }
  return out;
}

std::string Registry::expose_prometheus() const {
  std::string out;
  std::string previous_family;
  for (const auto& sample : snapshot()) {
    if (sample.name != previous_family) {
      out += "# HELP " + sample.name + ' ' + sample.help + '\n';
      out += "# TYPE " + sample.name + ' ';
      out += to_string(sample.type);
      out += '\n';
      previous_family = sample.name;
    }
    if (sample.type == MetricType::kHistogram) {
      for (const auto& bucket : sample.buckets) {
        out += sample.name + "_bucket" +
               render_labels(sample.labels,
                             "le=\"" + std::to_string(bucket.le) + "\"") +
               ' ' + std::to_string(bucket.cumulative) + '\n';
      }
      out += sample.name + "_bucket" +
             render_labels(sample.labels, "le=\"+Inf\"") + ' ' +
             std::to_string(sample.count) + '\n';
      out += sample.name + "_sum" + render_labels(sample.labels) + ' ' +
             std::to_string(sample.sum) + '\n';
      out += sample.name + "_count" + render_labels(sample.labels) + ' ' +
             std::to_string(sample.count) + '\n';
    } else {
      out += sample.name + render_labels(sample.labels) + ' ' +
             format_number(sample.value) + '\n';
    }
  }
  return out;
}

std::string Registry::expose_json() const {
  std::string out = "{\"metrics\":[";
  bool first_metric = true;
  for (const auto& sample : snapshot()) {
    if (!first_metric) out += ',';
    first_metric = false;
    out += "{\"name\":\"" + json_escape(sample.name) + "\",\"type\":\"";
    out += to_string(sample.type);
    out += "\",\"help\":\"" + json_escape(sample.help) + "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [label, value] : sample.labels) {
      if (!first_label) out += ',';
      first_label = false;
      out += '"' + json_escape(label) + "\":\"" + json_escape(value) + '"';
    }
    out += '}';
    if (sample.type == MetricType::kHistogram) {
      out += ",\"buckets\":[";
      bool first_bucket = true;
      for (const auto& bucket : sample.buckets) {
        if (!first_bucket) out += ',';
        first_bucket = false;
        out += "{\"le\":" + std::to_string(bucket.le) +
               ",\"count\":" + std::to_string(bucket.cumulative) + '}';
      }
      out += "],\"sum\":" + std::to_string(sample.sum) +
             ",\"count\":" + std::to_string(sample.count);
    } else {
      out += ",\"value\":" + format_number(sample.value);
      // JSON-only: the Prometheus text format stays byte-stable (golden
      // tested) and real scrapers attach their own scrape timestamp.
      out += ",\"updated_ms\":" + std::to_string(sample.updated_ms);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::uint64_t Registry::counter_total(std::string_view name) const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, entry] : entries_) {
    if (entry.type == MetricType::kCounter && entry.name == name) {
      total += entry.counter->value();
    }
  }
  return total;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

Registry& default_registry() {
  static Registry registry;
  return registry;
}

}  // namespace gill::metrics
