// Process-wide metric registry (the "metrics endpoint" the ROADMAP asks
// for): counters, gauges and fixed-log2-bucket histograms with Prometheus
// labels, exposable as Prometheus v0.0.4 text or a JSON snapshot.
//
// Design constraints, in order:
//   1. The daemon decode hot path increments counters per message; an
//      increment is exactly one relaxed atomic add (verified by
//      bench_metrics_overhead). Handles are resolved ONCE — at session
//      construction, not per event.
//   2. Registration is thread-safe (mutex) and idempotent: asking for the
//      same (name, labels) returns the same object, so hundreds of VP
//      sessions share one registry without coordination.
//   3. Exposition never blocks writers: readers take the registration
//      mutex only to walk the index; the values themselves are relaxed
//      atomic loads, so a scrape racing a decode burst sees a consistent
//      enough snapshot (Prometheus semantics).
//
// Naming scheme (DESIGN.md §6): gill_<module>_<name>_<unit>, counters end
// in `_total`, duration histograms in `_us`, size histograms in `_bytes`.
// Per-VP labels ({vp="12"}) are bounded by the peer count; never label by
// prefix or by anything update-derived.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gill::metrics {

/// Label set, sorted by key at registration time so that one (name, labels)
/// pair has exactly one canonical identity.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };

std::string_view to_string(MetricType type) noexcept;

/// Milliseconds on the coarse monotonic clock: a vDSO read (no syscall),
/// cheap enough to stamp every counter increment. Tick granularity is the
/// kernel's (typically 1-4 ms) — plenty for "when did this metric last
/// move" staleness checks, which is all the timestamps are for.
std::int64_t coarse_now_ms() noexcept;

/// Monotonic event count. The increment is a relaxed atomic add plus a
/// relaxed store of the coarse clock: still lock-free and cheap enough for
/// the per-update decode path of hundreds of sessions.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
    updated_ms_.store(coarse_now_ms(), std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  /// Coarse-monotonic milliseconds of the last inc(); 0 = never updated.
  /// Exposed in the JSON exposition only — the Prometheus text format has
  /// no per-sample metadata slot that scrapers tolerate.
  std::int64_t last_update_ms() const noexcept {
    return updated_ms_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
  std::atomic<std::int64_t> updated_ms_{0};
};

/// A value that goes up and down (peer counts, queue depths).
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
    updated_ms_.store(coarse_now_ms(), std::memory_order_relaxed);
  }
  void add(double delta) noexcept;
  void sub(double delta) noexcept { add(-delta); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  /// Coarse-monotonic milliseconds of the last set()/add(); 0 = never.
  std::int64_t last_update_ms() const noexcept {
    return updated_ms_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
  std::atomic<std::int64_t> updated_ms_{0};
};

/// Histogram over non-negative integer observations (byte sizes,
/// microsecond latencies) with fixed log2 buckets: bucket i holds
/// observations <= 2^i, for i in [0, finite_buckets); everything larger
/// lands in the +Inf overflow bucket. Buckets are non-cumulative
/// internally and accumulated at exposition time, as Prometheus expects.
class Histogram {
 public:
  static constexpr std::size_t kDefaultBuckets = 24;  // up to 8 MiB / 16 s

  explicit Histogram(std::size_t finite_buckets = kDefaultBuckets);

  void observe(std::uint64_t value) noexcept;

  std::size_t finite_buckets() const noexcept { return finite_buckets_; }
  /// Upper bound (`le`) of finite bucket `index`: 2^index.
  std::uint64_t bucket_le(std::size_t index) const noexcept {
    return std::uint64_t{1} << index;
  }
  /// Non-cumulative count of finite bucket `index`.
  std::uint64_t bucket_count(std::size_t index) const noexcept {
    return counts_[index].load(std::memory_order_relaxed);
  }
  /// Observations above the last finite bucket (the +Inf remainder).
  std::uint64_t overflow() const noexcept {
    return counts_[finite_buckets_].load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t finite_buckets_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // + overflow slot
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// RAII wall-clock timer: observes the elapsed microseconds into a
/// histogram on destruction.
class Timer {
 public:
  explicit Timer(Histogram& histogram) noexcept
      : histogram_(&histogram), start_(std::chrono::steady_clock::now()) {}
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { histogram_->observe(elapsed_us()); }

  std::uint64_t elapsed_us() const noexcept {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// One read-only sample of one metric child, as taken by
/// Registry::snapshot(). Histogram buckets are cumulative here (exposition
/// form); `buckets` excludes +Inf, whose cumulative count equals `count`.
struct MetricSnapshot {
  std::string name;
  MetricType type = MetricType::kCounter;
  std::string help;
  Labels labels;
  double value = 0.0;  // counter / gauge
  struct Bucket {
    std::uint64_t le = 0;
    std::uint64_t cumulative = 0;
  };
  std::vector<Bucket> buckets;  // histogram only
  std::uint64_t sum = 0;        // histogram only
  std::uint64_t count = 0;      // histogram only
  /// Counter/gauge only: coarse-monotonic ms of the last write (0 = never).
  std::int64_t updated_ms = 0;
};

/// The registry: owns every metric, hands out stable references, and
/// renders the two exposition formats. All members are thread-safe.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the counter registered under (name, labels), creating it on
  /// first use. The reference stays valid for the registry's lifetime.
  /// `help` is taken from the first registration of the family.
  Counter& counter(std::string_view name, std::string_view help,
                   Labels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help,
               Labels labels = {});
  Histogram& histogram(std::string_view name, std::string_view help,
                       Labels labels = {},
                       std::size_t finite_buckets = Histogram::kDefaultBuckets);

  /// Every registered child, ordered by (name, labels) — the exposition
  /// order of both formats.
  std::vector<MetricSnapshot> snapshot() const;

  /// Prometheus text exposition format v0.0.4 (one HELP/TYPE header per
  /// family, label values escaped, histograms expanded into cumulative
  /// `_bucket`/`_sum`/`_count` series).
  std::string expose_prometheus() const;

  /// The same snapshot as one JSON document:
  /// {"metrics":[{"name":...,"type":...,"labels":{...},"value":...},...]}.
  std::string expose_json() const;

  /// Sum of a counter family over all label sets (0 when absent) — the
  /// natural aggregate for per-VP counters in tests and health checks.
  std::uint64_t counter_total(std::string_view name) const;

  std::size_t size() const;

 private:
  struct Entry {
    MetricType type;
    std::string name;
    std::string help;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& resolve(MetricType type, std::string_view name,
                 std::string_view help, Labels&& labels,
                 std::size_t finite_buckets);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  // key: name '\x01' k '\x02' v ...
};

/// The process-wide registry: free-function instrumentation (feed codecs,
/// command-line tools) lands here. Components that need isolation (tests,
/// one Platform per scenario) own a private Registry instead.
Registry& default_registry();

/// Escapes a label value for the text exposition (backslash, double quote
/// and newline, per the Prometheus spec). Exposed for the golden tests.
std::string escape_label_value(std::string_view value);

}  // namespace gill::metrics
