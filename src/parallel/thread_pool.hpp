// The analysis worker pool (DESIGN.md §9): a fixed-size thread pool with a
// fork-join submit() and a caller-participating parallel_for(). It exists so
// the sampling pipeline (Components #1/#2, filter generation) can run off
// the single-threaded epoll event loop that carries live BGP sessions: the
// loop thread submits one refresh job and keeps serving sessions; the job
// itself fans its per-prefix / per-VP-pair stages out across the workers.
//
// Determinism contract: parallel_for only hands out disjoint index ranges —
// every index is processed exactly once and the body writes to slots owned
// by that index, so the output is byte-identical to a serial loop no matter
// how many workers run it (the determinism tests assert this at 1, 2 and 8
// threads). The caller participates in its own parallel_for, which makes
// nested use from inside a submitted job deadlock-free even on a 1-thread
// pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace gill::metrics {
class Counter;
class Gauge;
class Registry;
}  // namespace gill::metrics

namespace gill::par {

/// The GILL_ANALYSIS_SERIAL escape hatch: when the environment variable is
/// set (and not "0"), every parallel analysis stage runs its serial path
/// regardless of pool configuration. Read per call so tests can toggle it.
bool serial_forced() noexcept;

/// Picks a worker count for "auto" requests: hardware concurrency clamped
/// to [1, cap] (the analysis stages stop scaling past a handful of cores at
/// simulation sizes).
std::size_t auto_thread_count(std::size_t cap = 8) noexcept;

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least 1). When a registry is
  /// supplied the pool registers its gauges/counters there
  /// (gill_parallel_pool_threads, gill_parallel_jobs_total, ...).
  explicit ThreadPool(std::size_t threads,
                      metrics::Registry* registry = nullptr);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  /// Drains the queue (every submitted job still runs), then joins.
  ~ThreadPool();

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Fire-and-forget enqueue.
  void post(std::function<void()> task);

  /// Fork-join: runs `fn` on a worker and returns its future. The future's
  /// destructor does not block; pair with parallel_for for structured work.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using Result = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::forward<F>(fn));
    std::future<Result> future = task->get_future();
    post([task] { (*task)(); });
    return future;
  }

  /// Splits [0, n) into contiguous shards and runs `body(begin, end)` on
  /// each, using the workers AND the calling thread; returns when every
  /// shard completed. Shard boundaries depend only on n and thread_count(),
  /// never on scheduling. Safe to call from inside a submitted job.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Total parallel_for shards executed (observability/test hook).
  std::uint64_t shards_executed() const noexcept {
    return shards_executed_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> shards_executed_{0};

  // Registry-backed instruments; null when no registry was supplied.
  metrics::Gauge* threads_gauge_ = nullptr;
  metrics::Gauge* queue_depth_ = nullptr;
  metrics::Counter* jobs_total_ = nullptr;
  metrics::Counter* shards_total_ = nullptr;
};

}  // namespace gill::par
