#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "metrics/metrics.hpp"

namespace gill::par {

bool serial_forced() noexcept {
  const char* value = std::getenv("GILL_ANALYSIS_SERIAL");
  return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
}

std::size_t auto_thread_count(std::size_t cap) noexcept {
  const std::size_t hardware = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hardware, 1, std::max<std::size_t>(cap, 1));
}

ThreadPool::ThreadPool(std::size_t threads, metrics::Registry* registry) {
  const std::size_t count = std::max<std::size_t>(1, threads);
  if (registry != nullptr) {
    threads_gauge_ = &registry->gauge("gill_parallel_pool_threads",
                                      "Workers in the analysis thread pool");
    queue_depth_ = &registry->gauge("gill_parallel_pool_queue_depth",
                                    "Tasks waiting for an analysis worker");
    jobs_total_ = &registry->counter("gill_parallel_jobs_total",
                                     "Tasks submitted to the analysis pool");
    shards_total_ =
        &registry->counter("gill_parallel_shards_total",
                           "parallel_for shards executed by the pool");
    threads_gauge_->set(static_cast<double>(count));
  }
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  if (threads_gauge_ != nullptr) threads_gauge_->set(0.0);
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    if (queue_depth_ != nullptr) queue_depth_->add(1.0);
  }
  if (jobs_total_ != nullptr) jobs_total_->inc();
  ready_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain before exiting so ~ThreadPool never abandons a submitted
      // job (its future would otherwise throw broken_promise).
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      if (queue_depth_ != nullptr) queue_depth_->sub(1.0);
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  // Shard count depends only on n and the pool size — never on scheduling —
  // so the index ranges (and therefore the work decomposition) are stable
  // across runs. More shards than workers smooths out uneven shard costs.
  const std::size_t shards =
      std::min(n, std::max<std::size_t>(1, thread_count() * 4));
  if (shards <= 1) {
    body(0, n);
    shards_executed_.fetch_add(1, std::memory_order_relaxed);
    if (shards_total_ != nullptr) shards_total_->inc();
    return;
  }

  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t shards = 0;
    std::size_t n = 0;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::mutex mutex;
    std::condition_variable all_done;
  };
  auto state = std::make_shared<State>();
  state->shards = shards;
  state->n = n;
  state->body = &body;

  const auto run_shards = [](const std::shared_ptr<State>& s) {
    for (;;) {
      const std::size_t shard =
          s->next.fetch_add(1, std::memory_order_relaxed);
      if (shard >= s->shards) return;
      const std::size_t begin = shard * s->n / s->shards;
      const std::size_t end = (shard + 1) * s->n / s->shards;
      (*s->body)(begin, end);
      if (s->done.fetch_add(1, std::memory_order_acq_rel) + 1 == s->shards) {
        std::lock_guard<std::mutex> lock(s->mutex);
        s->all_done.notify_all();
      }
    }
  };

  // Helpers race the caller for shards; any helper that arrives after the
  // range is exhausted becomes a no-op. The caller always participates, so
  // progress never depends on a worker being free (nested calls included).
  const std::size_t helpers = std::min(thread_count(), shards - 1);
  for (std::size_t i = 0; i < helpers; ++i) {
    post([state, run_shards] { run_shards(state); });
  }
  run_shards(state);
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->all_done.wait(lock, [&state] {
      return state->done.load(std::memory_order_acquire) == state->shards;
    });
  }
  shards_executed_.fetch_add(shards, std::memory_order_relaxed);
  if (shards_total_ != nullptr) shards_total_->inc(shards);
}

}  // namespace gill::par
