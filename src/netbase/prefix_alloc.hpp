// Deterministic synthetic prefix allocation for simulated ASes.
//
// The simulator needs every AS to originate one or more prefixes whose
// per-AS counts follow the heavy-tailed distribution observed on the real
// Internet (§3.1: "the number of prefixes announced by the ASes follows the
// distribution observed in the real Internet"). This allocator hands out
// non-overlapping IPv4 /24s (and optionally IPv6 /48s) indexed by AS.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "netbase/prefix.hpp"

namespace gill::net {

/// Allocates globally unique synthetic prefixes.
class PrefixAllocator {
 public:
  /// Returns the `index`-th IPv4 /24 in a flat enumeration of 10.0.0.0/8
  /// then 100.64.0.0/10 and beyond. Indices up to ~16M are unique.
  static Prefix v4_slot(std::uint32_t index);

  /// Returns the `index`-th IPv6 /48 under 2001:db8::/32-style space
  /// (fd00::/8 is used to get 40 free bits).
  static Prefix v6_slot(std::uint32_t index);

  /// Samples a per-AS prefix count from a discrete power-law-like
  /// distribution (P(k) ∝ k^-2.1, truncated at `max_count`), matching the
  /// heavy tail of announced-prefix counts per origin AS.
  static unsigned sample_prefix_count(std::mt19937_64& rng,
                                      unsigned max_count = 64);

  /// Assigns each of `as_count` ASes a contiguous run of unique /24s whose
  /// lengths follow sample_prefix_count(). Element i holds AS i's prefixes.
  static std::vector<std::vector<Prefix>> assign(std::uint32_t as_count,
                                                 std::mt19937_64& rng,
                                                 unsigned max_per_as = 64);
};

}  // namespace gill::net
