#include "netbase/ip.hpp"

#include <charconv>
#include <cstdio>
#include <vector>

namespace gill::net {

std::string_view to_string(Family family) noexcept {
  return family == Family::v4 ? "IPv4" : "IPv6";
}

IpAddress IpAddress::v4(std::uint32_t host_order) noexcept {
  IpAddress a;
  a.family_ = Family::v4;
  a.bytes_[0] = static_cast<std::uint8_t>(host_order >> 24);
  a.bytes_[1] = static_cast<std::uint8_t>(host_order >> 16);
  a.bytes_[2] = static_cast<std::uint8_t>(host_order >> 8);
  a.bytes_[3] = static_cast<std::uint8_t>(host_order);
  return a;
}

IpAddress IpAddress::v6(const std::array<std::uint8_t, 16>& bytes) noexcept {
  IpAddress a;
  a.family_ = Family::v6;
  a.bytes_ = bytes;
  return a;
}

std::uint32_t IpAddress::v4_value() const noexcept {
  return (static_cast<std::uint32_t>(bytes_[0]) << 24) |
         (static_cast<std::uint32_t>(bytes_[1]) << 16) |
         (static_cast<std::uint32_t>(bytes_[2]) << 8) |
         static_cast<std::uint32_t>(bytes_[3]);
}

bool IpAddress::bit(unsigned index) const noexcept {
  const unsigned byte = index / 8;
  const unsigned offset = index % 8;
  return (bytes_[byte] >> (7 - offset)) & 1u;
}

namespace {

std::optional<IpAddress> parse_v4(std::string_view text) {
  std::uint32_t value = 0;
  int parts = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  while (p < end) {
    unsigned octet = 0;
    auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || next == p || octet > 255) return std::nullopt;
    value = (value << 8) | octet;
    ++parts;
    p = next;
    if (p < end) {
      if (*p != '.' || parts == 4) return std::nullopt;
      ++p;
      if (p == end) return std::nullopt;  // trailing dot
    }
  }
  if (parts != 4) return std::nullopt;
  return IpAddress::v4(value);
}

std::optional<IpAddress> parse_v6(std::string_view text) {
  // Split on ':' handling a single '::' gap.
  std::vector<std::uint16_t> head;
  std::vector<std::uint16_t> tail;
  bool seen_gap = false;
  std::vector<std::uint16_t>* current = &head;

  std::size_t i = 0;
  if (text.starts_with("::")) {
    seen_gap = true;
    current = &tail;
    i = 2;
  }
  while (i < text.size()) {
    if (text[i] == ':') {
      if (seen_gap) return std::nullopt;  // second '::' is invalid
      seen_gap = true;
      current = &tail;
      ++i;
      continue;
    }
    std::size_t group_end = text.find(':', i);
    if (group_end == std::string_view::npos) group_end = text.size();
    std::string_view group = text.substr(i, group_end - i);
    if (group.empty() || group.size() > 4) return std::nullopt;
    unsigned value = 0;
    auto [next, ec] =
        std::from_chars(group.data(), group.data() + group.size(), value, 16);
    if (ec != std::errc{} || next != group.data() + group.size() ||
        value > 0xFFFF) {
      return std::nullopt;
    }
    current->push_back(static_cast<std::uint16_t>(value));
    i = group_end;
    if (i < text.size()) {
      ++i;  // skip ':'
      if (i == text.size() && !(seen_gap && tail.empty() &&
                                text.ends_with("::"))) {
        return std::nullopt;  // trailing single ':'
      }
    }
  }

  const std::size_t total = head.size() + tail.size();
  if (seen_gap ? total >= 8 : total != 8) return std::nullopt;

  std::array<std::uint8_t, 16> bytes{};
  std::size_t pos = 0;
  for (std::uint16_t group : head) {
    bytes[pos++] = static_cast<std::uint8_t>(group >> 8);
    bytes[pos++] = static_cast<std::uint8_t>(group & 0xFF);
  }
  pos = 16 - tail.size() * 2;
  for (std::uint16_t group : tail) {
    bytes[pos++] = static_cast<std::uint8_t>(group >> 8);
    bytes[pos++] = static_cast<std::uint8_t>(group & 0xFF);
  }
  return IpAddress::v6(bytes);
}

}  // namespace

std::optional<IpAddress> IpAddress::parse(std::string_view text) {
  if (text.empty()) return std::nullopt;
  if (text.find(':') != std::string_view::npos) return parse_v6(text);
  return parse_v4(text);
}

std::string IpAddress::str() const {
  char buffer[64];
  if (is_v4()) {
    std::snprintf(buffer, sizeof buffer, "%u.%u.%u.%u", bytes_[0], bytes_[1],
                  bytes_[2], bytes_[3]);
    return buffer;
  }
  // Find the longest run of zero 16-bit groups to compress with '::'.
  std::array<std::uint16_t, 8> groups;
  for (std::size_t g = 0; g < 8; ++g) {
    groups[g] = static_cast<std::uint16_t>((bytes_[g * 2] << 8) |
                                           bytes_[g * 2 + 1]);
  }
  int best_start = -1;
  int best_len = 0;
  for (int g = 0; g < 8;) {
    if (groups[static_cast<std::size_t>(g)] != 0) {
      ++g;
      continue;
    }
    int start = g;
    while (g < 8 && groups[static_cast<std::size_t>(g)] == 0) ++g;
    if (g - start > best_len) {
      best_len = g - start;
      best_start = start;
    }
  }
  if (best_len < 2) best_start = -1;  // do not compress a single group

  std::string out;
  for (int g = 0; g < 8; ++g) {
    if (g == best_start) {
      out += "::";
      g += best_len - 1;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    std::snprintf(buffer, sizeof buffer, "%x",
                  groups[static_cast<std::size_t>(g)]);
    out += buffer;
  }
  if (out.empty()) out = "::";
  return out;
}

std::uint64_t hash_value(const IpAddress& address) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  const auto& bytes = address.bytes();
  const std::size_t n = address.byte_count();
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  h ^= static_cast<std::uint8_t>(address.family());
  h *= 1099511628211ull;
  return h;
}

}  // namespace gill::net
