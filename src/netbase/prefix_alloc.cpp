#include "netbase/prefix_alloc.hpp"

#include <cmath>

namespace gill::net {

Prefix PrefixAllocator::v4_slot(std::uint32_t index) {
  // 10.0.0.0/8 provides 2^16 /24s; continue into 100.64.0.0/10 and then the
  // remaining unicast space above 128.0.0.0 for very large simulations.
  std::uint32_t base;
  if (index < (1u << 16)) {
    base = (10u << 24) | (index << 8);
  } else if (index < (1u << 16) + (1u << 14)) {
    base = (100u << 24) | (64u << 16) | ((index - (1u << 16)) << 8);
  } else {
    base = (128u << 24) + ((index - (1u << 16) - (1u << 14)) << 8);
  }
  return Prefix(IpAddress::v4(base), 24);
}

Prefix PrefixAllocator::v6_slot(std::uint32_t index) {
  std::array<std::uint8_t, 16> bytes{};
  bytes[0] = 0xfd;
  bytes[1] = static_cast<std::uint8_t>(index >> 24);
  bytes[2] = static_cast<std::uint8_t>(index >> 16);
  bytes[3] = static_cast<std::uint8_t>(index >> 8);
  bytes[4] = static_cast<std::uint8_t>(index);
  return Prefix(IpAddress::v6(bytes), 48);
}

unsigned PrefixAllocator::sample_prefix_count(std::mt19937_64& rng,
                                              unsigned max_count) {
  // Inverse-transform sampling of P(k) ∝ k^-2.1 over k ∈ [1, max_count].
  // With exponent a = 2.1, the CDF inverse is k = (1 - u·(1 - M^(1-a)))^(1/(1-a)).
  constexpr double kExponent = 2.1;
  const double one_minus_a = 1.0 - kExponent;
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  const double u = uniform(rng);
  const double m_term = std::pow(static_cast<double>(max_count), one_minus_a);
  const double k = std::pow(1.0 - u * (1.0 - m_term), 1.0 / one_minus_a);
  const auto count = static_cast<unsigned>(k);
  return std::min(std::max(count, 1u), max_count);
}

std::vector<std::vector<Prefix>> PrefixAllocator::assign(
    std::uint32_t as_count, std::mt19937_64& rng, unsigned max_per_as) {
  std::vector<std::vector<Prefix>> result(as_count);
  std::uint32_t next_slot = 0;
  for (std::uint32_t as = 0; as < as_count; ++as) {
    const unsigned count = sample_prefix_count(rng, max_per_as);
    result[as].reserve(count);
    for (unsigned i = 0; i < count; ++i) {
      result[as].push_back(v4_slot(next_slot++));
    }
  }
  return result;
}

}  // namespace gill::net
