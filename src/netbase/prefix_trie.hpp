// Binary trie keyed by IP prefixes with longest-prefix-match lookup.
//
// Used by the filter engine and the use-case analyses (e.g. MOAS detection
// needs "is this prefix covered by an existing, differently-originated
// prefix?"). One trie holds a single address family; PrefixTrie below wraps
// a v4 and a v6 trie behind one interface.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "netbase/prefix.hpp"

namespace gill::net {

template <typename Value>
class PrefixTrie {
 public:
  PrefixTrie() = default;

  /// Inserts or overwrites the value stored at `prefix`.
  void insert(const Prefix& prefix, Value value) {
    Node* node = descend_or_create(prefix);
    if (!node->value) ++size_;
    node->value = std::move(value);
  }

  /// Exact-match lookup.
  const Value* find(const Prefix& prefix) const {
    const Node* node = descend(prefix);
    return (node && node->value) ? &*node->value : nullptr;
  }

  Value* find(const Prefix& prefix) {
    return const_cast<Value*>(std::as_const(*this).find(prefix));
  }

  /// Longest-prefix match: the most specific stored prefix covering
  /// `prefix`. Returns the matched prefix and its value, or nullopt.
  std::optional<std::pair<Prefix, const Value*>> longest_match(
      const Prefix& prefix) const {
    const Node* root = root_for(prefix.family());
    if (!root) return std::nullopt;
    const Node* best = nullptr;
    unsigned best_len = 0;
    const Node* node = root;
    unsigned depth = 0;
    while (true) {
      if (node->value) {
        best = node;
        best_len = depth;
      }
      if (depth == prefix.length()) break;
      const Node* child =
          prefix.address().bit(depth) ? node->one.get() : node->zero.get();
      if (!child) break;
      node = child;
      ++depth;
    }
    if (!best) return std::nullopt;
    return std::make_pair(Prefix(prefix.address(), best_len), &*best->value);
  }

  /// Removes `prefix` if present; returns true if something was removed.
  bool erase(const Prefix& prefix) {
    Node* node = const_cast<Node*>(descend(prefix));
    if (!node || !node->value) return false;
    node->value.reset();
    --size_;
    return true;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Visits every stored (prefix, value) pair in trie order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::vector<std::uint8_t> bits;
    if (v4_root_) visit(*v4_root_, Family::v4, bits, fn);
    bits.clear();
    if (v6_root_) visit(*v6_root_, Family::v6, bits, fn);
  }

 private:
  struct Node {
    std::optional<Value> value;
    std::unique_ptr<Node> zero;
    std::unique_ptr<Node> one;
  };

  const Node* root_for(Family family) const {
    return family == Family::v4 ? v4_root_.get() : v6_root_.get();
  }

  Node* descend_or_create(const Prefix& prefix) {
    std::unique_ptr<Node>& root =
        prefix.family() == Family::v4 ? v4_root_ : v6_root_;
    if (!root) root = std::make_unique<Node>();
    Node* node = root.get();
    for (unsigned depth = 0; depth < prefix.length(); ++depth) {
      std::unique_ptr<Node>& child =
          prefix.address().bit(depth) ? node->one : node->zero;
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    return node;
  }

  const Node* descend(const Prefix& prefix) const {
    const Node* node = root_for(prefix.family());
    for (unsigned depth = 0; node && depth < prefix.length(); ++depth) {
      node = prefix.address().bit(depth) ? node->one.get() : node->zero.get();
    }
    return node;
  }

  template <typename Fn>
  static void visit(const Node& node, Family family,
                    std::vector<std::uint8_t>& bits, Fn& fn) {
    if (node.value) {
      std::array<std::uint8_t, 16> bytes{};
      for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits[i]) bytes[i / 8] |= static_cast<std::uint8_t>(0x80u >> (i % 8));
      }
      IpAddress address =
          family == Family::v4
              ? IpAddress::v4((static_cast<std::uint32_t>(bytes[0]) << 24) |
                              (static_cast<std::uint32_t>(bytes[1]) << 16) |
                              (static_cast<std::uint32_t>(bytes[2]) << 8) |
                              bytes[3])
              : IpAddress::v6(bytes);
      fn(Prefix(address, static_cast<unsigned>(bits.size())), *node.value);
    }
    if (node.zero) {
      bits.push_back(0);
      visit(*node.zero, family, bits, fn);
      bits.pop_back();
    }
    if (node.one) {
      bits.push_back(1);
      visit(*node.one, family, bits, fn);
      bits.pop_back();
    }
  }

  std::unique_ptr<Node> v4_root_;
  std::unique_ptr<Node> v6_root_;
  std::size_t size_ = 0;
};

}  // namespace gill::net
