// IP address model shared by every layer of the GILL reproduction.
//
// Both IPv4 and IPv6 addresses are stored in a single 16-byte value type so
// that BGP updates, RIB entries, MRT records and wire messages can carry
// either family without variants spreading through the code base.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace gill::net {

/// Address family of an IP address or prefix.
enum class Family : std::uint8_t { v4 = 4, v6 = 6 };

/// Returns "IPv4" / "IPv6".
std::string_view to_string(Family family) noexcept;

/// An IPv4 or IPv6 address.
///
/// IPv4 addresses occupy the first 4 bytes of the internal buffer; the
/// remaining bytes are guaranteed to be zero, so byte-wise comparison is a
/// total order within a family.
class IpAddress {
 public:
  /// The unspecified IPv4 address (0.0.0.0).
  constexpr IpAddress() noexcept = default;

  /// Builds an IPv4 address from a host-order 32-bit value.
  static IpAddress v4(std::uint32_t host_order) noexcept;

  /// Builds an IPv6 address from 16 network-order bytes.
  static IpAddress v6(const std::array<std::uint8_t, 16>& bytes) noexcept;

  /// Parses dotted-quad or RFC 4291 textual form. Returns nullopt on error.
  static std::optional<IpAddress> parse(std::string_view text);

  Family family() const noexcept { return family_; }
  bool is_v4() const noexcept { return family_ == Family::v4; }
  bool is_v6() const noexcept { return family_ == Family::v6; }

  /// Network-order bytes; 4 significant bytes for IPv4, 16 for IPv6.
  const std::array<std::uint8_t, 16>& bytes() const noexcept { return bytes_; }

  /// Number of significant bytes (4 or 16).
  std::size_t byte_count() const noexcept { return is_v4() ? 4u : 16u; }

  /// Number of significant bits (32 or 128).
  unsigned bit_count() const noexcept { return is_v4() ? 32u : 128u; }

  /// Host-order value of an IPv4 address. Precondition: is_v4().
  std::uint32_t v4_value() const noexcept;

  /// Value of bit `index` counted from the most significant bit.
  bool bit(unsigned index) const noexcept;

  /// Canonical textual form (dotted quad / compressed IPv6).
  std::string str() const;

  friend auto operator<=>(const IpAddress& a, const IpAddress& b) noexcept {
    if (auto c = a.family_ <=> b.family_; c != 0) return c;
    return a.bytes_ <=> b.bytes_;
  }
  friend bool operator==(const IpAddress&, const IpAddress&) noexcept = default;

 private:
  std::array<std::uint8_t, 16> bytes_{};
  Family family_ = Family::v4;
};

/// 64-bit FNV-1a over the significant bytes, for use in hash maps.
std::uint64_t hash_value(const IpAddress& address) noexcept;

}  // namespace gill::net
