// IP prefixes (CIDR blocks), the unit of BGP reachability announcements.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "netbase/ip.hpp"

namespace gill::net {

/// An IPv4 or IPv6 prefix in canonical form (all host bits zero).
class Prefix {
 public:
  /// 0.0.0.0/0.
  Prefix() noexcept = default;

  /// Builds a prefix, zeroing any bits beyond `length`. `length` is clamped
  /// to the family's bit count.
  Prefix(const IpAddress& address, unsigned length) noexcept;

  /// Parses "a.b.c.d/len" or "v6addr/len". Returns nullopt on error.
  static std::optional<Prefix> parse(std::string_view text);

  const IpAddress& address() const noexcept { return address_; }
  unsigned length() const noexcept { return length_; }
  Family family() const noexcept { return address_.family(); }

  /// True if `address` falls inside this prefix (same family required).
  bool contains(const IpAddress& address) const noexcept;

  /// True if `other` is equal to or more specific than this prefix.
  bool covers(const Prefix& other) const noexcept;

  /// "10.0.0.0/8"-style canonical text.
  std::string str() const;

  friend auto operator<=>(const Prefix& a, const Prefix& b) noexcept {
    if (auto c = a.address_ <=> b.address_; c != 0) return c;
    return a.length_ <=> b.length_;
  }
  friend bool operator==(const Prefix&, const Prefix&) noexcept = default;

 private:
  IpAddress address_;
  std::uint8_t length_ = 0;
};

/// Hash suitable for unordered containers.
std::uint64_t hash_value(const Prefix& prefix) noexcept;

struct PrefixHash {
  std::size_t operator()(const Prefix& prefix) const noexcept {
    return static_cast<std::size_t>(hash_value(prefix));
  }
};

}  // namespace gill::net
