#include "netbase/prefix.hpp"

#include <algorithm>
#include <charconv>

namespace gill::net {

namespace {

// Zeroes every bit of `bytes` from bit `length` (MSB-first) onward.
std::array<std::uint8_t, 16> mask_bytes(const std::array<std::uint8_t, 16>& in,
                                        unsigned length) {
  std::array<std::uint8_t, 16> out{};
  const unsigned full = length / 8;
  for (unsigned i = 0; i < full && i < 16; ++i) out[i] = in[i];
  const unsigned rem = length % 8;
  if (full < 16 && rem != 0) {
    const std::uint8_t mask = static_cast<std::uint8_t>(0xFF00u >> rem);
    out[full] = static_cast<std::uint8_t>(in[full] & mask);
  }
  return out;
}

}  // namespace

Prefix::Prefix(const IpAddress& address, unsigned length) noexcept {
  length_ = static_cast<std::uint8_t>(std::min(length, address.bit_count()));
  const auto masked = mask_bytes(address.bytes(), length_);
  address_ = address.is_v4()
                 ? IpAddress::v4((static_cast<std::uint32_t>(masked[0]) << 24) |
                                 (static_cast<std::uint32_t>(masked[1]) << 16) |
                                 (static_cast<std::uint32_t>(masked[2]) << 8) |
                                 masked[3])
                 : IpAddress::v6(masked);
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const std::size_t slash = text.rfind('/');
  if (slash == std::string_view::npos || slash + 1 >= text.size()) {
    return std::nullopt;
  }
  const auto address = IpAddress::parse(text.substr(0, slash));
  if (!address) return std::nullopt;
  unsigned length = 0;
  const std::string_view len_text = text.substr(slash + 1);
  auto [next, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(),
                      length);
  if (ec != std::errc{} || next != len_text.data() + len_text.size()) {
    return std::nullopt;
  }
  if (length > address->bit_count()) return std::nullopt;
  return Prefix(*address, length);
}

bool Prefix::contains(const IpAddress& address) const noexcept {
  if (address.family() != family()) return false;
  for (unsigned i = 0; i < length_; ++i) {
    if (address.bit(i) != address_.bit(i)) return false;
  }
  return true;
}

bool Prefix::covers(const Prefix& other) const noexcept {
  if (other.family() != family() || other.length_ < length_) return false;
  return contains(other.address_);
}

std::string Prefix::str() const {
  return address_.str() + "/" + std::to_string(length_);
}

std::uint64_t hash_value(const Prefix& prefix) noexcept {
  std::uint64_t h = hash_value(prefix.address());
  h ^= prefix.length() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace gill::net
