// GILL's filter generation and matching engine (§7).
//
// Policy, in priority order:
//   1. accept everything from anchor VPs;
//   2. drop updates matching a (VP, prefix[, path[, communities]]) rule
//      generated from Component #1's redundant classification;
//   3. accept everything else ("accept by default" keeps new updates and
//      updates from freshly deployed VPs).
//
// The default granularity matches only (VP, prefix) — the paper shows that
// finer-grained filters (GILL-asp, GILL-asp-comm) stop matching future
// redundant updates (87% vs 43% vs 0%); both variants are implemented for
// that experiment.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "bgp/update.hpp"
#include "redundancy/component1.hpp"

namespace gill::filt {

using bgp::Update;
using bgp::UpdateStream;
using bgp::VpId;

/// What a drop rule matches on.
enum class Granularity {
  kVpPrefix,          // GILL (coarse, default)
  kVpPrefixPath,      // GILL-asp
  kVpPrefixPathComm,  // GILL-asp-comm
};

std::string_view to_string(Granularity granularity) noexcept;

/// An installed filter table.
class FilterTable {
 public:
  explicit FilterTable(Granularity granularity = Granularity::kVpPrefix)
      : granularity_(granularity) {}

  Granularity granularity() const noexcept { return granularity_; }

  void add_anchor(VpId vp) { anchors_.insert(vp); }
  bool is_anchor(VpId vp) const { return anchors_.contains(vp); }
  const std::unordered_set<VpId>& anchors() const noexcept { return anchors_; }

  /// Installs a drop rule keyed from a concrete redundant update (the
  /// update supplies the path/communities for fine granularities).
  void add_drop(const Update& update);

  /// Coarse-granularity drop rule straight from a (VP, prefix) pair.
  void add_drop(VpId vp, const net::Prefix& prefix);

  std::size_t drop_rule_count() const noexcept { return drops_.size(); }

  /// The §7 decision: anchor => accept; drop-rule match => discard;
  /// otherwise accept.
  bool accept(const Update& update) const;

  /// Human-readable dump of the table (the published filter document, §9).
  std::string describe() const;

 private:
  std::uint64_t key_of(const Update& update) const;

  Granularity granularity_;
  std::unordered_set<VpId> anchors_;
  std::unordered_set<std::uint64_t> drops_;
};

/// Builds the table from Component #1's redundant (VP, prefix) pairs and
/// Component #2's anchors. For fine granularities the training stream must
/// be supplied so rules capture concrete paths/communities.
FilterTable generate_filters(const red::Component1Result& component1,
                             const std::vector<VpId>& anchors,
                             Granularity granularity = Granularity::kVpPrefix,
                             const UpdateStream* training = nullptr);

/// Outcome of running a stream through a table.
struct FilterStats {
  std::size_t matched = 0;   // discarded
  std::size_t retained = 0;  // accepted
  double matched_fraction() const {
    const std::size_t total = matched + retained;
    return total == 0 ? 0.0
                      : static_cast<double>(matched) /
                            static_cast<double>(total);
  }
};

/// Applies the table to `stream`; retained updates are appended to `out`
/// when non-null.
FilterStats apply_filters(const FilterTable& table, const UpdateStream& stream,
                          UpdateStream* out = nullptr);

/// The FRR-style route-map engine used for the §8 comparison: an ordered
/// linear scan of (VP, prefix-or-covering-prefix) rules. Deliberately the
/// way a conventional software router evaluates route-maps, i.e. O(rules)
/// per update — the point of the experiment.
class RouteMapEngine {
 public:
  struct Rule {
    VpId vp;
    net::Prefix match;  // drop updates whose prefix it covers
  };
  void add_rule(VpId vp, const net::Prefix& match) {
    rules_.push_back(Rule{vp, match});
  }
  std::size_t rule_count() const noexcept { return rules_.size(); }
  bool accept(const Update& update) const;

 private:
  std::vector<Rule> rules_;
};

}  // namespace gill::filt
