#include "filters/filters.hpp"

#include <algorithm>

namespace gill::filt {

std::string_view to_string(Granularity granularity) noexcept {
  switch (granularity) {
    case Granularity::kVpPrefix: return "GILL";
    case Granularity::kVpPrefixPath: return "GILL-asp";
    case Granularity::kVpPrefixPathComm: return "GILL-asp-comm";
  }
  return "?";
}

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t value) {
  h ^= value + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

std::uint64_t FilterTable::key_of(const Update& update) const {
  std::uint64_t h = net::hash_value(update.prefix);
  h = mix(h, update.vp);
  if (granularity_ == Granularity::kVpPrefix) return h;
  h = mix(h, bgp::AsPathHash{}(update.path));
  h = mix(h, update.withdrawal ? 1 : 0);
  if (granularity_ == Granularity::kVpPrefixPath) return h;
  for (const auto community : update.communities) {
    h = mix(h, community.packed());
  }
  return h;
}

void FilterTable::add_drop(const Update& update) {
  drops_.insert(key_of(update));
}

void FilterTable::add_drop(VpId vp, const net::Prefix& prefix) {
  Update probe;
  probe.vp = vp;
  probe.prefix = prefix;
  // Only valid for the coarse granularity where path/communities are not
  // part of the key; fine granularities must use the update overload.
  drops_.insert(key_of(probe));
}

bool FilterTable::accept(const Update& update) const {
  if (anchors_.contains(update.vp)) return true;
  if (drops_.contains(key_of(update))) return false;
  return true;  // accept-everything default (§7)
}

std::string FilterTable::describe() const {
  std::string out = "granularity ";
  out += to_string(granularity_);
  out += "\n";
  std::vector<VpId> sorted_anchors(anchors_.begin(), anchors_.end());
  std::sort(sorted_anchors.begin(), sorted_anchors.end());
  for (VpId vp : sorted_anchors) {
    out += "from vp" + std::to_string(vp) + " accept all\n";
  }
  out += std::to_string(drops_.size()) + " drop rules\n";
  out += "default accept\n";
  return out;
}

FilterTable generate_filters(const red::Component1Result& component1,
                             const std::vector<VpId>& anchors,
                             Granularity granularity,
                             const UpdateStream* training) {
  FilterTable table(granularity);
  for (VpId anchor : anchors) table.add_anchor(anchor);

  if (granularity == Granularity::kVpPrefix) {
    for (const auto& pair : component1.redundant) {
      table.add_drop(pair.vp, pair.prefix);
    }
    return table;
  }

  // Fine granularities need the concrete redundant updates.
  if (training != nullptr) {
    for (const auto& update : *training) {
      if (component1.redundant.contains(
              red::VpPrefix{update.vp, update.prefix})) {
        table.add_drop(update);
      }
    }
  }
  return table;
}

FilterStats apply_filters(const FilterTable& table, const UpdateStream& stream,
                          UpdateStream* out) {
  FilterStats stats;
  for (const auto& update : stream) {
    if (table.accept(update)) {
      ++stats.retained;
      if (out) out->push(update);
    } else {
      ++stats.matched;
    }
  }
  return stats;
}

bool RouteMapEngine::accept(const Update& update) const {
  for (const Rule& rule : rules_) {
    if (rule.vp == update.vp && rule.match.covers(update.prefix)) {
      return false;
    }
  }
  return true;
}

}  // namespace gill::filt
