#include "feed/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace gill::feed {

namespace {

void dump_string(const std::string& text, std::string& out) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_value(const Json& value, std::string& out) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_number()) {
    const double number = value.as_number();
    if (number == std::floor(number) && std::abs(number) < 1e15) {
      out += std::to_string(static_cast<std::int64_t>(number));
    } else {
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "%.17g", number);
      out += buffer;
    }
  } else if (value.is_string()) {
    dump_string(value.as_string(), out);
  } else if (value.is_array()) {
    out += '[';
    bool first = true;
    for (const auto& element : value.as_array()) {
      if (!first) out += ',';
      first = false;
      dump_value(element, out);
    }
    out += ']';
  } else {
    out += '{';
    bool first = true;
    for (const auto& [key, element] : value.as_object()) {
      if (!first) out += ',';
      first = false;
      dump_string(key, out);
      out += ':';
      dump_value(element, out);
    }
    out += '}';
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> parse() {
    auto value = parse_value(0);
    skip_whitespace();
    if (!value || position_ != text_.size()) return std::nullopt;
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_whitespace() {
    while (position_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[position_]))) {
      ++position_;
    }
  }

  bool consume(char expected) {
    skip_whitespace();
    if (position_ < text_.size() && text_[position_] == expected) {
      ++position_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(position_, word.size()) == word) {
      position_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<Json> parse_value(int depth) {
    if (depth > kMaxDepth) return std::nullopt;
    skip_whitespace();
    if (position_ >= text_.size()) return std::nullopt;
    const char c = text_[position_];
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') {
      auto text = parse_string();
      if (!text) return std::nullopt;
      return Json(std::move(*text));
    }
    if (c == 't') return literal("true") ? std::optional<Json>(Json(true))
                                         : std::nullopt;
    if (c == 'f') return literal("false") ? std::optional<Json>(Json(false))
                                          : std::nullopt;
    if (c == 'n') return literal("null") ? std::optional<Json>(Json(nullptr))
                                         : std::nullopt;
    return parse_number();
  }

  std::optional<Json> parse_number() {
    const std::size_t start = position_;
    if (position_ < text_.size() && text_[position_] == '-') ++position_;
    while (position_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[position_])) ||
            text_[position_] == '.' || text_[position_] == 'e' ||
            text_[position_] == 'E' || text_[position_] == '+' ||
            text_[position_] == '-')) {
      ++position_;
    }
    double value = 0.0;
    const auto* begin = text_.data() + start;
    const auto* end = text_.data() + position_;
    const auto [next, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || next != end || begin == end) return std::nullopt;
    return Json(value);
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (position_ < text_.size()) {
      const char c = text_[position_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (position_ >= text_.size()) return std::nullopt;
      const char escape = text_[position_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (position_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char hex = text_[position_++];
            code <<= 4;
            if (hex >= '0' && hex <= '9') {
              code |= static_cast<unsigned>(hex - '0');
            } else if (hex >= 'a' && hex <= 'f') {
              code |= static_cast<unsigned>(hex - 'a' + 10);
            } else if (hex >= 'A' && hex <= 'F') {
              code |= static_cast<unsigned>(hex - 'A' + 10);
            } else {
              return std::nullopt;
            }
          }
          // UTF-8 encode (BMP only; surrogate pairs rejected).
          if (code >= 0xD800 && code <= 0xDFFF) return std::nullopt;
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> parse_array(int depth) {
    if (!consume('[')) return std::nullopt;
    JsonArray array;
    skip_whitespace();
    if (consume(']')) {
      Json result(std::move(array));
      return result;
    }
    while (true) {
      auto value = parse_value(depth + 1);
      if (!value) return std::nullopt;
      array.push_back(std::move(*value));
      if (consume(']')) {
        Json result(std::move(array));
        return result;
      }
      if (!consume(',')) return std::nullopt;
    }
  }

  std::optional<Json> parse_object(int depth) {
    if (!consume('{')) return std::nullopt;
    JsonObject object;
    skip_whitespace();
    if (consume('}')) {
      Json result(std::move(object));
      return result;
    }
    while (true) {
      skip_whitespace();
      auto key = parse_string();
      if (!key) return std::nullopt;
      if (!consume(':')) return std::nullopt;
      auto value = parse_value(depth + 1);
      if (!value) return std::nullopt;
      object.emplace(std::move(*key), std::move(*value));
      if (consume('}')) {
        Json result(std::move(object));
        return result;
      }
      if (!consume(',')) return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t position_ = 0;
};

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

std::optional<Json> Json::parse(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace gill::feed
