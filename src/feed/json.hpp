// A minimal JSON value model, parser and writer — no external dependency.
//
// Supports the subset of JSON the live-feed protocol uses: objects,
// arrays, strings (with \" \\ \/ \b \f \n \r \t and \uXXXX for BMP code
// points), doubles/integers, booleans and null. Not a general-purpose
// library: inputs larger than the recursion budget or with exotic escapes
// are rejected rather than mangled.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace gill::feed {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool value) : value_(value) {}
  Json(double value) : value_(value) {}
  Json(std::int64_t value) : value_(static_cast<double>(value)) {}
  Json(int value) : value_(static_cast<double>(value)) {}
  Json(std::string value) : value_(std::move(value)) {}
  Json(const char* value) : value_(std::string(value)) {}
  Json(JsonArray value) : value_(std::move(value)) {}
  Json(JsonObject value) : value_(std::move(value)) {}

  bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  bool is_bool() const noexcept { return std::holds_alternative<bool>(value_); }
  bool is_number() const noexcept {
    return std::holds_alternative<double>(value_);
  }
  bool is_string() const noexcept {
    return std::holds_alternative<std::string>(value_);
  }
  bool is_array() const noexcept {
    return std::holds_alternative<JsonArray>(value_);
  }
  bool is_object() const noexcept {
    return std::holds_alternative<JsonObject>(value_);
  }

  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
  const JsonObject& as_object() const { return std::get<JsonObject>(value_); }

  /// Object member access; nullptr when absent or not an object.
  const Json* find(const std::string& key) const {
    if (!is_object()) return nullptr;
    const auto& object = as_object();
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }

  /// Serializes to compact JSON text.
  std::string dump() const;

  /// Parses one JSON document; nullopt on malformed input.
  static std::optional<Json> parse(std::string_view text);

  friend bool operator==(const Json&, const Json&) = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

}  // namespace gill::feed
