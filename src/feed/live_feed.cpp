#include "feed/live_feed.hpp"

#include <algorithm>

#include "feed/json.hpp"

namespace gill::feed {

std::string encode_live(const LiveMessage& message) {
  JsonObject object;
  object["type"] = Json("UPDATE");
  object["timestamp"] = Json(static_cast<double>(message.timestamp));
  object["peer_asn"] = Json(std::to_string(message.peer_asn));
  object["vp"] = Json(static_cast<double>(message.vp));

  JsonArray path;
  for (const bgp::AsNumber hop : message.path.hops()) {
    path.emplace_back(static_cast<double>(hop));
  }
  object["path"] = Json(std::move(path));

  if (!message.communities.empty()) {
    JsonArray communities;
    for (const bgp::Community community : message.communities) {
      JsonArray pair;
      pair.emplace_back(static_cast<double>(community.asn));
      pair.emplace_back(static_cast<double>(community.value));
      communities.emplace_back(std::move(pair));
    }
    object["community"] = Json(std::move(communities));
  }

  if (!message.announcements.empty()) {
    JsonArray prefixes;
    for (const auto& prefix : message.announcements) {
      prefixes.emplace_back(prefix.str());
    }
    JsonObject announcement;
    announcement["prefixes"] = Json(std::move(prefixes));
    JsonArray announcements;
    announcements.emplace_back(std::move(announcement));
    object["announcements"] = Json(std::move(announcements));
  }
  if (!message.withdrawals.empty()) {
    JsonArray withdrawals;
    for (const auto& prefix : message.withdrawals) {
      withdrawals.emplace_back(prefix.str());
    }
    object["withdrawals"] = Json(std::move(withdrawals));
  }
  return Json(std::move(object)).dump();
}

std::optional<LiveMessage> decode_live(std::string_view text) {
  const auto document = Json::parse(text);
  if (!document || !document->is_object()) return std::nullopt;
  const Json* type = document->find("type");
  if (!type || !type->is_string() || type->as_string() != "UPDATE") {
    return std::nullopt;
  }

  LiveMessage message;
  if (const Json* timestamp = document->find("timestamp");
      timestamp && timestamp->is_number()) {
    message.timestamp = static_cast<bgp::Timestamp>(timestamp->as_number());
  } else {
    return std::nullopt;
  }
  if (const Json* vp = document->find("vp"); vp && vp->is_number()) {
    message.vp = static_cast<bgp::VpId>(vp->as_number());
  }
  if (const Json* peer = document->find("peer_asn");
      peer && peer->is_string()) {
    message.peer_asn = static_cast<bgp::AsNumber>(
        std::strtoul(peer->as_string().c_str(), nullptr, 10));
  }
  if (const Json* path = document->find("path")) {
    if (!path->is_array()) return std::nullopt;
    std::vector<bgp::AsNumber> hops;
    for (const auto& hop : path->as_array()) {
      if (!hop.is_number()) return std::nullopt;
      hops.push_back(static_cast<bgp::AsNumber>(hop.as_number()));
    }
    message.path = bgp::AsPath(std::move(hops));
  }
  if (const Json* communities = document->find("community")) {
    if (!communities->is_array()) return std::nullopt;
    for (const auto& pair : communities->as_array()) {
      if (!pair.is_array() || pair.as_array().size() != 2 ||
          !pair.as_array()[0].is_number() || !pair.as_array()[1].is_number()) {
        return std::nullopt;
      }
      bgp::insert_community(
          message.communities,
          bgp::Community(
              static_cast<std::uint16_t>(pair.as_array()[0].as_number()),
              static_cast<std::uint16_t>(pair.as_array()[1].as_number())));
    }
  }
  if (const Json* announcements = document->find("announcements")) {
    if (!announcements->is_array()) return std::nullopt;
    for (const auto& announcement : announcements->as_array()) {
      const Json* prefixes = announcement.find("prefixes");
      if (!prefixes || !prefixes->is_array()) return std::nullopt;
      for (const auto& prefix_text : prefixes->as_array()) {
        if (!prefix_text.is_string()) return std::nullopt;
        const auto prefix = net::Prefix::parse(prefix_text.as_string());
        if (!prefix) return std::nullopt;
        message.announcements.push_back(*prefix);
      }
    }
  }
  if (const Json* withdrawals = document->find("withdrawals")) {
    if (!withdrawals->is_array()) return std::nullopt;
    for (const auto& prefix_text : withdrawals->as_array()) {
      if (!prefix_text.is_string()) return std::nullopt;
      const auto prefix = net::Prefix::parse(prefix_text.as_string());
      if (!prefix) return std::nullopt;
      message.withdrawals.push_back(*prefix);
    }
  }
  return message;
}

std::vector<LiveMessage> to_live_messages(const bgp::UpdateStream& stream) {
  std::vector<LiveMessage> messages;
  for (const auto& update : stream) {
    const bool mergeable =
        !messages.empty() && messages.back().vp == update.vp &&
        messages.back().timestamp == update.time &&
        (update.withdrawal ||
         (messages.back().path == update.path &&
          messages.back().communities == update.communities));
    if (mergeable && update.withdrawal) {
      messages.back().withdrawals.push_back(update.prefix);
      continue;
    }
    if (mergeable && !update.withdrawal && !messages.back().announcements.empty()) {
      messages.back().announcements.push_back(update.prefix);
      continue;
    }
    LiveMessage message;
    message.vp = update.vp;
    message.timestamp = update.time;
    message.peer_asn = update.path.empty() ? 0 : update.path.first();
    if (update.withdrawal) {
      message.withdrawals.push_back(update.prefix);
    } else {
      message.path = update.path;
      message.communities = update.communities;
      message.announcements.push_back(update.prefix);
    }
    messages.push_back(std::move(message));
  }
  return messages;
}

bgp::UpdateStream from_live_messages(
    const std::vector<LiveMessage>& messages) {
  bgp::UpdateStream stream;
  for (const auto& message : messages) {
    for (const auto& prefix : message.announcements) {
      bgp::Update update;
      update.vp = message.vp;
      update.time = message.timestamp;
      update.prefix = prefix;
      update.path = message.path;
      update.communities = message.communities;
      stream.push(std::move(update));
    }
    for (const auto& prefix : message.withdrawals) {
      bgp::Update update;
      update.vp = message.vp;
      update.time = message.timestamp;
      update.prefix = prefix;
      update.withdrawal = true;
      stream.push(std::move(update));
    }
  }
  stream.sort();
  return stream;
}

std::string encode_stream_ndjson(const bgp::UpdateStream& stream) {
  std::string out;
  for (const auto& message : to_live_messages(stream)) {
    out += encode_live(message);
    out += '\n';
  }
  return out;
}

std::optional<bgp::UpdateStream> decode_stream_ndjson(std::string_view text) {
  std::vector<LiveMessage> messages;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    auto message = decode_live(line);
    if (!message) return std::nullopt;
    messages.push_back(std::move(*message));
  }
  return from_live_messages(messages);
}

}  // namespace gill::feed
