#include "feed/live_feed.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

#include "feed/json.hpp"
#include "metrics/metrics.hpp"

namespace gill::feed {

namespace {

/// Module-level instruments on the process-wide registry, resolved once:
/// decode_live/encode_live are free functions on the live-ingest hot path,
/// so each call pays at most a few relaxed atomic adds.
struct FeedMetrics {
  metrics::Counter& decoded;
  metrics::Counter& rejected;
  metrics::Counter& encoded;
  metrics::Histogram& message_bytes;
};

FeedMetrics& feed_metrics() {
  static FeedMetrics instruments{
      metrics::default_registry().counter(
          "gill_feed_messages_decoded_total",
          "Live-feed JSON documents decoded into messages"),
      metrics::default_registry().counter(
          "gill_feed_messages_rejected_total",
          "Live-feed documents rejected as malformed or non-UPDATE"),
      metrics::default_registry().counter(
          "gill_feed_messages_encoded_total",
          "Messages encoded as live-feed JSON documents"),
      metrics::default_registry().histogram(
          "gill_feed_message_bytes",
          "Text size of each decoded/encoded live-feed document")};
  return instruments;
}

/// JSON numbers are doubles; any field destined for an integer type must be
/// a finite integral value inside the target range, or the message is
/// rejected (a live feed is attacker-adjacent input).
bool integral_in_range(const Json& value, double lo, double hi, double* out) {
  if (!value.is_number()) return false;
  const double number = value.as_number();
  if (!std::isfinite(number) || number != std::floor(number) || number < lo ||
      number > hi) {
    return false;
  }
  *out = number;
  return true;
}

constexpr double kMaxAsn = 4294967295.0;   // 32-bit ASNs (RFC 6793)
constexpr double kMaxVp = 4294967295.0;
constexpr double kMaxCommunityHalf = 65535.0;
// Seconds; generous but far below any int64/double precision cliff.
constexpr double kMaxTimestamp = 1e15;

std::optional<LiveMessage> decode_live_unmetered(std::string_view text);

}  // namespace

std::string encode_live(const LiveMessage& message) {
  JsonObject object;
  object["type"] = Json("UPDATE");
  object["timestamp"] = Json(static_cast<double>(message.timestamp));
  object["peer_asn"] = Json(std::to_string(message.peer_asn));
  object["vp"] = Json(static_cast<double>(message.vp));

  JsonArray path;
  for (const bgp::AsNumber hop : message.path.hops()) {
    path.emplace_back(static_cast<double>(hop));
  }
  object["path"] = Json(std::move(path));

  if (!message.communities.empty()) {
    JsonArray communities;
    for (const bgp::Community community : message.communities) {
      JsonArray pair;
      pair.emplace_back(static_cast<double>(community.asn));
      pair.emplace_back(static_cast<double>(community.value));
      communities.emplace_back(std::move(pair));
    }
    object["community"] = Json(std::move(communities));
  }

  if (!message.announcements.empty()) {
    JsonArray prefixes;
    for (const auto& prefix : message.announcements) {
      prefixes.emplace_back(prefix.str());
    }
    JsonObject announcement;
    announcement["prefixes"] = Json(std::move(prefixes));
    JsonArray announcements;
    announcements.emplace_back(std::move(announcement));
    object["announcements"] = Json(std::move(announcements));
  }
  if (!message.withdrawals.empty()) {
    JsonArray withdrawals;
    for (const auto& prefix : message.withdrawals) {
      withdrawals.emplace_back(prefix.str());
    }
    object["withdrawals"] = Json(std::move(withdrawals));
  }
  std::string out = Json(std::move(object)).dump();
  feed_metrics().encoded.inc();
  feed_metrics().message_bytes.observe(out.size());
  return out;
}

std::string encode_live_update(const bgp::Update& update) {
  LiveMessage message;
  message.vp = update.vp;
  message.timestamp = update.time;
  message.peer_asn = update.path.empty() ? 0 : update.path.first();
  if (update.withdrawal) {
    message.withdrawals.push_back(update.prefix);
  } else {
    message.path = update.path;
    message.communities = update.communities;
    message.announcements.push_back(update.prefix);
  }
  return encode_live(message) + '\n';
}

std::optional<LiveMessage> decode_live(std::string_view text) {
  auto message = decode_live_unmetered(text);
  if (message) {
    feed_metrics().decoded.inc();
    feed_metrics().message_bytes.observe(text.size());
  } else {
    feed_metrics().rejected.inc();
  }
  return message;
}

namespace {

std::optional<LiveMessage> decode_live_unmetered(std::string_view text) {
  const auto document = Json::parse(text);
  if (!document || !document->is_object()) return std::nullopt;
  const Json* type = document->find("type");
  if (!type || !type->is_string() || type->as_string() != "UPDATE") {
    return std::nullopt;
  }

  LiveMessage message;
  double number = 0;
  if (const Json* timestamp = document->find("timestamp");
      timestamp && integral_in_range(*timestamp, 0, kMaxTimestamp, &number)) {
    message.timestamp = static_cast<bgp::Timestamp>(number);
  } else {
    return std::nullopt;
  }
  if (const Json* vp = document->find("vp")) {
    if (!integral_in_range(*vp, 0, kMaxVp, &number)) return std::nullopt;
    message.vp = static_cast<bgp::VpId>(number);
  }
  if (const Json* peer = document->find("peer_asn")) {
    // RIS Live encodes the ASN as a decimal string; it must be digits only
    // and fit in 32 bits.
    if (!peer->is_string()) return std::nullopt;
    const std::string& text = peer->as_string();
    if (text.empty() || text.size() > 10 ||
        !std::all_of(text.begin(), text.end(), [](unsigned char c) {
          return std::isdigit(c) != 0;
        })) {
      return std::nullopt;
    }
    const unsigned long long asn = std::strtoull(text.c_str(), nullptr, 10);
    if (asn > 4294967295ULL) return std::nullopt;
    message.peer_asn = static_cast<bgp::AsNumber>(asn);
  }
  if (const Json* path = document->find("path")) {
    if (!path->is_array()) return std::nullopt;
    std::vector<bgp::AsNumber> hops;
    for (const auto& hop : path->as_array()) {
      if (!integral_in_range(hop, 0, kMaxAsn, &number)) return std::nullopt;
      hops.push_back(static_cast<bgp::AsNumber>(number));
    }
    message.path = bgp::AsPath(std::move(hops));
  }
  if (const Json* communities = document->find("community")) {
    if (!communities->is_array()) return std::nullopt;
    for (const auto& pair : communities->as_array()) {
      double asn = 0;
      double value = 0;
      if (!pair.is_array() || pair.as_array().size() != 2 ||
          !integral_in_range(pair.as_array()[0], 0, kMaxCommunityHalf, &asn) ||
          !integral_in_range(pair.as_array()[1], 0, kMaxCommunityHalf,
                             &value)) {
        return std::nullopt;
      }
      bgp::insert_community(message.communities,
                            bgp::Community(static_cast<std::uint16_t>(asn),
                                           static_cast<std::uint16_t>(value)));
    }
  }
  if (const Json* announcements = document->find("announcements")) {
    if (!announcements->is_array()) return std::nullopt;
    for (const auto& announcement : announcements->as_array()) {
      const Json* prefixes = announcement.find("prefixes");
      if (!prefixes || !prefixes->is_array()) return std::nullopt;
      for (const auto& prefix_text : prefixes->as_array()) {
        if (!prefix_text.is_string()) return std::nullopt;
        const auto prefix = net::Prefix::parse(prefix_text.as_string());
        if (!prefix) return std::nullopt;
        message.announcements.push_back(*prefix);
      }
    }
  }
  if (const Json* withdrawals = document->find("withdrawals")) {
    if (!withdrawals->is_array()) return std::nullopt;
    for (const auto& prefix_text : withdrawals->as_array()) {
      if (!prefix_text.is_string()) return std::nullopt;
      const auto prefix = net::Prefix::parse(prefix_text.as_string());
      if (!prefix) return std::nullopt;
      message.withdrawals.push_back(*prefix);
    }
  }
  return message;
}

}  // namespace

std::vector<LiveMessage> to_live_messages(const bgp::UpdateStream& stream) {
  std::vector<LiveMessage> messages;
  for (const auto& update : stream) {
    const bool mergeable =
        !messages.empty() && messages.back().vp == update.vp &&
        messages.back().timestamp == update.time &&
        (update.withdrawal ||
         (messages.back().path == update.path &&
          messages.back().communities == update.communities));
    if (mergeable && update.withdrawal) {
      messages.back().withdrawals.push_back(update.prefix);
      continue;
    }
    if (mergeable && !update.withdrawal && !messages.back().announcements.empty()) {
      messages.back().announcements.push_back(update.prefix);
      continue;
    }
    LiveMessage message;
    message.vp = update.vp;
    message.timestamp = update.time;
    message.peer_asn = update.path.empty() ? 0 : update.path.first();
    if (update.withdrawal) {
      message.withdrawals.push_back(update.prefix);
    } else {
      message.path = update.path;
      message.communities = update.communities;
      message.announcements.push_back(update.prefix);
    }
    messages.push_back(std::move(message));
  }
  return messages;
}

bgp::UpdateStream from_live_messages(
    const std::vector<LiveMessage>& messages) {
  bgp::UpdateStream stream;
  for (const auto& message : messages) {
    for (const auto& prefix : message.announcements) {
      bgp::Update update;
      update.vp = message.vp;
      update.time = message.timestamp;
      update.prefix = prefix;
      update.path = message.path;
      update.communities = message.communities;
      stream.push(std::move(update));
    }
    for (const auto& prefix : message.withdrawals) {
      bgp::Update update;
      update.vp = message.vp;
      update.time = message.timestamp;
      update.prefix = prefix;
      update.withdrawal = true;
      stream.push(std::move(update));
    }
  }
  stream.sort();
  return stream;
}

std::string encode_stream_ndjson(const bgp::UpdateStream& stream) {
  std::string out;
  for (const auto& message : to_live_messages(stream)) {
    out += encode_live(message);
    out += '\n';
  }
  return out;
}

std::optional<bgp::UpdateStream> decode_stream_ndjson(std::string_view text) {
  std::vector<LiveMessage> messages;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    auto message = decode_live(line);
    if (!message) return std::nullopt;
    messages.push_back(std::move(*message));
  }
  return from_live_messages(messages);
}

}  // namespace gill::feed
