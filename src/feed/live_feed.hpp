// RIS-Live-style streaming feed codec (§9): GILL bootstraps its visibility
// by ingesting all RIS VPs through the RIS Live WebSocket API and all RV
// VPs through a near-real-time proxy. This module implements the message
// format: one JSON document per BGP message, carrying the peer, timestamp,
// AS path, communities, announcements and withdrawals.
//
// Message shape (a faithful simplification of ris-live's `ris_message`):
//
//   {"type": "UPDATE",
//    "timestamp": 1693526400,
//    "peer_asn": "65010",
//    "vp": 42,
//    "path": [65010, 65020, 64500],
//    "community": [[65010, 100], [65020, 200]],
//    "announcements": [{"prefixes": ["203.0.113.0/24"]}],
//    "withdrawals": ["198.51.100.0/24"]}
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bgp/update.hpp"

namespace gill::feed {

/// One live-feed message: possibly several announcements and withdrawals
/// sharing the path attributes (exactly like one BGP UPDATE).
struct LiveMessage {
  bgp::VpId vp = 0;
  bgp::Timestamp timestamp = 0;
  bgp::AsNumber peer_asn = 0;
  bgp::AsPath path;
  bgp::CommunitySet communities;
  std::vector<net::Prefix> announcements;
  std::vector<net::Prefix> withdrawals;

  friend bool operator==(const LiveMessage&, const LiveMessage&) = default;
};

/// Encodes one message as a single-line JSON document.
std::string encode_live(const LiveMessage& message);

/// Encodes one stored update as a newline-terminated live-feed document
/// (the NDJSON line /v1/stream fans out per accepted update).
std::string encode_live_update(const bgp::Update& update);

/// Parses one JSON document; nullopt when malformed or not an UPDATE.
std::optional<LiveMessage> decode_live(std::string_view text);

/// Groups a stored update stream into live messages (adjacent updates from
/// one VP with identical attributes and timestamp share one message).
std::vector<LiveMessage> to_live_messages(const bgp::UpdateStream& stream);

/// Expands live messages back into one stored update per prefix.
bgp::UpdateStream from_live_messages(const std::vector<LiveMessage>& messages);

/// Convenience: newline-delimited JSON round trip for whole streams.
std::string encode_stream_ndjson(const bgp::UpdateStream& stream);
std::optional<bgp::UpdateStream> decode_stream_ndjson(std::string_view text);

}  // namespace gill::feed
