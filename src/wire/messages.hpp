// BGP wire protocol messages (RFC 4271, with RFC 6793 AS4 paths and
// RFC 1997 communities; IPv6 reachability via RFC 4760 MP_REACH/MP_UNREACH).
// The custom BGP daemon (§8) speaks exactly this: OPEN / UPDATE /
// NOTIFICATION / KEEPALIVE over a byte stream.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <variant>
#include <vector>

#include "bgp/as_path.hpp"
#include "bgp/types.hpp"
#include "netbase/prefix.hpp"

namespace gill::wire {

inline constexpr std::size_t kHeaderSize = 19;   // marker + length + type
inline constexpr std::size_t kMaxMessageSize = 4096;

enum class MessageType : std::uint8_t {
  kOpen = 1,
  kUpdate = 2,
  kNotification = 3,
  kKeepalive = 4,
};

struct OpenMessage {
  std::uint8_t version = 4;
  bgp::AsNumber as = 0;  // sent as AS_TRANS + AS4 capability when > 65535
  std::uint16_t hold_time = 90;
  std::uint32_t bgp_id = 0;
  /// RFC 4724 graceful-restart capability (code 64). When `gr_enabled`,
  /// the OPEN advertises GR with `gr_restart_time` seconds (12-bit field)
  /// and, when `gr_restarting`, the Restart State flag — the sender came
  /// back from a restart and will re-advertise its table.
  bool gr_enabled = false;
  bool gr_restarting = false;
  std::uint16_t gr_restart_time = 120;

  friend bool operator==(const OpenMessage&, const OpenMessage&) noexcept =
      default;
};

struct UpdateMessage {
  std::vector<net::Prefix> withdrawn;  // v4 withdrawals
  std::vector<net::Prefix> nlri;       // v4 announcements
  bgp::AsPath path;                    // AS4 encoding
  bgp::CommunitySet communities;
  std::uint32_t next_hop = 0;          // v4 next hop (host order)
  /// IPv6 reachability (MP_REACH / MP_UNREACH attributes).
  std::vector<net::Prefix> nlri_v6;
  std::vector<net::Prefix> withdrawn_v6;

  friend bool operator==(const UpdateMessage&, const UpdateMessage&) noexcept =
      default;
};

struct NotificationMessage {
  std::uint8_t code = 0;
  std::uint8_t subcode = 0;

  friend bool operator==(const NotificationMessage&,
                         const NotificationMessage&) noexcept = default;
};

struct KeepaliveMessage {
  friend bool operator==(const KeepaliveMessage&,
                         const KeepaliveMessage&) noexcept = default;
};

using Message = std::variant<OpenMessage, UpdateMessage, NotificationMessage,
                             KeepaliveMessage>;

/// RFC 4724 §2: the End-of-RIB marker is a minimal UPDATE — no withdrawn
/// routes, no path attributes, no NLRI (23 bytes on the wire for IPv4).
bool is_end_of_rib(const UpdateMessage& update) noexcept;

MessageType type_of(const Message& message) noexcept;

/// Encodes one message with its RFC 4271 header.
std::vector<std::uint8_t> encode(const Message& message);

/// Why a decode attempt produced no message. Every length field in the
/// decoder is bounds-checked; malformed input yields one of these instead
/// of a silent mis-parse.
enum class DecodeError : std::uint8_t {
  kNone = 0,              // a message was decoded
  kIncomplete,            // need more bytes (consumed == 0)
  kBadMarker,             // header marker byte != 0xFF (resync byte by byte)
  kBadLength,             // header length outside [19, 4096]
  kUnknownType,           // header type not OPEN/UPDATE/NOTIFICATION/KEEPALIVE
  kMalformedOpen,         // OPEN body failed validation
  kMalformedUpdate,       // UPDATE body failed validation
  kMalformedNotification, // NOTIFICATION body shorter than 2 bytes
};

std::string_view to_string(DecodeError error) noexcept;

/// Attempts to decode one message from the front of `data`. On success,
/// `consumed` is the total size of the message. Returns nullopt when the
/// buffer holds an incomplete message (consumed == 0) or garbage
/// (consumed != 0: skip those bytes and resynchronize); `error` then says
/// what was wrong. Never reads out of bounds and never throws.
std::optional<Message> decode(std::span<const std::uint8_t> data,
                              std::size_t& consumed, DecodeError& error);

/// Compatibility overload without the structured error.
inline std::optional<Message> decode(std::span<const std::uint8_t> data,
                                     std::size_t& consumed) {
  DecodeError error = DecodeError::kNone;
  return decode(data, consumed, error);
}

}  // namespace gill::wire
