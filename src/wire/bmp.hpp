// BGP Monitoring Protocol (RFC 7854) — the §14 extension direction
// ("the principles used in GILL's algorithms and implementation extend to
// other types of BGP monitoring systems (e.g., BMP)").
//
// Implemented message types (version 3):
//   0 Route Monitoring  (per-peer header + a full RFC 4271 UPDATE PDU)
//   2 Peer Down         (reason code)
//   3 Peer Up           (local address/ports + the two OPEN PDUs)
//   4 Initiation        (information TLVs, e.g. sysName)
//   5 Termination       (information TLVs)
// This is enough for a BMP-fed GILL ingest path: a router mirrors every
// received update via Route Monitoring; the daemon decodes and runs the
// same filter pipeline as for a native BGP session.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "netbase/ip.hpp"
#include "wire/messages.hpp"

namespace gill::wire {

inline constexpr std::uint8_t kBmpVersion = 3;
inline constexpr std::size_t kBmpCommonHeaderSize = 6;
inline constexpr std::size_t kBmpPerPeerHeaderSize = 42;

enum class BmpType : std::uint8_t {
  kRouteMonitoring = 0,
  kPeerDown = 2,
  kPeerUp = 3,
  kInitiation = 4,
  kTermination = 5,
};

/// RFC 7854 §4.2 per-peer header.
struct BmpPeerHeader {
  std::uint8_t peer_type = 0;   // 0 = global instance peer
  std::uint8_t flags = 0;       // bit 0x80 = IPv6 peer address
  std::uint64_t distinguisher = 0;
  net::IpAddress address;       // peer address
  bgp::AsNumber as = 0;
  std::uint32_t bgp_id = 0;
  std::uint32_t timestamp_sec = 0;
  std::uint32_t timestamp_usec = 0;

  friend bool operator==(const BmpPeerHeader&, const BmpPeerHeader&) = default;
};

struct BmpRouteMonitoring {
  BmpPeerHeader peer;
  UpdateMessage update;

  friend bool operator==(const BmpRouteMonitoring&,
                         const BmpRouteMonitoring&) = default;
};

struct BmpPeerDown {
  BmpPeerHeader peer;
  std::uint8_t reason = 1;  // 1 = local system closed, notification follows

  friend bool operator==(const BmpPeerDown&, const BmpPeerDown&) = default;
};

struct BmpPeerUp {
  BmpPeerHeader peer;
  net::IpAddress local_address;
  std::uint16_t local_port = 179;
  std::uint16_t remote_port = 0;
  OpenMessage sent_open;
  OpenMessage received_open;

  friend bool operator==(const BmpPeerUp&, const BmpPeerUp&) = default;
};

/// Information TLV used by Initiation (type 4) and Termination (type 5).
struct BmpInformation {
  std::uint16_t type = 2;  // 2 = sysName for initiation
  std::string value;

  friend bool operator==(const BmpInformation&,
                         const BmpInformation&) = default;
};

struct BmpInitiation {
  std::vector<BmpInformation> information;

  friend bool operator==(const BmpInitiation&, const BmpInitiation&) = default;
};

struct BmpTermination {
  std::vector<BmpInformation> information;

  friend bool operator==(const BmpTermination&,
                         const BmpTermination&) = default;
};

using BmpMessage = std::variant<BmpRouteMonitoring, BmpPeerDown, BmpPeerUp,
                                BmpInitiation, BmpTermination>;

BmpType bmp_type_of(const BmpMessage& message) noexcept;

/// Encodes one BMP message (common header included).
std::vector<std::uint8_t> encode_bmp(const BmpMessage& message);

/// Decodes one BMP message from the front of `data`. Semantics match
/// wire::decode: nullopt + consumed == 0 means "incomplete, feed more
/// bytes"; nullopt + consumed > 0 means "skip `consumed` garbage bytes".
std::optional<BmpMessage> decode_bmp(std::span<const std::uint8_t> data,
                                     std::size_t& consumed);

}  // namespace gill::wire
