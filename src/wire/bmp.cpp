#include "wire/bmp.hpp"

#include <cstring>

namespace gill::wire {

namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

/// Writes the 16-byte peer/local address field: IPv4 goes into the last
/// four bytes (RFC 7854 §4.2).
void put_address(std::vector<std::uint8_t>& out, const net::IpAddress& address) {
  std::array<std::uint8_t, 16> bytes{};
  if (address.is_v4()) {
    const std::uint32_t v4 = address.v4_value();
    bytes[12] = static_cast<std::uint8_t>(v4 >> 24);
    bytes[13] = static_cast<std::uint8_t>(v4 >> 16);
    bytes[14] = static_cast<std::uint8_t>(v4 >> 8);
    bytes[15] = static_cast<std::uint8_t>(v4);
  } else {
    bytes = address.bytes();
  }
  out.insert(out.end(), bytes.begin(), bytes.end());
}

void put_peer_header(std::vector<std::uint8_t>& out,
                     const BmpPeerHeader& peer) {
  put_u8(out, peer.peer_type);
  put_u8(out, static_cast<std::uint8_t>(
                  (peer.flags & 0x7F) |
                  (peer.address.is_v6() ? 0x80 : 0x00)));
  put_u64(out, peer.distinguisher);
  put_address(out, peer.address);
  put_u32(out, peer.as);
  put_u32(out, peer.bgp_id);
  put_u32(out, peer.timestamp_sec);
  put_u32(out, peer.timestamp_usec);
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> data) : data_(data) {}
  bool u8(std::uint8_t& v) {
    if (offset_ + 1 > data_.size()) return false;
    v = data_[offset_++];
    return true;
  }
  bool u16(std::uint16_t& v) {
    if (offset_ + 2 > data_.size()) return false;
    v = static_cast<std::uint16_t>((data_[offset_] << 8) | data_[offset_ + 1]);
    offset_ += 2;
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (offset_ + 4 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[offset_++];
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (offset_ + 8 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data_[offset_++];
    return true;
  }
  bool bytes(std::uint8_t* out, std::size_t n) {
    if (offset_ + n > data_.size()) return false;
    std::memcpy(out, data_.data() + offset_, n);
    offset_ += n;
    return true;
  }
  std::span<const std::uint8_t> remainder() const {
    return data_.subspan(offset_);
  }
  std::size_t remaining() const noexcept { return data_.size() - offset_; }
  bool skip(std::size_t n) {
    if (offset_ + n > data_.size()) return false;
    offset_ += n;
    return true;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
};

bool read_peer_header(Cursor& cursor, BmpPeerHeader& peer) {
  std::uint8_t flags = 0;
  std::array<std::uint8_t, 16> address{};
  if (!cursor.u8(peer.peer_type) || !cursor.u8(flags) ||
      !cursor.u64(peer.distinguisher) ||
      !cursor.bytes(address.data(), address.size()) || !cursor.u32(peer.as) ||
      !cursor.u32(peer.bgp_id) || !cursor.u32(peer.timestamp_sec) ||
      !cursor.u32(peer.timestamp_usec)) {
    return false;
  }
  peer.flags = flags;
  if (flags & 0x80) {
    peer.address = net::IpAddress::v6(address);
  } else {
    peer.address = net::IpAddress::v4(
        (static_cast<std::uint32_t>(address[12]) << 24) |
        (static_cast<std::uint32_t>(address[13]) << 16) |
        (static_cast<std::uint32_t>(address[14]) << 8) | address[15]);
  }
  return true;
}

/// Pulls one embedded RFC 4271 PDU of the expected type.
template <typename T>
std::optional<T> read_pdu(Cursor& cursor) {
  std::size_t consumed = 0;
  const auto message = wire::decode(cursor.remainder(), consumed);
  if (!message || consumed == 0) return std::nullopt;
  if (!std::holds_alternative<T>(*message)) return std::nullopt;
  cursor.skip(consumed);
  return std::get<T>(*message);
}

void put_information(std::vector<std::uint8_t>& out,
                     const std::vector<BmpInformation>& information) {
  for (const auto& tlv : information) {
    put_u16(out, tlv.type);
    put_u16(out, static_cast<std::uint16_t>(tlv.value.size()));
    out.insert(out.end(), tlv.value.begin(), tlv.value.end());
  }
}

bool read_information(Cursor& cursor, std::vector<BmpInformation>& out) {
  while (cursor.remaining() >= 4) {
    BmpInformation tlv;
    std::uint16_t length = 0;
    if (!cursor.u16(tlv.type) || !cursor.u16(length)) return false;
    tlv.value.resize(length);
    if (!cursor.bytes(reinterpret_cast<std::uint8_t*>(tlv.value.data()),
                      length)) {
      return false;
    }
    out.push_back(std::move(tlv));
  }
  return cursor.remaining() == 0;
}

}  // namespace

BmpType bmp_type_of(const BmpMessage& message) noexcept {
  if (std::holds_alternative<BmpRouteMonitoring>(message)) {
    return BmpType::kRouteMonitoring;
  }
  if (std::holds_alternative<BmpPeerDown>(message)) return BmpType::kPeerDown;
  if (std::holds_alternative<BmpPeerUp>(message)) return BmpType::kPeerUp;
  if (std::holds_alternative<BmpInitiation>(message)) {
    return BmpType::kInitiation;
  }
  return BmpType::kTermination;
}

std::vector<std::uint8_t> encode_bmp(const BmpMessage& message) {
  std::vector<std::uint8_t> body;
  if (const auto* monitoring = std::get_if<BmpRouteMonitoring>(&message)) {
    put_peer_header(body, monitoring->peer);
    const auto pdu = wire::encode(monitoring->update);
    body.insert(body.end(), pdu.begin(), pdu.end());
  } else if (const auto* down = std::get_if<BmpPeerDown>(&message)) {
    put_peer_header(body, down->peer);
    put_u8(body, down->reason);
  } else if (const auto* up = std::get_if<BmpPeerUp>(&message)) {
    put_peer_header(body, up->peer);
    put_address(body, up->local_address);
    put_u16(body, up->local_port);
    put_u16(body, up->remote_port);
    const auto sent = wire::encode(up->sent_open);
    const auto received = wire::encode(up->received_open);
    body.insert(body.end(), sent.begin(), sent.end());
    body.insert(body.end(), received.begin(), received.end());
  } else if (const auto* initiation = std::get_if<BmpInitiation>(&message)) {
    put_information(body, initiation->information);
  } else if (const auto* termination = std::get_if<BmpTermination>(&message)) {
    put_information(body, termination->information);
  }

  std::vector<std::uint8_t> out;
  out.reserve(kBmpCommonHeaderSize + body.size());
  put_u8(out, kBmpVersion);
  put_u32(out, static_cast<std::uint32_t>(kBmpCommonHeaderSize + body.size()));
  put_u8(out, static_cast<std::uint8_t>(bmp_type_of(message)));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::optional<BmpMessage> decode_bmp(std::span<const std::uint8_t> data,
                                     std::size_t& consumed) {
  consumed = 0;
  if (data.size() < kBmpCommonHeaderSize) return std::nullopt;  // incomplete
  if (data[0] != kBmpVersion) {
    consumed = 1;  // not a v3 message: resynchronize
    return std::nullopt;
  }
  const std::uint32_t length = (static_cast<std::uint32_t>(data[1]) << 24) |
                               (static_cast<std::uint32_t>(data[2]) << 16) |
                               (static_cast<std::uint32_t>(data[3]) << 8) |
                               data[4];
  if (length < kBmpCommonHeaderSize || length > (1u << 24)) {
    consumed = 1;
    return std::nullopt;
  }
  if (data.size() < length) return std::nullopt;  // incomplete
  const auto type = static_cast<BmpType>(data[5]);
  Cursor body(data.subspan(kBmpCommonHeaderSize,
                           length - kBmpCommonHeaderSize));
  consumed = length;

  switch (type) {
    case BmpType::kRouteMonitoring: {
      BmpRouteMonitoring monitoring;
      if (!read_peer_header(body, monitoring.peer)) return std::nullopt;
      auto update = read_pdu<UpdateMessage>(body);
      if (!update) return std::nullopt;
      monitoring.update = std::move(*update);
      return BmpMessage(std::move(monitoring));
    }
    case BmpType::kPeerDown: {
      BmpPeerDown down;
      if (!read_peer_header(body, down.peer) || !body.u8(down.reason)) {
        return std::nullopt;
      }
      return BmpMessage(down);
    }
    case BmpType::kPeerUp: {
      BmpPeerUp up;
      std::array<std::uint8_t, 16> local{};
      if (!read_peer_header(body, up.peer) ||
          !body.bytes(local.data(), local.size()) ||
          !body.u16(up.local_port) || !body.u16(up.remote_port)) {
        return std::nullopt;
      }
      // Local address: assume the family of the peer address.
      if (up.peer.address.is_v6()) {
        up.local_address = net::IpAddress::v6(local);
      } else {
        up.local_address = net::IpAddress::v4(
            (static_cast<std::uint32_t>(local[12]) << 24) |
            (static_cast<std::uint32_t>(local[13]) << 16) |
            (static_cast<std::uint32_t>(local[14]) << 8) | local[15]);
      }
      auto sent = read_pdu<OpenMessage>(body);
      auto received = read_pdu<OpenMessage>(body);
      if (!sent || !received) return std::nullopt;
      up.sent_open = *sent;
      up.received_open = *received;
      return BmpMessage(std::move(up));
    }
    case BmpType::kInitiation: {
      BmpInitiation initiation;
      if (!read_information(body, initiation.information)) return std::nullopt;
      return BmpMessage(std::move(initiation));
    }
    case BmpType::kTermination: {
      BmpTermination termination;
      if (!read_information(body, termination.information)) {
        return std::nullopt;
      }
      return BmpMessage(std::move(termination));
    }
  }
  return std::nullopt;
}

}  // namespace gill::wire
