#include "wire/messages.hpp"

#include <algorithm>
#include <cstring>

namespace gill::wire {

namespace {

// Path attribute type codes.
constexpr std::uint8_t kAttrOrigin = 1;
constexpr std::uint8_t kAttrAsPath = 2;
constexpr std::uint8_t kAttrNextHop = 3;
constexpr std::uint8_t kAttrCommunities = 8;
constexpr std::uint8_t kAttrMpReach = 14;
constexpr std::uint8_t kAttrMpUnreach = 15;

constexpr std::uint8_t kFlagTransitive = 0x40;
constexpr std::uint8_t kFlagOptional = 0x80;
constexpr std::uint8_t kFlagExtendedLength = 0x10;

constexpr std::uint8_t kAsPathSegmentSequence = 2;

// Capability codes carried in the OPEN optional parameter (type 2).
constexpr std::uint8_t kCapGracefulRestart = 64;  // RFC 4724
constexpr std::uint8_t kCapAs4 = 65;              // RFC 6793
// GR restart flags live in the top nibble of the first restart octet;
// the remaining 12 bits are the restart time in seconds.
constexpr std::uint16_t kGrRestartStateFlag = 0x8000;
constexpr std::uint8_t kGrForwardingPreserved = 0x80;  // per-AFI flag

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

/// NLRI encoding: length byte + minimal prefix bytes.
void put_nlri(std::vector<std::uint8_t>& out, const net::Prefix& prefix) {
  put_u8(out, static_cast<std::uint8_t>(prefix.length()));
  const std::size_t bytes = (prefix.length() + 7) / 8;
  for (std::size_t i = 0; i < bytes; ++i) {
    put_u8(out, prefix.address().bytes()[i]);
  }
}

void put_attribute(std::vector<std::uint8_t>& out, std::uint8_t flags,
                   std::uint8_t type, const std::vector<std::uint8_t>& value) {
  const bool extended = value.size() > 255;
  put_u8(out, static_cast<std::uint8_t>(flags |
                                        (extended ? kFlagExtendedLength : 0)));
  put_u8(out, type);
  if (extended) {
    put_u16(out, static_cast<std::uint16_t>(value.size()));
  } else {
    put_u8(out, static_cast<std::uint8_t>(value.size()));
  }
  out.insert(out.end(), value.begin(), value.end());
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> data) : data_(data) {}

  bool u8(std::uint8_t& v) {
    if (offset_ + 1 > data_.size()) return false;
    v = data_[offset_++];
    return true;
  }
  bool u16(std::uint16_t& v) {
    if (offset_ + 2 > data_.size()) return false;
    v = static_cast<std::uint16_t>((data_[offset_] << 8) | data_[offset_ + 1]);
    offset_ += 2;
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (offset_ + 4 > data_.size()) return false;
    v = (static_cast<std::uint32_t>(data_[offset_]) << 24) |
        (static_cast<std::uint32_t>(data_[offset_ + 1]) << 16) |
        (static_cast<std::uint32_t>(data_[offset_ + 2]) << 8) |
        static_cast<std::uint32_t>(data_[offset_ + 3]);
    offset_ += 4;
    return true;
  }
  bool bytes(std::uint8_t* out, std::size_t n) {
    if (offset_ + n > data_.size()) return false;
    std::memcpy(out, data_.data() + offset_, n);
    offset_ += n;
    return true;
  }
  bool skip(std::size_t n) {
    if (offset_ + n > data_.size()) return false;
    offset_ += n;
    return true;
  }
  std::size_t remaining() const noexcept { return data_.size() - offset_; }
  std::size_t offset() const noexcept { return offset_; }
  /// Sub-cursor over the next `n` bytes, clamped to the bytes that actually
  /// remain — a declared length can never make the cursor read past the end.
  Cursor sub(std::size_t n) const {
    return Cursor(data_.subspan(offset_, std::min(n, remaining())));
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
};

bool read_nlri(Cursor& cursor, net::Family family, net::Prefix& prefix) {
  std::uint8_t length = 0;
  if (!cursor.u8(length)) return false;
  const unsigned max_length = family == net::Family::v4 ? 32 : 128;
  if (length > max_length) return false;
  std::array<std::uint8_t, 16> bytes{};
  if (!cursor.bytes(bytes.data(), (length + 7) / 8)) return false;
  const net::IpAddress address =
      family == net::Family::v4
          ? net::IpAddress::v4((static_cast<std::uint32_t>(bytes[0]) << 24) |
                               (static_cast<std::uint32_t>(bytes[1]) << 16) |
                               (static_cast<std::uint32_t>(bytes[2]) << 8) |
                               bytes[3])
          : net::IpAddress::v6(bytes);
  prefix = net::Prefix(address, length);
  return true;
}

std::vector<std::uint8_t> encode_open(const OpenMessage& open) {
  std::vector<std::uint8_t> body;
  put_u8(body, open.version);
  // RFC 6793: 2-byte field carries AS_TRANS when the real AS needs 4 bytes.
  put_u16(body, open.as > 0xFFFF ? 23456
                                 : static_cast<std::uint16_t>(open.as));
  put_u16(body, open.hold_time);
  put_u32(body, open.bgp_id);
  // Optional parameter of type 2 holding the capability list.
  std::vector<std::uint8_t> capabilities;
  put_u8(capabilities, kCapAs4);  // capability code: AS4
  put_u8(capabilities, 4);        // capability length
  put_u32(capabilities, open.as);
  if (open.gr_enabled) {
    // RFC 4724: flags/restart-time word, then one (AFI, SAFI, flags)
    // tuple per address family whose state is preserved.
    std::uint16_t restart = open.gr_restart_time & 0x0FFF;
    if (open.gr_restarting) restart |= kGrRestartStateFlag;
    put_u8(capabilities, kCapGracefulRestart);
    put_u8(capabilities, 2 + 2 * 4);  // restart word + 2 AFI tuples
    put_u16(capabilities, restart);
    put_u16(capabilities, 1);  // AFI IPv4
    put_u8(capabilities, 1);   // SAFI unicast
    put_u8(capabilities, kGrForwardingPreserved);
    put_u16(capabilities, 2);  // AFI IPv6
    put_u8(capabilities, 1);   // SAFI unicast
    put_u8(capabilities, kGrForwardingPreserved);
  }
  put_u8(body, static_cast<std::uint8_t>(capabilities.size() + 2));
  put_u8(body, 2);  // param type: capability
  put_u8(body, static_cast<std::uint8_t>(capabilities.size()));
  body.insert(body.end(), capabilities.begin(), capabilities.end());
  return body;
}

std::vector<std::uint8_t> encode_update(const UpdateMessage& update) {
  std::vector<std::uint8_t> body;

  std::vector<std::uint8_t> withdrawn;
  for (const auto& prefix : update.withdrawn) put_nlri(withdrawn, prefix);
  put_u16(body, static_cast<std::uint16_t>(withdrawn.size()));
  body.insert(body.end(), withdrawn.begin(), withdrawn.end());

  std::vector<std::uint8_t> attributes;
  const bool announces = !update.nlri.empty() || !update.nlri_v6.empty();
  if (announces) {
    put_attribute(attributes, kFlagTransitive, kAttrOrigin, {0});  // IGP
    std::vector<std::uint8_t> as_path;
    if (!update.path.empty()) {
      put_u8(as_path, kAsPathSegmentSequence);
      put_u8(as_path, static_cast<std::uint8_t>(update.path.size()));
      for (const bgp::AsNumber hop : update.path.hops()) {
        put_u32(as_path, hop);
      }
    }
    put_attribute(attributes, kFlagTransitive, kAttrAsPath, as_path);
    if (!update.nlri.empty()) {
      std::vector<std::uint8_t> next_hop;
      put_u32(next_hop, update.next_hop);
      put_attribute(attributes, kFlagTransitive, kAttrNextHop, next_hop);
    }
    if (!update.communities.empty()) {
      std::vector<std::uint8_t> communities;
      for (const bgp::Community community : update.communities) {
        put_u32(communities, community.packed());
      }
      put_attribute(attributes, kFlagOptional | kFlagTransitive,
                    kAttrCommunities, communities);
    }
    if (!update.nlri_v6.empty()) {
      std::vector<std::uint8_t> mp;
      put_u16(mp, 2);  // AFI IPv6
      put_u8(mp, 1);   // SAFI unicast
      put_u8(mp, 0);   // next-hop length (omitted in this profile)
      put_u8(mp, 0);   // reserved
      for (const auto& prefix : update.nlri_v6) put_nlri(mp, prefix);
      put_attribute(attributes, kFlagOptional, kAttrMpReach, mp);
    }
  }
  if (!update.withdrawn_v6.empty()) {
    std::vector<std::uint8_t> mp;
    put_u16(mp, 2);
    put_u8(mp, 1);
    for (const auto& prefix : update.withdrawn_v6) put_nlri(mp, prefix);
    put_attribute(attributes, kFlagOptional, kAttrMpUnreach, mp);
  }
  put_u16(body, static_cast<std::uint16_t>(attributes.size()));
  body.insert(body.end(), attributes.begin(), attributes.end());

  for (const auto& prefix : update.nlri) put_nlri(body, prefix);
  return body;
}

std::optional<OpenMessage> decode_open(Cursor body) {
  OpenMessage open;
  std::uint16_t as2 = 0;
  if (!body.u8(open.version) || !body.u16(as2) || !body.u16(open.hold_time) ||
      !body.u32(open.bgp_id)) {
    return std::nullopt;
  }
  open.as = as2;
  std::uint8_t params_length = 0;
  if (!body.u8(params_length)) return std::nullopt;
  if (params_length > body.remaining()) return std::nullopt;
  Cursor params = body.sub(params_length);
  std::uint8_t param_type = 0;
  std::uint8_t param_length = 0;
  while (params.remaining() >= 2) {
    if (!params.u8(param_type) || !params.u8(param_length)) break;
    if (param_type != 2) {  // not a capability: skip
      if (!params.skip(param_length)) break;
      continue;
    }
    Cursor capabilities = params.sub(param_length);
    if (!params.skip(param_length)) break;
    std::uint8_t code = 0;
    std::uint8_t length = 0;
    while (capabilities.remaining() >= 2) {
      if (!capabilities.u8(code) || !capabilities.u8(length)) break;
      if (code == kCapAs4 && length == 4) {
        std::uint32_t as4 = 0;
        if (!capabilities.u32(as4)) break;
        open.as = as4;
      } else if (code == kCapGracefulRestart && length >= 2) {
        std::uint16_t restart = 0;
        if (!capabilities.u16(restart)) break;
        open.gr_enabled = true;
        open.gr_restarting = (restart & kGrRestartStateFlag) != 0;
        open.gr_restart_time = restart & 0x0FFF;
        if (!capabilities.skip(length - 2)) break;  // AFI tuples
      } else if (!capabilities.skip(length)) {
        break;
      }
    }
  }
  return open;
}

std::optional<UpdateMessage> decode_update(Cursor body) {
  UpdateMessage update;
  std::uint16_t withdrawn_length = 0;
  if (!body.u16(withdrawn_length)) return std::nullopt;
  if (withdrawn_length > body.remaining()) return std::nullopt;
  {
    Cursor withdrawn = body.sub(withdrawn_length);
    if (!body.skip(withdrawn_length)) return std::nullopt;
    while (withdrawn.remaining() > 0) {
      net::Prefix prefix;
      if (!read_nlri(withdrawn, net::Family::v4, prefix)) return std::nullopt;
      update.withdrawn.push_back(prefix);
    }
  }

  std::uint16_t attributes_length = 0;
  if (!body.u16(attributes_length)) return std::nullopt;
  if (attributes_length > body.remaining()) return std::nullopt;
  Cursor attributes = body.sub(attributes_length);
  if (!body.skip(attributes_length)) return std::nullopt;

  while (attributes.remaining() > 0) {
    std::uint8_t flags = 0;
    std::uint8_t type = 0;
    if (!attributes.u8(flags) || !attributes.u8(type)) return std::nullopt;
    std::size_t length = 0;
    if (flags & kFlagExtendedLength) {
      std::uint16_t extended = 0;
      if (!attributes.u16(extended)) return std::nullopt;
      length = extended;
    } else {
      std::uint8_t narrow = 0;
      if (!attributes.u8(narrow)) return std::nullopt;
      length = narrow;
    }
    if (length > attributes.remaining()) return std::nullopt;
    Cursor value = attributes.sub(length);
    if (!attributes.skip(length)) return std::nullopt;

    switch (type) {
      case kAttrAsPath: {
        std::vector<bgp::AsNumber> hops;
        std::uint8_t segment_type = 0;
        std::uint8_t segment_length = 0;
        while (value.remaining() >= 2) {
          if (!value.u8(segment_type) || !value.u8(segment_length)) {
            return std::nullopt;
          }
          for (std::uint8_t i = 0; i < segment_length; ++i) {
            std::uint32_t as = 0;
            if (!value.u32(as)) return std::nullopt;
            hops.push_back(as);
          }
        }
        update.path = bgp::AsPath(std::move(hops));
        break;
      }
      case kAttrNextHop: {
        if (!value.u32(update.next_hop)) return std::nullopt;
        break;
      }
      case kAttrCommunities: {
        while (value.remaining() >= 4) {
          std::uint32_t packed = 0;
          if (!value.u32(packed)) return std::nullopt;
          bgp::insert_community(update.communities,
                                bgp::Community::from_packed(packed));
        }
        break;
      }
      case kAttrMpReach: {
        std::uint16_t afi = 0;
        std::uint8_t safi = 0;
        std::uint8_t next_hop_length = 0;
        std::uint8_t reserved = 0;
        if (!value.u16(afi) || !value.u8(safi) || !value.u8(next_hop_length) ||
            !value.skip(next_hop_length) || !value.u8(reserved)) {
          return std::nullopt;
        }
        while (afi == 2 && value.remaining() > 0) {
          net::Prefix prefix;
          if (!read_nlri(value, net::Family::v6, prefix)) return std::nullopt;
          update.nlri_v6.push_back(prefix);
        }
        break;
      }
      case kAttrMpUnreach: {
        std::uint16_t afi = 0;
        std::uint8_t safi = 0;
        if (!value.u16(afi) || !value.u8(safi)) return std::nullopt;
        while (afi == 2 && value.remaining() > 0) {
          net::Prefix prefix;
          if (!read_nlri(value, net::Family::v6, prefix)) return std::nullopt;
          update.withdrawn_v6.push_back(prefix);
        }
        break;
      }
      default:
        break;  // unknown attributes are skipped (already consumed)
    }
  }

  while (body.remaining() > 0) {
    net::Prefix prefix;
    if (!read_nlri(body, net::Family::v4, prefix)) return std::nullopt;
    update.nlri.push_back(prefix);
  }
  return update;
}

}  // namespace

bool is_end_of_rib(const UpdateMessage& update) noexcept {
  return update.withdrawn.empty() && update.nlri.empty() &&
         update.path.empty() && update.communities.empty() &&
         update.nlri_v6.empty() && update.withdrawn_v6.empty();
}

MessageType type_of(const Message& message) noexcept {
  if (std::holds_alternative<OpenMessage>(message)) return MessageType::kOpen;
  if (std::holds_alternative<UpdateMessage>(message)) {
    return MessageType::kUpdate;
  }
  if (std::holds_alternative<NotificationMessage>(message)) {
    return MessageType::kNotification;
  }
  return MessageType::kKeepalive;
}

std::vector<std::uint8_t> encode(const Message& message) {
  std::vector<std::uint8_t> body;
  if (const auto* open = std::get_if<OpenMessage>(&message)) {
    body = encode_open(*open);
  } else if (const auto* update = std::get_if<UpdateMessage>(&message)) {
    body = encode_update(*update);
  } else if (const auto* notification =
                 std::get_if<NotificationMessage>(&message)) {
    body = {notification->code, notification->subcode};
  }

  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + body.size());
  out.insert(out.end(), 16, 0xFF);  // marker
  put_u16(out, static_cast<std::uint16_t>(kHeaderSize + body.size()));
  put_u8(out, static_cast<std::uint8_t>(type_of(message)));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::string_view to_string(DecodeError error) noexcept {
  switch (error) {
    case DecodeError::kNone: return "none";
    case DecodeError::kIncomplete: return "incomplete";
    case DecodeError::kBadMarker: return "bad-marker";
    case DecodeError::kBadLength: return "bad-length";
    case DecodeError::kUnknownType: return "unknown-type";
    case DecodeError::kMalformedOpen: return "malformed-open";
    case DecodeError::kMalformedUpdate: return "malformed-update";
    case DecodeError::kMalformedNotification: return "malformed-notification";
  }
  return "?";
}

std::optional<Message> decode(std::span<const std::uint8_t> data,
                              std::size_t& consumed, DecodeError& error) {
  consumed = 0;
  error = DecodeError::kNone;
  if (data.size() < kHeaderSize) {
    error = DecodeError::kIncomplete;
    return std::nullopt;
  }
  for (std::size_t i = 0; i < 16; ++i) {
    if (data[i] != 0xFF) {
      consumed = 1;  // garbage: resynchronize byte by byte
      error = DecodeError::kBadMarker;
      return std::nullopt;
    }
  }
  const std::uint16_t length =
      static_cast<std::uint16_t>((data[16] << 8) | data[17]);
  if (length < kHeaderSize || length > kMaxMessageSize) {
    consumed = 1;
    error = DecodeError::kBadLength;
    return std::nullopt;
  }
  if (data.size() < length) {
    error = DecodeError::kIncomplete;
    return std::nullopt;  // incomplete
  }
  const std::uint8_t type = data[18];
  Cursor body(data.subspan(kHeaderSize, length - kHeaderSize));
  consumed = length;
  switch (static_cast<MessageType>(type)) {
    case MessageType::kOpen: {
      auto open = decode_open(body);
      if (!open) {
        error = DecodeError::kMalformedOpen;
        return std::nullopt;
      }
      return Message(*open);
    }
    case MessageType::kUpdate: {
      auto update = decode_update(body);
      if (!update) {
        error = DecodeError::kMalformedUpdate;
        return std::nullopt;
      }
      return Message(*update);
    }
    case MessageType::kNotification: {
      NotificationMessage notification;
      Cursor cursor = body;
      if (!cursor.u8(notification.code) || !cursor.u8(notification.subcode)) {
        error = DecodeError::kMalformedNotification;
        return std::nullopt;
      }
      return Message(notification);
    }
    case MessageType::kKeepalive:
      return Message(KeepaliveMessage{});
  }
  error = DecodeError::kUnknownType;
  return std::nullopt;
}

}  // namespace gill::wire
