// Every sampling scheme benchmarked in §10 (Table 2) plus the §11 baseline:
//   GILL (full pipeline), GILL-upd, GILL-vp,
//   naive: Rnd.-Upd., Rnd.-VP, AS-Dist., Unbiased,
//   definition-based specifics (Defs 1-3),
//   use-case-based specifics (one per §10 use case).
// All schemes consume the same inputs and return a DataSample; budgets are
// expressed in retained updates so every baseline processes the same data
// volume as GILL, exactly as the paper enforces.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "redundancy/definitions.hpp"
#include "sampling/gill_pipeline.hpp"
#include "simulator/internet.hpp"
#include "usecases/data_sample.hpp"

namespace gill::sample {

using uc::DataSample;

/// Everything a scheme may look at.
struct SamplingContext {
  /// Updates of the evaluation window, all VPs (what RIS/RV would store).
  const UpdateStream* all_updates = nullptr;
  /// Full RIB dump at the window start.
  const UpdateStream* all_ribs = nullptr;
  /// Earlier training window for GILL's components (may alias all_updates
  /// when no separate training data exists).
  const UpdateStream* training = nullptr;
  const UpdateStream* training_ribs = nullptr;
  /// AS topology, for AS-Dist./Unbiased and Table 5 categories.
  const topo::AsTopology* topology = nullptr;
  /// VpId -> hosting AS.
  const std::vector<bgp::AsNumber>* vp_hosts = nullptr;
  /// Ground truth of the evaluation window — only the use-case-based
  /// specifics may use it (they optimize their own objective, §10).
  const std::vector<sim::GroundTruth>* truths = nullptr;
  const uc::OriginTable* origins = nullptr;
  std::uint64_t seed = 1;
};

/// Base interface. `budget` caps retained updates; 0 = scheme-defined
/// natural volume (only meaningful for GILL, which sets the budget).
class Sampler {
 public:
  virtual ~Sampler() = default;
  virtual std::string name() const = 0;
  virtual DataSample sample(const SamplingContext& context,
                            std::size_t budget) const = 0;
};

// --- GILL and simplified variants -------------------------------------------

class GillSampler : public Sampler {
 public:
  explicit GillSampler(GillConfig config = {}) : config_(std::move(config)) {}
  std::string name() const override { return "GILL"; }
  DataSample sample(const SamplingContext& context,
                    std::size_t budget) const override;

  /// The pipeline result of the last sample() call (filters, anchors, ...).
  const GillPipelineResult& last_pipeline() const { return pipeline_; }

 private:
  GillConfig config_;
  mutable GillPipelineResult pipeline_;
};

/// GILL-upd: Component #1 only (update granularity, no anchors).
class GillUpdSampler : public Sampler {
 public:
  std::string name() const override { return "GILL-upd"; }
  DataSample sample(const SamplingContext& context,
                    std::size_t budget) const override;
};

/// GILL-vp: Component #2 only (keep everything from anchors, nothing else).
class GillVpSampler : public Sampler {
 public:
  std::string name() const override { return "GILL-vp"; }
  DataSample sample(const SamplingContext& context,
                    std::size_t budget) const override;
};

// --- Naive baselines ----------------------------------------------------------

class RandomUpdateSampler : public Sampler {
 public:
  std::string name() const override { return "Rnd.-Upd."; }
  DataSample sample(const SamplingContext& context,
                    std::size_t budget) const override;
};

class RandomVpSampler : public Sampler {
 public:
  std::string name() const override { return "Rnd.-VP"; }
  DataSample sample(const SamplingContext& context,
                    std::size_t budget) const override;
};

/// Picks VPs maximizing pairwise AS-level (BFS hop) distance.
class AsDistanceSampler : public Sampler {
 public:
  std::string name() const override { return "AS-Dist."; }
  DataSample sample(const SamplingContext& context,
                    std::size_t budget) const override;
};

/// Sermpezis-style bias minimization: starts from all VPs and iteratively
/// removes the VP whose removal best reduces the category-distribution bias
/// until the budget is met.
class UnbiasedSampler : public Sampler {
 public:
  std::string name() const override { return "Unbiased"; }
  DataSample sample(const SamplingContext& context,
                    std::size_t budget) const override;
};

// --- Definition-based specifics ------------------------------------------------

/// Greedy VP selection minimizing redundancy under one §4.2 definition.
class DefinitionSampler : public Sampler {
 public:
  explicit DefinitionSampler(red::Definition definition)
      : definition_(definition) {}
  std::string name() const override {
    return "Def. " + std::to_string(static_cast<int>(definition_));
  }
  DataSample sample(const SamplingContext& context,
                    std::size_t budget) const override;

 private:
  red::Definition definition_;
};

// --- Use-case-based specifics ----------------------------------------------------

/// The §10 use cases a specific sampler can optimize for.
enum class UseCase {
  kTransientPaths,   // I
  kMoas,             // II
  kTopologyMapping,  // III
  kActionComms,      // IV
  kUnchangedPaths,   // V
};

std::string_view to_string(UseCase use_case) noexcept;

/// Greedy VP selection maximizing the use case's own score per update —
/// deliberately overfit to its objective (§10 "Use-case-based specifics").
class UseCaseSampler : public Sampler {
 public:
  explicit UseCaseSampler(UseCase use_case) : use_case_(use_case) {}
  std::string name() const override {
    return std::string("Spec. ") + std::string(to_string(use_case_));
  }
  DataSample sample(const SamplingContext& context,
                    std::size_t budget) const override;

 private:
  UseCase use_case_;
};

/// Scores a sample on one §10 use case (shared by benches and samplers).
double score_use_case(UseCase use_case, const DataSample& sample,
                      const SamplingContext& context);

/// Collects every update (and the RIBs) of the given VPs, stopping at
/// `budget` retained updates. Shared by all VP-granularity schemes.
DataSample collect_vps(const SamplingContext& context,
                       const std::vector<bgp::VpId>& vps, std::size_t budget);

}  // namespace gill::sample
