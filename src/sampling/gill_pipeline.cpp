#include "sampling/gill_pipeline.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace gill::sample {

GillPipelineResult run_gill_pipeline(
    const UpdateStream& rib, const UpdateStream& training,
    const std::vector<topo::AsCategory>& categories, const GillConfig& config,
    const PipelineRuntime& runtime) {
  GillPipelineResult result;

  // Component #1: redundant updates.
  result.component1 =
      red::find_redundant_updates(training, config.component1, runtime.pool);

  if (config.use_anchors) {
    // All VPs appearing in the training data.
    std::set<VpId> vp_set;
    for (const auto& update : training) vp_set.insert(update.vp);
    for (const auto& entry : rib) vp_set.insert(entry.vp);
    std::vector<VpId> vps(vp_set.begin(), vp_set.end());

    // Event inference + §18.1 stratified selection.
    const auto inferred =
        anchor::infer_events(rib, training, config.event_inference);
    const auto candidates = anchor::filter_non_global(
        inferred, vps.size(), config.event_selection.max_visibility);
    const auto events =
        anchor::select_events(candidates, categories, config.event_selection);
    result.events_used = events.size();

    if (!events.empty() && vps.size() >= 2) {
      // Components #2 steps 2-4.
      anchor::EventFeatureExtractor extractor(vps);
      auto matrices = extractor.extract(rib, training, events);
      result.scores = anchor::redundancy_scores(
          std::move(matrices), vps, runtime.pool, runtime.score_cache);
      result.scored_vps = vps;

      std::map<VpId, double> volume_by_vp;
      for (const auto& update : training) volume_by_vp[update.vp] += 1.0;
      std::vector<double> volumes;
      volumes.reserve(vps.size());
      for (const VpId vp : vps) volumes.push_back(volume_by_vp[vp]);

      anchor::Component2Config component2 = config.component2;
      component2.max_anchors = std::min<std::size_t>(
          component2.max_anchors,
          std::max<std::size_t>(
              1, static_cast<std::size_t>(config.max_anchor_fraction *
                                          static_cast<double>(vps.size()))));
      result.anchors =
          anchor::select_anchors(result.scores, vps, volumes, component2)
              .anchors;
    }
  }

  result.filters = filt::generate_filters(result.component1, result.anchors,
                                          config.granularity, &training);
  return result;
}

}  // namespace gill::sample
