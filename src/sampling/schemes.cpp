#include "sampling/schemes.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <random>
#include <set>

#include "bgp/delta.hpp"
#include "usecases/detectors.hpp"

namespace gill::sample {

namespace {

std::vector<bgp::VpId> all_vps(const SamplingContext& context) {
  std::set<bgp::VpId> vps;
  for (const auto& update : *context.all_updates) vps.insert(update.vp);
  if (context.all_ribs) {
    for (const auto& entry : *context.all_ribs) vps.insert(entry.vp);
  }
  return {vps.begin(), vps.end()};
}

std::map<bgp::VpId, std::size_t> volume_per_vp(const UpdateStream& stream) {
  std::map<bgp::VpId, std::size_t> volumes;
  for (const auto& update : stream) ++volumes[update.vp];
  return volumes;
}

}  // namespace

DataSample collect_vps(const SamplingContext& context,
                       const std::vector<bgp::VpId>& vps, std::size_t budget) {
  DataSample sample;
  const std::set<bgp::VpId> selected(vps.begin(), vps.end());
  for (const auto& update : *context.all_updates) {
    if (!selected.contains(update.vp)) continue;
    if (budget != 0 && sample.updates.size() >= budget) break;
    sample.updates.push(update);
  }
  if (context.all_ribs) {
    for (const auto& entry : *context.all_ribs) {
      if (selected.contains(entry.vp)) sample.ribs.push(entry);
    }
  }
  return sample;
}

// --- GILL ---------------------------------------------------------------------

DataSample GillSampler::sample(const SamplingContext& context,
                               std::size_t budget) const {
  std::vector<topo::AsCategory> categories;
  if (context.topology) categories = topo::classify_ases(*context.topology);

  const UpdateStream& training =
      context.training ? *context.training : *context.all_updates;
  const UpdateStream& training_ribs =
      context.training_ribs ? *context.training_ribs
                            : (context.all_ribs ? *context.all_ribs
                                                : UpdateStream{});
  pipeline_ = run_gill_pipeline(training_ribs, training, categories, config_);

  DataSample sample;
  for (const auto& update : *context.all_updates) {
    if (!pipeline_.filters.accept(update)) continue;
    if (budget != 0 && sample.updates.size() >= budget) break;
    sample.updates.push(update);
  }
  if (context.all_ribs) {
    for (const auto& entry : *context.all_ribs) {
      if (pipeline_.filters.is_anchor(entry.vp)) sample.ribs.push(entry);
    }
  }
  return sample;
}

DataSample GillUpdSampler::sample(const SamplingContext& context,
                                  std::size_t budget) const {
  GillConfig config;
  config.use_anchors = false;
  GillSampler gill(config);
  return gill.sample(context, budget);
}

DataSample GillVpSampler::sample(const SamplingContext& context,
                                 std::size_t budget) const {
  GillConfig config;
  GillSampler gill(config);
  gill.sample(context, 0);  // run the pipeline for its anchors
  const auto& anchors = gill.last_pipeline().anchors;
  return collect_vps(context, anchors, budget);
}

// --- Naive baselines -------------------------------------------------------------

DataSample RandomUpdateSampler::sample(const SamplingContext& context,
                                       std::size_t budget) const {
  std::mt19937_64 rng(context.seed);
  const auto& updates = context.all_updates->updates();
  std::vector<std::size_t> order(updates.size());
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);
  if (budget != 0 && order.size() > budget) order.resize(budget);
  std::sort(order.begin(), order.end());
  DataSample sample;
  for (const std::size_t index : order) sample.updates.push(updates[index]);
  return sample;
}

DataSample RandomVpSampler::sample(const SamplingContext& context,
                                   std::size_t budget) const {
  std::mt19937_64 rng(context.seed);
  std::vector<bgp::VpId> vps = all_vps(context);
  std::shuffle(vps.begin(), vps.end(), rng);

  const auto volumes = volume_per_vp(*context.all_updates);
  std::vector<bgp::VpId> selected;
  std::size_t total = 0;
  for (const bgp::VpId vp : vps) {
    selected.push_back(vp);
    const auto it = volumes.find(vp);
    total += it == volumes.end() ? 0 : it->second;
    if (budget != 0 && total >= budget) break;
  }
  return collect_vps(context, selected, budget);
}

DataSample AsDistanceSampler::sample(const SamplingContext& context,
                                     std::size_t budget) const {
  std::mt19937_64 rng(context.seed);
  std::vector<bgp::VpId> vps = all_vps(context);
  if (vps.empty() || !context.topology || !context.vp_hosts) {
    return RandomVpSampler().sample(context, budget);
  }
  const auto& topology = *context.topology;
  const auto& hosts = *context.vp_hosts;

  // BFS hop distances from each VP host (unweighted AS graph).
  auto bfs_from = [&](bgp::AsNumber source) {
    std::vector<unsigned> distance(topology.as_count(), UINT32_MAX);
    std::queue<bgp::AsNumber> queue;
    distance[source] = 0;
    queue.push(source);
    while (!queue.empty()) {
      const bgp::AsNumber u = queue.front();
      queue.pop();
      for (const bgp::AsNumber v : topology.neighbors(u)) {
        if (distance[v] == UINT32_MAX) {
          distance[v] = distance[u] + 1;
          queue.push(v);
        }
      }
    }
    return distance;
  };

  const auto volumes = volume_per_vp(*context.all_updates);
  std::uniform_int_distribution<std::size_t> pick(0, vps.size() - 1);
  std::vector<bgp::VpId> selected{vps[pick(rng)]};
  std::vector<unsigned> min_distance =
      bfs_from(hosts[selected[0]]);  // distance to nearest selected VP
  std::size_t total = volumes.contains(selected[0])
                          ? volumes.at(selected[0])
                          : 0;

  std::set<bgp::VpId> chosen(selected.begin(), selected.end());
  while ((budget == 0 || total < budget) && chosen.size() < vps.size()) {
    bgp::VpId best = vps[0];
    unsigned best_distance = 0;
    for (const bgp::VpId vp : vps) {
      if (chosen.contains(vp)) continue;
      const unsigned d = min_distance[hosts[vp]];
      if (d != UINT32_MAX && d > best_distance) {
        best_distance = d;
        best = vp;
      }
    }
    if (best_distance == 0) {
      // Everything remaining is adjacent/unreachable: fall back to any VP.
      for (const bgp::VpId vp : vps) {
        if (!chosen.contains(vp)) {
          best = vp;
          break;
        }
      }
    }
    chosen.insert(best);
    selected.push_back(best);
    total += volumes.contains(best) ? volumes.at(best) : 0;
    const auto d = bfs_from(hosts[best]);
    for (std::size_t i = 0; i < min_distance.size(); ++i) {
      min_distance[i] = std::min(min_distance[i], d[i]);
    }
    if (budget == 0) break;  // no budget: single farthest pick round
  }
  return collect_vps(context, selected, budget);
}

DataSample UnbiasedSampler::sample(const SamplingContext& context,
                                   std::size_t budget) const {
  std::vector<bgp::VpId> vps = all_vps(context);
  if (!context.topology || !context.vp_hosts) {
    return RandomVpSampler().sample(context, budget);
  }
  const auto categories = topo::classify_ases(*context.topology);
  const auto& hosts = *context.vp_hosts;

  // Reference distribution: category shares over *all* ASes.
  std::array<double, topo::kCategoryCount> reference{};
  for (const auto category : categories) {
    reference[static_cast<std::size_t>(category) - 1] +=
        1.0 / static_cast<double>(categories.size());
  }
  auto bias_of = [&](const std::vector<bgp::VpId>& selected) {
    std::array<double, topo::kCategoryCount> shares{};
    for (const bgp::VpId vp : selected) {
      shares[static_cast<std::size_t>(categories[hosts[vp]]) - 1] +=
          1.0 / static_cast<double>(selected.size());
    }
    double bias = 0.0;
    for (std::size_t c = 0; c < topo::kCategoryCount; ++c) {
      const double d = shares[c] - reference[c];
      bias += d * d;
    }
    return bias;
  };

  const auto volumes = volume_per_vp(*context.all_updates);
  auto total_volume = [&](const std::vector<bgp::VpId>& selected) {
    std::size_t total = 0;
    for (const bgp::VpId vp : selected) {
      total += volumes.contains(vp) ? volumes.at(vp) : 0;
    }
    return total;
  };

  std::vector<bgp::VpId> selected = vps;
  while (selected.size() > 1 && budget != 0 &&
         total_volume(selected) > budget) {
    // Remove the VP whose removal yields the lowest bias.
    std::size_t best_index = 0;
    double best_bias = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < selected.size(); ++i) {
      std::vector<bgp::VpId> trial = selected;
      trial.erase(trial.begin() + static_cast<std::ptrdiff_t>(i));
      const double bias = bias_of(trial);
      if (bias < best_bias) {
        best_bias = bias;
        best_index = i;
      }
    }
    selected.erase(selected.begin() + static_cast<std::ptrdiff_t>(best_index));
  }
  return collect_vps(context, selected, budget);
}

// --- Definition-based specifics ------------------------------------------------

DataSample DefinitionSampler::sample(const SamplingContext& context,
                                     std::size_t budget) const {
  const auto annotated =
      bgp::DeltaTracker::annotate_stream(*context.all_updates);
  red::RedundancyAnalyzer analyzer(annotated);
  const auto& vps = analyzer.vps();
  if (vps.empty()) return {};

  // Pairwise "fraction of a's updates redundant with b" approximated by the
  // boolean redundancy matrix; greedy selection minimizes redundancy with
  // the already selected set.
  const auto matrix = analyzer.vp_redundancy_matrix(definition_, 0.5);
  const auto volumes = volume_per_vp(*context.all_updates);

  std::vector<std::size_t> order;  // positions into vps
  std::vector<bool> used(vps.size(), false);
  // Start with the VP least redundant with everyone.
  std::size_t first = 0;
  std::size_t lowest = SIZE_MAX;
  for (std::size_t i = 0; i < vps.size(); ++i) {
    const auto count = static_cast<std::size_t>(
        std::count(matrix[i].begin(), matrix[i].end(), true));
    if (count < lowest) {
      lowest = count;
      first = i;
    }
  }
  order.push_back(first);
  used[first] = true;
  std::size_t total = volumes.contains(vps[first]) ? volumes.at(vps[first]) : 0;

  while ((budget == 0 || total < budget) && order.size() < vps.size()) {
    std::size_t best = SIZE_MAX;
    std::size_t best_redundancy = SIZE_MAX;
    for (std::size_t i = 0; i < vps.size(); ++i) {
      if (used[i]) continue;
      std::size_t redundancy = 0;
      for (const std::size_t j : order) {
        if (matrix[i][j]) ++redundancy;
        if (matrix[j][i]) ++redundancy;
      }
      if (redundancy < best_redundancy) {
        best_redundancy = redundancy;
        best = i;
      }
    }
    if (best == SIZE_MAX) break;
    used[best] = true;
    order.push_back(best);
    total += volumes.contains(vps[best]) ? volumes.at(vps[best]) : 0;
    if (budget == 0) break;
  }

  std::vector<bgp::VpId> selected;
  selected.reserve(order.size());
  for (const std::size_t i : order) selected.push_back(vps[i]);
  return collect_vps(context, selected, budget);
}

// --- Use-case specifics -----------------------------------------------------------

std::string_view to_string(UseCase use_case) noexcept {
  switch (use_case) {
    case UseCase::kTransientPaths: return "I";
    case UseCase::kMoas: return "II";
    case UseCase::kTopologyMapping: return "III";
    case UseCase::kActionComms: return "IV";
    case UseCase::kUnchangedPaths: return "V";
  }
  return "?";
}

double score_use_case(UseCase use_case, const DataSample& sample,
                      const SamplingContext& context) {
  static const uc::OriginTable kEmptyOrigins;
  const auto& truths = *context.truths;
  switch (use_case) {
    case UseCase::kTransientPaths:
      return uc::transient_detection_score(sample, truths);
    case UseCase::kMoas:
      return uc::moas_detection_score(
          sample, context.origins ? *context.origins : kEmptyOrigins, truths);
    case UseCase::kTopologyMapping: {
      // Reference: links visible in the full data (per §10 "687K distinct
      // AS links observed").
      DataSample all;
      all.updates = *context.all_updates;
      if (context.all_ribs) all.ribs = *context.all_ribs;
      return uc::topology_mapping_score(sample, uc::observed_links(all));
    }
    case UseCase::kActionComms:
      return uc::action_community_score(sample, truths);
    case UseCase::kUnchangedPaths:
      return uc::unchanged_path_score(sample, truths);
  }
  return 0.0;
}

DataSample UseCaseSampler::sample(const SamplingContext& context,
                                  std::size_t budget) const {
  const std::vector<bgp::VpId> vps = all_vps(context);
  const auto volumes = volume_per_vp(*context.all_updates);

  std::vector<bgp::VpId> selected;
  std::set<bgp::VpId> chosen;
  std::size_t total = 0;
  double current_score = 0.0;

  while ((budget == 0 || total < budget) && chosen.size() < vps.size()) {
    bgp::VpId best = 0;
    double best_gain = -1.0;
    std::size_t best_volume = 0;
    for (const bgp::VpId vp : vps) {
      if (chosen.contains(vp)) continue;
      std::vector<bgp::VpId> trial = selected;
      trial.push_back(vp);
      const DataSample trial_sample = collect_vps(context, trial, budget);
      const double score = score_use_case(use_case_, trial_sample, context);
      const auto volume = volumes.contains(vp) ? volumes.at(vp) : 0;
      // Gain per update: the trade-off the paper's specifics optimize.
      const double gain = (score - current_score) /
                          static_cast<double>(std::max<std::size_t>(volume, 1));
      if (gain > best_gain) {
        best_gain = gain;
        best = vp;
        best_volume = volume;
      }
    }
    if (best_gain < 0.0) break;
    chosen.insert(best);
    selected.push_back(best);
    total += best_volume;
    current_score = score_use_case(
        use_case_, collect_vps(context, selected, budget), context);
    if (budget == 0) break;
  }
  return collect_vps(context, selected, budget);
}

}  // namespace gill::sample
