// The end-to-end GILL sampling pipeline (Fig. 9, algorithmic side):
// Component #1 (redundant updates) + event inference + Component #2
// (anchor VPs) + filter generation. This is what the orchestrator runs
// every 16 days / year respectively (§7).
#pragma once

#include "anchor/component2.hpp"
#include "anchor/event_inference.hpp"
#include "anchor/scoring.hpp"
#include "filters/filters.hpp"
#include "redundancy/component1.hpp"

namespace gill::par {
class ThreadPool;
}  // namespace gill::par

namespace gill::sample {

using bgp::UpdateStream;
using bgp::VpId;

struct GillConfig {
  red::Component1Config component1;
  anchor::EventSelectionConfig event_selection;
  anchor::EventInferenceConfig event_inference;
  anchor::Component2Config component2;
  filt::Granularity granularity = filt::Granularity::kVpPrefix;
  /// false disables Component #2 => the GILL-upd simplified variant.
  bool use_anchors = true;
  /// Upper bound on anchors as a fraction of the VPs — the safety valve
  /// against degenerate score matrices where the stop rule never fires
  /// (anchor share shrinks with coverage in the paper: 17% at 2% coverage
  /// down to 0.4% at 100%).
  double max_anchor_fraction = 0.1;

  GillConfig() {
    // Simulation-scale default: the paper uses 2250 events on the real
    // platforms; benches override per experiment.
    event_selection.per_type_quota = 45;
  }
};

struct GillPipelineResult {
  red::Component1Result component1;
  std::vector<VpId> anchors;
  filt::FilterTable filters;
  /// Pairwise redundancy scores and the VP order they index.
  std::vector<std::vector<double>> scores;
  std::vector<VpId> scored_vps;
  std::size_t events_used = 0;
};

/// Execution-time resources (as opposed to the algorithmic knobs in
/// GillConfig): the worker pool the parallel stages fan out on, and the
/// cross-refresh pairwise-score cache. Both optional; the defaults run the
/// historical serial, cache-free pipeline.
struct PipelineRuntime {
  par::ThreadPool* pool = nullptr;
  anchor::ScoreCache* score_cache = nullptr;
};

/// Runs the pipeline on a training window. `rib` is the RIB dump at the
/// start of the window; `categories` stratifies event selection (Table 5).
/// The parallel stages (per-prefix Component #1, pairwise VP scoring) are
/// byte-deterministic: any `runtime` produces the serial path's result.
GillPipelineResult run_gill_pipeline(
    const UpdateStream& rib, const UpdateStream& training,
    const std::vector<topo::AsCategory>& categories, const GillConfig& config,
    const PipelineRuntime& runtime = {});

}  // namespace gill::sample
