#include "harness/interarrival.hpp"

#include <algorithm>
#include <cmath>

namespace gill::harness {

LongMemoryScheduler::LongMemoryScheduler(InterarrivalConfig config)
    : config_(config), rng_(config.seed) {
  const int k = std::max(0, config_.timescales);
  components_.assign(static_cast<std::size_t>(k), 0.0);
  rho_.resize(components_.size());
  sigma_.resize(components_.size());
  double timescale = std::max(1.0, config_.base_timescale);
  // Equal stationary variance per component: the cascade's total variance
  // is volatility^2 regardless of K, so K only widens the correlation span.
  const double per_component_var =
      components_.empty()
          ? 0.0
          : (config_.volatility * config_.volatility) /
                static_cast<double>(components_.size());
  for (std::size_t i = 0; i < components_.size(); ++i) {
    rho_[i] = std::exp(-1.0 / timescale);
    sigma_[i] = std::sqrt(per_component_var * (1.0 - rho_[i] * rho_[i]));
    timescale *= 2.0;
  }
  // Warm the cascade to its stationary distribution so the first gaps are
  // not biased toward the zero start.
  for (std::size_t i = 0; i < components_.size(); ++i) {
    components_[i] = gauss_(rng_) * std::sqrt(per_component_var);
  }
  step_modulation();
}

void LongMemoryScheduler::step_modulation() {
  double log_intensity = 0.0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    components_[i] = rho_[i] * components_[i] + sigma_[i] * gauss_(rng_);
    log_intensity += components_[i];
  }
  // E[exp(X)] = exp(var/2) for Gaussian X: divide it out so the mean rate
  // stays at the configured value whatever the volatility.
  const double correction =
      0.5 * config_.volatility * config_.volatility;
  rate_ = config_.mean_rate_per_sec * std::exp(log_intensity - correction);
  rate_ = std::max(rate_, config_.mean_rate_per_sec * 1e-3);
}

double LongMemoryScheduler::next_gap_ms() {
  step_modulation();
  std::exponential_distribution<double> gap(rate_);
  return 1000.0 * gap(rng_);
}

std::vector<double> LongMemoryScheduler::pace(std::size_t n,
                                              double duration_ms) {
  std::vector<double> offsets(n, 0.0);
  if (n == 0) return offsets;
  double clock = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    clock += next_gap_ms();
    offsets[i] = clock;
  }
  const double total = offsets.back();
  if (total <= 0.0 || duration_ms <= 0.0) {
    std::fill(offsets.begin(), offsets.end(), 0.0);
    return offsets;
  }
  const double scale = duration_ms / total;
  for (double& offset : offsets) offset *= scale;
  return offsets;
}

double variance_time_hurst(const std::vector<double>& counts) {
  // Aggregate the series at scales m = 1, 2, 4, ... and regress
  // log Var(m) on log m; the slope is 2H - 1 for the *mean* of each block,
  // i.e. Var(block mean at scale m) ~ m^(2H-2).
  std::vector<double> log_m, log_var;
  for (std::size_t m = 1; counts.size() / m >= 8; m *= 2) {
    const std::size_t blocks = counts.size() / m;
    std::vector<double> means(blocks, 0.0);
    for (std::size_t b = 0; b < blocks; ++b) {
      double sum = 0.0;
      for (std::size_t i = 0; i < m; ++i) sum += counts[b * m + i];
      means[b] = sum / static_cast<double>(m);
    }
    double mean = 0.0;
    for (double v : means) mean += v;
    mean /= static_cast<double>(blocks);
    double var = 0.0;
    for (double v : means) var += (v - mean) * (v - mean);
    var /= static_cast<double>(blocks);
    if (var <= 0.0) continue;
    log_m.push_back(std::log(static_cast<double>(m)));
    log_var.push_back(std::log(var));
  }
  if (log_m.size() < 2) return 0.5;
  // Least-squares slope.
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < log_m.size(); ++i) {
    mx += log_m[i];
    my += log_var[i];
  }
  mx /= static_cast<double>(log_m.size());
  my /= static_cast<double>(log_m.size());
  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < log_m.size(); ++i) {
    sxx += (log_m[i] - mx) * (log_m[i] - mx);
    sxy += (log_m[i] - mx) * (log_var[i] - my);
  }
  const double slope = sxx > 0.0 ? sxy / sxx : -1.0;
  // slope = 2H - 2  =>  H = 1 + slope / 2.
  return std::clamp(1.0 + slope / 2.0, 0.0, 1.0);
}

}  // namespace gill::harness
