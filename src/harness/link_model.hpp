// Per-VP link shaping for the scenario harness (DESIGN.md §13): a
// ShapedTransport decorates the session byte flow with the timing artifacts
// a real VP-to-collector path shows — propagation latency, jitter, update
// loss at the feed level, and a bandwidth cap — while FaultyTransport
// underneath keeps supplying byte-level chaos (corruption, resets) when a
// scenario asks for it.
//
// Composition. ShapedTransport *is a* FaultyTransport: writes enter the
// shaping queue first (one entry per write call), and advance(now_ms)
// releases every due message through the FaultyTransport hooks, so faults
// apply at the moment a message would hit the wire. It serves both as the
// overlay of a net::TcpTransport (live TCP harness: inbound socket chunks
// are delayed, outbound messages are paced before the flusher drains them)
// and as the transport a FakePeer/BgpDaemon binds to directly (in-memory
// deterministic harness).
//
// Ordering. TCP never reorders, so shaping must not either: each direction
// keeps FIFO release order (due times are clamped monotone per direction).
// Loss is applied only to peer->daemon BGP UPDATE messages — dropping a
// KEEPALIVE or OPEN would tear the session down and dropping an arbitrary
// inbound TCP chunk would corrupt the stream, neither of which is "a lossy
// feed". End-of-RIB markers (empty UPDATEs) are never dropped.
#pragma once

#include <cstdint>
#include <deque>
#include <random>
#include <span>
#include <vector>

#include "daemon/faults.hpp"

namespace gill::harness {

/// One VP's link parameters. All times are milliseconds of harness time
/// (wall clock in the TCP driver, logical clock in the in-memory driver).
struct LinkModelConfig {
  double latency_ms = 0.0;   // fixed one-way propagation delay
  double jitter_ms = 0.0;    // uniform [0, jitter_ms) added per message
  double loss_rate = 0.0;    // P(drop) per peer->daemon UPDATE message
  double bandwidth_bytes_per_sec = 0.0;  // 0 = unlimited
  daemon::FaultProfile faults;           // byte-level chaos below shaping
  std::uint64_t seed = 1;
};

struct ShapingStats {
  std::size_t shaped = 0;        // messages that went through the queue
  std::size_t lost_updates = 0;  // UPDATEs dropped by loss_rate
  double max_delay_ms = 0.0;     // largest queueing delay applied
};

/// FaultyTransport with a timing model on top. Drive with advance(now_ms).
class ShapedTransport : public daemon::FaultyTransport {
 public:
  explicit ShapedTransport(LinkModelConfig config)
      : daemon::FaultyTransport(config.faults),
        config_(config),
        rng_(config.seed) {}

  void write_to_daemon(std::span<const std::uint8_t> message) override {
    enqueue(to_daemon_pending_, message, /*lossy=*/true);
  }
  void write_to_peer(std::span<const std::uint8_t> message) override {
    enqueue(to_peer_pending_, message, /*lossy=*/false);
  }

  /// Releases every message whose due time has passed into the underlying
  /// FaultyTransport (and so into the byte queues / the socket flusher).
  void advance(double now_ms);

  void disconnect() override {
    to_daemon_pending_.clear();
    to_peer_pending_.clear();
    daemon::FaultyTransport::disconnect();
  }
  void reconnect() override {
    // A fresh connection starts with an empty pipe and an idle link.
    bandwidth_cursor_ms_ = now_ms_;
    daemon::FaultyTransport::reconnect();
  }

  const ShapingStats& shaping_stats() const noexcept { return shaping_; }
  bool shaping_idle() const noexcept {
    return to_daemon_pending_.empty() && to_peer_pending_.empty();
  }
  double now_ms() const noexcept { return now_ms_; }

 private:
  struct Pending {
    double due_ms = 0.0;
    std::vector<std::uint8_t> bytes;
  };

  void enqueue(std::deque<Pending>& queue,
               std::span<const std::uint8_t> message, bool lossy);
  static bool is_droppable_update(std::span<const std::uint8_t> message);

  LinkModelConfig config_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
  std::deque<Pending> to_daemon_pending_;
  std::deque<Pending> to_peer_pending_;
  double now_ms_ = 0.0;
  double bandwidth_cursor_ms_ = 0.0;  // when the link finishes current sends
  ShapingStats shaping_;
};

}  // namespace gill::harness
