#include "harness/driver.hpp"

#include <chrono>
#include <memory>
#include <stdexcept>

#include "collector/platform.hpp"
#include "harness/http_client.hpp"
#include "mrt/mrt.hpp"
#include "net/event_loop.hpp"
#include "net/tcp_transport.hpp"

namespace gill::harness {

namespace {

/// Incremental MRT consumer over a growing byte buffer: decodes whole
/// records as they arrive, leaves a torn tail for the next drain.
struct IncrementalMrt {
  std::size_t offset = 0;

  template <typename Fn>
  void drain(const std::vector<std::uint8_t>& payload, Fn&& fn) {
    while (offset < payload.size()) {
      mrt::Reader reader({payload.data() + offset, payload.size() - offset});
      const auto record = reader.next();
      if (!record) break;  // torn tail — more bytes needed
      offset += reader.offset();
      fn(*record);
    }
  }
};

LinkModelConfig per_vp_link(const ScenarioConfig& config, std::size_t vp) {
  LinkModelConfig link = config.link;
  link.seed = config.seed ^ (0x9e3779b97f4a7c15ull * (vp + 1));
  link.faults.seed = link.seed ^ 0xf0f0f0f0ull;
  return link;
}

void score_archive_body(const std::string& body, VerdictScorer& scorer) {
  mrt::Reader reader(
      {reinterpret_cast<const std::uint8_t*>(body.data()), body.size()});
  while (const auto record = reader.next()) {
    if (record->type == mrt::RecordType::kBgp4mp) {
      scorer.observe_archive(record->update);
    }
  }
}

std::size_t count_records(const std::string& body) {
  std::size_t n = 0;
  mrt::Reader reader(
      {reinterpret_cast<const std::uint8_t*>(body.data()), body.size()});
  while (reader.next()) ++n;
  return n;
}

}  // namespace

ScenarioVerdict ScenarioDriver::run_tcp() {
  if (config_.bgp_port == 0 || config_.http_port == 0) {
    throw std::runtime_error("run_tcp: bgp_port/http_port not set");
  }
  net::EventLoop loop;
  metrics::Registry registry;
  VerdictScorer scorer(*scenario_);
  const std::vector<bgp::AsNumber>& hosts = scenario_->internet->vp_hosts();

  struct VpSession {
    std::unique_ptr<ShapedTransport> shaped;
    std::unique_ptr<net::TcpTransport> tcp;
    std::unique_ptr<daemon::FakePeer> peer;
  };
  std::vector<VpSession> sessions;
  for (std::size_t vp = 0; vp < hosts.size(); ++vp) {
    VpSession session;
    session.shaped =
        std::make_unique<ShapedTransport>(per_vp_link(scenario_->config, vp));
    session.tcp = std::make_unique<net::TcpTransport>(
        loop, net::Role::kPeerSide, &registry);
    session.tcp->set_overlay(*session.shaped);
    if (!session.tcp->dial(config_.host, config_.bgp_port)) {
      throw std::runtime_error("run_tcp: cannot dial the collector");
    }
    session.peer =
        std::make_unique<daemon::FakePeer>(hosts[vp], *session.shaped);
    sessions.push_back(std::move(session));
  }

  const auto started = std::chrono::steady_clock::now();
  auto wall_ms = [&]() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - started)
        .count();
  };
  auto check_deadline = [&](const char* stage) {
    if (wall_ms() > config_.timeout_ms) {
      throw std::runtime_error(std::string("run_tcp: timeout during ") +
                               stage);
    }
  };

  StreamClient stream;
  IncrementalMrt stream_mrt;
  auto pump = [&]() {
    loop.run_once(1);
    const double now = wall_ms();
    for (VpSession& session : sessions) {
      session.shaped->advance(now);
      session.tcp->sync();
      session.peer->poll();
      session.tcp->sync();
    }
    if (stream.connected()) {
      stream.pump();
      stream_mrt.drain(stream.payload(), [&](const mrt::Reader::Record& r) {
        if (r.type == mrt::RecordType::kBgp4mp) {
          scorer.observe_stream(r.update, wall_ms());
        }
      });
    }
  };

  // Establish every session (the collector's daemon opens; FakePeer answers).
  for (;;) {
    pump();
    bool all = true;
    for (VpSession& session : sessions) {
      all = all && session.peer->established();
    }
    if (all) break;
    check_deadline("session establishment");
  }

  // Live detection feed, subscribed before any route is announced.
  if (!stream.connect(config_.host, config_.http_port,
                      "/v1/stream?format=mrt")) {
    throw std::runtime_error("run_tcp: cannot subscribe to /v1/stream");
  }

  // Initial table, then the paced replay.
  const double first_send_ms = wall_ms();
  std::size_t batch = 0;
  for (const bgp::Update& update : scenario_->rib) {
    scorer.note_sent(update, wall_ms());
    sessions[update.vp].peer->send_update(update);
    if (++batch % 64 == 0) pump();
  }
  for (VpSession& session : sessions) session.peer->send_end_of_rib();
  pump();

  LongMemoryScheduler scheduler(scenario_->config.pacing);
  const std::vector<double> offsets =
      scheduler.pace(scenario_->events.size(), config_.replay_ms);
  const double replay_start = wall_ms();
  const auto& events = scenario_->events.updates();
  for (std::size_t i = 0; i < events.size(); ++i) {
    while (wall_ms() < replay_start + offsets[i]) {
      pump();
      check_deadline("event replay");
    }
    scorer.note_sent(events[i], wall_ms());
    sessions[events[i].vp].peer->send_update(events[i]);
  }
  const double last_send_ms = wall_ms();

  // Drain: let shaped queues release, the collector ingest and seal, the
  // stream deliver.
  const double settle_until = last_send_ms + config_.settle_ms;
  while (wall_ms() < settle_until) {
    pump();
    check_deadline("settle");
  }

  // Delivery completeness: pull /v1/data until the sealed record count
  // stops growing (the active segment seals on the collector's rotation
  // boundary — run it with --rotate-secs 1).
  std::string archive_body;
  std::size_t last_count = 0;
  for (;;) {
    const auto result =
        http_get(config_.host, config_.http_port, "/v1/data");
    if (result && result->status == 200) {
      const std::size_t count = count_records(result->body);
      if (count == last_count && count > 0) {
        archive_body = result->body;
        break;
      }
      last_count = count;
      archive_body = result->body;
    }
    const double wait_until = wall_ms() + 400;
    while (wall_ms() < wait_until) pump();
    check_deadline("/v1/data pull");
  }
  score_archive_body(archive_body, scorer);

  std::size_t lost = 0;
  for (VpSession& session : sessions) {
    lost += session.shaped->shaping_stats().lost_updates;
  }
  ScenarioVerdict verdict =
      scorer.finish(last_send_ms - first_send_ms, lost);
  verdict.ingest_shards = config_.ingest_shards;
  stream.close();
  return verdict;
}

ScenarioVerdict ScenarioDriver::run_in_memory() {
  collect::PlatformConfig platform_config;
  platform_config.analysis_threads = config_.analysis_threads;
  collect::Platform platform(platform_config);
  VerdictScorer scorer(*scenario_);

  double logical_ms = 0.0;
  platform.set_stream_publisher([&](const bgp::Update& update) {
    scorer.observe_stream(update, logical_ms);
  });

  const std::vector<bgp::AsNumber>& hosts = scenario_->internet->vp_hosts();
  const bgp::Timestamp start = scenario_->config.start;
  auto now_s = [&]() {
    return start + static_cast<bgp::Timestamp>(logical_ms / 1000.0);
  };

  std::vector<ShapedTransport*> shaped;
  std::vector<std::unique_ptr<daemon::FakePeer>> peers;
  for (std::size_t vp = 0; vp < hosts.size(); ++vp) {
    auto transport =
        std::make_unique<ShapedTransport>(per_vp_link(scenario_->config, vp));
    ShapedTransport* raw = transport.get();
    platform.add_remote_peer(hosts[vp], now_s(), std::move(transport));
    shaped.push_back(raw);
    peers.push_back(std::make_unique<daemon::FakePeer>(hosts[vp], *raw));
  }

  auto pump = [&](double advance_ms) {
    logical_ms += advance_ms;
    for (std::size_t vp = 0; vp < shaped.size(); ++vp) {
      shaped[vp]->advance(logical_ms);
      peers[vp]->poll();
    }
    platform.step(now_s());
  };

  // Handshake on the logical clock.
  for (int i = 0; i < 10000; ++i) {
    bool all = true;
    for (auto& peer : peers) all = all && peer->established();
    if (all) break;
    pump(25.0);
  }
  for (auto& peer : peers) {
    if (!peer->established()) {
      throw std::runtime_error("run_in_memory: sessions never established");
    }
  }

  const double first_send_ms = logical_ms;
  std::size_t batch = 0;
  for (const bgp::Update& update : scenario_->rib) {
    scorer.note_sent(update, logical_ms);
    peers[update.vp]->send_update(update);
    if (++batch % 64 == 0) pump(5.0);
  }
  for (auto& peer : peers) peer->send_end_of_rib();
  pump(25.0);

  LongMemoryScheduler scheduler(scenario_->config.pacing);
  const std::vector<double> offsets =
      scheduler.pace(scenario_->events.size(), config_.replay_ms);
  const double replay_start = logical_ms;
  const auto& events = scenario_->events.updates();
  for (std::size_t i = 0; i < events.size(); ++i) {
    while (logical_ms < replay_start + offsets[i]) pump(5.0);
    scorer.note_sent(events[i], logical_ms);
    peers[events[i].vp]->send_update(events[i]);
  }
  const double last_send_ms = logical_ms;

  // Drain every shaped queue (plus the sessions' decode backlog).
  for (int i = 0; i < 10000; ++i) {
    bool idle = true;
    for (ShapedTransport* transport : shaped) {
      idle = idle && transport->shaping_idle();
    }
    if (idle && i >= 4) break;
    pump(25.0);
  }

  // Exercise the analysis pool after the replay (determinism across thread
  // counts must include a full refresh; doing it post-replay keeps filters
  // from eating the evidence mid-run).
  platform.refresh_filters(now_s());
  platform.wait_for_refresh();
  pump(25.0);

  archived_bytes_ = platform.store().writer().buffer();
  mrt::Reader reader(
      {archived_bytes_.data(), archived_bytes_.size()});
  while (const auto record = reader.next()) {
    if (record->type == mrt::RecordType::kBgp4mp) {
      scorer.observe_archive(record->update);
    }
  }

  std::size_t lost = 0;
  for (ShapedTransport* transport : shaped) {
    lost += transport->shaping_stats().lost_updates;
  }
  ScenarioVerdict verdict = scorer.finish(last_send_ms - first_send_ms, lost);
  verdict.ingest_shards = 1;  // the embedded platform is unsharded
  return verdict;
}

}  // namespace gill::harness
