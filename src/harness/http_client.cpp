#include "harness/http_client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace gill::harness {

namespace {

int dial_blocking(const std::string& host, std::uint16_t port,
                  int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool send_request(int fd, const std::string& target) {
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: harness\r\n"
                              "Connection: close\r\n\r\n";
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::send(fd, request.data() + off, request.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Parses status line + headers out of `raw`; returns the body offset or
/// npos while incomplete. Sets `status` and `chunked`.
std::size_t parse_headers(const std::string& raw, int* status,
                          bool* chunked) {
  const std::size_t end = raw.find("\r\n\r\n");
  if (end == std::string::npos) return std::string::npos;
  const std::size_t line_end = raw.find("\r\n");
  *status = 0;
  if (const std::size_t sp = raw.find(' ');
      sp != std::string::npos && sp < line_end) {
    *status = std::atoi(raw.c_str() + sp + 1);
  }
  *chunked = false;
  std::size_t pos = line_end + 2;
  while (pos < end) {
    std::size_t eol = raw.find("\r\n", pos);
    if (eol == std::string::npos || eol > end) eol = end;
    std::string line = raw.substr(pos, eol - pos);
    for (char& c : line) c = static_cast<char>(std::tolower(c));
    if (line.find("transfer-encoding:") == 0 &&
        line.find("chunked") != std::string::npos) {
      *chunked = true;
    }
    pos = eol + 2;
  }
  return end + 4;
}

}  // namespace

std::optional<HttpResult> http_get(const std::string& host,
                                   std::uint16_t port,
                                   const std::string& target,
                                   int timeout_ms) {
  const int fd = dial_blocking(host, port, timeout_ms);
  if (fd < 0) return std::nullopt;
  if (!send_request(fd, target)) {
    ::close(fd);
    return std::nullopt;
  }
  std::string raw;
  char buffer[16384];
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      raw.append(buffer, static_cast<std::size_t>(n));
      if (std::chrono::steady_clock::now() > deadline) break;
      continue;
    }
    if (n < 0 && (errno == EINTR)) continue;
    break;  // orderly close or error/timeout: Connection: close semantics
  }
  ::close(fd);

  int status = 0;
  bool chunked = false;
  const std::size_t body_at = parse_headers(raw, &status, &chunked);
  if (body_at == std::string::npos) return std::nullopt;
  HttpResult result;
  result.status = status;
  if (!chunked) {
    result.body = raw.substr(body_at);
    return result;
  }
  // De-chunk.
  std::size_t pos = body_at;
  for (;;) {
    const std::size_t eol = raw.find("\r\n", pos);
    if (eol == std::string::npos) return std::nullopt;
    const std::size_t size =
        static_cast<std::size_t>(std::strtoul(raw.c_str() + pos, nullptr, 16));
    pos = eol + 2;
    if (size == 0) break;
    if (pos + size > raw.size()) return std::nullopt;
    result.body.append(raw, pos, size);
    pos += size + 2;  // skip the chunk's trailing CRLF
  }
  return result;
}

StreamClient::~StreamClient() { close(); }

bool StreamClient::connect(const std::string& host, std::uint16_t port,
                           const std::string& target) {
  close();
  fd_ = dial_blocking(host, port, 2000);
  if (fd_ < 0) return false;
  if (!send_request(fd_, target)) {
    close();
    return false;
  }
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  closed_ = false;
  status_ = 0;
  headers_done_ = false;
  chunked_ = false;
  raw_.clear();
  raw_offset_ = 0;
  chunk_remaining_ = 0;
  payload_.clear();
  return true;
}

void StreamClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool StreamClient::pump() {
  if (fd_ < 0) return false;
  char buffer[16384];
  for (;;) {
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      raw_.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    closed_ = true;  // orderly close or hard error
    break;
  }
  parse();
  if (closed_) close();
  return !closed_;
}

void StreamClient::parse() {
  if (!headers_done_) {
    const std::size_t body_at = parse_headers(raw_, &status_, &chunked_);
    if (body_at == std::string::npos) return;
    headers_done_ = true;
    raw_offset_ = body_at;
  }
  for (;;) {
    if (chunk_remaining_ > 0) {
      const std::size_t take =
          std::min(chunk_remaining_, raw_.size() - raw_offset_);
      payload_.insert(payload_.end(), raw_.begin() + raw_offset_,
                      raw_.begin() + raw_offset_ + take);
      raw_offset_ += take;
      chunk_remaining_ -= take;
      if (chunk_remaining_ > 0) return;  // need more bytes
      // Skip the chunk's trailing CRLF once it arrives.
      if (raw_.size() - raw_offset_ < 2) {
        chunk_remaining_ = 0;
        // Mark the CRLF as pending by borrowing the size-line path below:
        // it tolerates a leading CRLF.
      } else {
        raw_offset_ += 2;
      }
    }
    if (!chunked_) {
      // Identity body (non-live responses): everything is payload.
      payload_.insert(payload_.end(), raw_.begin() + raw_offset_, raw_.end());
      raw_offset_ = raw_.size();
      return;
    }
    // Tolerate the CRLF that terminates the previous chunk.
    while (raw_offset_ + 1 < raw_.size() && raw_[raw_offset_] == '\r' &&
           raw_[raw_offset_ + 1] == '\n') {
      raw_offset_ += 2;
    }
    const std::size_t eol = raw_.find("\r\n", raw_offset_);
    if (eol == std::string::npos) return;  // size line incomplete
    const std::size_t size = static_cast<std::size_t>(
        std::strtoul(raw_.c_str() + raw_offset_, nullptr, 16));
    raw_offset_ = eol + 2;
    if (size == 0) {
      closed_ = true;
      return;
    }
    chunk_remaining_ = size;
  }
}

}  // namespace gill::harness
