#include "harness/link_model.hpp"

#include <algorithm>

namespace gill::harness {

namespace {
// RFC 4271 header: 16 marker bytes, 2 length bytes, 1 type byte.
constexpr std::size_t kHeaderSize = 19;
constexpr std::uint8_t kUpdateType = 2;
// An End-of-RIB marker is an empty UPDATE: header + 2 (withdrawn len) +
// 2 (path attr len) = 23 bytes. Anything longer carries routes.
constexpr std::size_t kEndOfRibSize = 23;
}  // namespace

bool ShapedTransport::is_droppable_update(
    std::span<const std::uint8_t> message) {
  return message.size() > kEndOfRibSize &&
         message[kHeaderSize - 1] == kUpdateType;
}

void ShapedTransport::enqueue(std::deque<Pending>& queue,
                              std::span<const std::uint8_t> message,
                              bool lossy) {
  if (!connected()) return;  // a dead pipe swallows writes, as the base does
  // Deterministic draw order per write: jitter first, then the loss coin,
  // so the RNG stream is a pure function of the write sequence.
  const double jitter =
      config_.jitter_ms > 0 ? uniform_(rng_) * config_.jitter_ms : 0.0;
  const bool lost = lossy && config_.loss_rate > 0 &&
                    uniform_(rng_) < config_.loss_rate &&
                    is_droppable_update(message);
  if (lost) {
    ++shaping_.lost_updates;
    return;
  }
  double due = now_ms_ + config_.latency_ms + jitter;
  if (config_.bandwidth_bytes_per_sec > 0) {
    // The link serializes messages back to back: the transmission slot
    // starts when the previous send finished (or now) and lasts
    // bytes / bandwidth.
    const double start = std::max(due, bandwidth_cursor_ms_);
    const double transmit_ms =
        1000.0 * static_cast<double>(message.size()) /
        config_.bandwidth_bytes_per_sec;
    due = start + transmit_ms;
    bandwidth_cursor_ms_ = due;
  }
  // FIFO per direction: TCP never reorders, so neither may the model.
  if (!queue.empty()) due = std::max(due, queue.back().due_ms);
  shaping_.max_delay_ms = std::max(shaping_.max_delay_ms, due - now_ms_);
  ++shaping_.shaped;
  queue.push_back(Pending{due, {message.begin(), message.end()}});
}

void ShapedTransport::advance(double now_ms) {
  now_ms_ = std::max(now_ms_, now_ms);
  while (!to_daemon_pending_.empty() &&
         to_daemon_pending_.front().due_ms <= now_ms_) {
    const Pending message = std::move(to_daemon_pending_.front());
    to_daemon_pending_.pop_front();
    daemon::FaultyTransport::write_to_daemon(message.bytes);
  }
  while (!to_peer_pending_.empty() &&
         to_peer_pending_.front().due_ms <= now_ms_) {
    const Pending message = std::move(to_peer_pending_.front());
    to_peer_pending_.pop_front();
    daemon::FaultyTransport::write_to_peer(message.bytes);
  }
}

}  // namespace gill::harness
