// The scenario driver (DESIGN.md §13): replays a built Scenario into a
// collector and produces the closed-loop verdict.
//
// Two modes share the scenario, shaping and scoring layers:
//
//  * run_tcp() drives a REAL gill-collectord across loopback TCP: one
//    kPeerSide TcpTransport + ShapedTransport overlay + FakePeer per VP,
//    live /v1/stream?format=mrt subscription for detection latency, and a
//    post-run /v1/data pull for delivery completeness. Wall-clock paced.
//
//  * run_in_memory() embeds its own collect::Platform on a logical clock —
//    fully deterministic under the scenario seed (byte-identical archived
//    MRT across runs and across analysis-thread counts), which is what the
//    determinism tests pin down.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "harness/verdict.hpp"

namespace gill::harness {

struct DriverConfig {
  // TCP mode: where the collector lives.
  std::string host = "127.0.0.1";
  std::uint16_t bgp_port = 0;
  std::uint16_t http_port = 0;
  /// Window the paced event replay is squeezed into.
  double replay_ms = 3000.0;
  /// Post-replay drain: lets shaped queues empty, the collector seal
  /// segments (run it with --rotate-secs 1) and the stream deliver.
  double settle_ms = 2500.0;
  /// Hard watchdog on the whole run.
  double timeout_ms = 60000.0;
  // In-memory mode: the embedded platform's analysis pool size.
  std::size_t analysis_threads = 0;
  /// Ingest shards the TARGET collector runs with (--ingest-shards); the
  /// driver only records it in the verdict, the collector owns the plane.
  std::size_t ingest_shards = 1;
};

class ScenarioDriver {
 public:
  /// `scenario` must outlive the driver.
  ScenarioDriver(Scenario& scenario, DriverConfig config)
      : scenario_(&scenario), config_(config) {}

  /// Drives the live collector. Throws std::runtime_error on setup
  /// failures (cannot dial, sessions never establish, HTTP unreachable).
  ScenarioVerdict run_tcp();

  /// Deterministic embedded run; scores from the platform's own store.
  ScenarioVerdict run_in_memory();

  /// The archived MRT byte stream of the last run_in_memory() call (the
  /// determinism tests compare these across runs / thread counts).
  const std::vector<std::uint8_t>& archived_bytes() const noexcept {
    return archived_bytes_;
  }

 private:
  Scenario* scenario_;
  DriverConfig config_;
  std::vector<std::uint8_t> archived_bytes_;
};

}  // namespace gill::harness
