#include "harness/verdict.hpp"

#include <algorithm>
#include <cstdio>

namespace gill::harness {

namespace {

bool up_or_peer(const topo::AsTopology& topology, bgp::AsNumber as,
                bgp::AsNumber neighbor) {
  const auto& providers = topology.providers(as);
  if (std::find(providers.begin(), providers.end(), neighbor) !=
      providers.end()) {
    return true;
  }
  const auto& peers = topology.peers(as);
  return std::find(peers.begin(), peers.end(), neighbor) != peers.end();
}

/// True when `path` crosses `leaker` through a valley: the leaker sits
/// between two of its own providers/peers, i.e. it re-exported a route it
/// learned from up/peer back up/sideways — exactly what valley-free export
/// forbids and what a route leak looks like from outside.
bool path_has_valley_at(const topo::AsTopology& topology,
                        const bgp::AsPath& path, bgp::AsNumber leaker) {
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    if (path[i] != leaker) continue;
    if (up_or_peer(topology, leaker, path[i + 1]) &&
        up_or_peer(topology, leaker, path[i - 1])) {
      return true;
    }
  }
  return false;
}

bool has_community(const bgp::CommunitySet& set, bgp::Community community) {
  return std::binary_search(set.begin(), set.end(), community);
}

void append_json_escaped(std::string& out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

VerdictScorer::VerdictScorer(const Scenario& scenario)
    : scenario_(&scenario), states_(scenario.anomaly_truths.size()) {}

bool VerdictScorer::is_evidence(std::size_t index,
                                const bgp::Update& update) const {
  const sim::GroundTruth& truth = scenario_->anomaly_truths[index];
  if (update.withdrawal || update.path.empty()) return false;
  if (update.prefix != truth.prefix) return false;
  switch (truth.kind) {
    case sim::GroundTruth::Kind::kSubprefixHijack:
      // The more-specific exists at all only because of the hijack, and its
      // path must originate at the attacker (through the prepend tail).
      return update.path.origin() == truth.other_as;
    case sim::GroundTruth::Kind::kRouteLeak:
      return path_has_valley_at(*scenario_->topology, update.path,
                                truth.other_as);
    default:
      return false;
  }
}

void VerdictScorer::note_sent(const bgp::Update& update, double now_ms) {
  ++sent_;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].first_sent_ms >= 0) continue;
    if (is_evidence(i, update)) states_[i].first_sent_ms = now_ms;
  }
}

void VerdictScorer::observe_stream(const bgp::Update& update, double now_ms) {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (!is_evidence(i, update)) continue;
    TruthState& state = states_[i];
    if (!state.detected_stream) {
      state.detected_stream = true;
      state.first_stream_ms = now_ms;
    }
    if (has_community(update.communities, scenario_->tag)) {
      state.tagged = true;
    }
  }
}

void VerdictScorer::observe_archive(const bgp::Update& update) {
  ++archived_updates_;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (!is_evidence(i, update)) continue;
    TruthState& state = states_[i];
    state.detected_archive = true;
    ++state.evidence_records;
    if (has_community(update.communities, scenario_->tag)) {
      state.tagged = true;
    }
  }
}

ScenarioVerdict VerdictScorer::finish(double replay_ms,
                                      std::size_t link_lost) const {
  ScenarioVerdict verdict;
  verdict.scenario = scenario_->name;
  verdict.updates_sent = sent_;
  verdict.updates_delivered = archived_updates_;
  verdict.delivery_completeness =
      sent_ ? static_cast<double>(archived_updates_) /
                  static_cast<double>(sent_)
            : 0.0;
  verdict.replay_ms = replay_ms;
  verdict.events_per_sec =
      replay_ms > 0 ? 1000.0 * static_cast<double>(sent_) / replay_ms : 0.0;
  verdict.link_lost_updates = link_lost;
  verdict.passed = !states_.empty();
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const sim::GroundTruth& truth = scenario_->anomaly_truths[i];
    const TruthState& state = states_[i];
    EventVerdict event;
    event.kind = std::string(to_string(scenario_->config.kind));
    event.prefix = truth.prefix.str();
    event.victim = truth.origin;
    event.actor = truth.other_as;
    event.detected_stream = state.detected_stream;
    event.detected_archive = state.detected_archive;
    event.tagged = state.tagged;
    if (state.detected_stream && state.first_sent_ms >= 0) {
      event.detection_latency_ms =
          state.first_stream_ms - state.first_sent_ms;
    }
    event.observers_expected = truth.observers.size();
    event.evidence_records = state.evidence_records;
    verdict.passed = verdict.passed && event.passed();
    verdict.events.push_back(std::move(event));
  }
  return verdict;
}

std::string ScenarioVerdict::to_json() const {
  char buffer[320];
  std::string out = "{\"scenario\":\"";
  append_json_escaped(out, scenario);
  std::snprintf(buffer, sizeof(buffer),
                "\",\"passed\":%s,\"updates_sent\":%zu,"
                "\"updates_delivered\":%zu,\"delivery_completeness\":%.4f,"
                "\"replay_ms\":%.1f,\"events_per_sec\":%.1f,"
                "\"link_lost_updates\":%zu,\"ingest_shards\":%zu,"
                "\"events\":[",
                passed ? "true" : "false", updates_sent, updates_delivered,
                delivery_completeness, replay_ms, events_per_sec,
                link_lost_updates, ingest_shards);
  out += buffer;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const EventVerdict& event = events[i];
    if (i) out.push_back(',');
    out += "{\"kind\":\"";
    append_json_escaped(out, event.kind);
    out += "\",\"prefix\":\"";
    append_json_escaped(out, event.prefix);
    std::snprintf(
        buffer, sizeof(buffer),
        "\",\"victim\":%u,\"actor\":%u,\"detected\":%s,"
        "\"detected_stream\":%s,\"detected_archive\":%s,\"tagged\":%s,"
        "\"detection_latency_ms\":%.1f,\"observers_expected\":%zu,"
        "\"evidence_records\":%zu}",
        event.victim, event.actor, event.passed() ? "true" : "false",
        event.detected_stream ? "true" : "false",
        event.detected_archive ? "true" : "false",
        event.tagged ? "true" : "false", event.detection_latency_ms,
        event.observers_expected, event.evidence_records);
    out += buffer;
  }
  out += "]}";
  return out;
}

}  // namespace gill::harness
