// Minimal loopback HTTP/1.1 client for the harness: a one-shot blocking
// GET (the verdict pull of /v1/data, /v1/segments, /v1/metrics) and a
// non-blocking incremental consumer for live chunked streams
// (/v1/stream?format=mrt), pumped from the driver loop while the replay is
// in flight. Only what gill's own HttpEndpoint emits is supported:
// HTTP/1.1, Connection: close, Content-Length or Transfer-Encoding:
// chunked.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace gill::harness {

struct HttpResult {
  int status = 0;
  std::string body;  // de-chunked
};

/// Blocking GET http://host:port{target}; nullopt on connect/timeout/parse
/// failure.
std::optional<HttpResult> http_get(const std::string& host,
                                   std::uint16_t port,
                                   const std::string& target,
                                   int timeout_ms = 10000);

/// Incremental consumer of a chunked (live) response. connect() sends the
/// request; pump() makes progress without blocking; payload() exposes the
/// de-chunked bytes accumulated so far (a growing buffer — callers track
/// their own parse offset).
class StreamClient {
 public:
  StreamClient() = default;
  ~StreamClient();
  StreamClient(const StreamClient&) = delete;
  StreamClient& operator=(const StreamClient&) = delete;

  bool connect(const std::string& host, std::uint16_t port,
               const std::string& target);
  /// Reads whatever the socket has; returns true while the stream is live.
  bool pump();
  void close();

  bool connected() const noexcept { return fd_ >= 0; }
  bool closed_by_server() const noexcept { return closed_; }
  int status() const noexcept { return status_; }
  const std::vector<std::uint8_t>& payload() const noexcept {
    return payload_;
  }

 private:
  void parse();

  int fd_ = -1;
  bool closed_ = false;
  int status_ = 0;
  bool headers_done_ = false;
  bool chunked_ = false;
  std::string raw_;                   // undecoded bytes (headers + chunks)
  std::size_t raw_offset_ = 0;        // parse position in raw_
  std::size_t chunk_remaining_ = 0;   // bytes left of the current chunk
  std::vector<std::uint8_t> payload_;
};

}  // namespace gill::harness
