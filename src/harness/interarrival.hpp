// Long-memory update interarrival pacing (DESIGN.md §13). Kitsak et al.,
// "Long-Range Correlations and Memory in the Dynamics of Internet
// Interdomain Routing" (PAPERS.md), show BGP update arrivals are not
// Poisson: counts are long-range correlated with Hurst exponents well above
// 0.5 across hours of traffic. The standard generative recipe for such
// dynamics is a doubly-stochastic (Cox) process — a Poisson process whose
// rate is modulated by a slowly-wandering intensity. Summing K AR(1)
// (discrete Ornstein-Uhlenbeck) components with geometrically spaced
// relaxation times approximates 1/f log-intensity over K decades, which
// yields long-range-dependent counts; a single AR(1) (K=1) degrades to
// short memory and K=0 to plain Poisson, so the model nests the null
// hypotheses the tests compare against.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace gill::harness {

struct InterarrivalConfig {
  double mean_rate_per_sec = 50.0;
  /// AR(1) cascade components (decades of correlated timescales). 0 gives
  /// plain Poisson (iid exponential gaps).
  int timescales = 8;
  /// Shortest relaxation time of the cascade, in events; each further
  /// component relaxes 2x slower.
  double base_timescale = 4.0;
  /// Log-intensity amplitude: how strongly the modulation swings the rate.
  double volatility = 0.6;
  std::uint64_t seed = 1;
};

/// Generates interarrival gaps with long-range-dependent burst structure.
class LongMemoryScheduler {
 public:
  explicit LongMemoryScheduler(InterarrivalConfig config);

  /// The next gap, milliseconds of harness time.
  double next_gap_ms();

  /// Offsets (ms, ascending, starting at >= 0) for `n` events paced into
  /// exactly `duration_ms`: gaps are drawn from the model and rescaled so
  /// the last event lands at `duration_ms` — burst structure is preserved,
  /// total replay time is controlled.
  std::vector<double> pace(std::size_t n, double duration_ms);

  /// Current modulated rate (events/s) — exposed for tests.
  double current_rate_per_sec() const noexcept { return rate_; }

 private:
  void step_modulation();

  InterarrivalConfig config_;
  std::mt19937_64 rng_;
  std::normal_distribution<double> gauss_{0.0, 1.0};
  std::vector<double> components_;  // AR(1) states
  std::vector<double> rho_;         // per-component persistence
  std::vector<double> sigma_;       // per-component innovation scale
  double rate_ = 0.0;
};

/// Variance-time Hurst estimate of a sequence of per-bin event counts:
/// Var(aggregated counts at scale m) ~ m^(2H). Used by the tests to verify
/// the scheduler produces long memory (H > 0.5) where Poisson gives ~0.5.
double variance_time_hurst(const std::vector<double>& counts);

}  // namespace gill::harness
