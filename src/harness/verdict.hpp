// Closed-loop scoring (DESIGN.md §13): the scorer watches what the real
// collector streamed (/v1/stream) and archived (/v1/data) and decides, per
// ground-truth anomaly, whether the platform's stored data contains
// unambiguous evidence of it — plus detection latency (first send of
// evidence to first appearance on the live stream) and delivery
// completeness (archived update records vs. updates the harness sent).
//
// Evidence predicates are structural, not tag-based: a sub-prefix hijack is
// proven by a stored announcement of the hijacked more-specific whose path
// originates at the attacker; a route leak by a stored path that crosses
// the leaker through a valley (the leaker between two of its own
// providers/peers — valley-free export forbids exactly that). The
// scenario's community tag is tracked separately as corroboration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/scenario.hpp"

namespace gill::harness {

struct EventVerdict {
  std::string kind;
  std::string prefix;
  bgp::AsNumber victim = 0;
  bgp::AsNumber actor = 0;
  bool detected_stream = false;   // evidence appeared on /v1/stream
  bool detected_archive = false;  // evidence present in the stored data
  bool tagged = false;            // evidence carried the scenario community
  double detection_latency_ms = -1.0;  // first send -> first stream sighting
  std::size_t observers_expected = 0;  // VPs ground truth says saw it
  std::size_t evidence_records = 0;    // matching archived records

  bool passed() const noexcept { return detected_archive || detected_stream; }
};

struct ScenarioVerdict {
  std::string scenario;
  bool passed = false;
  std::size_t updates_sent = 0;       // handed to the peers by the driver
  std::size_t updates_delivered = 0;  // BGP4MP update records stored
  double delivery_completeness = 0.0;
  double replay_ms = 0.0;
  double events_per_sec = 0.0;       // updates_sent over the replay window
  std::size_t link_lost_updates = 0;  // shaped away by the link model
  /// Ingest shards the target collector ran with (1 = unsharded; recorded
  /// so a verdict names the topology it scored).
  std::size_t ingest_shards = 1;
  std::vector<EventVerdict> events;

  std::string to_json() const;
};

/// Accumulates observations for one scenario run and produces the verdict.
class VerdictScorer {
 public:
  explicit VerdictScorer(const Scenario& scenario);

  /// True when `update` is structural evidence of anomaly truth `index`.
  bool is_evidence(std::size_t index, const bgp::Update& update) const;

  /// The driver reports each update it hands to a peer, with harness time.
  void note_sent(const bgp::Update& update, double now_ms);
  /// A record decoded off the live stream.
  void observe_stream(const bgp::Update& update, double now_ms);
  /// A BGP4MP update record from the stored data (/v1/data or the store).
  void observe_archive(const bgp::Update& update);

  std::size_t updates_sent() const noexcept { return sent_; }

  /// Final verdict. `replay_ms` is the wall/logical span of the replay;
  /// `link_lost` the ShapedTransport loss count across all VPs.
  ScenarioVerdict finish(double replay_ms, std::size_t link_lost) const;

 private:
  const Scenario* scenario_;
  struct TruthState {
    double first_sent_ms = -1.0;
    double first_stream_ms = -1.0;
    bool detected_stream = false;
    bool detected_archive = false;
    bool tagged = false;
    std::size_t evidence_records = 0;
  };
  std::vector<TruthState> states_;
  std::size_t sent_ = 0;
  std::size_t archived_updates_ = 0;
};

}  // namespace gill::harness
