// Scenario construction for the closed-loop harness (DESIGN.md §13): each
// scenario is a generated AS topology, a simulated Internet, an initial
// RIB, and a scripted anomaly (route leak or sub-prefix hijack under
// prepending) with ground truth, plus background noise so the anomaly is
// not the only traffic. The driver replays the result into a collector and
// the verdict layer scores what came back against `anomaly_truths`.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "harness/interarrival.hpp"
#include "harness/link_model.hpp"
#include "simulator/internet.hpp"
#include "topology/generator.hpp"

namespace gill::harness {

enum class ScenarioKind : std::uint8_t {
  kRouteLeak,
  kSubprefixHijack,
};

std::string_view to_string(ScenarioKind kind) noexcept;
/// Parses "route-leak" / "subprefix-hijack"; nullopt otherwise.
std::optional<ScenarioKind> parse_scenario_kind(std::string_view name);

/// Community the scenario stamps on anomaly traffic (Krenc-style tagging:
/// scenario filters and GILL-asp-comm style classification key on it).
bgp::Community scenario_tag(ScenarioKind kind) noexcept;

struct ScenarioConfig {
  ScenarioKind kind = ScenarioKind::kRouteLeak;
  std::uint32_t as_count = 48;
  std::size_t vp_count = 12;
  std::uint64_t seed = 1;
  /// Simulation time of the first event (the RIB dump is at start - 1).
  bgp::Timestamp start = 1000;
  /// Background community-change events emitted before the anomaly so the
  /// anomaly competes with unrelated traffic.
  std::size_t background_events = 4;
  /// Per-VP link shaping; the seed is varied per VP by the driver.
  LinkModelConfig link;
  InterarrivalConfig pacing;
};

/// A fully-built scenario, ready for a driver to replay.
struct Scenario {
  std::string name;
  ScenarioConfig config;
  std::unique_ptr<topo::AsTopology> topology;
  std::unique_ptr<sim::Internet> internet;
  bgp::UpdateStream rib;     // initial table, every VP
  bgp::UpdateStream events;  // background + anomaly updates (sim seconds)
  /// Ground truth of the anomaly alone (background truths excluded).
  std::vector<sim::GroundTruth> anomaly_truths;
  bgp::AsNumber actor = 0;   // leaker / attacker
  bgp::AsNumber victim = 0;  // legitimate origin
  bgp::Community tag{};
};

/// Builds the scenario: generates the topology, deploys VPs on the
/// highest-degree ASes, selects the actor/victim, runs the anomaly through
/// sim::Internet and captures its ground truth. Deterministic under
/// `config.seed`.
Scenario build_scenario(const ScenarioConfig& config);

}  // namespace gill::harness
