#include "harness/scenario.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace gill::harness {

std::string_view to_string(ScenarioKind kind) noexcept {
  switch (kind) {
    case ScenarioKind::kRouteLeak:
      return "route-leak";
    case ScenarioKind::kSubprefixHijack:
      return "subprefix-hijack";
  }
  return "unknown";
}

std::optional<ScenarioKind> parse_scenario_kind(std::string_view name) {
  if (name == "route-leak") return ScenarioKind::kRouteLeak;
  if (name == "subprefix-hijack") return ScenarioKind::kSubprefixHijack;
  return std::nullopt;
}

bgp::Community scenario_tag(ScenarioKind kind) noexcept {
  // 65535:666 / 65535:667: well outside the simulator's organic community
  // ranges, so a tagged update is unambiguous evidence traffic.
  return kind == ScenarioKind::kRouteLeak ? bgp::Community(65535, 666)
                                          : bgp::Community(65535, 667);
}

namespace {

/// The `count` highest-degree ASes, ties broken by id — hypergiants and
/// Tier-1s, the ASes whose vantage sees the most of the anomaly.
std::vector<bgp::AsNumber> pick_vp_hosts(const topo::AsTopology& topology,
                                         std::size_t count) {
  std::vector<bgp::AsNumber> order(topology.as_count());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](bgp::AsNumber a, bgp::AsNumber b) {
                     return topology.degree(a) > topology.degree(b);
                   });
  order.resize(std::min(count, order.size()));
  std::sort(order.begin(), order.end());
  return order;
}

bool contains(const std::vector<bgp::AsNumber>& hosts, bgp::AsNumber as) {
  return std::find(hosts.begin(), hosts.end(), as) != hosts.end();
}

}  // namespace

Scenario build_scenario(const ScenarioConfig& config) {
  Scenario scenario;
  scenario.name = std::string(to_string(config.kind));
  scenario.config = config;
  scenario.tag = scenario_tag(config.kind);

  topo::ArtificialParams params;
  params.as_count = config.as_count;
  params.seed = config.seed;
  scenario.topology =
      std::make_unique<topo::AsTopology>(topo::generate_artificial(params));
  const topo::AsTopology& topology = *scenario.topology;

  sim::InternetConfig internet_config;
  internet_config.vp_hosts = pick_vp_hosts(topology, config.vp_count);
  // Keep simulated propagation tight: the harness paces arrival times
  // itself (LongMemoryScheduler), so wide simulated jitter would only
  // scramble the replay order for no modeling gain.
  internet_config.per_hop_delay = 1;
  internet_config.jitter = 2;
  internet_config.rng_seed = config.seed;
  scenario.internet =
      std::make_unique<sim::Internet>(topology, internet_config);
  sim::Internet& internet = *scenario.internet;

  scenario.rib = internet.rib_dump(config.start - 1);

  // Background noise: unrelated community changes on prefixes owned by
  // non-VP ASes, spread ahead of the anomaly.
  bgp::Timestamp t = config.start;
  std::mt19937_64 rng(config.seed ^ 0x5ce11a7a11bceull);
  std::size_t emitted = 0;
  for (bgp::AsNumber as = 0;
       as < topology.as_count() && emitted < config.background_events; ++as) {
    if (contains(internet_config.vp_hosts, as)) continue;
    if (internet.prefixes()[as].empty()) continue;
    if (rng() % 3 != 0) continue;
    const net::Prefix& prefix = internet.prefixes()[as].front();
    scenario.events.append(internet.change_community(
        prefix,
        bgp::Community(static_cast<std::uint16_t>(as % 65521),
                       static_cast<std::uint16_t>(0x0400 | (as % 16))),
        false, t));
    t += 2;
    ++emitted;
  }

  const std::size_t truths_before = internet.ground_truth().size();
  const bgp::Timestamp anomaly_at = t + 2;

  if (config.kind == ScenarioKind::kRouteLeak) {
    // Classic leak shape: a multi-homed edge AS (>= 2 providers, no
    // customers) re-exports provider/peer routes. Probe candidates until
    // one actually moves traffic at the VPs.
    for (bgp::AsNumber candidate = 0; candidate < topology.as_count();
         ++candidate) {
      if (!topology.is_stub(candidate)) continue;
      if (topology.providers(candidate).size() < 2) continue;
      if (contains(internet_config.vp_hosts, candidate)) continue;
      bgp::UpdateStream leak =
          internet.leak_routes(candidate, anomaly_at, 4, scenario.tag);
      if (leak.size() == 0) continue;
      scenario.actor = candidate;
      scenario.events.append(leak);
      break;
    }
    if (scenario.events.size() == 0 || scenario.actor == 0) {
      // Degenerate topology (tiny seeds): fall back to any AS whose leak
      // emits updates, transit or not.
      for (bgp::AsNumber candidate = 1;
           candidate < topology.as_count() && scenario.actor == 0;
           ++candidate) {
        bgp::UpdateStream leak =
            internet.leak_routes(candidate, anomaly_at, 4, scenario.tag);
        if (leak.size() == 0) continue;
        scenario.actor = candidate;
        scenario.events.append(leak);
      }
    }
    if (scenario.actor == 0) {
      throw std::runtime_error("route-leak scenario: no viable leaker");
    }
  } else {
    // Sub-prefix hijack: a stub attacker announces the more-specific half
    // of a remote stub's prefix with 2 extra self-prepends.
    bgp::AsNumber victim = 0, attacker = 0;
    for (bgp::AsNumber as = topology.as_count(); as-- > 0;) {
      if (contains(internet_config.vp_hosts, as)) continue;
      if (internet.prefixes()[as].empty()) continue;
      if (victim == 0) {
        victim = as;
      } else if (attacker == 0 && as != victim &&
                 !topology.adjacent(as, victim)) {
        attacker = as;
        break;
      }
    }
    if (victim == 0 || attacker == 0) {
      throw std::runtime_error(
          "subprefix-hijack scenario: topology too small");
    }
    const net::Prefix& parent = internet.prefixes()[victim].front();
    bgp::UpdateStream hijack = internet.start_subprefix_hijack(
        attacker, parent, 2, anomaly_at, scenario.tag);
    if (hijack.size() == 0) {
      throw std::runtime_error(
          "subprefix-hijack scenario: no VP observed the more-specific");
    }
    scenario.actor = attacker;
    scenario.victim = victim;
    scenario.events.append(hijack);
  }

  const std::vector<sim::GroundTruth>& truths = internet.ground_truth();
  for (std::size_t i = truths_before; i < truths.size(); ++i) {
    if (truths[i].kind != sim::GroundTruth::Kind::kRouteLeak &&
        truths[i].kind != sim::GroundTruth::Kind::kSubprefixHijack) {
      continue;
    }
    // A truth no vantage point observed produced no updates at all — the
    // collector cannot detect what it was never sent, so it is out of
    // scope for the closed-loop verdict.
    if (truths[i].observers.empty()) continue;
    scenario.anomaly_truths.push_back(truths[i]);
  }
  if (scenario.victim == 0 && !scenario.anomaly_truths.empty()) {
    scenario.victim = scenario.anomaly_truths.front().origin;
  }
  scenario.events.sort();
  return scenario;
}

}  // namespace gill::harness
