// AS-level topology with business relationships (Gao-Rexford model, §2).
//
// ASes are dense integers [0, as_count). Links are either
// customer-to-provider (c2p) or peer-to-peer (p2p). The c2p subgraph is
// acyclic by construction in both generators (provider levels strictly
// decrease toward the core), which Gao-Rexford routing requires.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/types.hpp"

namespace gill::topo {

using bgp::AsNumber;

/// Business relationship of an undirected AS adjacency.
enum class Relationship : std::uint8_t {
  kCustomerToProvider,  // `a` pays `b`
  kPeerToPeer,          // settlement-free
};

/// An undirected inter-AS link. For c2p, `a` is the customer and `b` the
/// provider; for p2p the order is canonical (a < b).
struct Link {
  AsNumber a = 0;
  AsNumber b = 0;
  Relationship rel = Relationship::kPeerToPeer;

  bool is_p2p() const noexcept { return rel == Relationship::kPeerToPeer; }

  /// Canonical undirected key for set membership regardless of direction.
  std::uint64_t key() const noexcept {
    const AsNumber lo = a < b ? a : b;
    const AsNumber hi = a < b ? b : a;
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }

  friend bool operator==(const Link&, const Link&) noexcept = default;
};

/// The AS graph. Construction: add_c2p/add_p2p, then freeze().
class AsTopology {
 public:
  explicit AsTopology(std::uint32_t as_count = 0);

  std::uint32_t as_count() const noexcept {
    return static_cast<std::uint32_t>(providers_.size());
  }

  /// Adds `customer` -> `provider`. Duplicate links are ignored.
  void add_c2p(AsNumber customer, AsNumber provider);
  /// Adds a peering between `a` and `b`. Duplicate links are ignored.
  void add_p2p(AsNumber a, AsNumber b);

  /// Sorts adjacency lists; call once after construction. Routing relies on
  /// sorted neighbor lists for deterministic tie-breaking.
  void freeze();

  const std::vector<AsNumber>& providers(AsNumber as) const {
    return providers_[as];
  }
  const std::vector<AsNumber>& customers(AsNumber as) const {
    return customers_[as];
  }
  const std::vector<AsNumber>& peers(AsNumber as) const { return peers_[as]; }

  /// All neighbors (providers + peers + customers), sorted, deduplicated.
  std::vector<AsNumber> neighbors(AsNumber as) const;

  std::size_t degree(AsNumber as) const {
    return providers_[as].size() + customers_[as].size() + peers_[as].size();
  }
  bool is_transit(AsNumber as) const { return !customers_[as].empty(); }
  bool is_stub(AsNumber as) const { return customers_[as].empty(); }

  const std::vector<Link>& links() const noexcept { return links_; }
  std::size_t link_count() const noexcept { return links_.size(); }
  std::size_t p2p_link_count() const noexcept;

  /// Looks up the relationship of (a, b); nullopt if not adjacent.
  std::optional<Relationship> relationship(AsNumber a, AsNumber b) const;

  /// True if (a, b) are adjacent in either direction / relationship.
  bool adjacent(AsNumber a, AsNumber b) const;

  /// Size of the customer cone of `as`: the number of ASes reachable by
  /// repeatedly following provider->customer edges, including `as` itself.
  std::size_t customer_cone_size(AsNumber as) const;

  /// Customer cone sizes for every AS in one pass (memoized DFS).
  std::vector<std::size_t> all_customer_cone_sizes() const;

  /// ASes marked as Tier-1 by the generator (empty if none marked).
  const std::vector<AsNumber>& tier1() const noexcept { return tier1_; }
  void set_tier1(std::vector<AsNumber> tier1) { tier1_ = std::move(tier1); }

  /// BFS hierarchy level per AS used by the generators (0 = Tier-1).
  const std::vector<std::uint16_t>& levels() const noexcept { return levels_; }
  void set_levels(std::vector<std::uint16_t> levels) {
    levels_ = std::move(levels);
  }

 private:
  std::vector<std::vector<AsNumber>> providers_;
  std::vector<std::vector<AsNumber>> customers_;
  std::vector<std::vector<AsNumber>> peers_;
  std::vector<Link> links_;
  std::vector<AsNumber> tier1_;
  std::vector<std::uint16_t> levels_;
};

/// Table 5 AS categories used to stratify event sampling (§18.1).
enum class AsCategory : std::uint8_t {
  kStub = 1,
  kTransit1 = 2,   // transit, customer cone below the transit average
  kTransit2 = 3,   // other transit
  kHypergiant = 4, // top-15 degree
  kTier1 = 5,
};

std::string_view to_string(AsCategory category) noexcept;
inline constexpr std::size_t kCategoryCount = 5;

/// Classifies every AS per Table 5. Ambiguities resolve to the highest ID,
/// as in the paper.
std::vector<AsCategory> classify_ases(const AsTopology& topology);

}  // namespace gill::topo
