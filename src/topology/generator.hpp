// Topology generators (§3.1).
//
// The paper uses (a) ten artificial topologies built with the Hyperbolic
// Graph Generator (power-law degree exponent 2.1, average degree 6.1,
// tiered Gao-Rexford relationships) and (b) CAIDA's AS-relationship graph
// pruned to 6k/1k ASes. We have neither the HGG nor the CAIDA dataset, so:
//
//  * generate_artificial() uses a Chung-Lu random graph with the same
//    degree-distribution targets, then applies the paper's own tiering and
//    relationship-assignment recipe verbatim (top-3 degree = fully-meshed
//    Tier-1; BFS levels; same level => p2p, different level => c2p).
//  * generate_pruned() grows a larger Chung-Lu seed graph and iteratively
//    removes leaves until the target size, mirroring the paper's pruning of
//    the CAIDA graph.
//
// Both substitutions preserve what the evaluation depends on: heavy-tailed
// degrees, a meshed core, valley-free policy structure, and p2p links that
// concentrate toward the edge.
#pragma once

#include <random>

#include "topology/topology.hpp"

namespace gill::topo {

struct ArtificialParams {
  std::uint32_t as_count = 1000;
  double average_degree = 6.1;   // Beta-index match with CAIDA (§3.1)
  double degree_exponent = 2.1;  // power-law exponent (§3.1)
  std::uint32_t tier1_count = 3;
  std::uint64_t seed = 1;
};

/// Builds one artificial AS topology. Connected, frozen, tiered.
AsTopology generate_artificial(const ArtificialParams& params);

struct PrunedParams {
  std::uint32_t target_as_count = 1000;
  double seed_multiplier = 3.0;  // seed graph size = multiplier * target
  double average_degree = 6.1;
  double degree_exponent = 2.1;
  std::uint32_t tier1_count = 3;
  std::uint64_t seed = 1;
};

/// Builds the "pruned known topology" stand-in: larger seed graph, leaves
/// iteratively removed until `target_as_count` ASes remain.
AsTopology generate_pruned(const PrunedParams& params);

/// The 7-AS topology of Fig. 5 / Fig. 10 (AS ids 1..7; id 0 is unused).
/// AS4 originates p1/p2 in the paper's scenario and AS6 originates p3.
AsTopology fig5_topology();

}  // namespace gill::topo
