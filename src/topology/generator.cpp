#include "topology/generator.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <queue>
#include <unordered_set>
#include <vector>

namespace gill::topo {

namespace {

/// Undirected edge set produced by the random-graph stage, before
/// relationships are assigned.
struct RawGraph {
  std::uint32_t node_count = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
};

std::uint64_t edge_key(std::uint32_t a, std::uint32_t b) {
  const std::uint32_t lo = std::min(a, b);
  const std::uint32_t hi = std::max(a, b);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

/// Chung-Lu style generator: endpoint i is drawn with probability
/// proportional to w_i = (i+1)^(-1/(exponent-1)), which yields a power-law
/// degree distribution with the requested exponent.
RawGraph chung_lu(std::uint32_t n, double average_degree, double exponent,
                  std::mt19937_64& rng) {
  RawGraph graph;
  graph.node_count = n;
  std::vector<double> cumulative(n);
  const double alpha = -1.0 / (exponent - 1.0);
  double sum = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    sum += std::pow(static_cast<double>(i + 1), alpha);
    cumulative[i] = sum;
  }
  std::uniform_real_distribution<double> uniform(0.0, sum);
  auto draw = [&] {
    const double x = uniform(rng);
    const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), x);
    return static_cast<std::uint32_t>(it - cumulative.begin());
  };

  const auto target_edges =
      static_cast<std::size_t>(average_degree * n / 2.0);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(target_edges * 2);
  std::size_t attempts = 0;
  const std::size_t max_attempts = target_edges * 50;
  while (graph.edges.size() < target_edges && attempts < max_attempts) {
    ++attempts;
    const std::uint32_t a = draw();
    const std::uint32_t b = draw();
    if (a == b) continue;
    if (!seen.insert(edge_key(a, b)).second) continue;
    graph.edges.emplace_back(a, b);
  }

  // Connectivity: attach every node of a non-giant component to the global
  // hub (node 0 has the largest expected degree).
  std::vector<std::uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<std::uint32_t> rank(n, 0);
  std::function<std::uint32_t(std::uint32_t)> find =
      [&](std::uint32_t x) -> std::uint32_t {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (rank[a] < rank[b]) std::swap(a, b);
    parent[b] = a;
    if (rank[a] == rank[b]) ++rank[a];
  };
  for (const auto& [a, b] : graph.edges) unite(a, b);
  const std::uint32_t hub_root = find(0);
  for (std::uint32_t v = 1; v < n; ++v) {
    if (find(v) != hub_root) {
      graph.edges.emplace_back(v, 0);
      unite(v, 0);
    }
  }
  return graph;
}

/// The paper's tiering + relationship recipe (§3.1): the `tier1_count`
/// highest-degree nodes form a fully meshed Tier-1; levels are BFS depth
/// from the Tier-1 set; same level => p2p, different level => c2p with the
/// deeper node as customer.
AsTopology assign_relationships(const RawGraph& graph,
                                std::uint32_t tier1_count) {
  const std::uint32_t n = graph.node_count;
  std::vector<std::vector<std::uint32_t>> adjacency(n);
  for (const auto& [a, b] : graph.edges) {
    adjacency[a].push_back(b);
    adjacency[b].push_back(a);
  }

  std::vector<std::uint32_t> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::sort(by_degree.begin(), by_degree.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return adjacency[a].size() != adjacency[b].size()
                         ? adjacency[a].size() > adjacency[b].size()
                         : a < b;
            });
  tier1_count = std::min<std::uint32_t>(tier1_count, n);
  std::vector<AsNumber> tier1(by_degree.begin(),
                              by_degree.begin() + tier1_count);

  // BFS levels from the Tier-1 set.
  std::vector<std::uint16_t> level(n, 0xFFFF);
  std::queue<std::uint32_t> queue;
  for (std::uint32_t t : tier1) {
    level[t] = 0;
    queue.push(t);
  }
  while (!queue.empty()) {
    const std::uint32_t u = queue.front();
    queue.pop();
    for (std::uint32_t v : adjacency[u]) {
      if (level[v] == 0xFFFF) {
        level[v] = static_cast<std::uint16_t>(level[u] + 1);
        queue.push(v);
      }
    }
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    if (level[v] == 0xFFFF) level[v] = 1;  // isolated safety net
  }

  AsTopology topology(n);
  for (const auto& [a, b] : graph.edges) {
    if (level[a] == level[b]) {
      topology.add_p2p(a, b);
    } else if (level[a] > level[b]) {
      topology.add_c2p(a, b);  // deeper node pays the shallower one
    } else {
      topology.add_c2p(b, a);
    }
  }
  // Fully mesh the Tier-1 clique.
  for (std::size_t i = 0; i < tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1.size(); ++j) {
      topology.add_p2p(tier1[i], tier1[j]);
    }
  }
  topology.set_tier1(std::move(tier1));
  topology.set_levels(std::move(level));
  topology.freeze();
  return topology;
}

}  // namespace

AsTopology generate_artificial(const ArtificialParams& params) {
  std::mt19937_64 rng(params.seed);
  RawGraph graph = chung_lu(params.as_count, params.average_degree,
                            params.degree_exponent, rng);
  return assign_relationships(graph, params.tier1_count);
}

AsTopology generate_pruned(const PrunedParams& params) {
  std::mt19937_64 rng(params.seed ^ 0x9e3779b97f4a7c15ull);
  const auto seed_size = static_cast<std::uint32_t>(
      params.seed_multiplier * params.target_as_count);
  RawGraph graph =
      chung_lu(seed_size, params.average_degree, params.degree_exponent, rng);

  // Iteratively remove leaves (degree <= 1) until the target size; if no
  // leaf remains, fall back to removing the lowest-degree nodes.
  std::vector<std::unordered_set<std::uint32_t>> adjacency(seed_size);
  for (const auto& [a, b] : graph.edges) {
    adjacency[a].insert(b);
    adjacency[b].insert(a);
  }
  std::vector<std::uint8_t> removed(seed_size, 0);
  std::uint32_t alive = seed_size;
  while (alive > params.target_as_count) {
    std::vector<std::uint32_t> leaves;
    for (std::uint32_t v = 0; v < seed_size; ++v) {
      if (!removed[v] && adjacency[v].size() <= 1) leaves.push_back(v);
    }
    if (leaves.empty()) {
      // No leaf left: drop the minimum-degree node to guarantee progress.
      std::uint32_t best = 0;
      std::size_t best_degree = SIZE_MAX;
      for (std::uint32_t v = 0; v < seed_size; ++v) {
        if (!removed[v] && adjacency[v].size() < best_degree) {
          best_degree = adjacency[v].size();
          best = v;
        }
      }
      leaves.push_back(best);
    }
    for (std::uint32_t v : leaves) {
      if (alive == params.target_as_count) break;
      removed[v] = 1;
      --alive;
      for (std::uint32_t u : adjacency[v]) adjacency[u].erase(v);
      adjacency[v].clear();
    }
  }

  // Compact surviving node ids.
  std::vector<std::uint32_t> new_id(seed_size, 0);
  std::uint32_t next = 0;
  for (std::uint32_t v = 0; v < seed_size; ++v) {
    if (!removed[v]) new_id[v] = next++;
  }
  RawGraph pruned;
  pruned.node_count = alive;
  for (std::uint32_t v = 0; v < seed_size; ++v) {
    if (removed[v]) continue;
    for (std::uint32_t u : adjacency[v]) {
      if (u > v) pruned.edges.emplace_back(new_id[v], new_id[u]);
    }
  }
  return assign_relationships(pruned, params.tier1_count);
}

AsTopology fig5_topology() {
  AsTopology topology(8);
  // Core: AS1 and AS3 peer at the top.
  topology.add_p2p(1, 3);
  // Customer-to-provider edges.
  topology.add_c2p(2, 1);
  topology.add_c2p(4, 1);
  topology.add_c2p(6, 2);
  topology.add_c2p(6, 3);
  topology.add_c2p(7, 5);
  // Peerings at the edge.
  topology.add_p2p(2, 4);
  topology.add_p2p(5, 6);
  topology.set_tier1({1, 3});
  std::vector<std::uint16_t> levels{0, 0, 1, 0, 1, 2, 1, 3};
  topology.set_levels(std::move(levels));
  topology.freeze();
  return topology;
}

}  // namespace gill::topo
