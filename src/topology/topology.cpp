#include "topology/topology.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace gill::topo {

AsTopology::AsTopology(std::uint32_t as_count)
    : providers_(as_count), customers_(as_count), peers_(as_count) {}

void AsTopology::add_c2p(AsNumber customer, AsNumber provider) {
  if (customer == provider || adjacent(customer, provider)) return;
  providers_[customer].push_back(provider);
  customers_[provider].push_back(customer);
  links_.push_back(Link{customer, provider, Relationship::kCustomerToProvider});
}

void AsTopology::add_p2p(AsNumber a, AsNumber b) {
  if (a == b || adjacent(a, b)) return;
  peers_[a].push_back(b);
  peers_[b].push_back(a);
  const AsNumber lo = std::min(a, b);
  const AsNumber hi = std::max(a, b);
  links_.push_back(Link{lo, hi, Relationship::kPeerToPeer});
}

void AsTopology::freeze() {
  for (auto& v : providers_) std::sort(v.begin(), v.end());
  for (auto& v : customers_) std::sort(v.begin(), v.end());
  for (auto& v : peers_) std::sort(v.begin(), v.end());
}

std::vector<AsNumber> AsTopology::neighbors(AsNumber as) const {
  std::vector<AsNumber> out;
  out.reserve(degree(as));
  out.insert(out.end(), providers_[as].begin(), providers_[as].end());
  out.insert(out.end(), peers_[as].begin(), peers_[as].end());
  out.insert(out.end(), customers_[as].begin(), customers_[as].end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t AsTopology::p2p_link_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(links_.begin(), links_.end(),
                    [](const Link& l) { return l.is_p2p(); }));
}

std::optional<Relationship> AsTopology::relationship(AsNumber a,
                                                     AsNumber b) const {
  auto contains = [](const std::vector<AsNumber>& v, AsNumber x) {
    return std::binary_search(v.begin(), v.end(), x) ||
           std::find(v.begin(), v.end(), x) != v.end();
  };
  if (contains(peers_[a], b)) return Relationship::kPeerToPeer;
  if (contains(providers_[a], b) || contains(customers_[a], b)) {
    return Relationship::kCustomerToProvider;
  }
  return std::nullopt;
}

bool AsTopology::adjacent(AsNumber a, AsNumber b) const {
  auto contains = [](const std::vector<AsNumber>& v, AsNumber x) {
    return std::find(v.begin(), v.end(), x) != v.end();
  };
  return contains(providers_[a], b) || contains(customers_[a], b) ||
         contains(peers_[a], b);
}

namespace {

// Iterative post-order DFS accumulating cone membership. Cone size is the
// number of *distinct* ASes below (and including) the AS in the c2p DAG, so
// a bitmask/visited set per root is required — overlapping subtrees must
// not be double-counted.
std::size_t cone_size_from(const AsTopology& topology, AsNumber root,
                           std::vector<std::uint8_t>& visited,
                           std::vector<AsNumber>& touched) {
  std::size_t count = 0;
  std::vector<AsNumber> stack{root};
  while (!stack.empty()) {
    const AsNumber as = stack.back();
    stack.pop_back();
    if (visited[as]) continue;
    visited[as] = 1;
    touched.push_back(as);
    ++count;
    for (AsNumber customer : topology.customers(as)) {
      if (!visited[customer]) stack.push_back(customer);
    }
  }
  for (AsNumber as : touched) visited[as] = 0;
  touched.clear();
  return count;
}

}  // namespace

std::size_t AsTopology::customer_cone_size(AsNumber as) const {
  std::vector<std::uint8_t> visited(as_count(), 0);
  std::vector<AsNumber> touched;
  return cone_size_from(*this, as, visited, touched);
}

std::vector<std::size_t> AsTopology::all_customer_cone_sizes() const {
  std::vector<std::size_t> sizes(as_count(), 0);
  std::vector<std::uint8_t> visited(as_count(), 0);
  std::vector<AsNumber> touched;
  for (AsNumber as = 0; as < as_count(); ++as) {
    sizes[as] = cone_size_from(*this, as, visited, touched);
  }
  return sizes;
}

std::string_view to_string(AsCategory category) noexcept {
  switch (category) {
    case AsCategory::kStub: return "Stub";
    case AsCategory::kTransit1: return "Transit-1";
    case AsCategory::kTransit2: return "Transit-2";
    case AsCategory::kHypergiant: return "Hypergiant";
    case AsCategory::kTier1: return "Tier-one";
  }
  return "?";
}

std::vector<AsCategory> classify_ases(const AsTopology& topology) {
  const std::uint32_t n = topology.as_count();
  std::vector<AsCategory> categories(n, AsCategory::kStub);

  // Hypergiants: top-15 by degree (substitute for the Böttger PeeringDB
  // list, which ranks by interconnection footprint).
  std::vector<AsNumber> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::sort(by_degree.begin(), by_degree.end(), [&](AsNumber a, AsNumber b) {
    return topology.degree(a) != topology.degree(b)
               ? topology.degree(a) > topology.degree(b)
               : a < b;
  });
  std::unordered_set<AsNumber> hypergiants(
      by_degree.begin(), by_degree.begin() + std::min<std::size_t>(15, n));

  std::unordered_set<AsNumber> tier1(topology.tier1().begin(),
                                     topology.tier1().end());

  const std::vector<std::size_t> cones = topology.all_customer_cone_sizes();
  double transit_cone_sum = 0;
  std::size_t transit_count = 0;
  for (AsNumber as = 0; as < n; ++as) {
    if (topology.is_transit(as)) {
      transit_cone_sum += static_cast<double>(cones[as]);
      ++transit_count;
    }
  }
  const double average_cone =
      transit_count ? transit_cone_sum / static_cast<double>(transit_count)
                    : 0.0;

  for (AsNumber as = 0; as < n; ++as) {
    // Highest-ID category wins (Table 5 rule).
    if (tier1.contains(as)) {
      categories[as] = AsCategory::kTier1;
    } else if (hypergiants.contains(as)) {
      categories[as] = AsCategory::kHypergiant;
    } else if (topology.is_transit(as)) {
      categories[as] = static_cast<double>(cones[as]) < average_cone
                           ? AsCategory::kTransit1
                           : AsCategory::kTransit2;
    } else {
      categories[as] = AsCategory::kStub;
    }
  }
  return categories;
}

}  // namespace gill::topo
