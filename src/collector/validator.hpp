// Route plausibility validation — the §14 research direction ("nothing
// prevents an attacker with an AS from announcing fake updates once it
// peers with GILL... GILL opens up new research problems in verifying the
// correctness of the collected BGP updates").
//
// The validator performs the checks a collection platform can make without
// cryptographic route attestation:
//   * martian / reserved prefixes are never legitimate announcements;
//   * AS paths must be loop-free (a repeated non-adjacent AS is forged or
//     a routing bug — either way untrustworthy);
//   * the origin should match the stable origin learned for the prefix
//     (a mismatch is a MOAS event or an origin hijack: quarantine);
//   * paths splicing together multiple never-observed adjacencies look
//     fabricated (one new link is normal topology growth; several new
//     links appearing at once in a single path is the signature of a
//     crafted path).
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "bgp/update.hpp"

namespace gill::collect {

enum class RouteVerdict : std::uint8_t {
  kOk,
  kMartianPrefix,    // reserved / non-routable space
  kPathLoop,         // repeated non-adjacent AS in the path
  kOriginMismatch,   // origin differs from the learned stable origin
  kFabricatedPath,   // too many never-observed adjacencies at once
};

std::string_view to_string(RouteVerdict verdict) noexcept;

struct ValidatorConfig {
  /// A path introducing at least this many unknown adjacencies is flagged.
  std::size_t max_new_links_per_path = 3;
  /// Observations needed before an origin counts as "stable".
  std::size_t origin_stability_threshold = 3;
};

/// Learns the plausible world from accepted updates and judges new ones.
class RouteValidator {
 public:
  explicit RouteValidator(ValidatorConfig config = {}) : config_(config) {}

  /// Checks `update` against the current state (does not learn from it).
  RouteVerdict validate(const bgp::Update& update) const;

  /// Absorbs a trusted update (e.g. one that passed validation, or
  /// bootstrap data from an established feed).
  void learn(const bgp::Update& update);

  /// Convenience: validate, then learn if the verdict is kOk.
  RouteVerdict validate_and_learn(const bgp::Update& update);

  std::size_t known_link_count() const noexcept { return links_.size(); }

  /// True for reserved/special-use space (RFC 1918, loopback, multicast,
  /// documentation, link-local, and the v6 equivalents).
  static bool is_martian(const net::Prefix& prefix);

 private:
  struct OriginState {
    bgp::AsNumber origin = 0;
    std::size_t observations = 0;
  };

  ValidatorConfig config_;
  std::unordered_set<std::uint64_t> links_;
  std::unordered_map<net::Prefix, OriginState, net::PrefixHash> origins_;
};

}  // namespace gill::collect
