// Automated peering-session vetting (§9): a network operator submits the
// web form (AS number + contact email + router address); GILL then requires
// a confirmation email from that address and cross-checks against a
// PeeringDB-like registry that the sender's domain really operates the AS.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "bgp/types.hpp"

namespace gill::collect {

/// Stand-in for PeeringDB [43]: which contact domains operate which ASes.
class AsOwnershipRegistry {
 public:
  void register_owner(const std::string& email_domain, bgp::AsNumber as) {
    owners_[email_domain].insert(as);
  }
  bool owns(const std::string& email_domain, bgp::AsNumber as) const {
    const auto it = owners_.find(email_domain);
    return it != owners_.end() && it->second.contains(as);
  }

 private:
  std::map<std::string, std::set<bgp::AsNumber>> owners_;
};

struct PeeringRequest {
  bgp::AsNumber as = 0;
  std::string contact_email;
  std::string router_address;
};

enum class VettingOutcome {
  kAccepted,        // session may be configured
  kEmailMismatch,   // confirmation came from a different address
  kNotAsOwner,      // PeeringDB cross-check failed
  kUnknownRequest,  // no pending request for this token
};

std::string_view to_string(VettingOutcome outcome) noexcept;

/// The two-step authentication workflow.
class PeeringVetting {
 public:
  explicit PeeringVetting(const AsOwnershipRegistry& registry)
      : registry_(&registry) {}

  /// Step 1: the web form. Returns the token the confirmation email must
  /// reference.
  std::uint64_t submit(const PeeringRequest& request);

  /// Step 2: a confirmation email arrives from `sender_email` for `token`.
  VettingOutcome confirm(std::uint64_t token, const std::string& sender_email);

  /// Requests vetted successfully so far.
  const std::vector<PeeringRequest>& accepted() const noexcept {
    return accepted_;
  }
  std::size_t pending_count() const noexcept { return pending_.size(); }

  /// "user@example.net" -> "example.net" (empty if malformed).
  static std::string domain_of(const std::string& email);

 private:
  const AsOwnershipRegistry* registry_;
  std::map<std::uint64_t, PeeringRequest> pending_;
  std::vector<PeeringRequest> accepted_;
  std::uint64_t next_token_ = 1;
};

}  // namespace gill::collect
