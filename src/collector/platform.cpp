#include "collector/platform.hpp"

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <unordered_set>

#include "feed/json.hpp"

namespace gill::collect {

std::string_view to_string(PeerStatus status) noexcept {
  switch (status) {
    case PeerStatus::kHealthy: return "healthy";
    case PeerStatus::kBackoff: return "backoff";
    case PeerStatus::kQuarantined: return "quarantined";
    case PeerStatus::kShed: return "shed";
  }
  return "?";
}

/// Default memory probe: resident set size in bytes, via /proc/self/statm.
std::size_t process_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long total = 0;
  unsigned long resident = 0;
  const int fields = std::fscanf(f, "%lu %lu", &total, &resident);
  std::fclose(f);
  if (fields != 2) return 0;
  return static_cast<std::size_t>(resident) *
         static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
}

Platform::PlatformCounters::PlatformCounters(metrics::Registry& registry,
                                             const metrics::Labels& labels)
    : mirrored_updates(registry.counter(
          "gill_collector_mirrored_updates_total",
          "Updates mirrored into the sampling buffer", labels)),
      forwarded_updates(registry.counter(
          "gill_collector_forwarded_updates_total",
          "Updates pushed to operator forwarding rules (custom services)", labels)),
      filter_refreshes(registry.counter(
          "gill_collector_filter_refreshes_total",
          "GILL pipeline reruns installing fresh filters", labels)),
      filter_refresh_stale(registry.counter(
          "gill_collector_filter_refresh_stale_total",
          "Completed refresh jobs discarded because a newer generation "
          "was already installed", labels)),
      mirror_purged_updates(registry.counter(
          "gill_collector_mirror_purged_updates_total",
          "Mirrored updates dropped because their peer was quarantined", labels)),
      quarantines(registry.counter("gill_collector_quarantines_total",
                                   "Peers entering quarantine", labels)),
      score_cache_hits(registry.counter(
          "gill_collector_score_cache_hits_total",
          "Pairwise VP scores served from the cross-refresh cache", labels)),
      score_cache_misses(registry.counter(
          "gill_collector_score_cache_misses_total",
          "Pairwise VP scores recomputed (cache miss or stale epoch)", labels)),
      sheds(registry.counter(
          "gill_overload_sheds_total",
          "Peers frozen by the memory-watermark degraded mode", labels)),
      readmits(registry.counter(
          "gill_overload_readmits_total",
          "Shed peers re-admitted after memory recovered", labels)),
      refreshes_deferred(registry.counter(
          "gill_overload_refreshes_deferred_total",
          "Periodic filter refreshes skipped while degraded", labels)),
      peers(registry.gauge("gill_collector_peers",
                           "Peering sessions managed by the platform", labels)),
      quarantined_peers(registry.gauge(
          "gill_collector_quarantined_peers",
          "Peers currently frozen by the quarantine policy", labels)),
      degraded(registry.gauge(
          "gill_overload_degraded",
          "1 while the memory watermark holds the platform degraded", labels)),
      memory_bytes(registry.gauge(
          "gill_overload_memory_bytes",
          "Last memory-probe reading (process RSS by default)", labels)),
      shed_peers(registry.gauge(
          "gill_overload_shed_peers",
          "Peers currently frozen by overload shedding", labels)),
      filter_refresh_duration_us(registry.histogram(
          "gill_collector_filter_refresh_duration_us",
          "Wall-clock microseconds per refresh_filters run", labels)),
      filter_refresh_queue_us(registry.histogram(
          "gill_collector_filter_refresh_queue_us",
          "Microseconds a refresh job waited for an analysis worker", labels)),
      filter_refresh_compute_us(registry.histogram(
          "gill_collector_filter_refresh_compute_us",
          "Microseconds a refresh job spent running the GILL pipeline", labels)) {}

Platform::Platform(PlatformConfig config)
    : config_(std::move(config)),
      own_registry_(config_.registry ? nullptr
                                     : std::make_unique<metrics::Registry>()),
      registry_(config_.registry ? config_.registry : own_registry_.get()),
      counters_(*registry_, config_.metric_labels),
      analysis_pool_(config_.analysis_threads >= 1 && !par::serial_forced()
                         ? std::make_unique<par::ThreadPool>(
                               config_.analysis_threads, registry_)
                         : nullptr) {}

VpId Platform::add_peer(bgp::AsNumber peer_as, Timestamp now) {
  return add_peer_internal(peer_as, now, std::make_unique<daemon::Transport>(),
                           /*make_fake_peer=*/true, /*arm_retry=*/true);
}

VpId Platform::add_faulty_peer(bgp::AsNumber peer_as, Timestamp now,
                               const daemon::FaultProfile& profile) {
  auto varied = profile;
  // De-correlate the fault streams of concurrent sessions.
  varied.seed ^= 0xD1B54A32D192ED03ULL * (next_vp_ + 1);
  return add_peer_internal(peer_as, now,
                           std::make_unique<daemon::FaultyTransport>(varied),
                           /*make_fake_peer=*/true, /*arm_retry=*/true);
}

VpId Platform::add_remote_peer(bgp::AsNumber peer_as, Timestamp now,
                               std::unique_ptr<daemon::Transport> transport) {
  // No retry policy: our side of an accepted socket cannot re-dial the
  // remote router; the remote re-establishes and the listener hands us a
  // fresh transport.
  return add_peer_internal(peer_as, now, std::move(transport),
                           /*make_fake_peer=*/false, /*arm_retry=*/false);
}

VpId Platform::add_dialed_peer(bgp::AsNumber peer_as, Timestamp now,
                               std::unique_ptr<daemon::Transport> transport) {
  // Outbound session: we dialed, so the transport's reconnect() re-dials
  // and the daemon's retry policy can drive re-establishment.
  return add_peer_internal(peer_as, now, std::move(transport),
                           /*make_fake_peer=*/false, /*arm_retry=*/true);
}

void Platform::set_archive(mrt::Sink* archive) {
  archive_ = archive;
  for (auto& [vp, peer] : peers_) peer.daemon->set_archive(archive);
}

VpId Platform::add_peer_internal(
    bgp::AsNumber peer_as, Timestamp now,
    std::unique_ptr<daemon::Transport> transport, bool make_fake_peer,
    bool arm_retry) {
  const VpId vp = config_.vp_allocator ? config_.vp_allocator() : next_vp_++;
  Peer peer;
  peer.vp = vp;
  peer.as = peer_as;
  peer.transport = std::move(transport);
  peer.daemon = std::make_unique<daemon::BgpDaemon>(
      vp, config_.local_as, *peer.transport, &filters_, &store_, registry_);
  peer.daemon->set_graceful_restart(config_.gr);
  if (archive_ != nullptr) peer.daemon->set_archive(archive_);
  peer.daemon->set_mirror([this, vp](const bgp::Update& update) {
    if (excluded(vp)) return;  // a degraded feed must not poison sampling
    mirror_.push(update);
    counters_.mirrored_updates.inc();
    forward(update);  // §14 custom services run before any discarding
    if (stream_publisher_) stream_publisher_(update);
  });
  if (config_.auto_reconnect && arm_retry) {
    auto retry = config_.retry;
    retry.jitter_seed ^= 0x9E3779B97F4A7C15ULL * (vp + 1);
    peer.daemon->set_retry_policy(retry);
  }
  if (make_fake_peer) {
    peer.remote =
        std::make_unique<daemon::FakePeer>(peer_as, *peer.transport);
  }
  peer.daemon->start(now);
  peer.last_state = peer.daemon->state();
  peers_.emplace(vp, std::move(peer));
  counters_.peers.set(static_cast<double>(peers_.size()));
  return vp;
}

void Platform::step(Timestamp now) {
  // Install any refresh job that finished since the last tick before the
  // sessions run: this tick's updates then hit the freshest filters.
  poll_refresh_jobs(/*block=*/false);
  update_overload(now);
  for (auto& [vp, peer] : peers_) {
    auto& health = peer.health;
    if (health.status == PeerStatus::kShed) {
      continue;  // frozen by overload shedding: no reads, no reconnects
    }
    if (health.status == PeerStatus::kQuarantined) {
      if (config_.health.quarantine_duration > 0 &&
          now - health.quarantined_at >= config_.health.quarantine_duration) {
        health.status = PeerStatus::kBackoff;  // released; session still down
        health.recent_flaps.clear();
        counters_.quarantined_peers.sub(1.0);
      } else {
        continue;  // frozen: no polling, no reconnect attempts
      }
    }
    if (peer.remote) peer.remote->poll();
    peer.daemon->poll(now);
    peer.daemon->tick(now);
    observe_health(peer, now);
  }
  // One refresh at a time from the periodic trigger: while a job is in
  // flight the mirror simply keeps accumulating the next window. An
  // ingest-only shard never triggers: the merge plane owns the pipeline.
  if (!config_.ingest_only && refresh_jobs_.empty() &&
      now - last_component1_ >= config_.component1_refresh &&
      !mirror_.empty()) {
    if (degraded_) {
      // Degraded mode: the pipeline rerun is the most expensive thing the
      // platform does — defer it; the mirror keeps accumulating.
      counters_.refreshes_deferred.inc();
    } else {
      refresh_filters(now);
    }
  }
}

void Platform::update_overload(Timestamp now) {
  (void)now;
  const auto& policy = config_.overload;
  if (policy.mem_high_watermark == 0) return;
  const std::size_t used =
      policy.memory_probe ? policy.memory_probe() : process_rss_bytes();
  counters_.memory_bytes.set(static_cast<double>(used));
  const std::size_t low = policy.mem_low_watermark > 0
                              ? policy.mem_low_watermark
                              : policy.mem_high_watermark / 8 * 7;
  if (!degraded_ && used >= policy.mem_high_watermark) enter_degraded();
  if (degraded_ && used >= policy.mem_high_watermark) {
    shed_peers(policy.shed_per_step);
  }
  if (degraded_ && used <= low) exit_degraded();
}

void Platform::enter_degraded() {
  degraded_ = true;
  counters_.degraded.set(1);
  for (auto& [vp, peer] : peers_) peer.daemon->set_defer_rib_dumps(true);
}

void Platform::exit_degraded() {
  degraded_ = false;
  counters_.degraded.set(0);
  for (auto& [vp, peer] : peers_) {
    peer.daemon->set_defer_rib_dumps(false);
    if (peer.health.status == PeerStatus::kShed) {
      // Re-admit: the session is still down (we stopped driving it); the
      // normal backoff/reconnect machinery takes over next step.
      peer.health.status = PeerStatus::kBackoff;
      peer.last_state = peer.daemon->state();
      counters_.readmits.inc();
      counters_.shed_peers.sub(1.0);
    }
  }
}

void Platform::shed_peers(std::size_t count) {
  const std::size_t cap = static_cast<std::size_t>(
      config_.overload.max_shed_fraction * static_cast<double>(peers_.size()));
  const std::unordered_set<VpId> anchor_set(anchors_.begin(), anchors_.end());
  for (std::size_t n = 0; n < count; ++n) {
    if (shed_count() >= cap) return;
    // Shed the lowest-volume feed first: losing it costs the least data,
    // mirroring the VP ranking the sampling pipeline already encodes.
    Peer* victim = nullptr;
    std::size_t victim_updates = 0;
    for (auto& [vp, peer] : peers_) {
      if (peer.health.status != PeerStatus::kHealthy &&
          peer.health.status != PeerStatus::kBackoff) {
        continue;
      }
      if (anchor_set.contains(vp)) continue;  // anchors are always stored
      const std::size_t updates = peer.daemon->stats().updates_received;
      if (victim == nullptr || updates < victim_updates) {
        victim = &peer;
        victim_updates = updates;
      }
    }
    if (victim == nullptr) return;
    victim->health.status = PeerStatus::kShed;
    counters_.sheds.inc();
    counters_.shed_peers.add(1.0);
  }
}

std::size_t Platform::shed_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [vp, peer] : peers_) {
    if (peer.health.status == PeerStatus::kShed) ++n;
  }
  return n;
}

void Platform::observe_health(Peer& peer, Timestamp now) {
  using daemon::SessionState;
  const SessionState state = peer.daemon->state();
  auto& health = peer.health;
  const bool flapped =
      peer.last_state != SessionState::kIdle && state == SessionState::kIdle;
  peer.last_state = state;
  if (flapped) {
    ++health.flaps;
    health.recent_flaps.push_back(now);
    while (!health.recent_flaps.empty() &&
           now - health.recent_flaps.front() > config_.health.flap_window) {
      health.recent_flaps.pop_front();
    }
    if (health.recent_flaps.size() >= config_.health.flap_threshold) {
      health.status = PeerStatus::kQuarantined;
      health.quarantined_at = now;
      ++health.quarantines;
      health.recent_flaps.clear();
      counters_.quarantines.inc();
      counters_.quarantined_peers.add(1.0);
      return;
    }
  }
  health.status = state == SessionState::kEstablished ? PeerStatus::kHealthy
                                                      : PeerStatus::kBackoff;
}

std::size_t Platform::quarantined_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [vp, peer] : peers_) {
    if (peer.health.status == PeerStatus::kQuarantined) ++n;
  }
  return n;
}

HealthSnapshot Platform::health_snapshot() const {
  HealthSnapshot snapshot;
  snapshot.peers.reserve(peers_.size());
  for (const auto& [vp, peer] : peers_) {
    PeerHealthEntry entry;
    entry.vp = vp;
    // Remote peers may register with AS 0 (unknown until their OPEN).
    entry.as = peer.as != 0 ? peer.as : peer.daemon->peer_as();
    entry.status = peer.health.status;
    entry.session = peer.daemon->state();
    entry.flaps = peer.health.flaps;
    entry.recent_flaps = peer.health.recent_flaps.size();
    entry.quarantines = peer.health.quarantines;
    if (entry.status == PeerStatus::kShed) ++snapshot.shed;
    if (entry.status == PeerStatus::kQuarantined) {
      ++snapshot.quarantined;
      entry.quarantined_at = peer.health.quarantined_at;
      if (config_.health.quarantine_duration > 0) {
        entry.quarantine_release_at =
            peer.health.quarantined_at + config_.health.quarantine_duration;
      }
    }
    snapshot.peers.push_back(entry);
  }
  return snapshot;
}

std::string format(const HealthSnapshot& snapshot) {
  std::ostringstream out;
  out << "# GILL peer health (" << snapshot.peers.size() << " peers, "
      << snapshot.quarantined << " quarantined";
  if (snapshot.shed > 0) out << ", " << snapshot.shed << " shed";
  out << ")\n";
  for (const auto& peer : snapshot.peers) {
    out << "vp" << peer.vp << " as" << peer.as << ' '
        << to_string(peer.status) << ' ' << daemon::to_string(peer.session)
        << " flaps=" << peer.flaps << " recent=" << peer.recent_flaps
        << " quarantines=" << peer.quarantines;
    if (peer.status == PeerStatus::kQuarantined) {
      out << " since=" << peer.quarantined_at;
      if (peer.quarantine_release_at != 0) {
        out << " release_at=" << peer.quarantine_release_at;
      }
    }
    out << '\n';
  }
  return out.str();
}

std::string to_json(const HealthSnapshot& snapshot) {
  feed::JsonArray sessions;
  for (const auto& peer : snapshot.peers) {
    feed::JsonObject entry;
    entry["vp"] = static_cast<std::int64_t>(peer.vp);
    entry["as"] = static_cast<std::int64_t>(peer.as);
    entry["status"] = std::string(to_string(peer.status));
    entry["session"] = std::string(daemon::to_string(peer.session));
    entry["flaps"] = static_cast<std::int64_t>(peer.flaps);
    entry["recent_flaps"] = static_cast<std::int64_t>(peer.recent_flaps);
    entry["quarantines"] = static_cast<std::int64_t>(peer.quarantines);
    if (peer.status == PeerStatus::kQuarantined) {
      entry["quarantined_at"] = static_cast<std::int64_t>(peer.quarantined_at);
      if (peer.quarantine_release_at != 0) {
        entry["quarantine_release_at"] =
            static_cast<std::int64_t>(peer.quarantine_release_at);
      }
    }
    sessions.emplace_back(std::move(entry));
  }
  feed::JsonObject root;
  root["peers"] = static_cast<std::int64_t>(snapshot.peers.size());
  root["quarantined"] = static_cast<std::int64_t>(snapshot.quarantined);
  root["shed"] = static_cast<std::int64_t>(snapshot.shed);
  root["sessions"] = std::move(sessions);
  return feed::Json(std::move(root)).dump();
}

void Platform::refresh_filters(Timestamp now,
                               const std::vector<topo::AsCategory>& categories) {
  // Snapshot everything the job needs as owned values: the mirrored window
  // (the live mirror restarts empty for the next window, Fig. 9), the
  // quarantine roster, and a copy of the score cache. The job never touches
  // Platform state, so the event loop keeps serving sessions while it runs.
  std::vector<VpId> quarantined_vps;
  for (const auto& [vp, peer] : peers_) {
    if (peer.health.status == PeerStatus::kQuarantined) {
      quarantined_vps.push_back(vp);
    }
  }
  bgp::UpdateStream mirror = std::move(mirror_);
  mirror_ = bgp::UpdateStream{};
  last_component1_ = now;
  const auto submitted_at = std::chrono::steady_clock::now();

  if (analysis_pool_ == nullptr || par::serial_forced()) {
    // Historical synchronous path (analysis_threads == 0, or the
    // GILL_ANALYSIS_SERIAL escape hatch).
    RefreshOutcome outcome =
        run_refresh_job(std::move(mirror), categories, score_cache_,
                        std::move(quarantined_vps), submitted_at);
    installed_generation_ = ++submitted_generation_;
    install_refresh(std::move(outcome));
    return;
  }

  RefreshJob job;
  job.generation = ++submitted_generation_;
  job.submitted = now;
  job.future = analysis_pool_->submit(
      [this, mirror = std::move(mirror), categories,
       cache = score_cache_, quarantined_vps = std::move(quarantined_vps),
       submitted_at]() mutable {
        return run_refresh_job(std::move(mirror), std::move(categories),
                               std::move(cache), std::move(quarantined_vps),
                               submitted_at);
      });
  refresh_jobs_.push_back(std::move(job));
}

Platform::RefreshOutcome Platform::run_refresh_job(
    bgp::UpdateStream mirror, std::vector<topo::AsCategory> categories,
    anchor::ScoreCache cache, std::vector<VpId> quarantined_vps,
    std::chrono::steady_clock::time_point submitted_at) {
  const auto started = std::chrono::steady_clock::now();
  if (config_.refresh_job_hook) config_.refresh_job_hook();
  RefreshOutcome outcome;
  outcome.queue_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         started - submitted_at)
                         .count();

  par::ThreadPool* pool =
      par::serial_forced() ? nullptr : analysis_pool_.get();

  // Updates mirrored before a peer was quarantined are just as suspect as
  // the flapping session that produced them: drop them pre-sampling. The
  // per-peer scan fans out across the pool; survivors are compacted in
  // stream order on this thread, so the pipeline input is unchanged.
  if (!quarantined_vps.empty() && !mirror.empty()) {
    const std::unordered_set<VpId> bad(quarantined_vps.begin(),
                                       quarantined_vps.end());
    const auto& stream = mirror.updates();
    std::vector<char> keep(stream.size());
    const auto scan = [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        keep[i] = bad.count(stream[i].vp) == 0 ? 1 : 0;
      }
    };
    if (pool != nullptr && stream.size() > 1) {
      pool->parallel_for(stream.size(), scan);
    } else {
      scan(0, stream.size());
    }
    bgp::UpdateStream kept;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      if (keep[i]) kept.push(stream[i]);
    }
    outcome.purged = stream.size() - kept.size();
    mirror = std::move(kept);
  }
  mirror.sort();

  const std::uint64_t hits_before = cache.hits;
  const std::uint64_t misses_before = cache.misses;
  sample::PipelineRuntime runtime;
  runtime.pool = pool;
  runtime.score_cache = &cache;
  outcome.result = sample::run_gill_pipeline(bgp::UpdateStream{}, mirror,
                                             categories, config_.gill,
                                             runtime);
  outcome.cache_hits = cache.hits - hits_before;
  outcome.cache_misses = cache.misses - misses_before;
  outcome.cache = std::move(cache);
  outcome.compute_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - started)
                           .count();
  return outcome;
}

void Platform::install_refresh(RefreshOutcome outcome) {
  filters_ = std::move(outcome.result.filters);
  anchors_ = std::move(outcome.result.anchors);
  score_cache_ = std::move(outcome.cache);
  counters_.mirror_purged_updates.inc(outcome.purged);
  counters_.score_cache_hits.inc(outcome.cache_hits);
  counters_.score_cache_misses.inc(outcome.cache_misses);
  counters_.filter_refresh_queue_us.observe(
      static_cast<double>(outcome.queue_us));
  counters_.filter_refresh_compute_us.observe(
      static_cast<double>(outcome.compute_us));
  counters_.filter_refresh_duration_us.observe(
      static_cast<double>(outcome.queue_us + outcome.compute_us));
  counters_.filter_refreshes.inc();
  pipeline_ran_ = true;
}

void Platform::poll_refresh_jobs(bool block) {
  // Harvest every completed job first, then install only the newest
  // harvested generation: an older result would roll the filters back, so
  // it is discarded as stale no matter which job finished first.
  std::vector<std::pair<std::uint64_t, RefreshOutcome>> done;
  for (auto it = refresh_jobs_.begin(); it != refresh_jobs_.end();) {
    if (!block &&
        it->future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
      ++it;
      continue;
    }
    done.emplace_back(it->generation, it->future.get());
    it = refresh_jobs_.erase(it);
  }
  std::uint64_t newest = installed_generation_;
  for (const auto& [generation, outcome] : done) {
    newest = std::max(newest, generation);
  }
  for (auto& [generation, outcome] : done) {
    if (generation == newest && generation > installed_generation_) {
      // The swap happens here, on the event-loop thread: daemons hold a
      // pointer to filters_ and only ever read it between polls.
      installed_generation_ = generation;
      install_refresh(std::move(outcome));
    } else {
      counters_.filter_refresh_stale.inc();
    }
  }
}

void Platform::wait_for_refresh() { poll_refresh_jobs(/*block=*/true); }

bgp::UpdateStream Platform::take_mirror() {
  bgp::UpdateStream mirror = std::move(mirror_);
  mirror_ = bgp::UpdateStream{};
  return mirror;
}

void Platform::install_filters(filt::FilterTable filters,
                               std::vector<VpId> anchors) {
  // Mirrors the tail of install_refresh() without the job bookkeeping:
  // the pipeline ran elsewhere (merge plane), this platform just adopts
  // its output. Bumping both generation counters keeps the invariant
  // that installed_generation_ never exceeds submitted_generation_.
  filters_ = std::move(filters);
  anchors_ = std::move(anchors);
  installed_generation_ = ++submitted_generation_;
  counters_.filter_refreshes.inc();
  pipeline_ran_ = true;
}

std::vector<VpId> Platform::quarantined_vps() const {
  std::vector<VpId> vps;
  for (const auto& [vp, peer] : peers_) {
    if (peer.health.status == PeerStatus::kQuarantined) vps.push_back(vp);
  }
  return vps;
}

void Platform::add_forwarding_rule(const net::Prefix& prefix,
                                   ForwardingSink sink) {
  forwarding_rules_.emplace_back(prefix, std::move(sink));
}

void Platform::forward(const bgp::Update& update) const {
  for (const auto& [prefix, sink] : forwarding_rules_) {
    if (prefix.covers(update.prefix)) {
      counters_.forwarded_updates.inc();
      sink(update);
    }
  }
}

std::string Platform::published_filter_document() const {
  std::string doc =
      "# GILL published filters\n"
      "# Users can infer which BGP updates are discarded and possibly\n"
      "# missing in the database.\n";
  doc += filters_.describe();
  return doc;
}

std::string Platform::published_anchor_document() const {
  std::string doc =
      "# GILL anchor VPs\n"
      "# All updates from these VPs are processed and stored.\n";
  for (const VpId vp : anchors_) {
    doc += "vp" + std::to_string(vp) + "\n";
  }
  return doc;
}

// ---------------------------------------------------------------------------
// Growth model (Fig. 2 / Fig. 3).
// ---------------------------------------------------------------------------

double GrowthModel::internet_ases(double year) {
  // ~16k ASes in 2003 growing to ~74k in 2023 (≈ 7.9%/yr compound).
  return 16000.0 * std::pow(74000.0 / 16000.0, (year - 2003.0) / 20.0);
}

double GrowthModel::vp_hosting_ases(double year) {
  // RIS+RV: ~200 hosting ASes in 2003, ~950 in 2023, roughly linear —
  // which is exactly why the coverage fraction stays flat (§2).
  return 200.0 + (950.0 - 200.0) * (year - 2003.0) / 20.0;
}

double GrowthModel::total_vps(double year) {
  // Several routers per hosting AS; ~500 VPs in 2003, ~2600 in 2023.
  return 500.0 + (2600.0 - 500.0) * (year - 2003.0) / 20.0;
}

double GrowthModel::updates_per_vp_hour(double year) {
  // Tracks announced prefixes: ~3K/h in 2003 to ~28K/h in 2023 on average
  // (Fig. 3a), superlinear late growth.
  const double t = (year - 2003.0) / 20.0;
  return 3000.0 * std::pow(28000.0 / 3000.0, t * t * 0.3 + t * 0.7);
}

double GrowthModel::total_updates_per_hour(double year) {
  // Compound effect (§3.2): more VPs x more updates per VP => quadratic.
  return total_vps(year) * updates_per_vp_hour(year);
}

}  // namespace gill::collect
