#include "collector/platform.hpp"

#include <cmath>

namespace gill::collect {

Platform::Platform(PlatformConfig config) : config_(std::move(config)) {}

VpId Platform::add_peer(bgp::AsNumber peer_as, Timestamp now) {
  const VpId vp = next_vp_++;
  Peer peer;
  peer.vp = vp;
  peer.as = peer_as;
  peer.transport = std::make_unique<daemon::Transport>();
  peer.daemon = std::make_unique<daemon::BgpDaemon>(
      vp, config_.local_as, *peer.transport, &filters_, &store_);
  peer.daemon->set_mirror([this](const bgp::Update& update) {
    mirror_.push(update);
    forward(update);  // §14 custom services run before any discarding
  });
  peer.remote = std::make_unique<daemon::FakePeer>(peer_as, *peer.transport);
  peer.daemon->start(now);
  peers_.emplace(vp, std::move(peer));
  return vp;
}

void Platform::step(Timestamp now) {
  for (auto& [vp, peer] : peers_) {
    peer.remote->poll();
    peer.daemon->poll(now);
    peer.daemon->tick(now);
  }
  if (now - last_component1_ >= config_.component1_refresh &&
      !mirror_.empty()) {
    refresh_filters(now);
    last_component1_ = now;
  }
}

void Platform::refresh_filters(Timestamp now,
                               const std::vector<topo::AsCategory>& categories) {
  mirror_.sort();
  const auto result = sample::run_gill_pipeline(bgp::UpdateStream{}, mirror_,
                                                categories, config_.gill);
  filters_ = result.filters;
  anchors_ = result.anchors;
  pipeline_ran_ = true;
  last_component1_ = now;
  mirror_ = bgp::UpdateStream{};  // drop the mirrored data (Fig. 9)
}

void Platform::add_forwarding_rule(const net::Prefix& prefix,
                                   ForwardingSink sink) {
  forwarding_rules_.emplace_back(prefix, std::move(sink));
}

void Platform::forward(const bgp::Update& update) const {
  for (const auto& [prefix, sink] : forwarding_rules_) {
    if (prefix.covers(update.prefix)) sink(update);
  }
}

std::string Platform::published_filter_document() const {
  std::string doc =
      "# GILL published filters\n"
      "# Users can infer which BGP updates are discarded and possibly\n"
      "# missing in the database.\n";
  doc += filters_.describe();
  return doc;
}

std::string Platform::published_anchor_document() const {
  std::string doc =
      "# GILL anchor VPs\n"
      "# All updates from these VPs are processed and stored.\n";
  for (const VpId vp : anchors_) {
    doc += "vp" + std::to_string(vp) + "\n";
  }
  return doc;
}

// ---------------------------------------------------------------------------
// Growth model (Fig. 2 / Fig. 3).
// ---------------------------------------------------------------------------

double GrowthModel::internet_ases(double year) {
  // ~16k ASes in 2003 growing to ~74k in 2023 (≈ 7.9%/yr compound).
  return 16000.0 * std::pow(74000.0 / 16000.0, (year - 2003.0) / 20.0);
}

double GrowthModel::vp_hosting_ases(double year) {
  // RIS+RV: ~200 hosting ASes in 2003, ~950 in 2023, roughly linear —
  // which is exactly why the coverage fraction stays flat (§2).
  return 200.0 + (950.0 - 200.0) * (year - 2003.0) / 20.0;
}

double GrowthModel::total_vps(double year) {
  // Several routers per hosting AS; ~500 VPs in 2003, ~2600 in 2023.
  return 500.0 + (2600.0 - 500.0) * (year - 2003.0) / 20.0;
}

double GrowthModel::updates_per_vp_hour(double year) {
  // Tracks announced prefixes: ~3K/h in 2003 to ~28K/h in 2023 on average
  // (Fig. 3a), superlinear late growth.
  const double t = (year - 2003.0) / 20.0;
  return 3000.0 * std::pow(28000.0 / 3000.0, t * t * 0.3 + t * 0.7);
}

double GrowthModel::total_updates_per_hour(double year) {
  // Compound effect (§3.2): more VPs x more updates per VP => quadratic.
  return total_vps(year) * updates_per_vp_hour(year);
}

}  // namespace gill::collect
