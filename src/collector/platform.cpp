#include "collector/platform.hpp"

#include <cmath>
#include <sstream>

#include "feed/json.hpp"

namespace gill::collect {

std::string_view to_string(PeerStatus status) noexcept {
  switch (status) {
    case PeerStatus::kHealthy: return "healthy";
    case PeerStatus::kBackoff: return "backoff";
    case PeerStatus::kQuarantined: return "quarantined";
  }
  return "?";
}

Platform::PlatformCounters::PlatformCounters(metrics::Registry& registry)
    : mirrored_updates(registry.counter(
          "gill_collector_mirrored_updates_total",
          "Updates mirrored into the sampling buffer")),
      forwarded_updates(registry.counter(
          "gill_collector_forwarded_updates_total",
          "Updates pushed to operator forwarding rules (custom services)")),
      filter_refreshes(registry.counter(
          "gill_collector_filter_refreshes_total",
          "GILL pipeline reruns installing fresh filters")),
      mirror_purged_updates(registry.counter(
          "gill_collector_mirror_purged_updates_total",
          "Mirrored updates dropped because their peer was quarantined")),
      quarantines(registry.counter("gill_collector_quarantines_total",
                                   "Peers entering quarantine")),
      peers(registry.gauge("gill_collector_peers",
                           "Peering sessions managed by the platform")),
      quarantined_peers(registry.gauge(
          "gill_collector_quarantined_peers",
          "Peers currently frozen by the quarantine policy")),
      filter_refresh_duration_us(registry.histogram(
          "gill_collector_filter_refresh_duration_us",
          "Wall-clock microseconds per refresh_filters run")) {}

Platform::Platform(PlatformConfig config)
    : config_(std::move(config)),
      own_registry_(config_.registry ? nullptr
                                     : std::make_unique<metrics::Registry>()),
      registry_(config_.registry ? config_.registry : own_registry_.get()),
      counters_(*registry_) {}

VpId Platform::add_peer(bgp::AsNumber peer_as, Timestamp now) {
  return add_peer_internal(peer_as, now, std::make_unique<daemon::Transport>(),
                           /*make_fake_peer=*/true, /*arm_retry=*/true);
}

VpId Platform::add_faulty_peer(bgp::AsNumber peer_as, Timestamp now,
                               const daemon::FaultProfile& profile) {
  auto varied = profile;
  // De-correlate the fault streams of concurrent sessions.
  varied.seed ^= 0xD1B54A32D192ED03ULL * (next_vp_ + 1);
  return add_peer_internal(peer_as, now,
                           std::make_unique<daemon::FaultyTransport>(varied),
                           /*make_fake_peer=*/true, /*arm_retry=*/true);
}

VpId Platform::add_remote_peer(bgp::AsNumber peer_as, Timestamp now,
                               std::unique_ptr<daemon::Transport> transport) {
  // No retry policy: our side of an accepted socket cannot re-dial the
  // remote router; the remote re-establishes and the listener hands us a
  // fresh transport.
  return add_peer_internal(peer_as, now, std::move(transport),
                           /*make_fake_peer=*/false, /*arm_retry=*/false);
}

VpId Platform::add_peer_internal(
    bgp::AsNumber peer_as, Timestamp now,
    std::unique_ptr<daemon::Transport> transport, bool make_fake_peer,
    bool arm_retry) {
  const VpId vp = next_vp_++;
  Peer peer;
  peer.vp = vp;
  peer.as = peer_as;
  peer.transport = std::move(transport);
  peer.daemon = std::make_unique<daemon::BgpDaemon>(
      vp, config_.local_as, *peer.transport, &filters_, &store_, registry_);
  peer.daemon->set_mirror([this, vp](const bgp::Update& update) {
    if (quarantined(vp)) return;  // a degraded feed must not poison sampling
    mirror_.push(update);
    counters_.mirrored_updates.inc();
    forward(update);  // §14 custom services run before any discarding
  });
  if (config_.auto_reconnect && arm_retry) {
    auto retry = config_.retry;
    retry.jitter_seed ^= 0x9E3779B97F4A7C15ULL * (vp + 1);
    peer.daemon->set_retry_policy(retry);
  }
  if (make_fake_peer) {
    peer.remote =
        std::make_unique<daemon::FakePeer>(peer_as, *peer.transport);
  }
  peer.daemon->start(now);
  peer.last_state = peer.daemon->state();
  peers_.emplace(vp, std::move(peer));
  counters_.peers.set(static_cast<double>(peers_.size()));
  return vp;
}

void Platform::step(Timestamp now) {
  for (auto& [vp, peer] : peers_) {
    auto& health = peer.health;
    if (health.status == PeerStatus::kQuarantined) {
      if (config_.health.quarantine_duration > 0 &&
          now - health.quarantined_at >= config_.health.quarantine_duration) {
        health.status = PeerStatus::kBackoff;  // released; session still down
        health.recent_flaps.clear();
        counters_.quarantined_peers.sub(1.0);
      } else {
        continue;  // frozen: no polling, no reconnect attempts
      }
    }
    if (peer.remote) peer.remote->poll();
    peer.daemon->poll(now);
    peer.daemon->tick(now);
    observe_health(peer, now);
  }
  if (now - last_component1_ >= config_.component1_refresh &&
      !mirror_.empty()) {
    refresh_filters(now);
    last_component1_ = now;
  }
}

void Platform::observe_health(Peer& peer, Timestamp now) {
  using daemon::SessionState;
  const SessionState state = peer.daemon->state();
  auto& health = peer.health;
  const bool flapped =
      peer.last_state != SessionState::kIdle && state == SessionState::kIdle;
  peer.last_state = state;
  if (flapped) {
    ++health.flaps;
    health.recent_flaps.push_back(now);
    while (!health.recent_flaps.empty() &&
           now - health.recent_flaps.front() > config_.health.flap_window) {
      health.recent_flaps.pop_front();
    }
    if (health.recent_flaps.size() >= config_.health.flap_threshold) {
      health.status = PeerStatus::kQuarantined;
      health.quarantined_at = now;
      ++health.quarantines;
      health.recent_flaps.clear();
      counters_.quarantines.inc();
      counters_.quarantined_peers.add(1.0);
      return;
    }
  }
  health.status = state == SessionState::kEstablished ? PeerStatus::kHealthy
                                                      : PeerStatus::kBackoff;
}

std::size_t Platform::quarantined_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [vp, peer] : peers_) {
    if (peer.health.status == PeerStatus::kQuarantined) ++n;
  }
  return n;
}

HealthSnapshot Platform::health_snapshot() const {
  HealthSnapshot snapshot;
  snapshot.peers.reserve(peers_.size());
  for (const auto& [vp, peer] : peers_) {
    PeerHealthEntry entry;
    entry.vp = vp;
    // Remote peers may register with AS 0 (unknown until their OPEN).
    entry.as = peer.as != 0 ? peer.as : peer.daemon->peer_as();
    entry.status = peer.health.status;
    entry.session = peer.daemon->state();
    entry.flaps = peer.health.flaps;
    entry.recent_flaps = peer.health.recent_flaps.size();
    entry.quarantines = peer.health.quarantines;
    if (entry.status == PeerStatus::kQuarantined) {
      ++snapshot.quarantined;
      entry.quarantined_at = peer.health.quarantined_at;
      if (config_.health.quarantine_duration > 0) {
        entry.quarantine_release_at =
            peer.health.quarantined_at + config_.health.quarantine_duration;
      }
    }
    snapshot.peers.push_back(entry);
  }
  return snapshot;
}

std::string format(const HealthSnapshot& snapshot) {
  std::ostringstream out;
  out << "# GILL peer health (" << snapshot.peers.size() << " peers, "
      << snapshot.quarantined << " quarantined)\n";
  for (const auto& peer : snapshot.peers) {
    out << "vp" << peer.vp << " as" << peer.as << ' '
        << to_string(peer.status) << ' ' << daemon::to_string(peer.session)
        << " flaps=" << peer.flaps << " recent=" << peer.recent_flaps
        << " quarantines=" << peer.quarantines;
    if (peer.status == PeerStatus::kQuarantined) {
      out << " since=" << peer.quarantined_at;
      if (peer.quarantine_release_at != 0) {
        out << " release_at=" << peer.quarantine_release_at;
      }
    }
    out << '\n';
  }
  return out.str();
}

std::string to_json(const HealthSnapshot& snapshot) {
  feed::JsonArray sessions;
  for (const auto& peer : snapshot.peers) {
    feed::JsonObject entry;
    entry["vp"] = static_cast<std::int64_t>(peer.vp);
    entry["as"] = static_cast<std::int64_t>(peer.as);
    entry["status"] = std::string(to_string(peer.status));
    entry["session"] = std::string(daemon::to_string(peer.session));
    entry["flaps"] = static_cast<std::int64_t>(peer.flaps);
    entry["recent_flaps"] = static_cast<std::int64_t>(peer.recent_flaps);
    entry["quarantines"] = static_cast<std::int64_t>(peer.quarantines);
    if (peer.status == PeerStatus::kQuarantined) {
      entry["quarantined_at"] = static_cast<std::int64_t>(peer.quarantined_at);
      if (peer.quarantine_release_at != 0) {
        entry["quarantine_release_at"] =
            static_cast<std::int64_t>(peer.quarantine_release_at);
      }
    }
    sessions.emplace_back(std::move(entry));
  }
  feed::JsonObject root;
  root["peers"] = static_cast<std::int64_t>(snapshot.peers.size());
  root["quarantined"] = static_cast<std::int64_t>(snapshot.quarantined);
  root["sessions"] = std::move(sessions);
  return feed::Json(std::move(root)).dump();
}

void Platform::refresh_filters(Timestamp now,
                               const std::vector<topo::AsCategory>& categories) {
  // Updates mirrored before a peer was quarantined are just as suspect as
  // the flapping session that produced them: drop them pre-sampling.
  if (quarantined_count() > 0) {
    const std::size_t before = mirror_.size();
    bgp::UpdateStream kept;
    for (const auto& update : mirror_) {
      if (!quarantined(update.vp)) kept.push(update);
    }
    mirror_ = std::move(kept);
    counters_.mirror_purged_updates.inc(before - mirror_.size());
  }
  mirror_.sort();
  {
    const metrics::Timer timer(counters_.filter_refresh_duration_us);
    const auto result = sample::run_gill_pipeline(bgp::UpdateStream{},
                                                  mirror_, categories,
                                                  config_.gill);
    filters_ = result.filters;
    anchors_ = result.anchors;
  }
  counters_.filter_refreshes.inc();
  pipeline_ran_ = true;
  last_component1_ = now;
  mirror_ = bgp::UpdateStream{};  // drop the mirrored data (Fig. 9)
}

void Platform::add_forwarding_rule(const net::Prefix& prefix,
                                   ForwardingSink sink) {
  forwarding_rules_.emplace_back(prefix, std::move(sink));
}

void Platform::forward(const bgp::Update& update) const {
  for (const auto& [prefix, sink] : forwarding_rules_) {
    if (prefix.covers(update.prefix)) {
      counters_.forwarded_updates.inc();
      sink(update);
    }
  }
}

std::string Platform::published_filter_document() const {
  std::string doc =
      "# GILL published filters\n"
      "# Users can infer which BGP updates are discarded and possibly\n"
      "# missing in the database.\n";
  doc += filters_.describe();
  return doc;
}

std::string Platform::published_anchor_document() const {
  std::string doc =
      "# GILL anchor VPs\n"
      "# All updates from these VPs are processed and stored.\n";
  for (const VpId vp : anchors_) {
    doc += "vp" + std::to_string(vp) + "\n";
  }
  return doc;
}

// ---------------------------------------------------------------------------
// Growth model (Fig. 2 / Fig. 3).
// ---------------------------------------------------------------------------

double GrowthModel::internet_ases(double year) {
  // ~16k ASes in 2003 growing to ~74k in 2023 (≈ 7.9%/yr compound).
  return 16000.0 * std::pow(74000.0 / 16000.0, (year - 2003.0) / 20.0);
}

double GrowthModel::vp_hosting_ases(double year) {
  // RIS+RV: ~200 hosting ASes in 2003, ~950 in 2023, roughly linear —
  // which is exactly why the coverage fraction stays flat (§2).
  return 200.0 + (950.0 - 200.0) * (year - 2003.0) / 20.0;
}

double GrowthModel::total_vps(double year) {
  // Several routers per hosting AS; ~500 VPs in 2003, ~2600 in 2023.
  return 500.0 + (2600.0 - 500.0) * (year - 2003.0) / 20.0;
}

double GrowthModel::updates_per_vp_hour(double year) {
  // Tracks announced prefixes: ~3K/h in 2003 to ~28K/h in 2023 on average
  // (Fig. 3a), superlinear late growth.
  const double t = (year - 2003.0) / 20.0;
  return 3000.0 * std::pow(28000.0 / 3000.0, t * t * 0.3 + t * 0.7);
}

double GrowthModel::total_updates_per_hour(double year) {
  // Compound effect (§3.2): more VPs x more updates per VP => quadratic.
  return total_vps(year) * updates_per_vp_hour(year);
}

}  // namespace gill::collect
