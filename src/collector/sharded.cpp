#include "collector/sharded.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <unordered_set>
#include <utility>

namespace gill::collect {

namespace {
Timestamp wall_clock_seconds() {
  return static_cast<Timestamp>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ShardedPlatform::ShardedPlatform(ShardedPlatformConfig config)
    : config_(std::move(config)),
      clock_(config_.clock ? config_.clock : wall_clock_seconds),
      rss_probe_(config_.platform.overload.memory_probe
                     ? config_.platform.overload.memory_probe
                     : process_rss_bytes),
      registry_(config_.platform.registry ? config_.platform.registry
                                          : &metrics::default_registry()),
      shards_(config_.shards),
      listener_(shards_, registry_),
      governor_(config_.accept_rate > 0
                    ? std::make_unique<net::SharedAcceptGovernor>(
                          config_.accept_rate, /*burst=*/0, registry_)
                    : nullptr),
      merge_pool_(config_.analysis_threads >= 1 && !par::serial_forced()
                      ? std::make_unique<par::ThreadPool>(
                            config_.analysis_threads, registry_)
                      : nullptr),
      merges_(registry_->counter(
          "gill_sharded_merges_total",
          "Merge-plane refreshes: per-shard mirrors stable-merged into one "
          "pipeline run whose result was installed fleet-wide")),
      merges_deferred_(registry_->counter(
          "gill_sharded_merges_deferred_total",
          "Periodic merged refreshes skipped while a shard was degraded")),
      merged_updates_(registry_->counter(
          "gill_sharded_merged_updates_total",
          "Updates harvested from per-shard mirrors into merged streams")),
      stream_drained_(registry_->counter(
          "gill_sharded_stream_drained_total",
          "Updates fanned out of the per-shard stream outboxes")),
      shard_gauge_(registry_->gauge("gill_sharded_shards",
                                    "Ingest shards (loops/threads)")) {
  states_.reserve(shards_.size());
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    auto state = std::make_unique<ShardState>();
    PlatformConfig shard_config = config_.platform;
    shard_config.registry = registry_;
    shard_config.ingest_only = true;     // the merge plane owns the pipeline
    shard_config.analysis_threads = 0;   // ... and the analysis pool
    shard_config.metric_labels.emplace_back("shard", std::to_string(shard));
    shard_config.vp_allocator = [this] {
      return next_vp_.fetch_add(1, std::memory_order_relaxed);
    };
    // One global memory reading per control tick: every shard's watermark
    // sees the SAME number, so degraded mode engages fleet-wide instead of
    // shedding on one shard while another keeps admitting.
    shard_config.overload.memory_probe = [this] {
      return rss_bytes_.load(std::memory_order_relaxed);
    };
    state->platform = std::make_unique<Platform>(std::move(shard_config));
    states_.push_back(std::move(state));
  }
  shard_gauge_.set(static_cast<double>(shards_.size()));
}

ShardedPlatform::~ShardedPlatform() { stop(); }

bool ShardedPlatform::listen(const std::string& host, std::uint16_t port,
                             net::ShardedListener::Mode mode) {
  return listener_.listen(
      host, port,
      [this](std::size_t shard, int fd, std::string peer_ip, std::uint16_t) {
        accept_session(shard, fd, peer_ip);
      },
      mode);
}

void ShardedPlatform::accept_session(std::size_t shard, int fd,
                                     const std::string& peer_ip) {
  // Runs on the owning shard's thread. Admission is the only global part:
  // the peer cap and the accept governor must see the whole fleet.
  if (total_peers_.load(std::memory_order_relaxed) >= config_.max_peers) {
    ::close(fd);
    return;
  }
  if (governor_ != nullptr &&
      !governor_->admit(peer_ip, shards_.loop(shard).now_ms())) {
    ::close(fd);
    return;
  }
  auto transport = std::make_unique<net::TcpTransport>(
      shards_.loop(shard), net::Role::kDaemonSide, registry_);
  auto* raw = transport.get();
  raw->set_ingest_limits(config_.ingest_limits);
  raw->adopt(fd);
  ShardState& state = *states_[shard];
  const VpId vp =
      state.platform->add_remote_peer(/*peer_as=*/0, now(),
                                      std::move(transport));
  if (config_.rib_dump_interval > 0) {
    state.platform->daemon_mut(vp).enable_rib_dumps(config_.rib_dump_interval);
  }
  state.transports[vp] = raw;
  total_peers_.fetch_add(1, std::memory_order_relaxed);
  if (config_.on_session) config_.on_session(shard, vp, peer_ip);
}

bool ShardedPlatform::dial(const std::string& host, std::uint16_t port,
                           bgp::AsNumber asn) {
  const std::size_t shard = next_dial_shard_++ % shards_.size();
  // The transport registers with the shard's loop, so the whole dial runs
  // on the owning thread (inline before start(), posted after).
  return shards_.call(shard, [this, shard, &host, port, asn]() -> bool {
    auto transport = std::make_unique<net::TcpTransport>(
        shards_.loop(shard), net::Role::kDaemonSide, registry_);
    auto* raw = transport.get();
    raw->set_ingest_limits(config_.ingest_limits);
    if (!raw->dial(host, port)) return false;
    ShardState& state = *states_[shard];
    const VpId vp =
        state.platform->add_dialed_peer(asn, now(), std::move(transport));
    if (config_.rib_dump_interval > 0) {
      state.platform->daemon_mut(vp).enable_rib_dumps(
          config_.rib_dump_interval);
    }
    state.transports[vp] = raw;
    total_peers_.fetch_add(1, std::memory_order_relaxed);
    return true;
  });
}

void ShardedPlatform::set_archive(mrt::Sink* sink) {
  archive_ = sink;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    shards_.call(shard,
                 [this, shard, sink] { states_[shard]->platform->set_archive(sink); });
  }
}

void ShardedPlatform::set_stream_publisher(
    std::function<void(const bgp::Update&)> publisher) {
  publisher_ = std::move(publisher);
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    shards_.call(shard, [this, shard] {
      ShardState* state = states_[shard].get();
      if (!publisher_) {
        state->platform->set_stream_publisher(nullptr);
        return;
      }
      state->platform->set_stream_publisher([state](const bgp::Update& update) {
        const std::lock_guard<std::mutex> lock(state->outbox_mutex);
        state->outbox.push_back(update);
      });
    });
  }
}

void ShardedPlatform::start(std::uint64_t tick_ms) {
  if (running()) return;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    shards_.loop(shard).call_every(tick_ms,
                                   [this, shard] { step_shard(shard); });
  }
  shards_.start();
}

void ShardedPlatform::stop() { shards_.stop(); }

void ShardedPlatform::step_shard(std::size_t shard) {
  ShardState& state = *states_[shard];
  state.platform->step(now());
  for (auto& [vp, transport] : state.transports) transport->sync();
}

void ShardedPlatform::control_tick(Timestamp now) {
  rss_bytes_.store(rss_probe_(), std::memory_order_relaxed);
  drain_stream();
  poll_refresh();
  if (last_refresh_ == 0) last_refresh_ = now;  // anchor the first period
  if (config_.platform.component1_refresh > 0 && !refresh_in_flight() &&
      now - last_refresh_ >= config_.platform.component1_refresh) {
    if (degraded()) {
      // Same policy as the single platform: the pipeline rerun is the most
      // expensive thing we do — defer it, the mirrors keep accumulating.
      merges_deferred_.inc();
      last_refresh_ = now;
    } else {
      refresh_filters(now);
    }
  }
}

void ShardedPlatform::drain_stream() {
  if (!publisher_) return;
  std::vector<bgp::Update> batch;
  for (auto& state : states_) {
    {
      const std::lock_guard<std::mutex> lock(state->outbox_mutex);
      batch.swap(state->outbox);
    }
    for (const auto& update : batch) publisher_(update);
    stream_drained_.inc(batch.size());
    batch.clear();
  }
}

std::size_t ShardedPlatform::peer_count() const {
  std::size_t total = 0;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    total += peer_count(shard);
  }
  return total;
}

std::size_t ShardedPlatform::peer_count(std::size_t shard) const {
  return shards_.call(shard, [this, shard] {
    return states_[shard]->platform->peer_count();
  });
}

HealthSnapshot ShardedPlatform::health_snapshot() const {
  HealthSnapshot merged;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    HealthSnapshot part = shards_.call(shard, [this, shard] {
      return states_[shard]->platform->health_snapshot();
    });
    merged.quarantined += part.quarantined;
    merged.shed += part.shed;
    merged.peers.insert(merged.peers.end(), part.peers.begin(),
                        part.peers.end());
  }
  std::sort(merged.peers.begin(), merged.peers.end(),
            [](const PeerHealthEntry& a, const PeerHealthEntry& b) {
              return a.vp < b.vp;
            });
  return merged;
}

bool ShardedPlatform::degraded() const {
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    const bool is = shards_.call(shard, [this, shard] {
      return states_[shard]->platform->degraded();
    });
    if (is) return true;
  }
  return false;
}

std::size_t ShardedPlatform::stored_updates() const {
  std::size_t total = 0;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    total += shards_.call(shard, [this, shard] {
      return states_[shard]->platform->store().stored();
    });
  }
  return total;
}

bgp::UpdateStream ShardedPlatform::take_merged_mirror() {
  bgp::UpdateStream merged;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    bgp::UpdateStream part = shards_.call(shard, [this, shard] {
      return states_[shard]->platform->take_mirror();
    });
    for (auto& update : part.updates()) merged.push(std::move(update));
  }
  // The determinism contract: each VP lives on exactly one shard and each
  // shard mirror preserves arrival order, so a STABLE sort by (time, vp)
  // keeps per-VP order and breaks cross-VP ties by id — the result is
  // byte-identical for any shard count.
  auto& updates = merged.updates();
  std::stable_sort(updates.begin(), updates.end(),
                   [](const bgp::Update& a, const bgp::Update& b) {
                     return a.time != b.time ? a.time < b.time : a.vp < b.vp;
                   });
  merged_updates_.inc(updates.size());
  return merged;
}

bgp::UpdateStream ShardedPlatform::merged_rib_dump(Timestamp time) const {
  bgp::UpdateStream merged;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    bgp::UpdateStream part = shards_.call(shard, [this, shard, time] {
      Platform& platform = *states_[shard]->platform;
      bgp::UpdateStream out;
      for (const auto& entry : platform.health_snapshot().peers) {
        out.append(platform.daemon_of(entry.vp).rib().dump(entry.vp, time));
      }
      return out;
    });
    merged.append(part);
  }
  merged.sort();  // total order by (time, vp, prefix): shard-count-invariant
  return merged;
}

void ShardedPlatform::refresh_filters(Timestamp now) {
  last_refresh_ = now;
  std::vector<VpId> quarantined;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    std::vector<VpId> part = shards_.call(shard, [this, shard] {
      return states_[shard]->platform->quarantined_vps();
    });
    quarantined.insert(quarantined.end(), part.begin(), part.end());
  }
  bgp::UpdateStream mirror = take_merged_mirror();
  if (mirror.empty()) return;

  if (merge_pool_ == nullptr || par::serial_forced()) {
    install(run_merge_job(std::move(mirror), std::move(quarantined),
                          score_cache_));
    return;
  }
  merge_job_ = merge_pool_->submit(
      [this, mirror = std::move(mirror), quarantined = std::move(quarantined),
       cache = score_cache_]() mutable {
        return run_merge_job(std::move(mirror), std::move(quarantined),
                             std::move(cache));
      });
}

ShardedPlatform::MergeOutcome ShardedPlatform::run_merge_job(
    bgp::UpdateStream mirror, std::vector<VpId> quarantined,
    anchor::ScoreCache cache) const {
  // Same pre-sampling hygiene as Platform::run_refresh_job: a quarantined
  // feed's mirrored updates are as suspect as the flapping session.
  if (!quarantined.empty()) {
    const std::unordered_set<VpId> bad(quarantined.begin(), quarantined.end());
    bgp::UpdateStream kept;
    for (const auto& update : mirror.updates()) {
      if (bad.count(update.vp) == 0) kept.push(update);
    }
    mirror = std::move(kept);
  }
  mirror.sort();
  sample::PipelineRuntime runtime;
  runtime.pool = par::serial_forced() ? nullptr : merge_pool_.get();
  runtime.score_cache = &cache;
  auto result = sample::run_gill_pipeline(bgp::UpdateStream{}, mirror, {},
                                          config_.platform.gill, runtime);
  MergeOutcome outcome;
  outcome.filters = std::move(result.filters);
  outcome.anchors = std::move(result.anchors);
  outcome.cache = std::move(cache);
  return outcome;
}

void ShardedPlatform::install(MergeOutcome outcome) {
  filters_ = std::move(outcome.filters);
  anchors_ = std::move(outcome.anchors);
  score_cache_ = std::move(outcome.cache);
  ++generation_;
  merges_.inc();
  // Every shard adopts the identical result: the fleet filters exactly as
  // one unsharded platform would.
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    shards_.call(shard, [this, shard] {
      states_[shard]->platform->install_filters(filters_, anchors_);
    });
  }
}

void ShardedPlatform::poll_refresh() {
  if (!merge_job_.valid() ||
      merge_job_.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
    return;
  }
  install(merge_job_.get());
}

void ShardedPlatform::wait_for_refresh() {
  if (merge_job_.valid()) install(merge_job_.get());
}

std::string ShardedPlatform::published_filter_document() const {
  std::string doc =
      "# GILL published filters\n"
      "# Users can infer which BGP updates are discarded and possibly\n"
      "# missing in the database.\n";
  doc += filters_.describe();
  return doc;
}

std::string ShardedPlatform::published_anchor_document() const {
  std::string doc =
      "# GILL anchor VPs\n"
      "# All updates from these VPs are processed and stored.\n";
  for (const VpId vp : anchors_) {
    doc += "vp" + std::to_string(vp) + "\n";
  }
  return doc;
}

bool ShardedPlatform::save_archive(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  bool ok = true;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    const std::vector<std::uint8_t> buffer =
        shards_.call(shard, [this, shard]() -> std::vector<std::uint8_t> {
          return states_[shard]->platform->store().writer().buffer();
        });
    if (!buffer.empty() &&
        std::fwrite(buffer.data(), 1, buffer.size(), file) != buffer.size()) {
      ok = false;
      break;
    }
  }
  return std::fclose(file) == 0 && ok;
}

}  // namespace gill::collect
