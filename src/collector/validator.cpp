#include "collector/validator.hpp"

#include <algorithm>
#include <array>

namespace gill::collect {

std::string_view to_string(RouteVerdict verdict) noexcept {
  switch (verdict) {
    case RouteVerdict::kOk: return "ok";
    case RouteVerdict::kMartianPrefix: return "martian-prefix";
    case RouteVerdict::kPathLoop: return "path-loop";
    case RouteVerdict::kOriginMismatch: return "origin-mismatch";
    case RouteVerdict::kFabricatedPath: return "fabricated-path";
  }
  return "?";
}

namespace {

std::uint64_t link_key(bgp::AsNumber a, bgp::AsNumber b) {
  const bgp::AsNumber lo = a < b ? a : b;
  const bgp::AsNumber hi = a < b ? b : a;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

/// True if the path revisits an AS after having left it (prepending — the
/// same AS repeated consecutively — is fine).
bool has_loop(const bgp::AsPath& path) {
  std::unordered_set<bgp::AsNumber> seen;
  bgp::AsNumber previous = 0;
  bool first = true;
  for (const bgp::AsNumber hop : path.hops()) {
    if (!first && hop == previous) continue;  // prepend repetition
    if (!seen.insert(hop).second) return true;
    previous = hop;
    first = false;
  }
  return false;
}

}  // namespace

bool RouteValidator::is_martian(const net::Prefix& prefix) {
  static const std::array<const char*, 10> kMartians = {
      "0.0.0.0/8",      // "this network"
      "10.0.0.0/8",     // RFC 1918
      "127.0.0.0/8",    // loopback
      "169.254.0.0/16", // link local
      "172.16.0.0/12",  // RFC 1918
      "192.168.0.0/16", // RFC 1918
      "224.0.0.0/4",    // multicast
      "240.0.0.0/4",    // reserved
      "fe80::/10",      // v6 link local
      "ff00::/8",       // v6 multicast
  };
  for (const char* text : kMartians) {
    const auto martian = net::Prefix::parse(text).value();
    if (martian.family() == prefix.family() && martian.covers(prefix)) {
      return true;
    }
  }
  return false;
}

RouteVerdict RouteValidator::validate(const bgp::Update& update) const {
  if (update.withdrawal) return RouteVerdict::kOk;  // nothing to fabricate
  if (is_martian(update.prefix)) return RouteVerdict::kMartianPrefix;
  if (has_loop(update.path)) return RouteVerdict::kPathLoop;

  if (const auto it = origins_.find(update.prefix); it != origins_.end()) {
    if (it->second.observations >= config_.origin_stability_threshold &&
        !update.path.empty() &&
        update.path.origin() != it->second.origin) {
      return RouteVerdict::kOriginMismatch;
    }
  }

  std::size_t new_links = 0;
  for (const auto& link : update.path.links()) {
    if (!links_.contains(link_key(link.from, link.to))) ++new_links;
  }
  if (!links_.empty() && new_links >= config_.max_new_links_per_path) {
    return RouteVerdict::kFabricatedPath;
  }
  return RouteVerdict::kOk;
}

void RouteValidator::learn(const bgp::Update& update) {
  if (update.withdrawal) return;
  for (const auto& link : update.path.links()) {
    links_.insert(link_key(link.from, link.to));
  }
  if (!update.path.empty()) {
    OriginState& state = origins_[update.prefix];
    if (state.origin == update.path.origin()) {
      ++state.observations;
    } else {
      state.origin = update.path.origin();
      state.observations = 1;
    }
  }
}

RouteVerdict RouteValidator::validate_and_learn(const bgp::Update& update) {
  const RouteVerdict verdict = validate(update);
  if (verdict == RouteVerdict::kOk) learn(update);
  return verdict;
}

}  // namespace gill::collect
