#include "collector/vetting.hpp"

#include <vector>

namespace gill::collect {

std::string_view to_string(VettingOutcome outcome) noexcept {
  switch (outcome) {
    case VettingOutcome::kAccepted: return "accepted";
    case VettingOutcome::kEmailMismatch: return "email-mismatch";
    case VettingOutcome::kNotAsOwner: return "not-as-owner";
    case VettingOutcome::kUnknownRequest: return "unknown-request";
  }
  return "?";
}

std::string PeeringVetting::domain_of(const std::string& email) {
  const auto at = email.rfind('@');
  if (at == std::string::npos || at + 1 >= email.size()) return {};
  return email.substr(at + 1);
}

std::uint64_t PeeringVetting::submit(const PeeringRequest& request) {
  const std::uint64_t token = next_token_++;
  pending_[token] = request;
  return token;
}

VettingOutcome PeeringVetting::confirm(std::uint64_t token,
                                       const std::string& sender_email) {
  const auto it = pending_.find(token);
  if (it == pending_.end()) return VettingOutcome::kUnknownRequest;
  const PeeringRequest request = it->second;

  // (i) the confirmation email must come from the address on the form.
  if (sender_email != request.contact_email) {
    return VettingOutcome::kEmailMismatch;
  }
  // (ii) cross-check AS ownership against the registry (PeeringDB in §9).
  if (!registry_->owns(domain_of(sender_email), request.as)) {
    pending_.erase(it);
    return VettingOutcome::kNotAsOwner;
  }
  pending_.erase(it);
  accepted_.push_back(request);
  return VettingOutcome::kAccepted;
}

}  // namespace gill::collect
