// The sharded ingest plane (DESIGN.md §14): N ingest shards — one
// net::EventLoop, one ingest-only Platform, one SO_REUSEPORT listener each
// — plus the merge plane that stitches their per-shard mirrors back into
// ONE deterministic stream for the sampling pipeline.
//
// Ownership model. A session lives and dies on exactly one shard: its
// TcpTransport, BGP daemon FSM, token buckets, RIB and update mirror are
// all owned by that shard's loop thread and never touched by another. The
// only cross-thread primitives are EventLoop::post() (and its synchronous
// spelling ShardSet::call(), the control plane's harvest) and a handful of
// shared atomics:
//   * the VP-id allocator — one atomic counter, so ids are unique across
//     shards and independent of WHICH shard a session lands on,
//   * the global peer-count cap,
//   * the memory-watermark reading — the control thread samples the
//     process RSS once per tick and every shard's watermark check reads
//     that one number (an overloaded process is overloaded everywhere;
//     per-shard readings would shed on one shard while another admits),
//   * the SharedAcceptGovernor — a reconnect storm spread across N
//     listeners is still one storm.
// Ingest token buckets and queue watermarks stay shard-local: they police
// one session each, on the session's own thread, lock-free.
//
// Merge determinism. The merged mirror handed to the analysis pipeline is
// byte-identical regardless of shard count: each VP lives on exactly one
// shard, per-shard mirrors preserve arrival order, and the merge is a
// stable sort by (time, vp) — so per-VP order survives and cross-VP ties
// break by id, never by shard topology. The same pipeline output (filters
// + anchors) is then installed into every shard.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "collector/platform.hpp"
#include "net/shard.hpp"
#include "net/tcp_transport.hpp"

namespace gill::collect {

/// Serializes an mrt::Sink that N shard threads write concurrently (the
/// daemons' archive tee). Records from different sessions interleave at
/// record granularity; per-session order is preserved (each session writes
/// from one thread). with_lock() lets the control thread run the inner
/// sink's own maintenance (SegmentWriter::tick/close) under the same lock.
class LockedSink : public mrt::Sink {
 public:
  explicit LockedSink(mrt::Sink* inner) : inner_(inner) {}

  void store(const bgp::Update& update) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_->store(update);
  }
  void store_rib_entry(const bgp::Update& entry) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_->store_rib_entry(entry);
  }
  template <typename F>
  void with_lock(F&& fn) {
    const std::lock_guard<std::mutex> lock(mutex_);
    fn();
  }

 private:
  std::mutex mutex_;
  mrt::Sink* inner_;
};

struct ShardedPlatformConfig {
  /// Ingest shards (loops/threads). Clamped to at least 1.
  std::size_t shards = 1;
  /// Template for every shard's Platform. ingest_only, vp_allocator,
  /// metric_labels, analysis_threads and overload.memory_probe are
  /// overridden per shard; everything else (local_as, gr, retry, health,
  /// gill, refresh periods, registry) applies as given.
  PlatformConfig platform;
  /// Per-session ingest policing, applied to every accepted/dialed socket.
  net::IngestLimits ingest_limits;
  /// Global session cap across all shards.
  std::size_t max_peers = 4096;
  /// Per-source accepts/second before connections are refused (global
  /// across shards; 0 disables).
  double accept_rate = 0;
  /// Per-session RIB snapshot period, seconds (0 disables).
  Timestamp rib_dump_interval = 0;
  /// Merge-plane analysis pool: refresh jobs (the ONE pipeline run over
  /// the merged mirrors) run here. 0 = synchronous on the control thread.
  std::size_t analysis_threads = 0;
  /// Logical clock (seconds) stamped on sessions and updates. Must be
  /// callable from any shard thread. Defaults to the wall clock; tests
  /// inject a fixed clock to make merged snapshots byte-comparable.
  std::function<Timestamp()> clock;
  /// Observer for every admitted session (logging). Runs on the OWNING
  /// shard's thread — keep it cheap and thread-safe.
  std::function<void(std::size_t shard, VpId vp, const std::string& peer_ip)>
      on_session;
};

class ShardedPlatform {
 public:
  explicit ShardedPlatform(ShardedPlatformConfig config);
  ~ShardedPlatform();
  ShardedPlatform(const ShardedPlatform&) = delete;
  ShardedPlatform& operator=(const ShardedPlatform&) = delete;

  // --- setup (call BEFORE start()) -----------------------------------------
  /// Binds the BGP listen port across the fleet (SO_REUSEPORT, or the
  /// round-robin dispatcher in kDispatcher mode / as fallback).
  bool listen(const std::string& host, std::uint16_t port,
              net::ShardedListener::Mode mode =
                  net::ShardedListener::Mode::kAuto);
  /// Dials an outbound peering; sessions are spread round-robin.
  bool dial(const std::string& host, std::uint16_t port, bgp::AsNumber asn);
  /// Tees every session's stored records into `sink` IN ADDITION to the
  /// per-shard in-memory stores. `sink` is written from N shard threads —
  /// wrap it in a LockedSink (or pass something inherently thread-safe).
  void set_archive(mrt::Sink* sink);
  /// Live-stream tap: updates are collected into per-shard outboxes on
  /// the hot path and fanned out to `publisher` on the CONTROL thread by
  /// control_tick()/drain_stream() — StreamHub and friends stay
  /// single-threaded. Per-VP order is preserved; cross-VP interleaving
  /// follows harvest order.
  void set_stream_publisher(std::function<void(const bgp::Update&)> publisher);

  /// Starts the shard threads; each loop ticks its own sessions every
  /// `tick_ms` (daemon polls, hold timers, transport sync).
  void start(std::uint64_t tick_ms = 200);
  /// Stops and joins the fleet. Idempotent; also runs from the destructor.
  void stop();
  bool running() const noexcept { return shards_.running(); }

  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::uint16_t port() const noexcept { return listener_.port(); }
  bool reuse_port_active() const noexcept {
    return listener_.reuse_port_active();
  }
  /// Dispatcher-mode fd hand-offs (0 while SO_REUSEPORT is active).
  std::size_t handoffs() const noexcept { return listener_.handoffs(); }

  // --- control plane (call from ONE control thread only) -------------------
  /// The per-tick control work: samples the memory probe into the shared
  /// watermark reading, drains the stream outboxes, installs a completed
  /// merge job, and triggers the periodic merged refresh when due.
  void control_tick(Timestamp now);
  /// Fans queued stream updates out to the publisher (subset of
  /// control_tick for callers with their own cadence).
  void drain_stream();

  std::size_t peer_count() const;
  std::size_t peer_count(std::size_t shard) const;
  /// Merged across shards, peers ordered by VP id.
  HealthSnapshot health_snapshot() const;
  /// True when any shard's memory watermark holds it degraded.
  bool degraded() const;
  /// Sum of per-shard in-memory stores.
  std::size_t stored_updates() const;

  /// Harvests every shard's mirror (each restarts empty) and stable-merges
  /// them by (time, vp): byte-identical for any shard count.
  bgp::UpdateStream take_merged_mirror();
  /// Every session's RIB dumped at `time`, merged and fully sorted —
  /// shard-count-invariant by the same argument as the mirror.
  bgp::UpdateStream merged_rib_dump(Timestamp time) const;

  /// The merge-plane refresh: harvest + stable merge + ONE pipeline run +
  /// install the identical (filters, anchors) into every shard. Runs on
  /// the analysis pool when configured (install happens in a later
  /// control_tick/poll_refresh), synchronously otherwise. No-op on an
  /// empty merged mirror.
  void refresh_filters(Timestamp now);
  bool refresh_in_flight() const noexcept { return merge_job_.valid(); }
  /// Installs a completed merge job (non-blocking).
  void poll_refresh();
  /// Blocks until any in-flight merge job is installed.
  void wait_for_refresh();
  std::uint64_t filter_generation() const noexcept { return generation_; }

  /// The merged filter/anchor state (control-thread view; the address is
  /// stable, so BMP ingest can hold a pointer).
  const filt::FilterTable& filters() const noexcept { return filters_; }
  const std::vector<VpId>& anchors() const noexcept { return anchors_; }
  std::string published_filter_document() const;
  std::string published_anchor_document() const;

  /// Concatenates the per-shard MRT stores into one archive file. Shard
  /// order, NOT canonical across shard counts — an operator dump, not the
  /// determinism surface (that is take_merged_mirror / merged_rib_dump).
  bool save_archive(const std::string& path) const;

  /// Runs `fn(platform)` on shard `shard`'s thread and returns its result
  /// — the test/tooling escape hatch for per-shard inspection.
  template <typename F>
  auto with_shard(std::size_t shard, F&& fn) {
    return shards_.call(shard, [this, shard, &fn] {
      return fn(*states_[shard]->platform);
    });
  }

 private:
  struct ShardState {
    std::unique_ptr<Platform> platform;
    /// TcpTransport view of the platform-owned transports (per-tick sync).
    std::map<VpId, net::TcpTransport*> transports;
    /// Stream outbox: filled on the shard thread, drained by the control
    /// thread (the one lock on the mirror path; uncontended between ticks).
    std::mutex outbox_mutex;
    std::vector<bgp::Update> outbox;
  };

  /// What a merge job computes away from the control thread.
  struct MergeOutcome {
    filt::FilterTable filters;
    std::vector<VpId> anchors;
    anchor::ScoreCache cache;
  };

  /// Runs on the owning shard's thread (ShardedListener contract).
  void accept_session(std::size_t shard, int fd, const std::string& peer_ip);
  /// One shard's tick body (shard thread): step the platform, sync sockets.
  void step_shard(std::size_t shard);
  Timestamp now() const { return clock_(); }
  MergeOutcome run_merge_job(bgp::UpdateStream mirror,
                             std::vector<VpId> quarantined,
                             anchor::ScoreCache cache) const;
  void install(MergeOutcome outcome);

  ShardedPlatformConfig config_;
  std::function<Timestamp()> clock_;
  std::function<std::size_t()> rss_probe_;
  metrics::Registry* registry_;
  /// mutable: ShardSet::call() posts into loops, but a harvest is
  /// logically const (peer_count() & co. only read shard state).
  mutable net::ShardSet shards_;
  net::ShardedListener listener_;
  std::unique_ptr<net::SharedAcceptGovernor> governor_;
  std::vector<std::unique_ptr<ShardState>> states_;
  std::function<void(const bgp::Update&)> publisher_;
  mrt::Sink* archive_ = nullptr;

  std::atomic<VpId> next_vp_{0};
  std::atomic<std::size_t> total_peers_{0};
  std::atomic<std::size_t> rss_bytes_{0};

  // Merge plane (control-thread state).
  std::unique_ptr<par::ThreadPool> merge_pool_;
  std::future<MergeOutcome> merge_job_;
  filt::FilterTable filters_;
  std::vector<VpId> anchors_;
  anchor::ScoreCache score_cache_;
  std::uint64_t generation_ = 0;
  Timestamp last_refresh_ = 0;
  std::size_t next_dial_shard_ = 0;
  metrics::Counter& merges_;
  metrics::Counter& merges_deferred_;
  metrics::Counter& merged_updates_;
  metrics::Counter& stream_drained_;
  metrics::Gauge& shard_gauge_;
};

}  // namespace gill::collect
