// The GILL platform orchestrator (Fig. 9, §8-§9): manages one BGP daemon
// per peer over in-memory transports, mirrors incoming updates for the
// sampling algorithms, periodically re-runs Components #1/#2, regenerates
// filters and loads them into the daemons, and publishes the two supporting
// documents (the filter description and the anchor-VP list).
#pragma once

#include <chrono>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>

#include "daemon/daemon.hpp"
#include "daemon/faults.hpp"
#include "metrics/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "sampling/gill_pipeline.hpp"
#include "topology/topology.hpp"

namespace gill::collect {

using bgp::Timestamp;
using bgp::VpId;

/// Flap accounting and quarantine rules: a session that keeps dying is a
/// degraded feed, and a degraded feed must never poison the sampling
/// pipeline (its mirror data is excluded from refresh_filters).
struct HealthPolicy {
  /// Flaps within `flap_window` that trigger a quarantine.
  std::size_t flap_threshold = 4;
  Timestamp flap_window = 3600;
  /// How long a quarantine lasts; 0 keeps the peer out until an operator
  /// intervenes (permanent).
  Timestamp quarantine_duration = 0;
};

/// Process-wide overload policy (DESIGN.md §11). When the memory probe
/// reads above `mem_high_watermark` bytes the platform enters a degraded
/// mode: filter refreshes and periodic RIB snapshots are deferred, and the
/// lowest-volume non-anchor peers are shed (frozen, like quarantine but
/// load-driven) a few per step. Everything is re-admitted once the probe
/// drops below `mem_low_watermark`.
struct OverloadPolicy {
  /// Bytes of process memory that trigger degraded mode; 0 disables.
  std::size_t mem_high_watermark = 0;
  /// Recovery threshold; defaults to 7/8 of the high watermark when 0.
  std::size_t mem_low_watermark = 0;
  /// Peers shed per step while memory stays above the high watermark.
  std::size_t shed_per_step = 1;
  /// Never shed more than this fraction of the peer set.
  double max_shed_fraction = 0.5;
  /// Memory probe (bytes). Defaults to the process RSS (/proc/self/statm);
  /// tests inject a deterministic source.
  std::function<std::size_t()> memory_probe;
};

struct PlatformConfig {
  /// Component #1 refresh period (16 days in the paper, §7).
  Timestamp component1_refresh = 16 * 86400;
  /// Component #2 refresh period (one year, §7).
  Timestamp component2_refresh = 365 * 86400;
  sample::GillConfig gill;
  bgp::AsNumber local_as = 65000;
  /// Session resilience: every daemon reconnects after teardown with this
  /// backoff (jitter-seeded per VP). Disable for single-shot sessions.
  daemon::RetryPolicy retry;
  bool auto_reconnect = true;
  HealthPolicy health;
  /// RFC 4724 graceful-restart policy applied to every session's daemon.
  /// Negotiation still requires the peer to advertise the capability, so
  /// plain peers keep the historical purge-and-replay behavior.
  daemon::GracefulRestartConfig gr;
  OverloadPolicy overload;
  /// Registry hosting the platform's and every session's metrics; when
  /// null the platform owns a private one (see Platform::metrics()).
  metrics::Registry* registry = nullptr;
  /// Labels stamped on every platform-level instrument. The sharded
  /// collector sets {{"shard","<i>"}} so N platforms sharing one registry
  /// publish distinct series instead of clobbering one another's gauges.
  metrics::Labels metric_labels;
  /// Analysis worker threads (DESIGN.md §9). 0 keeps the historical
  /// synchronous path: refresh_filters runs the pipeline inline on the
  /// caller's thread. N >= 1 spawns a worker pool; refresh_filters then
  /// snapshots the mirror, hands the pipeline to the pool and returns
  /// immediately — the event loop keeps serving sessions and step()
  /// installs the new filter generation when the job completes. The
  /// GILL_ANALYSIS_SERIAL environment variable overrides this back to 0.
  std::size_t analysis_threads = 0;
  /// Test/chaos hook: runs on the worker at the start of every async
  /// refresh job (e.g. to hold a job in flight deterministically while the
  /// test asserts that sessions keep flowing). Ignored in synchronous mode.
  std::function<void()> refresh_job_hook;
  /// Sharded-ingest role (DESIGN.md §14): an ingest-only platform owns
  /// sessions and mirrors their updates, but never runs the sampling
  /// pipeline itself — step() skips the periodic refresh trigger. The
  /// merge plane harvests the mirror (take_mirror()) and pushes the
  /// merged pipeline result back in (install_filters()).
  bool ingest_only = false;
  /// VP-id allocator. Empty keeps the historical platform-local counter;
  /// the sharded collector injects one shared atomic counter so ids stay
  /// unique across shards and independent of which shard a session lands
  /// on (part of the shard-count-invariance contract).
  std::function<VpId()> vp_allocator;
};

enum class PeerStatus : std::uint8_t {
  kHealthy,      // session up
  kBackoff,      // torn down, waiting out the reconnect backoff
  kQuarantined,  // flapped too often: frozen and excluded from sampling
  kShed,         // frozen by overload degraded mode; re-admitted on recovery
};

std::string_view to_string(PeerStatus status) noexcept;

struct PeerHealth {
  PeerStatus status = PeerStatus::kHealthy;
  std::size_t flaps = 0;        // total teardowns observed
  std::size_t quarantines = 0;  // times the peer entered quarantine
  std::deque<Timestamp> recent_flaps;  // within the sliding flap window
  Timestamp quarantined_at = 0;
};

/// One peer's row in a HealthSnapshot: plain values, no live references.
struct PeerHealthEntry {
  VpId vp = 0;
  bgp::AsNumber as = 0;
  PeerStatus status = PeerStatus::kHealthy;
  daemon::SessionState session = daemon::SessionState::kIdle;
  std::size_t flaps = 0;
  std::size_t recent_flaps = 0;  // within the sliding flap window
  std::size_t quarantines = 0;
  Timestamp quarantined_at = 0;        // 0 when not quarantined
  Timestamp quarantine_release_at = 0;  // 0 = permanent or not quarantined

  friend bool operator==(const PeerHealthEntry&,
                         const PeerHealthEntry&) noexcept = default;
};

/// Structured per-peer health, replacing the preformatted string the old
/// health_report() returned: callers assert on fields and quarantine
/// deadlines; rendering is a separate concern (see format()).
struct HealthSnapshot {
  std::size_t quarantined = 0;
  std::size_t shed = 0;  // frozen by overload degraded mode
  std::vector<PeerHealthEntry> peers;  // ordered by VP id
};

/// Renders a snapshot as the one-line-per-peer operator report.
std::string format(const HealthSnapshot& snapshot);

/// Renders a snapshot as one JSON document (the /healthz payload of the
/// HTTP endpoint): {"peers":N,"quarantined":N,"sessions":[...]}.
std::string to_json(const HealthSnapshot& snapshot);

/// Resident set size in bytes (/proc/self/statm) — the default memory
/// probe. Public so the sharded collector can take ONE reading per tick
/// and fan the same number out to every shard's watermark check (the
/// watermark must act globally; see OverloadPolicy::memory_probe).
std::size_t process_rss_bytes();

/// One managed peering session. `remote` is null for sessions whose peer
/// lives across a real socket (add_remote_peer): there is nothing local to
/// drive, the network delivers the peer's bytes.
struct Peer {
  VpId vp = 0;
  bgp::AsNumber as = 0;
  std::unique_ptr<daemon::Transport> transport;
  std::unique_ptr<daemon::BgpDaemon> daemon;
  std::unique_ptr<daemon::FakePeer> remote;
  daemon::SessionState last_state = daemon::SessionState::kIdle;
  PeerHealth health;
};

class Platform {
 public:
  explicit Platform(PlatformConfig config = {});

  /// Starts a new peering session; returns the assigned VP id. The remote
  /// end is a FakePeer handle the caller drives (tests / simulation).
  VpId add_peer(bgp::AsNumber peer_as, Timestamp now);

  /// Like add_peer, but the session runs over a fault-injecting transport
  /// (chaos testing): the profile's seed is XOR-varied per VP.
  VpId add_faulty_peer(bgp::AsNumber peer_as, Timestamp now,
                       const daemon::FaultProfile& profile);

  /// Starts a session whose remote end lives across a real network: the
  /// caller supplies the transport (typically a net::TcpTransport wrapping
  /// a listener-accepted socket) and no FakePeer is created. `peer_as` may
  /// be 0 when unknown; it is learned from the peer's OPEN. The daemon's
  /// retry policy is NOT armed — an inbound peer re-establishes by
  /// re-dialing us.
  VpId add_remote_peer(bgp::AsNumber peer_as, Timestamp now,
                       std::unique_ptr<daemon::Transport> transport);

  /// Like add_remote_peer, but for an *outbound* session we initiated
  /// (gill-collectord --dial): the retry policy IS armed, because our side
  /// owns the connection and the transport can re-dial on teardown.
  VpId add_dialed_peer(bgp::AsNumber peer_as, Timestamp now,
                       std::unique_ptr<daemon::Transport> transport);

  /// The scripted remote of an in-process session. Only valid for peers
  /// created by add_peer/add_faulty_peer (remote sessions have no local
  /// fake peer; see has_remote()).
  daemon::FakePeer& remote(VpId vp) { return *peers_.at(vp).remote; }
  bool has_remote(VpId vp) const {
    return peers_.at(vp).remote != nullptr;
  }
  const daemon::BgpDaemon& daemon_of(VpId vp) const {
    return *peers_.at(vp).daemon;
  }
  /// Mutable session access for operator features that post-configure a
  /// daemon (periodic RIB dumps in gill_collectord, test hooks).
  daemon::BgpDaemon& daemon_mut(VpId vp) { return *peers_.at(vp).daemon; }
  daemon::Transport& transport_of(VpId vp) { return *peers_.at(vp).transport; }
  std::size_t peer_count() const noexcept { return peers_.size(); }

  /// Per-peer session health (flap counters and quarantine state).
  const PeerHealth& health(VpId vp) const { return peers_.at(vp).health; }
  std::size_t quarantined_count() const noexcept;
  /// Overload degraded mode (memory watermark, DESIGN.md §11).
  bool degraded() const noexcept { return degraded_; }
  std::size_t shed_count() const noexcept;
  /// Structured per-peer health: status, session state, flap counters and
  /// quarantine deadlines. Render with format(snapshot) for the operator
  /// report or to_json(snapshot) for the HTTP /healthz payload.
  HealthSnapshot health_snapshot() const;

  /// The registry holding the platform's and every session's metrics;
  /// expose_prometheus()/expose_json() are the scrape endpoints.
  metrics::Registry& metrics() const noexcept { return *registry_; }

  /// Drives all sessions: polls daemons and remotes, expires hold timers,
  /// installs any completed asynchronous refresh job, and kicks off a new
  /// refresh when a sampling period elapsed.
  void step(Timestamp now);

  /// Re-runs the GILL pipeline on the mirrored data and installs the new
  /// filters (invoked automatically by step(); public for tests/examples).
  /// With analysis_threads == 0 this is the historical synchronous call;
  /// otherwise it snapshots the mirror, submits the pipeline to the worker
  /// pool and returns immediately — the result is installed by a later
  /// step() (or wait_for_refresh()).
  void refresh_filters(Timestamp now,
                       const std::vector<topo::AsCategory>& categories = {});

  /// True while at least one asynchronous refresh job is queued/computing.
  bool refresh_in_flight() const noexcept { return !refresh_jobs_.empty(); }
  /// Monotonic id of the installed filter set; bumps on every install.
  /// A submitted job carries the generation it will produce; completed
  /// jobs older than the newest submission are discarded as stale.
  std::uint64_t filter_generation() const noexcept {
    return installed_generation_;
  }
  /// Blocks until every in-flight refresh job completed and its result was
  /// installed or discarded (tests, shutdown). No-op in synchronous mode.
  void wait_for_refresh();
  /// Workers in the analysis pool (0 = synchronous mode).
  std::size_t analysis_thread_count() const noexcept {
    return analysis_pool_ ? analysis_pool_->thread_count() : 0;
  }
  /// The cross-refresh pairwise-score cache (hit/miss counters for tests).
  const anchor::ScoreCache& score_cache() const noexcept {
    return score_cache_;
  }

  /// All updates retained so far (the public database).
  const daemon::MrtStore& store() const noexcept { return store_; }

  /// Routes every daemon's stored records (updates that survive the
  /// filters, plus RIB snapshots) into `archive` in addition to the
  /// in-memory store — the collector passes its archive::SegmentWriter.
  /// Applies to existing sessions and every session added later; nullptr
  /// detaches.
  void set_archive(mrt::Sink* archive);

  /// The mirror buffer currently held for the next sampling run.
  const bgp::UpdateStream& mirror() const noexcept { return mirror_; }

  /// Drains the mirror (the window restarts empty) and hands it to the
  /// caller — the sharded merge plane's harvest primitive. Must run on the
  /// thread that owns this platform (the shard's loop thread).
  bgp::UpdateStream take_mirror();

  /// Installs an externally computed filter set and anchor roster and
  /// bumps the filter generation — the write half of the sharded split:
  /// the merge plane runs ONE pipeline over the merged mirrors, then
  /// installs the identical result into every shard's platform.
  void install_filters(filt::FilterTable filters, std::vector<VpId> anchors);

  /// VPs currently frozen by the quarantine policy (merge-plane input:
  /// their mirrored updates are purged before sampling).
  std::vector<VpId> quarantined_vps() const;

  const filt::FilterTable& filters() const noexcept { return filters_; }
  const std::vector<VpId>& anchors() const noexcept { return anchors_; }

  /// The two published documents (§9).
  std::string published_filter_document() const;
  std::string published_anchor_document() const;

  /// §14 "custom services": a peering operator registers forwarding rules
  /// so that updates for their prefixes are pushed to them *before* any
  /// discarding — full visibility of one's own address space in exchange
  /// for contributing a feed.
  using ForwardingSink = std::function<void(const bgp::Update&)>;
  void add_forwarding_rule(const net::Prefix& prefix, ForwardingSink sink);
  std::size_t forwarding_rule_count() const noexcept {
    return forwarding_rules_.size();
  }

  /// The live distribution plane's tap (net::StreamHub::publish): every
  /// accepted update is handed over right after the mirror tee and the
  /// custom-service forwarders, before any sampling/discarding. Excluded
  /// (quarantined/shed) peers never publish. nullptr detaches.
  void set_stream_publisher(ForwardingSink publisher) {
    stream_publisher_ = std::move(publisher);
  }

 private:
  /// Registry-backed platform-level instruments, resolved at construction.
  struct PlatformCounters {
    PlatformCounters(metrics::Registry& registry,
                     const metrics::Labels& labels);

    metrics::Counter& mirrored_updates;
    metrics::Counter& forwarded_updates;
    metrics::Counter& filter_refreshes;
    metrics::Counter& filter_refresh_stale;
    metrics::Counter& mirror_purged_updates;
    metrics::Counter& quarantines;
    metrics::Counter& score_cache_hits;
    metrics::Counter& score_cache_misses;
    metrics::Counter& sheds;
    metrics::Counter& readmits;
    metrics::Counter& refreshes_deferred;
    metrics::Gauge& peers;
    metrics::Gauge& quarantined_peers;
    metrics::Gauge& degraded;
    metrics::Gauge& memory_bytes;
    metrics::Gauge& shed_peers;
    metrics::Histogram& filter_refresh_duration_us;
    metrics::Histogram& filter_refresh_queue_us;
    metrics::Histogram& filter_refresh_compute_us;
  };

  /// What a refresh job hands back to the event-loop thread: the pipeline
  /// output plus the bookkeeping the installer records. Jobs own every
  /// input (mirror snapshot, config copy, cache copy) — they never touch
  /// Platform state, so the loop keeps serving sessions while they run.
  struct RefreshOutcome {
    sample::GillPipelineResult result;
    anchor::ScoreCache cache;
    std::size_t purged = 0;       // mirrored updates dropped (quarantined VPs)
    std::uint64_t cache_hits = 0;    // pair scores served from the cache
    std::uint64_t cache_misses = 0;  // pair scores recomputed
    std::int64_t queue_us = 0;    // submit -> worker pickup
    std::int64_t compute_us = 0;  // worker pickup -> pipeline done
  };
  struct RefreshJob {
    std::uint64_t generation = 0;
    Timestamp submitted = 0;
    std::future<RefreshOutcome> future;
  };

  RefreshOutcome run_refresh_job(
      bgp::UpdateStream mirror, std::vector<topo::AsCategory> categories,
      anchor::ScoreCache cache, std::vector<VpId> quarantined_vps,
      std::chrono::steady_clock::time_point submitted_at);
  void install_refresh(RefreshOutcome outcome);
  /// Harvests completed jobs: installs the newest generation, discards
  /// stale ones. `block` waits for completion instead of polling.
  void poll_refresh_jobs(bool block);

  void forward(const bgp::Update& update) const;
  VpId add_peer_internal(bgp::AsNumber peer_as, Timestamp now,
                         std::unique_ptr<daemon::Transport> transport,
                         bool make_fake_peer, bool arm_retry);
  /// Detects session flaps (non-Idle -> Idle transitions) and applies the
  /// quarantine policy.
  void observe_health(Peer& peer, Timestamp now);
  /// True when `vp`'s mirror data must not reach the sampling buffer
  /// (quarantined or shed).
  bool excluded(VpId vp) const {
    auto it = peers_.find(vp);
    return it != peers_.end() &&
           (it->second.health.status == PeerStatus::kQuarantined ||
            it->second.health.status == PeerStatus::kShed);
  }
  /// Memory-watermark state machine: enters/exits degraded mode and sheds
  /// the lowest-volume non-anchor peers while memory stays high.
  void update_overload(Timestamp now);
  void enter_degraded();
  void exit_degraded();
  void shed_peers(std::size_t count);

  PlatformConfig config_;
  std::unique_ptr<metrics::Registry> own_registry_;  // when none configured
  metrics::Registry* registry_;
  PlatformCounters counters_;
  /// Jobs own every input they read; the only Platform member a job may
  /// touch is config_ (the refresh_job_hook), which is declared earlier and
  /// therefore outlives the pool's drain-and-join destructor.
  std::unique_ptr<par::ThreadPool> analysis_pool_;
  std::vector<std::pair<net::Prefix, ForwardingSink>> forwarding_rules_;
  ForwardingSink stream_publisher_;
  std::map<VpId, Peer> peers_;
  VpId next_vp_ = 0;
  daemon::MrtStore store_;
  mrt::Sink* archive_ = nullptr;
  filt::FilterTable filters_;
  std::vector<VpId> anchors_;
  /// Temporary full mirror feeding the sampling algorithms (Fig. 9); the
  /// orchestrator drops it after each refresh.
  bgp::UpdateStream mirror_;
  Timestamp last_component1_ = 0;
  bool pipeline_ran_ = false;
  bool degraded_ = false;
  anchor::ScoreCache score_cache_;
  std::vector<RefreshJob> refresh_jobs_;
  std::uint64_t submitted_generation_ = 0;
  std::uint64_t installed_generation_ = 0;
};

/// The platform-growth model behind Fig. 2 and Fig. 3: calibrated to the
/// endpoints the paper reports (74k ASes and ~1.1% coverage in 2023, 28K
/// updates/hour per VP on average, billions per day in total).
struct GrowthModel {
  /// Number of ASes participating in global routing in `year`.
  static double internet_ases(double year);
  /// ASes hosting at least one RIS/RV VP.
  static double vp_hosting_ases(double year);
  /// Fraction of ASes hosting a VP (Fig. 2 bottom).
  static double coverage(double year) {
    return vp_hosting_ases(year) / internet_ases(year);
  }
  /// Hourly updates exported by one VP (Fig. 3a).
  static double updates_per_vp_hour(double year);
  /// Hourly updates across all VPs (Fig. 3b; quadratic compound effect).
  static double total_updates_per_hour(double year);
  /// Total VPs (RIS+RV run several VPs per hosting AS).
  static double total_vps(double year);
};

}  // namespace gill::collect
