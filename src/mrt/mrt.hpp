// MRT-style binary archive format (§8-§9: "GILL stores the collected BGP
// updates in a public database using the MRT format").
//
// Records follow the RFC 6396 framing: a common header (timestamp, type,
// subtype, length) followed by a type-specific body, all big-endian. Two
// record kinds are used:
//   * BGP4MP/MESSAGE_AS4-like update records (announcement or withdrawal),
//   * TABLE_DUMP_V2-like RIB entry records (one prefix, one VP).
// The body layout is a faithful simplification: peer AS and VP id, prefix
// as (afi, length, packed bytes), AS path as a count-prefixed AS4 list and
// communities as a count-prefixed 32-bit list.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/update.hpp"

namespace gill::mrt {

using bgp::Update;
using bgp::UpdateStream;

/// RFC 6396 record types (values as registered).
enum class RecordType : std::uint16_t {
  kTableDumpV2 = 13,
  kBgp4mp = 16,
};

enum class Bgp4mpSubtype : std::uint16_t {
  kMessageAs4 = 4,
};

enum class TableDumpSubtype : std::uint16_t {
  kRibGeneric = 6,
};

/// Abstract destination for archived records: the daemon's store stage
/// writes through this, so an in-memory MrtStore and the on-disk archive
/// (archive::SegmentWriter) are interchangeable — or stacked.
class Sink {
 public:
  virtual ~Sink() = default;
  /// Records one BGP4MP update.
  virtual void store(const Update& update) = 0;
  /// Records one TABLE_DUMP_V2 RIB entry.
  virtual void store_rib_entry(const Update& entry) = 0;
};

/// Serializes updates and RIB entries into one growing byte buffer.
class Writer {
 public:
  /// Appends one BGP4MP update record.
  void write_update(const Update& update);

  /// Appends one TABLE_DUMP_V2 RIB-entry record.
  void write_rib_entry(const Update& entry);

  const std::vector<std::uint8_t>& buffer() const noexcept { return buffer_; }
  std::size_t record_count() const noexcept { return records_; }

  /// Writes the buffer to a file; returns false on I/O failure.
  bool save(const std::string& path) const;

 private:
  void write_record(RecordType type, std::uint16_t subtype,
                    const Update& update);

  std::vector<std::uint8_t> buffer_;
  std::size_t records_ = 0;
};

/// Iterates the records of a byte buffer. Any malformed record stops the
/// stream (next() returns nullopt and ok() turns false).
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  /// One decoded record.
  struct Record {
    RecordType type{};
    std::uint16_t subtype = 0;
    Update update;  // update or RIB entry depending on type
  };

  std::optional<Record> next();
  bool ok() const noexcept { return ok_; }
  bool done() const noexcept { return offset_ >= data_.size(); }
  /// Bytes consumed so far — always a record boundary, so after a failed
  /// next() this is where a torn tail starts (the archive recovery scan
  /// truncates here).
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
  bool ok_ = true;
};

/// Convenience: full streams to/from disk.
bool write_stream(const UpdateStream& stream, const std::string& path);
std::optional<UpdateStream> read_stream(const std::string& path);

/// In-memory round trip used by the daemon's store stage.
std::vector<std::uint8_t> encode_stream(const UpdateStream& stream);
std::optional<UpdateStream> decode_stream(std::span<const std::uint8_t> data);

}  // namespace gill::mrt
