#include "mrt/mrt.hpp"

#include <cstdio>
#include <cstring>

namespace gill::mrt {

namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t value) {
  out.push_back(value);
}
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 24));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value));
}

/// Bounds-checked big-endian cursor.
class Cursor {
 public:
  Cursor(std::span<const std::uint8_t> data, std::size_t offset)
      : data_(data), offset_(offset) {}

  bool read_u8(std::uint8_t& value) {
    if (offset_ + 1 > data_.size()) return false;
    value = data_[offset_++];
    return true;
  }
  bool read_u16(std::uint16_t& value) {
    if (offset_ + 2 > data_.size()) return false;
    value = static_cast<std::uint16_t>((data_[offset_] << 8) |
                                       data_[offset_ + 1]);
    offset_ += 2;
    return true;
  }
  bool read_u32(std::uint32_t& value) {
    if (offset_ + 4 > data_.size()) return false;
    value = (static_cast<std::uint32_t>(data_[offset_]) << 24) |
            (static_cast<std::uint32_t>(data_[offset_ + 1]) << 16) |
            (static_cast<std::uint32_t>(data_[offset_ + 2]) << 8) |
            static_cast<std::uint32_t>(data_[offset_ + 3]);
    offset_ += 4;
    return true;
  }
  bool read_bytes(std::uint8_t* out, std::size_t n) {
    if (offset_ + n > data_.size()) return false;
    std::memcpy(out, data_.data() + offset_, n);
    offset_ += n;
    return true;
  }
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t offset_;
};

void put_prefix(std::vector<std::uint8_t>& out, const net::Prefix& prefix) {
  put_u8(out, prefix.family() == net::Family::v4 ? 1 : 2);  // AFI
  put_u8(out, static_cast<std::uint8_t>(prefix.length()));
  const std::size_t bytes = (prefix.length() + 7) / 8;
  for (std::size_t i = 0; i < bytes; ++i) {
    put_u8(out, prefix.address().bytes()[i]);
  }
}

bool read_prefix(Cursor& cursor, net::Prefix& prefix) {
  std::uint8_t afi = 0;
  std::uint8_t length = 0;
  if (!cursor.read_u8(afi) || !cursor.read_u8(length)) return false;
  if (afi != 1 && afi != 2) return false;
  const unsigned max_length = afi == 1 ? 32 : 128;
  if (length > max_length) return false;
  std::array<std::uint8_t, 16> bytes{};
  const std::size_t count = (length + 7) / 8;
  if (!cursor.read_bytes(bytes.data(), count)) return false;
  const net::IpAddress address =
      afi == 1 ? net::IpAddress::v4(
                     (static_cast<std::uint32_t>(bytes[0]) << 24) |
                     (static_cast<std::uint32_t>(bytes[1]) << 16) |
                     (static_cast<std::uint32_t>(bytes[2]) << 8) | bytes[3])
               : net::IpAddress::v6(bytes);
  prefix = net::Prefix(address, length);
  return true;
}

}  // namespace

void Writer::write_record(RecordType type, std::uint16_t subtype,
                          const Update& update) {
  std::vector<std::uint8_t> body;
  put_u32(body, update.vp);
  put_u32(body, update.path.empty() ? 0 : update.path.first());  // peer AS
  put_u8(body, update.withdrawal ? 1 : 0);
  put_prefix(body, update.prefix);
  put_u16(body, static_cast<std::uint16_t>(update.path.size()));
  for (const bgp::AsNumber hop : update.path.hops()) put_u32(body, hop);
  put_u16(body, static_cast<std::uint16_t>(update.communities.size()));
  for (const bgp::Community community : update.communities) {
    put_u32(body, community.packed());
  }

  // RFC 6396 common header.
  put_u32(buffer_, static_cast<std::uint32_t>(update.time));
  put_u16(buffer_, static_cast<std::uint16_t>(type));
  put_u16(buffer_, subtype);
  put_u32(buffer_, static_cast<std::uint32_t>(body.size()));
  buffer_.insert(buffer_.end(), body.begin(), body.end());
  ++records_;
}

void Writer::write_update(const Update& update) {
  write_record(RecordType::kBgp4mp,
               static_cast<std::uint16_t>(Bgp4mpSubtype::kMessageAs4), update);
}

void Writer::write_rib_entry(const Update& entry) {
  write_record(RecordType::kTableDumpV2,
               static_cast<std::uint16_t>(TableDumpSubtype::kRibGeneric),
               entry);
}

bool Writer::save(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (!file) return false;
  const std::size_t written =
      std::fwrite(buffer_.data(), 1, buffer_.size(), file);
  std::fclose(file);
  return written == buffer_.size();
}

std::optional<Reader::Record> Reader::next() {
  if (!ok_ || done()) return std::nullopt;
  Cursor header(data_, offset_);
  std::uint32_t timestamp = 0;
  std::uint16_t type = 0;
  std::uint16_t subtype = 0;
  std::uint32_t length = 0;
  if (!header.read_u32(timestamp) || !header.read_u16(type) ||
      !header.read_u16(subtype) || !header.read_u32(length)) {
    ok_ = false;
    return std::nullopt;
  }
  const std::size_t body_start = header.offset();
  if (body_start + length > data_.size()) {
    ok_ = false;
    return std::nullopt;
  }

  Cursor body(data_.subspan(0, body_start + length), body_start);
  Record record;
  record.type = static_cast<RecordType>(type);
  record.subtype = subtype;
  record.update.time = timestamp;

  std::uint32_t vp = 0;
  std::uint32_t peer = 0;
  std::uint8_t withdrawal = 0;
  if (!body.read_u32(vp) || !body.read_u32(peer) ||
      !body.read_u8(withdrawal) || !read_prefix(body, record.update.prefix)) {
    ok_ = false;
    return std::nullopt;
  }
  record.update.vp = vp;
  record.update.withdrawal = withdrawal != 0;
  std::uint16_t hops = 0;
  if (!body.read_u16(hops)) {
    ok_ = false;
    return std::nullopt;
  }
  std::vector<bgp::AsNumber> path(hops);
  for (auto& hop : path) {
    if (!body.read_u32(hop)) {
      ok_ = false;
      return std::nullopt;
    }
  }
  record.update.path = bgp::AsPath(std::move(path));
  std::uint16_t communities = 0;
  if (!body.read_u16(communities)) {
    ok_ = false;
    return std::nullopt;
  }
  for (std::uint16_t i = 0; i < communities; ++i) {
    std::uint32_t packed = 0;
    if (!body.read_u32(packed)) {
      ok_ = false;
      return std::nullopt;
    }
    record.update.communities.push_back(bgp::Community::from_packed(packed));
  }

  offset_ = body_start + length;
  return record;
}

bool write_stream(const UpdateStream& stream, const std::string& path) {
  Writer writer;
  for (const Update& update : stream) writer.write_update(update);
  return writer.save(path);
}

std::optional<UpdateStream> read_stream(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (!file) return std::nullopt;
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  std::vector<std::uint8_t> data(size > 0 ? static_cast<std::size_t>(size)
                                          : 0);
  const std::size_t read = std::fread(data.data(), 1, data.size(), file);
  std::fclose(file);
  if (read != data.size()) return std::nullopt;
  return decode_stream(data);
}

std::vector<std::uint8_t> encode_stream(const UpdateStream& stream) {
  Writer writer;
  for (const Update& update : stream) writer.write_update(update);
  return writer.buffer();
}

std::optional<UpdateStream> decode_stream(
    std::span<const std::uint8_t> data) {
  Reader reader(data);
  UpdateStream stream;
  while (auto record = reader.next()) {
    stream.push(std::move(record->update));
  }
  if (!reader.ok()) return std::nullopt;
  return stream;
}

}  // namespace gill::mrt
