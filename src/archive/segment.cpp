#include "archive/segment.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>

#include "feed/json.hpp"

#ifdef GILL_HAVE_ZSTD
#include <zstd.h>
#endif

namespace gill::archive {

// ---------------------------------------------------------------------------
// Payload codec. zstd when the toolchain provides it; otherwise the gate
// degrades: compression_available() is false, --archive-compress seals raw
// and zstd segments cannot be decoded on this build.
// ---------------------------------------------------------------------------

bool compression_available() noexcept {
#ifdef GILL_HAVE_ZSTD
  return true;
#else
  return false;
#endif
}

std::optional<std::vector<std::uint8_t>> compress_payload(
    std::span<const std::uint8_t> raw) {
#ifdef GILL_HAVE_ZSTD
  std::vector<std::uint8_t> out(ZSTD_compressBound(raw.size()));
  const std::size_t written =
      ZSTD_compress(out.data(), out.size(), raw.data(), raw.size(),
                    /*compressionLevel=*/3);
  if (ZSTD_isError(written)) return std::nullopt;
  out.resize(written);
  return out;
#else
  (void)raw;
  return std::nullopt;
#endif
}

std::optional<std::vector<std::uint8_t>> decompress_payload(
    std::span<const std::uint8_t> compressed, std::uint64_t raw_size) {
#ifdef GILL_HAVE_ZSTD
  std::vector<std::uint8_t> out(raw_size);
  const std::size_t written = ZSTD_decompress(
      out.data(), out.size(), compressed.data(), compressed.size());
  if (ZSTD_isError(written) || written != raw_size) return std::nullopt;
  return out;
#else
  (void)compressed;
  (void)raw_size;
  return std::nullopt;
#endif
}

namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kFooterMagic = 0x47534547;  // "GSEG"
constexpr std::uint32_t kTailMagic = 0x4C4C4947;    // "GILL"
constexpr std::uint32_t kFooterVersionV1 = 1;
constexpr std::uint32_t kFooterVersionV2 = 2;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 24));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  put_u32(out, static_cast<std::uint32_t>(value >> 32));
  put_u32(out, static_cast<std::uint32_t>(value));
}

std::uint32_t get_u32(std::span<const std::uint8_t> data, std::size_t at) {
  return (static_cast<std::uint32_t>(data[at]) << 24) |
         (static_cast<std::uint32_t>(data[at + 1]) << 16) |
         (static_cast<std::uint32_t>(data[at + 2]) << 8) |
         static_cast<std::uint32_t>(data[at + 3]);
}

std::uint64_t get_u64(std::span<const std::uint8_t> data, std::size_t at) {
  return (static_cast<std::uint64_t>(get_u32(data, at)) << 32) |
         get_u32(data, at + 4);
}

/// Fixed part of the v1 footer: magic, version, payload_bytes, min/max
/// time, update/rib counts, vp_count + trailing (footer_size, tail magic).
constexpr std::size_t kFooterFixedBytes = 4 + 4 + 8 + 4 + 4 + 8 + 8 + 4 + 4 + 4;

/// Fixed part of the v2 footer: v1's fields plus raw_bytes (u64), codec
/// (u32) and the bloom header (hashes u32 + byte length u64); the VP list
/// and bloom bit array are the variable tail.
constexpr std::size_t kFooterFixedBytesV2 = kFooterFixedBytes + 8 + 4 + 12;

bool fsync_path(const std::string& path, int flags) {
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

feed::Json meta_to_json(const SegmentMeta& meta, bool include_bloom) {
  feed::JsonArray vps;
  vps.reserve(meta.vps.size());
  for (const VpId vp : meta.vps) vps.emplace_back(static_cast<double>(vp));
  feed::JsonObject object;
  object["file"] = meta.file;
  object["min_time"] = static_cast<double>(meta.min_time);
  object["max_time"] = static_cast<double>(meta.max_time);
  object["updates"] = static_cast<double>(meta.updates);
  object["rib_entries"] = static_cast<double>(meta.rib_entries);
  object["payload_bytes"] = static_cast<double>(meta.payload_bytes);
  object["raw_bytes"] = static_cast<double>(meta.raw_bytes);
  object["codec"] = static_cast<double>(meta.codec);
  object["vps"] = std::move(vps);
  if (include_bloom && !meta.bloom.empty()) {
    object["bloom_k"] = static_cast<double>(meta.bloom.hashes());
    object["bloom"] = meta.bloom.to_hex();
  }
  return feed::Json(std::move(object));
}

std::optional<SegmentMeta> meta_from_json(const feed::Json& json) {
  const auto number = [&json](const char* key,
                              std::uint64_t& out) -> bool {
    const feed::Json* value = json.find(key);
    if (value == nullptr || !value->is_number() || value->as_number() < 0) {
      return false;
    }
    out = static_cast<std::uint64_t>(value->as_number());
    return true;
  };
  SegmentMeta meta;
  const feed::Json* file = json.find("file");
  if (file == nullptr || !file->is_string()) return std::nullopt;
  meta.file = file->as_string();
  std::uint64_t min_time = 0;
  std::uint64_t max_time = 0;
  if (!number("min_time", min_time) || !number("max_time", max_time) ||
      !number("updates", meta.updates) ||
      !number("rib_entries", meta.rib_entries) ||
      !number("payload_bytes", meta.payload_bytes)) {
    return std::nullopt;
  }
  meta.min_time = static_cast<Timestamp>(min_time);
  meta.max_time = static_cast<Timestamp>(max_time);
  // Pre-v2 manifests lack these rows: a missing raw size means the payload
  // is stored raw, a missing codec means none, a missing bloom matches all.
  meta.raw_bytes = meta.payload_bytes;
  if (json.find("raw_bytes") != nullptr && !number("raw_bytes", meta.raw_bytes)) {
    return std::nullopt;
  }
  std::uint64_t codec = kCodecNone;
  if (json.find("codec") != nullptr && !number("codec", codec)) {
    return std::nullopt;
  }
  meta.codec = static_cast<std::uint32_t>(codec);
  if (const feed::Json* bloom_hex = json.find("bloom")) {
    std::uint64_t bloom_k = 0;
    if (!bloom_hex->is_string() || !number("bloom_k", bloom_k)) {
      return std::nullopt;
    }
    auto bloom = PrefixBloom::from_hex(bloom_hex->as_string(),
                                       static_cast<std::uint32_t>(bloom_k));
    if (!bloom) return std::nullopt;
    meta.bloom = std::move(*bloom);
  }
  const feed::Json* vps = json.find("vps");
  if (vps == nullptr || !vps->is_array()) return std::nullopt;
  for (const feed::Json& vp : vps->as_array()) {
    if (!vp.is_number()) return std::nullopt;
    meta.vps.push_back(static_cast<VpId>(vp.as_number()));
  }
  return meta;
}

/// Sorts manifest rows into exposition order.
void sort_manifest(std::vector<SegmentMeta>& segments) {
  std::sort(segments.begin(), segments.end(),
            [](const SegmentMeta& a, const SegmentMeta& b) {
              return std::tie(a.min_time, a.file) < std::tie(b.min_time, b.file);
            });
}

}  // namespace

void SegmentMeta::observe(const mrt::Reader::Record& record) {
  observe(record.update, record.type == mrt::RecordType::kTableDumpV2);
}

void SegmentMeta::observe(const bgp::Update& update, bool rib_entry) {
  if (records() == 0 || update.time < min_time) min_time = update.time;
  if (records() == 0 || update.time > max_time) max_time = update.time;
  if (rib_entry) {
    ++rib_entries;
  } else {
    ++updates;
  }
  bloom.observe(update.prefix);
  const auto it = std::lower_bound(vps.begin(), vps.end(), update.vp);
  if (it == vps.end() || *it != update.vp) {
    vps.insert(it, update.vp);
  }
}

std::string segment_file_name(Timestamp start, std::uint64_t seq) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "seg-%010llu-%06llu.mrt",
                static_cast<unsigned long long>(start),
                static_cast<unsigned long long>(seq));
  return buffer;
}

void append_footer(std::vector<std::uint8_t>& out, const SegmentMeta& meta) {
  std::vector<std::uint8_t> bloom;
  meta.bloom.serialize(bloom);
  const std::uint32_t footer_size = static_cast<std::uint32_t>(
      kFooterFixedBytesV2 + 4 * meta.vps.size() + meta.bloom.bits().size());
  put_u32(out, kFooterMagic);
  put_u32(out, kFooterVersionV2);
  put_u64(out, meta.payload_bytes);
  put_u64(out, meta.raw_bytes);
  put_u32(out, meta.codec);
  put_u32(out, static_cast<std::uint32_t>(meta.min_time));
  put_u32(out, static_cast<std::uint32_t>(meta.max_time));
  put_u64(out, meta.updates);
  put_u64(out, meta.rib_entries);
  put_u32(out, static_cast<std::uint32_t>(meta.vps.size()));
  for (const VpId vp : meta.vps) put_u32(out, vp);
  out.insert(out.end(), bloom.begin(), bloom.end());
  put_u32(out, footer_size);
  put_u32(out, kTailMagic);
}

void append_footer_v1(std::vector<std::uint8_t>& out, const SegmentMeta& meta) {
  const std::uint32_t footer_size = static_cast<std::uint32_t>(
      kFooterFixedBytes + 4 * meta.vps.size());
  put_u32(out, kFooterMagic);
  put_u32(out, kFooterVersionV1);
  put_u64(out, meta.payload_bytes);
  put_u32(out, static_cast<std::uint32_t>(meta.min_time));
  put_u32(out, static_cast<std::uint32_t>(meta.max_time));
  put_u64(out, meta.updates);
  put_u64(out, meta.rib_entries);
  put_u32(out, static_cast<std::uint32_t>(meta.vps.size()));
  for (const VpId vp : meta.vps) put_u32(out, vp);
  put_u32(out, footer_size);
  put_u32(out, kTailMagic);
}

namespace {

std::optional<SegmentMeta> read_footer_v1(std::span<const std::uint8_t> file,
                                          std::size_t at,
                                          std::uint32_t footer_size) {
  SegmentMeta meta;
  meta.payload_bytes = get_u64(file, at + 8);
  meta.min_time = static_cast<Timestamp>(get_u32(file, at + 16));
  meta.max_time = static_cast<Timestamp>(get_u32(file, at + 20));
  meta.updates = get_u64(file, at + 24);
  meta.rib_entries = get_u64(file, at + 32);
  const std::uint32_t vp_count = get_u32(file, at + 40);
  if (footer_size != kFooterFixedBytes + 4 * static_cast<std::size_t>(vp_count) ||
      meta.payload_bytes != at) {
    return std::nullopt;
  }
  meta.vps.reserve(vp_count);
  for (std::uint32_t i = 0; i < vp_count; ++i) {
    meta.vps.push_back(static_cast<VpId>(get_u32(file, at + 44 + 4 * i)));
  }
  // A v1 segment is raw with no bloom: prefix queries scan it.
  meta.raw_bytes = meta.payload_bytes;
  meta.codec = kCodecNone;
  return meta;
}

std::optional<SegmentMeta> read_footer_v2(std::span<const std::uint8_t> file,
                                          std::size_t at,
                                          std::uint32_t footer_size) {
  if (footer_size < kFooterFixedBytesV2) return std::nullopt;
  SegmentMeta meta;
  meta.payload_bytes = get_u64(file, at + 8);
  meta.raw_bytes = get_u64(file, at + 16);
  meta.codec = get_u32(file, at + 24);
  meta.min_time = static_cast<Timestamp>(get_u32(file, at + 28));
  meta.max_time = static_cast<Timestamp>(get_u32(file, at + 32));
  meta.updates = get_u64(file, at + 36);
  meta.rib_entries = get_u64(file, at + 44);
  const std::uint32_t vp_count = get_u32(file, at + 52);
  if (meta.payload_bytes != at ||
      footer_size < kFooterFixedBytesV2 + 4 * static_cast<std::size_t>(vp_count)) {
    return std::nullopt;
  }
  meta.vps.reserve(vp_count);
  for (std::uint32_t i = 0; i < vp_count; ++i) {
    meta.vps.push_back(static_cast<VpId>(get_u32(file, at + 56 + 4 * i)));
  }
  std::size_t cursor = at + 56 + 4 * static_cast<std::size_t>(vp_count);
  auto bloom = PrefixBloom::deserialize(file, cursor);
  if (!bloom) return std::nullopt;
  meta.bloom = std::move(*bloom);
  // Everything between the fixed header and the trailer must be accounted
  // for: a size mismatch means a torn or forged footer.
  if (cursor + 8 != at + footer_size) return std::nullopt;
  return meta;
}

}  // namespace

std::optional<SegmentMeta> read_footer(std::span<const std::uint8_t> file) {
  if (file.size() < kFooterFixedBytes) return std::nullopt;
  if (get_u32(file, file.size() - 4) != kTailMagic) return std::nullopt;
  const std::uint32_t footer_size = get_u32(file, file.size() - 8);
  if (footer_size < kFooterFixedBytes || footer_size > file.size()) {
    return std::nullopt;
  }
  const std::size_t at = file.size() - footer_size;
  if (get_u32(file, at) != kFooterMagic) return std::nullopt;
  const std::uint32_t version = get_u32(file, at + 4);
  if (version == kFooterVersionV1) {
    return read_footer_v1(file, at, footer_size);
  }
  if (version == kFooterVersionV2) {
    return read_footer_v2(file, at, footer_size);
  }
  return std::nullopt;
}

SegmentMeta scan_payload(std::span<const std::uint8_t> payload) {
  SegmentMeta meta;
  mrt::Reader reader(payload);
  while (auto record = reader.next()) {
    meta.observe(*record);
    meta.payload_bytes = reader.offset();
  }
  meta.raw_bytes = meta.payload_bytes;
  meta.bloom.finalize();
  return meta;
}

std::string manifest_to_json(const std::vector<SegmentMeta>& segments,
                             bool include_bloom) {
  feed::JsonArray rows;
  rows.reserve(segments.size());
  for (const SegmentMeta& meta : segments) {
    rows.push_back(meta_to_json(meta, include_bloom));
  }
  feed::JsonObject document;
  document["segments"] = std::move(rows);
  return feed::Json(std::move(document)).dump();
}

std::optional<std::vector<SegmentMeta>> manifest_from_json(
    std::string_view text) {
  const auto document = feed::Json::parse(text);
  if (!document) return std::nullopt;
  const feed::Json* rows = document->find("segments");
  if (rows == nullptr || !rows->is_array()) return std::nullopt;
  std::vector<SegmentMeta> segments;
  for (const feed::Json& row : rows->as_array()) {
    auto meta = meta_from_json(row);
    if (!meta) return std::nullopt;
    segments.push_back(std::move(*meta));
  }
  return segments;
}

bool write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
  const std::string temp = path + ".tmp";
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(temp.c_str());
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  if (!synced || ::rename(temp.c_str(), path.c_str()) != 0) {
    ::unlink(temp.c_str());
    return false;
  }
  // Persist the rename itself: without the directory fsync a crash can
  // roll the store back to a state where the data blocks exist but the
  // name does not.
  const std::string parent = fs::path(path).parent_path().string();
  return fsync_path(parent.empty() ? "." : parent, O_RDONLY | O_DIRECTORY);
}

std::optional<std::vector<std::uint8_t>> read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  std::vector<std::uint8_t> data(size > 0 ? static_cast<std::size_t>(size)
                                          : 0);
  const std::size_t read = std::fread(data.data(), 1, data.size(), file);
  std::fclose(file);
  if (read != data.size()) return std::nullopt;
  return data;
}

std::optional<RecoveryResult> recover_store(const std::string& directory) {
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) return std::nullopt;
  RecoveryResult result;
  std::vector<SegmentMeta> manifest = load_manifest(directory);
  // A sealed name must never collide with an existing segment, including
  // ones a previous recovery pass produced.
  std::uint64_t next_seq = manifest.size() + 1;
  std::set<std::string> taken;
  for (const SegmentMeta& meta : manifest) taken.insert(meta.file);

  std::vector<std::string> artifacts;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (entry.path().extension() == ".part") {
      artifacts.push_back(entry.path().string());
    }
  }
  std::sort(artifacts.begin(), artifacts.end());

  for (const std::string& artifact : artifacts) {
    const auto bytes = read_file(artifact);
    if (!bytes) return std::nullopt;
    SegmentMeta meta = scan_payload(*bytes);
    result.truncated_bytes += bytes->size() - meta.payload_bytes;
    if (meta.records() == 0) {  // nothing complete survived the crash
      ::unlink(artifact.c_str());
      ++result.deleted_segments;
      continue;
    }
    std::vector<std::uint8_t> sealed(bytes->begin(),
                                     bytes->begin() + meta.payload_bytes);
    do {
      meta.file = segment_file_name(meta.min_time, next_seq++);
    } while (taken.contains(meta.file));
    taken.insert(meta.file);
    append_footer(sealed, meta);
    const std::string path =
        (fs::path(directory) / meta.file).string();
    if (!write_file_atomic(path, sealed)) return std::nullopt;
    ::unlink(artifact.c_str());
    manifest.push_back(std::move(meta));
    ++result.recovered_segments;
  }

  if (result.recovered_segments > 0) {
    sort_manifest(manifest);
    const std::string json = manifest_to_json(manifest);
    const std::string path = (fs::path(directory) / kManifestName).string();
    if (!write_file_atomic(
            path, std::span(reinterpret_cast<const std::uint8_t*>(json.data()),
                            json.size()))) {
      return std::nullopt;
    }
  }
  return result;
}

std::vector<SegmentMeta> load_manifest(const std::string& directory) {
  std::vector<SegmentMeta> segments;
  const std::string manifest_path =
      (fs::path(directory) / kManifestName).string();
  if (const auto bytes = read_file(manifest_path)) {
    const std::string_view text(reinterpret_cast<const char*>(bytes->data()),
                                bytes->size());
    if (auto parsed = manifest_from_json(text)) segments = std::move(*parsed);
  }
  // Reconcile with the directory: drop rows whose file vanished, adopt
  // sealed segments the manifest missed (crash between rename and rewrite).
  std::error_code ec;
  std::set<std::string> on_disk;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (entry.path().extension() == ".mrt") {
      on_disk.insert(entry.path().filename().string());
    }
  }
  std::erase_if(segments, [&on_disk](const SegmentMeta& meta) {
    return !on_disk.contains(meta.file);
  });
  std::set<std::string> listed;
  for (const SegmentMeta& meta : segments) listed.insert(meta.file);
  for (const std::string& file : on_disk) {
    if (listed.contains(file)) continue;
    const auto bytes = read_file((fs::path(directory) / file).string());
    if (!bytes) continue;
    auto meta = read_footer(*bytes);
    if (!meta) continue;  // not a sealed segment: ignore
    meta->file = file;
    segments.push_back(std::move(*meta));
  }
  sort_manifest(segments);
  return segments;
}

}  // namespace gill::archive
