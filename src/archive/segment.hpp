// On-disk segment format of the archive store (DESIGN.md §10): one segment
// is a run of framed MRT records (the existing RFC 6396-style framing from
// mrt/) followed by a self-describing footer, so a directory of segments is
// readable without any side channel. The footer records the segment's time
// range, VP set, record counts and payload length; a trailing
// (footer_size, magic) pair lets a reader locate it from the end of the
// file in one tail read.
//
// Crash-safety protocol. The active segment is written as `current.part`
// (payload only, no footer). Sealing appends the footer, fsyncs, renames
// the file to its final `seg-<start>-<seq>.mrt` name and rewrites
// `index.json` via write-to-temp + rename — every publish step is atomic,
// so a crash at any point leaves either the old state or the new one,
// never a torn manifest. A `.part` file found on open is a crash artifact:
// recovery scans its records, truncates the torn tail at the last complete
// record boundary, seals it with a freshly computed footer and folds it
// into the manifest. Empty crash artifacts are deleted.
//
// Footer versions. v1 recorded (time range, VP set, counts, payload size)
// for a raw payload. v2 — what sealing writes today — additionally records
// a payload codec (none/zstd), the *uncompressed* payload size and a
// per-prefix bloom filter (bloom.hpp) so prefix queries can prune segments
// from the index alone. Readers accept both: a v1 segment opens as
// codec-none with an empty (match-all) bloom, so a pre-v2 store directory
// keeps serving with prefix queries falling back to scan-all. The active
// `current.part` is ALWAYS raw framed MRT regardless of codec — compression
// happens at seal time — so torn-tail recovery never has to understand
// compressed bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "archive/bloom.hpp"
#include "bgp/update.hpp"
#include "mrt/mrt.hpp"

namespace gill::archive {

using bgp::Timestamp;
using bgp::VpId;

/// Name of the active (unsealed) segment inside a store directory.
inline constexpr const char* kActiveSegmentName = "current.part";
/// Name of the manifest inside a store directory.
inline constexpr const char* kManifestName = "index.json";

/// Payload codec of a sealed segment (footer v2 field).
inline constexpr std::uint32_t kCodecNone = 0;
inline constexpr std::uint32_t kCodecZstd = 1;

/// True when this build can zstd-compress/decompress segment payloads.
/// Without it --archive-compress degrades to raw sealing (logged once) and
/// zstd segments written elsewhere cannot be decoded here.
bool compression_available() noexcept;

/// zstd-compresses `raw`; nullopt when unavailable or on codec failure.
std::optional<std::vector<std::uint8_t>> compress_payload(
    std::span<const std::uint8_t> raw);

/// Inflates a zstd payload whose uncompressed size is `raw_size` (from the
/// footer). nullopt when unavailable, corrupt, or the size disagrees.
std::optional<std::vector<std::uint8_t>> decompress_payload(
    std::span<const std::uint8_t> compressed, std::uint64_t raw_size);

/// What a footer (and one manifest row) records about a sealed segment.
struct SegmentMeta {
  std::string file;  // basename; empty for an in-memory/unsealed segment
  Timestamp min_time = 0;
  Timestamp max_time = 0;
  std::uint64_t updates = 0;      // BGP4MP records
  std::uint64_t rib_entries = 0;  // TABLE_DUMP_V2 records
  /// Bytes of payload on disk (compressed size when codec != none).
  std::uint64_t payload_bytes = 0;
  /// Uncompressed payload size; equals payload_bytes when codec == none.
  std::uint64_t raw_bytes = 0;
  std::uint32_t codec = kCodecNone;
  std::vector<VpId> vps;  // distinct VPs, ascending
  /// Per-prefix pruning filter; empty for v1 segments (match-all).
  PrefixBloom bloom;

  std::uint64_t records() const noexcept { return updates + rib_entries; }

  /// Folds one record into the running statistics (and the bloom's key
  /// set — call bloom.finalize() before serializing).
  void observe(const mrt::Reader::Record& record);
  void observe(const bgp::Update& update, bool rib_entry);

  friend bool operator==(const SegmentMeta&, const SegmentMeta&) = default;
};

/// Canonical sealed-segment name: seg-<start-time>-<sequence>.mrt.
std::string segment_file_name(Timestamp start, std::uint64_t seq);

/// Appends the binary v2 footer for `meta` to `out` (payload must already
/// be in place; meta.payload_bytes must equal the on-disk payload length
/// and meta.bloom must be finalized).
void append_footer(std::vector<std::uint8_t>& out, const SegmentMeta& meta);

/// Appends a legacy v1 footer (no codec, no bloom) — kept so tests can
/// fabricate pre-v2 segments and prove mixed-version directories open.
void append_footer_v1(std::vector<std::uint8_t>& out, const SegmentMeta& meta);

/// Parses the footer of a sealed segment from the full file image.
/// Returns nullopt when the tail magic/length is missing or inconsistent
/// (i.e. the file is not a sealed segment).
std::optional<SegmentMeta> read_footer(std::span<const std::uint8_t> file);

/// Walks the framed records of a (possibly torn) payload and returns the
/// statistics of every *complete* record: meta.payload_bytes is the offset
/// of the last complete record boundary, which is <= payload.size() when
/// the tail record is torn. Never throws, never over-reads.
SegmentMeta scan_payload(std::span<const std::uint8_t> payload);

/// Serializes a manifest ({"segments":[...]}, ordered as given). The
/// on-disk index.json carries the bloom bits (hex) so a reader can prune
/// without touching footers; the GET /v1/segments exposition passes
/// `include_bloom = false` to keep the operator payload lean.
std::string manifest_to_json(const std::vector<SegmentMeta>& segments,
                             bool include_bloom = true);

/// Parses a manifest document; nullopt on malformed input.
std::optional<std::vector<SegmentMeta>> manifest_from_json(
    std::string_view text);

/// Writes `bytes` to `path` via a sibling temp file + fsync + rename, then
/// fsyncs the containing directory. Returns false on any I/O failure.
bool write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes);

/// Reads a whole file; nullopt when it cannot be opened/read.
std::optional<std::vector<std::uint8_t>> read_file(const std::string& path);

/// What recovery did to a store directory on open.
struct RecoveryResult {
  std::size_t recovered_segments = 0;  // .part files sealed into segments
  std::size_t deleted_segments = 0;    // empty .part files removed
  std::uint64_t truncated_bytes = 0;   // torn tail bytes discarded
};

/// Seals every crash artifact (`*.part`) in `directory`: truncates the
/// torn tail, appends a footer, renames to a sealed name and rewrites the
/// manifest. Idempotent; safe on a directory with no artifacts. Returns
/// nullopt when the directory cannot be read or a rewrite fails.
std::optional<RecoveryResult> recover_store(const std::string& directory);

/// Loads the manifest of `directory`, reconciling it with the segment
/// files actually on disk: rows without a file are dropped, sealed
/// segments missing from the manifest (crash between rename and manifest
/// rewrite) are re-read from their footers. The result is ordered by
/// (min_time, file name).
std::vector<SegmentMeta> load_manifest(const std::string& directory);

}  // namespace gill::archive
