#include "archive/retention.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <set>

namespace gill::archive {

namespace fs = std::filesystem;

void SegmentPins::pin(const std::vector<std::string>& files) {
  std::lock_guard lock(mutex_);
  pin_locked(files);
}

void SegmentPins::pin_locked(const std::vector<std::string>& files) {
  for (const std::string& file : files) ++counts_[file];
}

bool SegmentPins::pinned_locked(const std::string& file) const {
  return counts_.contains(file);
}

void SegmentPins::unpin(const std::vector<std::string>& files) {
  std::lock_guard lock(mutex_);
  for (const std::string& file : files) {
    const auto it = counts_.find(file);
    if (it == counts_.end()) continue;
    if (--it->second == 0) counts_.erase(it);
  }
}

bool SegmentPins::pinned(const std::string& file) const {
  std::lock_guard lock(mutex_);
  return counts_.contains(file);
}

std::size_t SegmentPins::pinned_count() const {
  std::lock_guard lock(mutex_);
  return counts_.size();
}

std::vector<std::size_t> select_expired(
    const std::vector<SegmentMeta>& manifest, const RetentionPolicy& policy,
    Timestamp now) {
  std::vector<std::size_t> victims;
  std::vector<bool> condemned(manifest.size(), false);
  // Age first: a window is expired when even its newest record is older
  // than the horizon. Whole windows only — a segment is the deletion unit.
  if (policy.max_age_secs > 0 && now > policy.max_age_secs) {
    const Timestamp horizon = now - policy.max_age_secs;
    for (std::size_t i = 0; i < manifest.size(); ++i) {
      if (manifest[i].max_time < horizon) condemned[i] = true;
    }
  }
  // Then the byte budget over what survives, oldest-first.
  if (policy.max_bytes > 0) {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < manifest.size(); ++i) {
      if (!condemned[i]) total += manifest[i].payload_bytes;
    }
    for (std::size_t i = 0; i < manifest.size() && total > policy.max_bytes;
         ++i) {
      if (condemned[i]) continue;
      condemned[i] = true;
      total -= manifest[i].payload_bytes;
    }
  }
  for (std::size_t i = 0; i < manifest.size(); ++i) {
    if (condemned[i]) victims.push_back(i);
  }
  return victims;
}

std::optional<GcResult> run_gc(const std::string& directory,
                               std::vector<SegmentMeta> manifest,
                               const RetentionPolicy& policy,
                               const SegmentPins* pins, Timestamp now) {
  GcResult result;
  const std::vector<std::size_t> expired =
      select_expired(manifest, policy, now);
  std::set<std::size_t> doomed;
  for (const std::size_t index : expired) {
    if (pins != nullptr && pins->pinned(manifest[index].file)) {
      ++result.skipped_pinned;  // a live cursor holds it: next pass
      continue;
    }
    doomed.insert(index);
  }
  if (doomed.empty()) {
    result.remaining = std::move(manifest);
    return result;
  }
  std::vector<std::pair<std::string, std::uint64_t>> victims;  // file, bytes
  for (std::size_t i = 0; i < manifest.size(); ++i) {
    if (doomed.contains(i)) {
      victims.emplace_back(manifest[i].file, manifest[i].payload_bytes);
    } else {
      result.remaining.push_back(std::move(manifest[i]));
    }
  }
  // Manifest first, unlink second: a reader loading the store mid-pass
  // either still sees the victim rows (files intact) or already does not
  // (files may lag, but load_manifest drops rows without files and GC
  // converges) — never a row pointing at a hole.
  const std::string json = manifest_to_json(result.remaining);
  const std::string manifest_path =
      (fs::path(directory) / kManifestName).string();
  if (!write_file_atomic(
          manifest_path,
          std::span(reinterpret_cast<const std::uint8_t*>(json.data()),
                    json.size()))) {
    return std::nullopt;
  }
  // Unlink with a per-file pin re-check under the ledger lock: a cursor
  // that pinned between our selection above and this unlink spares its
  // file (it stays on disk, drops out of the manifest, and load_manifest
  // re-adopts it — the next pass deletes it once unpinned).
  for (const auto& [file, bytes] : victims) {
    bool spared = false;
    const std::string path = (fs::path(directory) / file).string();
    if (pins != nullptr) {
      pins->locked([&] {
        spared = pins->pinned_locked(file);
        if (!spared) ::unlink(path.c_str());
      });
    } else {
      ::unlink(path.c_str());
    }
    if (spared) {
      ++result.skipped_pinned;
    } else {
      result.deleted_files.push_back(file);
      result.deleted_bytes += bytes;
    }
  }
  return result;
}

}  // namespace gill::archive
