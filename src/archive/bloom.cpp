#include "archive/bloom.hpp"

#include <algorithm>

namespace gill::archive {

namespace {

/// splitmix64 finalizer: decorrelates the second probe stream from the
/// first so double hashing behaves like independent hash functions.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t prefix_key(const net::Prefix& prefix) noexcept {
  return hash_value(prefix);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 24));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint32_t get_u32(std::span<const std::uint8_t> data, std::size_t at) {
  return (static_cast<std::uint32_t>(data[at]) << 24) |
         (static_cast<std::uint32_t>(data[at + 1]) << 16) |
         (static_cast<std::uint32_t>(data[at + 2]) << 8) |
         static_cast<std::uint32_t>(data[at + 3]);
}

constexpr int hex_digit(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

void PrefixBloom::observe(const net::Prefix& prefix) {
  if (!bits_.empty()) return;  // frozen
  // The prefix plus all of its ancestors: a query for any covering prefix
  // finds its own key in the set.
  for (unsigned length = 0; length <= prefix.length(); ++length) {
    keys_.insert(prefix_key(net::Prefix(prefix.address(), length)));
  }
}

void PrefixBloom::finalize(double bits_per_key, std::uint32_t hashes) {
  if (!bits_.empty() || keys_.empty()) {
    keys_.clear();
    return;
  }
  const double wanted = bits_per_key * static_cast<double>(keys_.size());
  std::uint64_t bit_count = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(wanted) + 1, 64, kMaxBits);
  bit_count = (bit_count + 7) & ~7ull;  // whole bytes
  bits_.assign(bit_count / 8, 0);
  hashes_ = std::max(1u, hashes);
  for (const std::uint64_t key : keys_) {
    const std::uint64_t h2 = mix(key) | 1;  // odd: full-period stride
    std::uint64_t h = key;
    for (std::uint32_t i = 0; i < hashes_; ++i, h += h2) {
      const std::uint64_t bit = h % bit_count;
      bits_[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
    }
  }
  keys_.clear();
}

bool PrefixBloom::probe(std::uint64_t key) const noexcept {
  const std::uint64_t bit_count = 8ull * bits_.size();
  const std::uint64_t h2 = mix(key) | 1;
  std::uint64_t h = key;
  for (std::uint32_t i = 0; i < hashes_; ++i, h += h2) {
    const std::uint64_t bit = h % bit_count;
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) return false;
  }
  return true;
}

bool PrefixBloom::may_cover(const net::Prefix& query) const noexcept {
  if (bits_.empty()) return true;  // no filter: scan-all fallback
  return probe(prefix_key(query));
}

void PrefixBloom::serialize(std::vector<std::uint8_t>& out) const {
  put_u32(out, hashes_);
  put_u32(out, static_cast<std::uint32_t>(bits_.size() >> 32));
  put_u32(out, static_cast<std::uint32_t>(bits_.size()));
  out.insert(out.end(), bits_.begin(), bits_.end());
}

std::optional<PrefixBloom> PrefixBloom::deserialize(
    std::span<const std::uint8_t> data, std::size_t& at) {
  if (data.size() < at || data.size() - at < 12) return std::nullopt;
  PrefixBloom bloom;
  bloom.hashes_ = get_u32(data, at);
  const std::uint64_t bytes =
      (static_cast<std::uint64_t>(get_u32(data, at + 4)) << 32) |
      get_u32(data, at + 8);
  at += 12;
  if (bytes > kMaxBits / 8 || data.size() - at < bytes) return std::nullopt;
  if (bytes > 0 && bloom.hashes_ == 0) return std::nullopt;
  bloom.bits_.assign(data.begin() + static_cast<std::ptrdiff_t>(at),
                     data.begin() + static_cast<std::ptrdiff_t>(at + bytes));
  at += bytes;
  return bloom;
}

std::string PrefixBloom::to_hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string hex;
  hex.reserve(bits_.size() * 2);
  for (const std::uint8_t byte : bits_) {
    hex.push_back(kDigits[byte >> 4]);
    hex.push_back(kDigits[byte & 0xf]);
  }
  return hex;
}

std::optional<PrefixBloom> PrefixBloom::from_hex(std::string_view hex,
                                                 std::uint32_t hashes) {
  if (hex.size() % 2 != 0 || hex.size() / 2 > kMaxBits / 8) {
    return std::nullopt;
  }
  PrefixBloom bloom;
  bloom.hashes_ = hashes;
  if (!hex.empty() && hashes == 0) return std::nullopt;
  bloom.bits_.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_digit(hex[i]);
    const int lo = hex_digit(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    bloom.bits_.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return bloom;
}

}  // namespace gill::archive
