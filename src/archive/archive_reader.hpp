// The archive store's read path (DESIGN.md §10): ArchiveReader answers
// per-window, per-VP, per-prefix queries over a directory of sealed
// segments. Pruning happens on the segment index — a segment is opened
// only when its footer-recorded time range and VP set can intersect the
// query — and results stream out as framed MRT in bounded chunks: the
// cursor holds at most one segment's payload in memory at a time, so a
// query over a month of archive never materializes the month.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "archive/segment.hpp"
#include "metrics/metrics.hpp"
#include "netbase/prefix.hpp"

namespace gill::archive {

/// Filter for ArchiveReader::query. Time bounds are half-open
/// [start, end); vp/prefix restrict when set. A prefix filter matches
/// records whose prefix equals the query prefix or is more specific
/// (contained in it) — the per-origin slice an operator asks for.
struct QueryOptions {
  Timestamp start = 0;
  Timestamp end = std::numeric_limits<Timestamp>::max();
  std::optional<VpId> vp;
  std::optional<net::Prefix> prefix;
};

class ArchiveReader;

/// Streams one query's matching records as framed MRT bytes. Obtained
/// from ArchiveReader::query; the reader must outlive the cursor.
class QueryCursor {
 public:
  /// Appends up to ~`max_bytes` of framed MRT to `out` (a chunk may
  /// overshoot by one record). Returns false when the stream is
  /// exhausted and nothing was appended.
  bool next_chunk(std::string& out, std::size_t max_bytes = 64 * 1024);

  std::uint64_t records_streamed() const noexcept { return streamed_; }

 private:
  friend class ArchiveReader;
  QueryCursor(const ArchiveReader* reader, QueryOptions options);

  /// Loads the next index-pruned segment payload; false when none left.
  bool load_next_segment();

  const ArchiveReader* reader_;
  QueryOptions options_;
  std::size_t segment_index_ = 0;       // next manifest row to consider
  std::vector<std::uint8_t> payload_;   // current segment payload
  std::size_t payload_offset_ = 0;      // resume point inside payload_
  std::uint64_t streamed_ = 0;
};

class ArchiveReader {
 public:
  /// `registry` hosts gill_archive_queries_served_total /
  /// gill_archive_records_streamed_total; nullptr uses the default
  /// registry.
  explicit ArchiveReader(metrics::Registry* registry = nullptr);

  /// Loads the manifest of `directory` (footers reconcile rows the
  /// manifest missed). With `recover` set, crash artifacts are sealed
  /// first — only safe when no live writer owns the directory.
  bool open(const std::string& directory, bool recover = false);

  /// Sealed segments, oldest first.
  const std::vector<SegmentMeta>& segments() const noexcept {
    return segments_;
  }

  /// The /segments payload: the manifest as one JSON document.
  std::string segments_json() const { return manifest_to_json(segments_); }

  /// Starts a streaming query; prunes segments via the index.
  QueryCursor query(const QueryOptions& options) const;

  /// Convenience for tests: decodes every matching record eagerly.
  std::vector<mrt::Reader::Record> query_all(const QueryOptions& options) const;

  const std::string& directory() const noexcept { return directory_; }

 private:
  friend class QueryCursor;

  bool segment_may_match(const SegmentMeta& meta,
                         const QueryOptions& options) const;
  bool record_matches(const mrt::Reader::Record& record,
                      const QueryOptions& options) const;

  std::string directory_;
  std::vector<SegmentMeta> segments_;
  metrics::Counter& queries_served_;
  metrics::Counter& records_streamed_;
};

}  // namespace gill::archive
