// Per-prefix bloom filter carried in each sealed segment's footer
// (DESIGN.md §15): it lets a prefix query prune whole segments the way the
// footer's time range and VP set already prune time/VP queries.
//
// The query semantics of GET /v1/data are "equal or more specific": a query
// prefix P matches a record whose prefix q satisfies P.covers(q). A plain
// membership filter over the record prefixes cannot answer "does any stored
// q lie under P", so the builder inserts, for every record prefix q, the
// keys of *all* of q's ancestors (q truncated to every length 0..len(q)).
// A segment may then contain a record under P exactly when P itself was
// inserted as an ancestor — one membership probe per segment, no false
// negatives, and a false-positive probability bounded by the classic
// (1 - e^{-kn/m})^k with k hashes over m bits for n distinct keys
// (~0.8% at the default 10 bits/key, k = 7).
//
// An *empty* filter (a pre-bloom v1 segment, or a store written before this
// format) answers may_cover() = true for everything: bloom-less segments
// fall back to scan-all, never to wrong answers.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "netbase/prefix.hpp"

namespace gill::archive {

class PrefixBloom {
 public:
  /// Default sizing: bits per distinct key and probe count.
  static constexpr double kDefaultBitsPerKey = 10.0;
  static constexpr std::uint32_t kDefaultHashes = 7;
  /// Hard cap on the bit array (1 MiB) so one pathological segment can
  /// never bloat the footer/manifest unboundedly; past the cap the
  /// false-positive rate degrades gracefully instead.
  static constexpr std::uint64_t kMaxBits = 8ull * 1024 * 1024;

  /// Build phase: folds one record prefix in (the prefix and every one of
  /// its ancestors). No-op after finalize().
  void observe(const net::Prefix& prefix);

  /// Freezes the key set into the bit array and releases the keys.
  /// Idempotent; an observe-less finalize yields an empty (match-all)
  /// filter.
  void finalize(double bits_per_key = kDefaultBitsPerKey,
                std::uint32_t hashes = kDefaultHashes);
  bool finalized() const noexcept { return !bits_.empty() || keys_.empty(); }

  /// True when no filter is present (nothing observed / v1 segment):
  /// may_cover() then always answers true.
  bool empty() const noexcept { return bits_.empty(); }

  /// May this segment contain a record prefix covered by `query`?
  /// Never a false negative; empty filters always answer true.
  bool may_cover(const net::Prefix& query) const noexcept;

  /// Distinct ancestor keys observed so far (build phase only).
  std::size_t key_count() const noexcept { return keys_.size(); }

  std::uint32_t hashes() const noexcept { return hashes_; }
  const std::vector<std::uint8_t>& bits() const noexcept { return bits_; }

  /// Binary form appended to the segment footer: hashes (u32 BE), byte
  /// length (u64 BE), then the bit array.
  void serialize(std::vector<std::uint8_t>& out) const;
  /// Restores a filter serialized at `at` inside `data`; advances `at`
  /// past it. nullopt on truncated/inconsistent input.
  static std::optional<PrefixBloom> deserialize(
      std::span<const std::uint8_t> data, std::size_t& at);

  /// Manifest (index.json) form: the bit array as lowercase hex.
  std::string to_hex() const;
  static std::optional<PrefixBloom> from_hex(std::string_view hex,
                                             std::uint32_t hashes);

  /// Equality compares the frozen filter only (probe count + bit array);
  /// un-finalized build state never round-trips and is ignored.
  friend bool operator==(const PrefixBloom& a, const PrefixBloom& b) {
    return a.hashes_ == b.hashes_ && a.bits_ == b.bits_;
  }

 private:
  bool probe(std::uint64_t key) const noexcept;

  std::unordered_set<std::uint64_t> keys_;  // build phase only
  std::uint32_t hashes_ = 0;
  std::vector<std::uint8_t> bits_;
};

}  // namespace gill::archive
