// LRU cache of hot decompressed segment payloads (DESIGN.md §15), shared
// by every concurrent GET /v1/data request: the second query over a window
// costs a map lookup and a memcpy-speed scan instead of a disk read and a
// zstd inflate. Bounded by a byte budget (--archive-cache-bytes); the
// least-recently-used payload is evicted when an insert would overflow it.
//
// Payloads are handed out as shared_ptr<const ...>: an eviction — or a GC
// deleting the underlying file — never invalidates a payload a cursor is
// still scanning; the memory is freed when the last holder drops it.
// Thread-safe; the disk load on a miss runs OUTSIDE the lock, so a slow
// read or inflate never serializes unrelated queries (two racing misses on
// the same segment may both load it; the second insert is a no-op).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "archive/segment.hpp"
#include "metrics/metrics.hpp"

namespace gill::archive {

struct SegmentCacheConfig {
  /// Byte budget over the cached (decompressed) payloads. 0 disables
  /// caching entirely: every get() loads from disk.
  std::size_t max_bytes = 256 * 1024 * 1024;
  /// Registry hosting gill_archive_cache_*; nullptr uses the default.
  metrics::Registry* registry = nullptr;
};

class SegmentCache {
 public:
  using Payload = std::shared_ptr<const std::vector<std::uint8_t>>;

  explicit SegmentCache(SegmentCacheConfig config = {});

  /// The decompressed payload of `meta` under `directory`: cached copy on
  /// a hit, loaded (and decompressed when meta.codec != none) on a miss.
  /// nullptr when the file vanished, is shorter than the footer claims, or
  /// cannot be decoded.
  Payload get(const std::string& directory, const SegmentMeta& meta);

  /// Drops a segment (a GC pass deleted its file). No-op when absent.
  void invalidate(const std::string& directory, const std::string& file);
  void clear();

  std::uint64_t hits() const noexcept { return hits_.load(); }
  std::uint64_t misses() const noexcept { return misses_.load(); }
  std::uint64_t evictions() const noexcept { return evictions_.load(); }
  /// Disk loads performed (each miss that found its file).
  std::uint64_t disk_reads() const noexcept { return disk_reads_.load(); }
  std::size_t bytes() const;
  std::size_t entries() const;

  /// Loads + decodes one segment payload with no cache involved — the
  /// shared loader used on misses and by cache-less readers. nullptr on a
  /// vanished file or decode failure.
  static Payload load_segment(const std::string& directory,
                              const SegmentMeta& meta);

 private:
  struct Entry {
    std::string key;
    Payload payload;
  };

  void note_use(std::list<Entry>::iterator it);

  const SegmentCacheConfig config_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::size_t bytes_ = 0;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> disk_reads_{0};
  metrics::Counter& hits_counter_;
  metrics::Counter& misses_counter_;
  metrics::Counter& evictions_counter_;
  metrics::Gauge& bytes_gauge_;
};

}  // namespace gill::archive
