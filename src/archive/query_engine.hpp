// Production-scale archive query engine (DESIGN.md §15). ArchiveReader's
// cursor walks segments one at a time on the caller's thread; at archive
// scale (thousands of compressed windows) a prefix query spends its life
// inflating and scanning segments serially. QueryEngine keeps the same
// streamed-MRT contract but:
//
//  - prunes with the footer bloom filter as well as time range and VP set,
//    so a prefix query opens only segments that can contain the prefix;
//  - fans the surviving segments out across a par::ThreadPool — each
//    segment is scanned by a self-contained task — and re-merges results
//    in manifest order, so the output bytes are identical to the serial
//    path at any thread count;
//  - reads payloads through the shared SegmentCache, so hot windows are
//    served without touching disk;
//  - pins its manifest snapshot in the SegmentPins ledger for the cursor's
//    lifetime, so a retention pass never deletes a segment out from under
//    an in-flight query.
//
// One QueryEngine is shared by every HTTP request; refresh() swaps in a
// new manifest snapshot (cheap shared_ptr swap) when the writer seals or
// GCs, and cursors keep streaming from the snapshot they started with.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "archive/archive_reader.hpp"
#include "archive/retention.hpp"
#include "archive/segment.hpp"
#include "archive/segment_cache.hpp"
#include "metrics/metrics.hpp"
#include "parallel/thread_pool.hpp"

namespace gill::archive {

struct QueryEngineConfig {
  std::string directory;
  /// Scan executor; nullptr scans every segment inline (serial path).
  par::ThreadPool* pool = nullptr;
  /// Hot-payload cache shared across requests; nullptr loads from disk.
  SegmentCache* cache = nullptr;
  /// Cursor pin ledger shared with GC; nullptr disables pinning.
  SegmentPins* pins = nullptr;
  /// Segment scans in flight per cursor (prefetch depth).
  std::size_t max_parallel_segments = 4;
  /// Registry hosting gill_archive_engine_*; nullptr uses the default.
  metrics::Registry* registry = nullptr;
};

class QueryEngine;

/// Streams one query's matching records as framed MRT bytes, scanning
/// surviving segments on the engine's pool. The engine must outlive the
/// cursor. Not thread-safe (one cursor = one response stream).
class EngineCursor {
 public:
  ~EngineCursor();
  EngineCursor(const EngineCursor&) = delete;
  EngineCursor& operator=(const EngineCursor&) = delete;

  /// Appends up to `max_bytes` of framed MRT to `out`. Returns false when
  /// the stream is exhausted and nothing was appended.
  bool next_chunk(std::string& out, std::size_t max_bytes = 64 * 1024);

  std::uint64_t records_streamed() const noexcept { return streamed_; }
  /// Segments this cursor will scan (after pruning) — observability/tests.
  std::size_t planned_segments() const noexcept { return plan_.size(); }

 private:
  friend class QueryEngine;

  struct ScanResult {
    std::string bytes;           // matching records, verbatim
    std::uint64_t records = 0;
    bool vanished = false;       // file missing/undecodable
  };

  EngineCursor(QueryEngine* engine,
               std::shared_ptr<const std::vector<SegmentMeta>> snapshot,
               QueryOptions options);

  /// Keeps up to max_parallel_segments scans in flight on the pool.
  void schedule();
  /// Produces the next segment's result in plan order; false when done.
  bool advance();

  QueryEngine* engine_;
  std::shared_ptr<const std::vector<SegmentMeta>> snapshot_;
  QueryOptions options_;
  std::vector<std::string> pinned_files_;
  std::vector<SegmentMeta> plan_;  // pruned, manifest order
  std::size_t next_to_schedule_ = 0;
  std::deque<std::future<ScanResult>> in_flight_;
  std::size_t next_inline_ = 0;    // serial path progress
  std::string current_;            // front segment's matching bytes
  std::size_t current_offset_ = 0;
  std::uint64_t streamed_ = 0;
};

class QueryEngine {
 public:
  explicit QueryEngine(QueryEngineConfig config);

  /// Loads the manifest snapshot. False when the directory is missing.
  bool open();
  /// Reloads the manifest (the writer sealed or GC'd). Cursors started on
  /// the previous snapshot keep it alive and keep streaming from it.
  bool refresh();

  /// The current manifest snapshot (never nullptr after open()).
  std::shared_ptr<const std::vector<SegmentMeta>> snapshot() const;

  /// The GET /v1/segments payload (bloom bits elided — operator-facing).
  std::string segments_json() const;

  /// Starts a streaming query over the current snapshot. The snapshot's
  /// segments stay pinned (and their files undeleted) until the cursor is
  /// destroyed.
  std::shared_ptr<EngineCursor> query(const QueryOptions& options);

  /// True when `meta` can hold records matching `options` (time range, VP
  /// set, and — new in v2 — the per-prefix bloom filter; an empty v1 bloom
  /// matches everything, the scan-all fallback).
  static bool segment_may_match(const SegmentMeta& meta,
                                const QueryOptions& options);

  const std::string& directory() const noexcept { return config_.directory; }

  std::uint64_t queries() const noexcept { return queries_.load(); }
  std::uint64_t segments_scanned() const noexcept {
    return segments_scanned_.load();
  }
  std::uint64_t segments_pruned() const noexcept {
    return segments_pruned_.load();
  }
  /// Segments whose file vanished between snapshot and scan. With pinning
  /// active this stays 0 — the churn test asserts exactly that.
  std::uint64_t segments_vanished() const noexcept {
    return segments_vanished_.load();
  }

 private:
  friend class EngineCursor;

  EngineCursor::ScanResult scan_segment(const SegmentMeta& meta,
                                        const QueryOptions& options);

  QueryEngineConfig config_;
  mutable std::mutex mutex_;
  std::shared_ptr<const std::vector<SegmentMeta>> snapshot_;

  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> segments_scanned_{0};
  std::atomic<std::uint64_t> segments_pruned_{0};
  std::atomic<std::uint64_t> segments_vanished_{0};
  metrics::Counter& queries_counter_;
  metrics::Counter& scanned_counter_;
  metrics::Counter& pruned_counter_;
  metrics::Counter& vanished_counter_;
  metrics::Counter& records_streamed_counter_;
};

}  // namespace gill::archive
