#include "archive/archive_reader.hpp"

#include <filesystem>

namespace gill::archive {

namespace {

namespace fs = std::filesystem;

metrics::Registry& resolve(metrics::Registry* registry) {
  return registry != nullptr ? *registry : metrics::default_registry();
}

}  // namespace

// ---------------------------------------------------------------------------
// ArchiveReader
// ---------------------------------------------------------------------------

ArchiveReader::ArchiveReader(metrics::Registry* registry)
    : queries_served_(resolve(registry).counter(
          "gill_archive_queries_served_total",
          "Archive queries started (query() calls)")),
      records_streamed_(resolve(registry).counter(
          "gill_archive_records_streamed_total",
          "Records matched and streamed to archive consumers")) {}

bool ArchiveReader::open(const std::string& directory, bool recover) {
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) return false;
  if (recover && !recover_store(directory)) return false;
  directory_ = directory;
  segments_ = load_manifest(directory);
  return true;
}

bool ArchiveReader::segment_may_match(const SegmentMeta& meta,
                                      const QueryOptions& options) const {
  if (meta.max_time < options.start || meta.min_time >= options.end) {
    return false;
  }
  if (options.vp.has_value()) {
    const auto it =
        std::lower_bound(meta.vps.begin(), meta.vps.end(), *options.vp);
    if (it == meta.vps.end() || *it != *options.vp) return false;
  }
  if (options.prefix.has_value() && !meta.bloom.may_cover(*options.prefix)) {
    return false;  // v1 segments carry an empty (match-all) bloom
  }
  return true;
}

bool ArchiveReader::record_matches(const mrt::Reader::Record& record,
                                   const QueryOptions& options) const {
  const bgp::Update& update = record.update;
  if (update.time < options.start || update.time >= options.end) return false;
  if (options.vp.has_value() && update.vp != *options.vp) return false;
  if (options.prefix.has_value() &&
      !options.prefix->covers(update.prefix)) {
    return false;
  }
  return true;
}

QueryCursor ArchiveReader::query(const QueryOptions& options) const {
  queries_served_.inc();
  return QueryCursor(this, options);
}

std::vector<mrt::Reader::Record> ArchiveReader::query_all(
    const QueryOptions& options) const {
  QueryCursor cursor = query(options);
  std::string bytes;
  while (cursor.next_chunk(bytes)) {
  }
  std::vector<mrt::Reader::Record> records;
  mrt::Reader reader(
      std::span(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                bytes.size()));
  while (auto record = reader.next()) records.push_back(std::move(*record));
  return records;
}

// ---------------------------------------------------------------------------
// QueryCursor
// ---------------------------------------------------------------------------

QueryCursor::QueryCursor(const ArchiveReader* reader, QueryOptions options)
    : reader_(reader), options_(std::move(options)) {}

bool QueryCursor::load_next_segment() {
  const auto& segments = reader_->segments_;
  while (segment_index_ < segments.size()) {
    const SegmentMeta& meta = segments[segment_index_++];
    if (!reader_->segment_may_match(meta, options_)) continue;
    const std::string path =
        (fs::path(reader_->directory_) / meta.file).string();
    auto file = read_file(path);
    if (!file) continue;  // vanished
    // Decode by the file's own footer: the compressed image may have
    // atomically replaced the raw seal after this reader's manifest row
    // was loaded (same records, different encoding).
    const auto actual = read_footer(std::span<const std::uint8_t>(*file));
    if (!actual || file->size() < actual->payload_bytes) continue;
    file->resize(actual->payload_bytes);  // drop the footer
    if (actual->codec == kCodecZstd) {
      auto raw = decompress_payload(*file, actual->raw_bytes);
      if (!raw) continue;  // zstd-less build or corrupt payload
      payload_ = std::move(*raw);
    } else if (actual->codec != kCodecNone) {
      continue;  // unknown future codec: skip, don't misparse
    } else {
      payload_ = std::move(*file);
    }
    payload_offset_ = 0;
    return true;
  }
  return false;
}

bool QueryCursor::next_chunk(std::string& out, std::size_t max_bytes) {
  const std::size_t start_size = out.size();
  while (out.size() - start_size < max_bytes) {
    if (payload_offset_ >= payload_.size()) {
      if (!load_next_segment()) break;
    }
    // Matching records are copied verbatim from the segment payload: the
    // stream is byte-identical to what the writer stored, record by record.
    mrt::Reader reader(std::span<const std::uint8_t>(payload_)
                           .subspan(payload_offset_));
    std::size_t consumed = 0;
    while (auto record = reader.next()) {
      const std::size_t record_end = reader.offset();
      if (reader_->record_matches(*record, options_)) {
        const char* base =
            reinterpret_cast<const char*>(payload_.data()) + payload_offset_;
        out.append(base + consumed, record_end - consumed);
        ++streamed_;
        reader_->records_streamed_.inc();
      }
      consumed = record_end;
      if (out.size() - start_size >= max_bytes) break;
    }
    payload_offset_ += consumed;
    if (reader.done() || !reader.ok()) {
      // Segment exhausted (sealed payloads are never torn; !ok would mean
      // on-disk corruption — stop reading this segment either way).
      payload_offset_ = payload_.size();
    }
  }
  return out.size() != start_size;
}

}  // namespace gill::archive
