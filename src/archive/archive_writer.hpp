// The archive store's write path (DESIGN.md §10): a SegmentWriter appends
// framed MRT records to rotated on-disk segments. Records accumulate in an
// in-memory buffer on the caller's thread (the event loop); disk work —
// appending buffered bytes to the active `current.part`, fsync, sealing a
// segment on the rotation boundary, rewriting `index.json` — runs as jobs
// on a parallel::ThreadPool so the loop never blocks on storage
// (mirroring the async filter-refresh pattern of DESIGN.md §9). Jobs for
// one writer are strictly serialized (a serial executor over the pool), so
// segment bytes land in append order no matter how many pool workers
// exist. Without a pool every job runs inline: deterministic for tests.
//
// Rotation happens on wall-clock boundaries: a segment covers
// [k*rotate_secs, (k+1)*rotate_secs) — the 15-minute windows of
// RIS/RouteViews-style archives by default. RIB snapshots (TABLE_DUMP_V2
// records, fed by the daemons' periodic rib dumps) interleave with the
// updates, so any window is reconstructible from the archive alone.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "archive/retention.hpp"
#include "archive/segment.hpp"
#include "metrics/metrics.hpp"
#include "mrt/mrt.hpp"
#include "parallel/thread_pool.hpp"

namespace gill::archive {

struct SegmentWriterConfig {
  std::string directory;
  /// Wall-clock rotation boundary, seconds (15 min, the RIS/RV window).
  Timestamp rotate_secs = 900;
  /// Buffered bytes that trigger an asynchronous append to the active
  /// segment file (batches small records into few write syscalls).
  std::size_t flush_bytes = 64 * 1024;
  /// zstd-compress segment payloads at seal time (--archive-compress).
  /// The active `current.part` stays raw either way, so recovery is
  /// unchanged; a build without zstd degrades to raw sealing.
  bool compress = false;
  /// I/O executor; nullptr runs every job inline on the caller's thread.
  par::ThreadPool* pool = nullptr;
  /// Registry hosting the gill_archive_* instruments; nullptr uses
  /// metrics::default_registry().
  metrics::Registry* registry = nullptr;
};

class SegmentWriter : public mrt::Sink {
 public:
  explicit SegmentWriter(SegmentWriterConfig config);
  ~SegmentWriter() override;
  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  /// Creates the store directory, seals any crash artifact from a previous
  /// process (recovery scan + truncate, see segment.hpp) and loads the
  /// manifest. Must be called (and return true) before any append.
  bool open();

  // --- mrt::Sink ------------------------------------------------------------
  void store(const bgp::Update& update) override;
  void store_rib_entry(const bgp::Update& entry) override;

  /// Drives rotation: seals the active segment once `now` crosses its
  /// window boundary. Call periodically (the collector's tick timer).
  void tick(Timestamp now);

  /// Schedules the buffered bytes for an append+fsync to the active file.
  void flush();

  /// Seals the active segment regardless of the boundary (shutdown).
  void rotate_now();

  /// Blocks until every scheduled I/O job ran (tests, shutdown).
  void wait_idle();

  /// rotate_now() + wait_idle(): after close() the store on disk is
  /// sealed, indexed and fsynced. Called by the destructor.
  void close();

  /// Runs one retention/GC pass as a serialized writer job: deletes aged
  /// and over-budget sealed windows (oldest first), skipping any segment
  /// pinned by a live cursor, with the crash-safe manifest-first ordering
  /// of retention.hpp. `on_deleted` (may be empty) is invoked once per
  /// deleted file name — the daemon uses it to invalidate the segment
  /// cache. No-op when the policy is disabled.
  void run_retention(const RetentionPolicy& policy, const SegmentPins* pins,
                     Timestamp now,
                     std::function<void(const std::string&)> on_deleted = {});

  /// Sealed segments, oldest first (a snapshot; safe from any thread).
  std::vector<SegmentMeta> manifest() const;

  /// Bumped on every manifest change (seal, GC). The daemon refreshes its
  /// shared QueryEngine only when this moves — satellite (a)'s fix for the
  /// reload-the-manifest-per-request pattern.
  std::uint64_t manifest_generation() const;

  std::uint64_t segments_sealed() const;
  std::uint64_t records_appended() const noexcept { return records_appended_; }
  /// True once an I/O failure (or the torn-write fault) killed the writer.
  /// A full disk (ENOSPC) does NOT kill the writer: the chunk is dropped,
  /// counted and logged, and appends resume if space comes back.
  bool failed() const;

  /// Appends dropped because the disk was full (see failed()).
  std::uint64_t enospc_events() const;

  /// Test/fault hook — simulates a crash mid-write: the next scheduled
  /// append writes only the first `bytes` bytes of its chunk to the active
  /// file, skips the fsync, and permanently disables the writer (every
  /// later job is a no-op), exactly as if the process died inside write().
  void fault_torn_write(std::size_t bytes);

  /// Test/fault hook — the next scheduled append fails with ENOSPC: its
  /// chunk is dropped and counted but the writer stays alive (degradation,
  /// not failure — collection continues when the operator frees space).
  void fault_enospc();

 private:
  struct Instruments {
    explicit Instruments(metrics::Registry& registry);
    metrics::Counter& segments_written;
    metrics::Counter& bytes_written;
    metrics::Counter& records_appended;
    metrics::Counter& recovered_segments;
    metrics::Counter& truncated_bytes;
    metrics::Counter& enospc_events;
    metrics::Counter& enospc_dropped_bytes;
    metrics::Counter& compressed_segments;
    metrics::Counter& compression_saved_bytes;
    metrics::Counter& gc_deleted_segments;
    metrics::Counter& gc_deleted_bytes;
    metrics::Counter& gc_skipped_pinned;
    metrics::Histogram& rotate_us;
    metrics::Histogram& fsync_us;
  };

  void append_record(const bgp::Update& update, bool rib_entry);
  /// Schedules `job` on the serial executor (inline without a pool).
  void post(std::function<void()> job);
  void run_jobs();
  /// Job bodies (serial-executor thread).
  void do_append(std::vector<std::uint8_t> bytes);
  void do_seal(std::vector<std::uint8_t> tail, SegmentMeta meta);

  std::string active_path() const;

  SegmentWriterConfig config_;
  Instruments instruments_;

  // Loop-thread state (no lock needed: append/tick/flush are loop-only).
  mrt::Writer buffer_;           // records not yet scheduled for disk
  std::size_t buffer_offset_ = 0;  // bytes of buffer_ already scheduled
  SegmentMeta active_;           // statistics of the active segment
  Timestamp window_start_ = 0;   // active window [start, start+rotate)
  bool window_open_ = false;
  std::uint64_t records_appended_ = 0;
  std::uint64_t next_seq_ = 1;

  // Serial executor over the pool. `mutex_` guards everything below.
  mutable std::mutex mutex_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> jobs_;
  bool job_running_ = false;
  bool dead_ = false;             // torn-write fault tripped or I/O failure
  std::size_t torn_write_bytes_ = SIZE_MAX;  // SIZE_MAX = fault unarmed
  bool fault_armed_ = false;
  bool enospc_fault_armed_ = false;
  std::uint64_t enospc_events_ = 0;
  int active_fd_ = -1;            // open fd of current.part (job thread)
  std::vector<SegmentMeta> sealed_;  // manifest mirror
  std::uint64_t sealed_count_ = 0;
  std::uint64_t manifest_generation_ = 0;
};

}  // namespace gill::archive
