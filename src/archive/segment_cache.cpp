#include "archive/segment_cache.hpp"

#include <filesystem>
#include <utility>

namespace gill::archive {

namespace {

namespace fs = std::filesystem;

metrics::Registry& resolve(metrics::Registry* registry) {
  return registry != nullptr ? *registry : metrics::default_registry();
}

std::string cache_key(const std::string& directory, const std::string& file) {
  return directory + "/" + file;
}

}  // namespace

SegmentCache::SegmentCache(SegmentCacheConfig config)
    : config_(config),
      hits_counter_(resolve(config.registry)
                        .counter("gill_archive_cache_hits_total",
                                 "Segment payloads served from the hot "
                                 "cache (zero disk reads)")),
      misses_counter_(resolve(config.registry)
                          .counter("gill_archive_cache_misses_total",
                                   "Segment payloads loaded from disk on a "
                                   "cache miss")),
      evictions_counter_(resolve(config.registry)
                             .counter("gill_archive_cache_evictions_total",
                                      "Payloads evicted to stay under the "
                                      "cache byte budget")),
      bytes_gauge_(resolve(config.registry)
                       .gauge("gill_archive_cache_bytes",
                              "Decompressed payload bytes held by the "
                              "segment cache")) {}

SegmentCache::Payload SegmentCache::load_segment(const std::string& directory,
                                                 const SegmentMeta& meta) {
  auto file = read_file((fs::path(directory) / meta.file).string());
  if (!file) return nullptr;
  // Decode by the file's OWN footer, not the caller's manifest row: sealing
  // publishes a segment twice (raw rename, then the compressed image
  // atomically replaces it under the same name), so a snapshot taken
  // between the two holds a raw row for what is now a zstd file. Same
  // records either way — the footer says which encoding this read got.
  const auto actual = read_footer(std::span<const std::uint8_t>(*file));
  if (!actual || file->size() < actual->payload_bytes) return nullptr;
  file->resize(actual->payload_bytes);  // drop the footer
  if (actual->codec == kCodecNone) {
    return std::make_shared<const std::vector<std::uint8_t>>(
        std::move(*file));
  }
  if (actual->codec != kCodecZstd) return nullptr;  // unknown future codec
  auto raw = decompress_payload(*file, actual->raw_bytes);
  if (!raw) return nullptr;
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(*raw));
}

void SegmentCache::note_use(std::list<Entry>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);  // move to most-recent
}

SegmentCache::Payload SegmentCache::get(const std::string& directory,
                                        const SegmentMeta& meta) {
  const std::string key = cache_key(directory, meta.file);
  {
    std::lock_guard lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      note_use(it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      hits_counter_.inc();
      return it->second->payload;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  misses_counter_.inc();
  // Load outside the lock: a disk read or zstd inflate must never stall a
  // concurrent query hitting a different (cached) segment.
  Payload payload = load_segment(directory, meta);
  if (payload == nullptr) return nullptr;
  disk_reads_.fetch_add(1, std::memory_order_relaxed);
  if (config_.max_bytes == 0 || payload->size() > config_.max_bytes) {
    return payload;  // cache disabled or the payload alone overflows it
  }
  std::lock_guard lock(mutex_);
  if (index_.contains(key)) {  // a racing miss inserted first: reuse it
    note_use(index_[key]);
    return index_[key]->payload;
  }
  while (!lru_.empty() && bytes_ + payload->size() > config_.max_bytes) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.payload->size();
    index_.erase(victim.key);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    evictions_counter_.inc();
  }
  lru_.push_front(Entry{key, payload});
  index_[key] = lru_.begin();
  bytes_ += payload->size();
  bytes_gauge_.set(static_cast<double>(bytes_));
  return payload;
}

void SegmentCache::invalidate(const std::string& directory,
                              const std::string& file) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(cache_key(directory, file));
  if (it == index_.end()) return;
  bytes_ -= it->second->payload->size();
  lru_.erase(it->second);
  index_.erase(it);
  bytes_gauge_.set(static_cast<double>(bytes_));
}

void SegmentCache::clear() {
  std::lock_guard lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  bytes_gauge_.set(0.0);
}

std::size_t SegmentCache::bytes() const {
  std::lock_guard lock(mutex_);
  return bytes_;
}

std::size_t SegmentCache::entries() const {
  std::lock_guard lock(mutex_);
  return index_.size();
}

}  // namespace gill::archive
