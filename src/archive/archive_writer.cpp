#include "archive/archive_writer.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <utility>

namespace gill::archive {

namespace {

namespace fs = std::filesystem;

metrics::Registry& resolve(metrics::Registry* registry) {
  return registry != nullptr ? *registry : metrics::default_registry();
}

Timestamp align_down(Timestamp time, Timestamp step) {
  return step > 0 ? time - time % step : time;
}

}  // namespace

SegmentWriter::Instruments::Instruments(metrics::Registry& registry)
    : segments_written(registry.counter(
          "gill_archive_segments_written_total",
          "Segments sealed, renamed and indexed on disk")),
      bytes_written(registry.counter("gill_archive_bytes_written_total",
                                     "Payload bytes appended to segments")),
      records_appended(registry.counter(
          "gill_archive_records_appended_total",
          "MRT records (updates + RIB entries) accepted by the writer")),
      recovered_segments(registry.counter(
          "gill_archive_recovered_segments_total",
          "Crash artifacts sealed into segments by the recovery scan")),
      truncated_bytes(registry.counter(
          "gill_archive_truncated_bytes_total",
          "Torn tail bytes discarded by the recovery scan")),
      enospc_events(registry.counter(
          "gill_archive_enospc_events_total",
          "Appends dropped because the disk was full (writer stays alive)")),
      enospc_dropped_bytes(registry.counter(
          "gill_archive_enospc_dropped_bytes_total",
          "Payload bytes dropped by ENOSPC degradation")),
      compressed_segments(registry.counter(
          "gill_archive_compressed_segments_total",
          "Segments sealed with a zstd-compressed payload")),
      compression_saved_bytes(registry.counter(
          "gill_archive_compression_saved_bytes_total",
          "raw - compressed payload bytes across compressed seals")),
      gc_deleted_segments(registry.counter(
          "gill_archive_gc_deleted_segments_total",
          "Sealed windows deleted by retention/GC")),
      gc_deleted_bytes(registry.counter(
          "gill_archive_gc_deleted_bytes_total",
          "On-disk payload bytes reclaimed by retention/GC")),
      gc_skipped_pinned(registry.counter(
          "gill_archive_gc_skipped_pinned_total",
          "GC victims spared because a live cursor pinned them")),
      rotate_us(registry.histogram(
          "gill_archive_rotate_us",
          "Microseconds to seal a segment (tail write, footer, fsync, "
          "rename, manifest rewrite)")),
      fsync_us(registry.histogram("gill_archive_fsync_us",
                                  "Microseconds per fsync of the active "
                                  "segment file")) {}

SegmentWriter::SegmentWriter(SegmentWriterConfig config)
    : config_(std::move(config)), instruments_(resolve(config_.registry)) {}

SegmentWriter::~SegmentWriter() { close(); }

std::string SegmentWriter::active_path() const {
  return (fs::path(config_.directory) / kActiveSegmentName).string();
}

bool SegmentWriter::open() {
  std::error_code ec;
  fs::create_directories(config_.directory, ec);
  const auto recovered = recover_store(config_.directory);
  if (!recovered) return false;
  instruments_.recovered_segments.inc(recovered->recovered_segments);
  instruments_.truncated_bytes.inc(recovered->truncated_bytes);
  auto manifest = load_manifest(config_.directory);
  next_seq_ = manifest.size() + 1;
  std::lock_guard lock(mutex_);
  sealed_ = std::move(manifest);
  sealed_count_ = sealed_.size();
  return true;
}

void SegmentWriter::store(const bgp::Update& update) {
  append_record(update, /*rib_entry=*/false);
}

void SegmentWriter::store_rib_entry(const bgp::Update& entry) {
  append_record(entry, /*rib_entry=*/true);
}

void SegmentWriter::append_record(const bgp::Update& update, bool rib_entry) {
  if (failed()) return;
  // A record past the window boundary seals the old window first, so a
  // segment's updates never spill past its wall-clock range.
  if (window_open_ &&
      update.time >= window_start_ + config_.rotate_secs) {
    rotate_now();
  }
  if (!window_open_) {
    window_start_ = align_down(update.time, config_.rotate_secs);
    window_open_ = true;
  }
  if (rib_entry) {
    buffer_.write_rib_entry(update);
  } else {
    buffer_.write_update(update);
  }
  active_.observe(update, rib_entry);
  ++records_appended_;
  instruments_.records_appended.inc();
  if (buffer_.buffer().size() - buffer_offset_ >= config_.flush_bytes) {
    flush();
  }
}

void SegmentWriter::tick(Timestamp now) {
  if (window_open_ && now >= window_start_ + config_.rotate_secs) {
    rotate_now();
  }
}

void SegmentWriter::flush() {
  const auto& bytes = buffer_.buffer();
  if (buffer_offset_ >= bytes.size()) return;
  std::vector<std::uint8_t> chunk(bytes.begin() + buffer_offset_,
                                  bytes.end());
  buffer_offset_ = bytes.size();
  post([this, chunk = std::move(chunk)]() mutable {
    do_append(std::move(chunk));
  });
}

void SegmentWriter::rotate_now() {
  if (!window_open_ || active_.records() == 0) return;
  SegmentMeta meta = std::move(active_);
  meta.payload_bytes = buffer_.buffer().size();
  meta.file = segment_file_name(window_start_, next_seq_++);
  std::vector<std::uint8_t> tail(buffer_.buffer().begin() + buffer_offset_,
                                 buffer_.buffer().end());
  buffer_ = mrt::Writer{};
  buffer_offset_ = 0;
  active_ = SegmentMeta{};
  window_open_ = false;
  post([this, tail = std::move(tail), meta = std::move(meta)]() mutable {
    do_seal(std::move(tail), std::move(meta));
  });
}

void SegmentWriter::post(std::function<void()> job) {
  if (config_.pool == nullptr) {
    job();  // inline mode: deterministic, no cross-thread handoff
    return;
  }
  bool schedule = false;
  {
    std::lock_guard lock(mutex_);
    jobs_.push_back(std::move(job));
    if (!job_running_) {
      job_running_ = true;
      schedule = true;
    }
  }
  // One run_jobs drains the whole queue: jobs of one writer never overlap
  // even on a many-worker pool (append order = disk order).
  if (schedule) config_.pool->post([this] { run_jobs(); });
}

void SegmentWriter::run_jobs() {
  for (;;) {
    std::function<void()> job;
    {
      std::lock_guard lock(mutex_);
      if (jobs_.empty()) {
        job_running_ = false;
        idle_.notify_all();
        return;
      }
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    job();
  }
}

void SegmentWriter::do_append(std::vector<std::uint8_t> bytes) {
  std::unique_lock lock(mutex_);
  if (dead_) return;
  if (active_fd_ < 0) {
    active_fd_ = ::open(active_path().c_str(),
                        O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (active_fd_ < 0) {
      dead_ = true;
      return;
    }
  }
  std::size_t limit = bytes.size();
  if (fault_armed_) {
    // The injected crash: a torn write with no fsync, then silence.
    limit = std::min(limit, torn_write_bytes_);
  }
  if (enospc_fault_armed_) {
    enospc_fault_armed_ = false;
    errno = ENOSPC;
    ++enospc_events_;
    instruments_.enospc_events.inc();
    instruments_.enospc_dropped_bytes.inc(bytes.size());
    std::fprintf(stderr,
                 "gill-archive: ENOSPC on %s, dropped %zu bytes "
                 "(collection continues)\n",
                 active_path().c_str(), bytes.size());
    return;
  }
  std::size_t written = 0;
  while (written < limit) {
    const ssize_t n =
        ::write(active_fd_, bytes.data() + written, limit - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ENOSPC) {
        // Full disk is an operational condition, not a bug: drop the rest
        // of this chunk, count and log it, and keep the writer alive so
        // collection resumes the moment the operator frees space.
        ++enospc_events_;
        instruments_.enospc_events.inc();
        instruments_.enospc_dropped_bytes.inc(limit - written);
        std::fprintf(stderr,
                     "gill-archive: ENOSPC on %s, dropped %zu bytes "
                     "(collection continues)\n",
                     active_path().c_str(), limit - written);
        break;
      }
      dead_ = true;
      return;
    }
    written += static_cast<std::size_t>(n);
  }
  if (fault_armed_) {
    fault_armed_ = false;
    dead_ = true;
    return;
  }
  instruments_.bytes_written.inc(written);
  const metrics::Timer timer(instruments_.fsync_us);
  if (::fsync(active_fd_) != 0) dead_ = true;
}

void SegmentWriter::do_seal(std::vector<std::uint8_t> tail, SegmentMeta meta) {
  const metrics::Timer timer(instruments_.rotate_us);
  do_append(std::move(tail));
  std::unique_lock lock(mutex_);
  if (dead_) return;
  // An all-buffered segment (no flush ever ran) still needs its file.
  if (active_fd_ < 0) {
    active_fd_ = ::open(active_path().c_str(),
                        O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (active_fd_ < 0) {
      dead_ = true;
      return;
    }
  }
  // The footer must describe what is actually on disk: after an ENOSPC
  // drop the file is shorter than the buffered payload, and a footer
  // claiming the buffered size would fail read_footer's consistency check
  // (turning a counted degradation into a silently unreadable segment).
  const off_t on_disk = ::lseek(active_fd_, 0, SEEK_END);
  if (on_disk >= 0) meta.payload_bytes = static_cast<std::uint64_t>(on_disk);
  meta.raw_bytes = meta.payload_bytes;
  meta.codec = kCodecNone;
  meta.bloom.finalize();
  std::vector<std::uint8_t> footer;
  append_footer(footer, meta);
  std::size_t written = 0;
  while (written < footer.size()) {
    const ssize_t n =
        ::write(active_fd_, footer.data() + written, footer.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      dead_ = true;
      return;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(active_fd_) != 0) {
    dead_ = true;
    return;
  }
  ::close(active_fd_);
  active_fd_ = -1;
  const std::string sealed_path =
      (fs::path(config_.directory) / meta.file).string();
  if (::rename(active_path().c_str(), sealed_path.c_str()) != 0) {
    dead_ = true;
    return;
  }
  // The rename is durable only once the directory entry itself is on disk
  // (write_file_atomic fsyncs the directory for the manifest; the sealed
  // segment's new name needs the same).
  const int dir_fd = ::open(config_.directory.c_str(),
                            O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  // Compression is a second, independent publish: the raw seal above is
  // already crash-safe (rename is atomic), so the compressed image simply
  // replaces the sealed file under the SAME name via write-to-temp +
  // rename. A crash at any point leaves a valid sealed segment — raw
  // before the swap, zstd after — never a duplicate and never a hole. Any
  // failure here (codec, I/O) keeps the raw seal and moves on.
  if (config_.compress && compression_available() && meta.payload_bytes > 0) {
    auto raw = read_file(sealed_path);
    if (raw && raw->size() >= meta.payload_bytes) {
      raw->resize(meta.payload_bytes);
      if (auto compressed = compress_payload(*raw)) {
        SegmentMeta zmeta = meta;
        zmeta.codec = kCodecZstd;
        zmeta.payload_bytes = compressed->size();
        std::vector<std::uint8_t> image = std::move(*compressed);
        append_footer(image, zmeta);
        if (write_file_atomic(sealed_path, image)) {
          instruments_.compressed_segments.inc();
          if (zmeta.raw_bytes > zmeta.payload_bytes) {
            instruments_.compression_saved_bytes.inc(zmeta.raw_bytes -
                                                     zmeta.payload_bytes);
          }
          meta = std::move(zmeta);
        }
      }
    }
  }
  sealed_.push_back(std::move(meta));
  ++sealed_count_;
  ++manifest_generation_;
  const std::string json = manifest_to_json(sealed_);
  const std::string manifest_path =
      (fs::path(config_.directory) / kManifestName).string();
  if (!write_file_atomic(
          manifest_path,
          std::span(reinterpret_cast<const std::uint8_t*>(json.data()),
                    json.size()))) {
    dead_ = true;
    return;
  }
  instruments_.segments_written.inc();
}

void SegmentWriter::wait_idle() {
  if (config_.pool == nullptr) return;  // inline mode: nothing pending
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return jobs_.empty() && !job_running_; });
}

void SegmentWriter::close() {
  rotate_now();
  wait_idle();
  std::lock_guard lock(mutex_);
  if (active_fd_ >= 0) {
    ::close(active_fd_);
    active_fd_ = -1;
  }
}

void SegmentWriter::run_retention(
    const RetentionPolicy& policy, const SegmentPins* pins, Timestamp now,
    std::function<void(const std::string&)> on_deleted) {
  if (!policy.enabled()) return;
  // A serialized job, like sealing: GC and seals rewrite the same manifest
  // and must never interleave.
  post([this, policy, pins, now, on_deleted = std::move(on_deleted)] {
    std::unique_lock lock(mutex_);
    if (dead_) return;
    auto result = run_gc(config_.directory, sealed_, policy, pins, now);
    if (!result) {
      dead_ = true;  // the manifest rewrite failed; nothing was deleted
      return;
    }
    instruments_.gc_skipped_pinned.inc(result->skipped_pinned);
    if (result->deleted_files.empty()) return;
    sealed_ = std::move(result->remaining);
    ++manifest_generation_;
    instruments_.gc_deleted_segments.inc(result->deleted_files.size());
    instruments_.gc_deleted_bytes.inc(result->deleted_bytes);
    if (on_deleted) {
      for (const std::string& file : result->deleted_files) on_deleted(file);
    }
  });
}

std::vector<SegmentMeta> SegmentWriter::manifest() const {
  std::lock_guard lock(mutex_);
  return sealed_;
}

std::uint64_t SegmentWriter::manifest_generation() const {
  std::lock_guard lock(mutex_);
  return manifest_generation_;
}

std::uint64_t SegmentWriter::segments_sealed() const {
  std::lock_guard lock(mutex_);
  return sealed_count_;
}

bool SegmentWriter::failed() const {
  std::lock_guard lock(mutex_);
  return dead_;
}

void SegmentWriter::fault_torn_write(std::size_t bytes) {
  std::lock_guard lock(mutex_);
  fault_armed_ = true;
  torn_write_bytes_ = bytes;
}

void SegmentWriter::fault_enospc() {
  std::lock_guard lock(mutex_);
  enospc_fault_armed_ = true;
}

std::uint64_t SegmentWriter::enospc_events() const {
  std::lock_guard lock(mutex_);
  return enospc_events_;
}

}  // namespace gill::archive
