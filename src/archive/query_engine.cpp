#include "archive/query_engine.hpp"

#include <filesystem>
#include <utility>

namespace gill::archive {

namespace {

metrics::Registry& resolve(metrics::Registry* registry) {
  return registry != nullptr ? *registry : metrics::default_registry();
}

// Same predicate as ArchiveReader::record_matches: the two paths must
// agree record by record for the byte-identity guarantee to hold.
bool record_matches(const mrt::Reader::Record& record,
                    const QueryOptions& options) {
  const bgp::Update& update = record.update;
  if (update.time < options.start || update.time >= options.end) return false;
  if (options.vp.has_value() && update.vp != *options.vp) return false;
  if (options.prefix.has_value() && !options.prefix->covers(update.prefix)) {
    return false;
  }
  return true;
}

// True when `options` cannot reject any record of `meta`'s segment: the
// window covers the segment's full time range and there is no VP or prefix
// filter. A sealed payload is exactly the concatenation of its framed
// records (sealing writes nothing else; torn-tail recovery truncates to
// the last whole record), so the scan can then skip the per-record parse
// and emit the payload verbatim — the hot path of a full-archive export.
bool matches_everything(const SegmentMeta& meta, const QueryOptions& options) {
  return options.start <= meta.min_time && options.end > meta.max_time &&
         !options.vp.has_value() && !options.prefix.has_value();
}

}  // namespace

// ---------------------------------------------------------------------------
// QueryEngine
// ---------------------------------------------------------------------------

QueryEngine::QueryEngine(QueryEngineConfig config)
    : config_(std::move(config)),
      queries_counter_(resolve(config_.registry)
                           .counter("gill_archive_engine_queries_total",
                                    "Queries started on the archive query "
                                    "engine")),
      scanned_counter_(resolve(config_.registry)
                           .counter("gill_archive_engine_segments_scanned_"
                                    "total",
                                    "Segments scanned (survived pruning)")),
      pruned_counter_(resolve(config_.registry)
                          .counter("gill_archive_engine_segments_pruned_"
                                   "total",
                                   "Segments skipped by time/VP/bloom "
                                   "pruning")),
      vanished_counter_(resolve(config_.registry)
                            .counter("gill_archive_engine_segments_vanished_"
                                     "total",
                                     "Planned segments whose file vanished "
                                     "before the scan (0 with pinning)")),
      records_streamed_counter_(
          resolve(config_.registry)
              .counter("gill_archive_engine_records_streamed_total",
                       "Records matched and streamed by the engine")) {}

bool QueryEngine::open() {
  std::error_code ec;
  if (!std::filesystem::is_directory(config_.directory, ec)) return false;
  return refresh();
}

bool QueryEngine::refresh() {
  auto manifest = std::make_shared<const std::vector<SegmentMeta>>(
      load_manifest(config_.directory));
  std::lock_guard lock(mutex_);
  snapshot_ = std::move(manifest);
  return true;
}

std::shared_ptr<const std::vector<SegmentMeta>> QueryEngine::snapshot()
    const {
  std::lock_guard lock(mutex_);
  return snapshot_;
}

std::string QueryEngine::segments_json() const {
  const auto snap = snapshot();
  static const std::vector<SegmentMeta> kEmpty;
  return manifest_to_json(snap ? *snap : kEmpty, /*include_bloom=*/false);
}

bool QueryEngine::segment_may_match(const SegmentMeta& meta,
                                    const QueryOptions& options) {
  if (meta.max_time < options.start || meta.min_time >= options.end) {
    return false;
  }
  if (options.vp.has_value()) {
    const auto it =
        std::lower_bound(meta.vps.begin(), meta.vps.end(), *options.vp);
    if (it == meta.vps.end() || *it != *options.vp) return false;
  }
  if (options.prefix.has_value() && !meta.bloom.may_cover(*options.prefix)) {
    return false;
  }
  return true;
}

std::shared_ptr<EngineCursor> QueryEngine::query(const QueryOptions& options) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  queries_counter_.inc();
  auto snap = snapshot();
  if (snap == nullptr) {
    snap = std::make_shared<const std::vector<SegmentMeta>>();
  }
  return std::shared_ptr<EngineCursor>(
      new EngineCursor(this, std::move(snap), options));
}

EngineCursor::ScanResult QueryEngine::scan_segment(
    const SegmentMeta& meta, const QueryOptions& options) {
  EngineCursor::ScanResult result;
  const SegmentCache::Payload payload =
      config_.cache != nullptr
          ? config_.cache->get(config_.directory, meta)
          : SegmentCache::load_segment(config_.directory, meta);
  if (payload == nullptr) {
    result.vanished = true;
    segments_vanished_.fetch_add(1, std::memory_order_relaxed);
    vanished_counter_.inc();
    return result;
  }
  segments_scanned_.fetch_add(1, std::memory_order_relaxed);
  scanned_counter_.inc();
  if (matches_everything(meta, options)) {
    result.bytes.assign(reinterpret_cast<const char*>(payload->data()),
                        payload->size());
    result.records = meta.updates + meta.rib_entries;
    records_streamed_counter_.inc(result.records);
    return result;
  }
  // Matching records are copied verbatim — the merged stream is
  // byte-identical to the serial ArchiveReader path.
  mrt::Reader reader{std::span<const std::uint8_t>(*payload)};
  std::size_t consumed = 0;
  while (auto record = reader.next()) {
    const std::size_t record_end = reader.offset();
    if (record_matches(*record, options)) {
      result.bytes.append(
          reinterpret_cast<const char*>(payload->data()) + consumed,
          record_end - consumed);
      ++result.records;
    }
    consumed = record_end;
  }
  records_streamed_counter_.inc(result.records);
  return result;
}

// ---------------------------------------------------------------------------
// EngineCursor
// ---------------------------------------------------------------------------

EngineCursor::EngineCursor(
    QueryEngine* engine,
    std::shared_ptr<const std::vector<SegmentMeta>> snapshot,
    QueryOptions options)
    : engine_(engine),
      snapshot_(std::move(snapshot)),
      options_(std::move(options)) {
  for (const SegmentMeta& meta : *snapshot_) {
    if (QueryEngine::segment_may_match(meta, options_)) {
      plan_.push_back(meta);
    } else {
      engine_->segments_pruned_.fetch_add(1, std::memory_order_relaxed);
      engine_->pruned_counter_.inc();
    }
  }
  // Pin the whole snapshot AND validate the plan's files still exist in
  // ONE pins critical section. GC's unlink runs its own pin re-check under
  // the same lock, so either a planned file was already unlinked before we
  // got here (we drop it silently — it was legally collected) or our pin
  // lands first and GC spares it. After this block a planned segment can
  // never vanish, which is exactly what segments_vanished() == 0 asserts.
  if (engine_->config_.pins != nullptr) {
    pinned_files_.reserve(snapshot_->size());
    for (const SegmentMeta& meta : *snapshot_) {
      pinned_files_.push_back(meta.file);
    }
    const std::filesystem::path directory(engine_->config_.directory);
    engine_->config_.pins->locked([&] {
      engine_->config_.pins->pin_locked(pinned_files_);
      std::erase_if(plan_, [&](const SegmentMeta& meta) {
        std::error_code ec;
        return !std::filesystem::exists(directory / meta.file, ec);
      });
    });
  }
  schedule();
}

EngineCursor::~EngineCursor() {
  // Unpinning may not happen before every in-flight scan finished reading
  // its file — GC would otherwise be free to unlink a file a pool worker
  // is mid-read on (the payload shared_ptr only protects memory already
  // loaded, not the read itself).
  for (auto& future : in_flight_) {
    if (future.valid()) future.wait();
  }
  if (engine_->config_.pins != nullptr && !pinned_files_.empty()) {
    engine_->config_.pins->unpin(pinned_files_);
  }
}

void EngineCursor::schedule() {
  if (engine_->config_.pool == nullptr) return;  // serial path
  while (next_to_schedule_ < plan_.size() &&
         in_flight_.size() < engine_->config_.max_parallel_segments) {
    // Self-contained task: engine pointer (outlives the cursor's futures —
    // the destructor drains them), a meta copy and the options by value.
    QueryEngine* engine = engine_;
    SegmentMeta meta = plan_[next_to_schedule_++];
    QueryOptions options = options_;
    in_flight_.push_back(engine_->config_.pool->submit(
        [engine, meta = std::move(meta), options = std::move(options)] {
          return engine->scan_segment(meta, options);
        }));
  }
}

bool EngineCursor::advance() {
  for (;;) {
    ScanResult result;
    if (engine_->config_.pool == nullptr) {
      if (next_inline_ >= plan_.size()) return false;
      result = engine_->scan_segment(plan_[next_inline_++], options_);
    } else {
      if (in_flight_.empty()) return false;
      result = in_flight_.front().get();
      in_flight_.pop_front();
      schedule();  // keep the prefetch window full
    }
    if (result.vanished || result.bytes.empty()) continue;
    current_ = std::move(result.bytes);
    current_offset_ = 0;
    streamed_ += result.records;
    return true;
  }
}

bool EngineCursor::next_chunk(std::string& out, std::size_t max_bytes) {
  const std::size_t start_size = out.size();
  while (out.size() - start_size < max_bytes) {
    if (current_offset_ >= current_.size()) {
      if (!advance()) break;
    }
    const std::size_t budget = max_bytes - (out.size() - start_size);
    const std::size_t take =
        std::min(budget, current_.size() - current_offset_);
    out.append(current_, current_offset_, take);
    current_offset_ += take;
  }
  return out.size() != start_size;
}

}  // namespace gill::archive
