// Retention/GC of aged archive windows (DESIGN.md §15): a store otherwise
// grows without bound. A RetentionPolicy caps the store by total payload
// bytes and/or by age; GC deletes whole sealed windows oldest-first until
// the policy holds again.
//
// Safety protocol. (1) Crash-safe ordering: the manifest is rewritten
// WITHOUT the victims first (atomic temp+rename, like sealing), then the
// segment files are unlinked — a crash between the two leaves orphaned
// sealed files that load_manifest re-adopts and the next GC pass deletes
// again; either way the store converges. (2) Cursor safety: every live
// query cursor pins the segments of its manifest snapshot in a shared
// SegmentPins ledger; GC skips pinned segments this pass (they are counted
// and retried on the next timer tick), so an in-flight GET /v1/data never
// has a segment deleted out from under it.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "archive/segment.hpp"

namespace gill::archive {

struct RetentionPolicy {
  /// Delete oldest windows while the summed on-disk payload exceeds this
  /// (0 = unbounded).
  std::uint64_t max_bytes = 0;
  /// Delete windows whose max_time is older than now - max_age_secs
  /// (0 = unbounded).
  Timestamp max_age_secs = 0;

  bool enabled() const noexcept { return max_bytes > 0 || max_age_secs > 0; }
};

/// Reference counts of segments held by in-flight query cursors. Shared
/// between the query engine (pin on cursor start, unpin on cursor end) and
/// GC (skip pinned). Thread-safe.
class SegmentPins {
 public:
  void pin(const std::vector<std::string>& files);
  void unpin(const std::vector<std::string>& files);
  bool pinned(const std::string& file) const;
  /// Distinct pinned segment files (observability/tests).
  std::size_t pinned_count() const;

  /// Runs `fn` under the ledger lock. This is how the pin/unlink race is
  /// closed: a cursor pins its snapshot AND verifies the files still exist
  /// in one critical section, while GC re-checks the pin AND unlinks in
  /// another — the lock totally orders the two, so either the cursor sees
  /// the file already gone (and silently drops it from its plan) or GC
  /// sees the pin (and spares the file). Use the *_locked variants inside.
  template <typename F>
  void locked(F&& fn) const {
    std::lock_guard lock(mutex_);
    fn();
  }
  void pin_locked(const std::vector<std::string>& files);
  bool pinned_locked(const std::string& file) const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::uint64_t> counts_;
};

struct GcResult {
  std::vector<SegmentMeta> remaining;  // manifest after the pass, sorted
  std::vector<std::string> deleted_files;
  std::uint64_t deleted_bytes = 0;  // on-disk payload bytes reclaimed
  std::size_t skipped_pinned = 0;   // victims spared by a live cursor
};

/// Indices into `manifest` (assumed oldest-first) that the policy condemns
/// at `now`, ignoring pins: every aged window plus the oldest windows
/// needed to get back under max_bytes. Pure — used by run_gc and tests.
std::vector<std::size_t> select_expired(
    const std::vector<SegmentMeta>& manifest, const RetentionPolicy& policy,
    Timestamp now);

/// One GC pass over `directory` holding `manifest` (the caller's current
/// view, oldest-first): rewrites the manifest without the victims, then
/// unlinks their files. Pinned victims are skipped this pass. Returns
/// nullopt when the manifest rewrite fails (nothing was deleted in that
/// case — the unlink phase only runs after the rewrite landed).
std::optional<GcResult> run_gc(const std::string& directory,
                               std::vector<SegmentMeta> manifest,
                               const RetentionPolicy& policy,
                               const SegmentPins* pins, Timestamp now);

}  // namespace gill::archive
