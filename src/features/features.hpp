// The 15 topological features of Table 6 (§18.2).
//
// Node-based (computed per AS):          index
//   Closeness centrality   (weighted)      0
//   Harmonic centrality    (weighted)      1
//   Average neighbor degree (weighted)     2
//   Eccentricity           (weighted)      3
//   Number of triangles    (unweighted)    4
//   Clustering coefficient (weighted)      5
// Pair-based (computed per AS pair):
//   Jaccard                (unweighted)    6
//   Adamic-Adar            (unweighted)    7
//   Preferential attachment (unweighted)   8
//
// Distances for the centrality features use edge length 1/weight, so
// heavily used adjacencies are "shorter". The full §18.2 event vector is
// 12 node dims (6 features x 2 ASes, start - end) + 3 pair dims.
#pragma once

#include <array>

#include "features/vp_graph.hpp"

namespace gill::feat {

inline constexpr std::size_t kNodeFeatureCount = 6;
inline constexpr std::size_t kPairFeatureCount = 3;
inline constexpr std::size_t kEventVectorSize =
    2 * kNodeFeatureCount + kPairFeatureCount;  // 15

using NodeFeatures = std::array<double, kNodeFeatureCount>;
using PairFeatures = std::array<double, kPairFeatureCount>;
using EventVector = std::array<double, kEventVectorSize>;

/// Computes Table 6 features on one VP graph. Stateless between calls.
class FeatureComputer {
 public:
  explicit FeatureComputer(const VpGraph& graph) : graph_(&graph) {}

  /// All six node features of `as` (zeros if the node is absent).
  NodeFeatures node_features(AsNumber as) const;

  /// The three pair features of (a, b).
  PairFeatures pair_features(AsNumber a, AsNumber b) const;

  // Individual features, exposed for tests and ablations.
  double closeness(AsNumber as) const;
  double harmonic(AsNumber as) const;
  double average_neighbor_degree(AsNumber as) const;
  double eccentricity(AsNumber as) const;
  double triangles(AsNumber as) const;
  double clustering(AsNumber as) const;
  double jaccard(AsNumber a, AsNumber b) const;
  double adamic_adar(AsNumber a, AsNumber b) const;
  double preferential_attachment(AsNumber a, AsNumber b) const;

 private:
  struct Distances {
    double sum = 0.0;
    double harmonic_sum = 0.0;
    double max = 0.0;
    std::size_t reached = 0;
  };
  /// Single-source weighted shortest paths over out-edges from `as`.
  Distances dijkstra(AsNumber as) const;

  const VpGraph* graph_;
};

/// §18.2 event vector: node features of both event ASes plus pair features,
/// evaluated as (value at event start) - (value at event end).
EventVector event_vector(const VpGraph& start_graph, const VpGraph& end_graph,
                         AsNumber as1, AsNumber as2);

}  // namespace gill::feat
