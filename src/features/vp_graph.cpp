#include "features/vp_graph.hpp"

#include <algorithm>

namespace gill::feat {

namespace {
const std::unordered_map<AsNumber, std::uint32_t> kEmptyAdjacency;
}

void VpGraph::bump(AsNumber from, AsNumber to, std::int32_t delta) {
  NodeState& source = nodes_[from];
  NodeState& target = nodes_[to];
  auto it = source.out.find(to);
  const std::uint32_t old_weight = it == source.out.end() ? 0 : it->second;
  const auto new_weight =
      static_cast<std::uint32_t>(static_cast<std::int64_t>(old_weight) + delta);
  if (old_weight == 0 && delta > 0) ++edge_count_;
  if (new_weight == 0) {
    if (it != source.out.end()) {
      source.out.erase(it);
      target.in.erase(from);
      --edge_count_;
    }
  } else {
    source.out[to] = new_weight;
    target.in[from] = new_weight;
    max_weight_ = std::max(max_weight_, new_weight);
  }
  // Drop fully isolated nodes so node_count() reflects the visible graph.
  auto drop_if_isolated = [this](AsNumber as) {
    auto node = nodes_.find(as);
    if (node != nodes_.end() && node->second.out.empty() &&
        node->second.in.empty()) {
      nodes_.erase(node);
    }
  };
  drop_if_isolated(from);
  drop_if_isolated(to);
}

void VpGraph::add_route(const AsPath& path) {
  for (const auto& link : path.links()) bump(link.from, link.to, +1);
}

void VpGraph::remove_route(const AsPath& path) {
  for (const auto& link : path.links()) {
    if (weight(link.from, link.to) > 0) bump(link.from, link.to, -1);
  }
}

void VpGraph::replace_route(const AsPath& old_path, const AsPath& new_path) {
  if (old_path == new_path) return;
  remove_route(old_path);
  add_route(new_path);
}

std::uint32_t VpGraph::weight(AsNumber from, AsNumber to) const {
  const auto node = nodes_.find(from);
  if (node == nodes_.end()) return 0;
  const auto it = node->second.out.find(to);
  return it == node->second.out.end() ? 0 : it->second;
}

const std::unordered_map<AsNumber, std::uint32_t>& VpGraph::out(
    AsNumber as) const {
  const auto node = nodes_.find(as);
  return node == nodes_.end() ? kEmptyAdjacency : node->second.out;
}

const std::unordered_map<AsNumber, std::uint32_t>& VpGraph::in(
    AsNumber as) const {
  const auto node = nodes_.find(as);
  return node == nodes_.end() ? kEmptyAdjacency : node->second.in;
}

std::vector<AsNumber> VpGraph::undirected_neighbors(AsNumber as) const {
  std::vector<AsNumber> result;
  const auto node = nodes_.find(as);
  if (node == nodes_.end()) return result;
  result.reserve(node->second.out.size() + node->second.in.size());
  for (const auto& [to, _] : node->second.out) result.push_back(to);
  for (const auto& [from, _] : node->second.in) result.push_back(from);
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

std::vector<AsNumber> VpGraph::nodes() const {
  std::vector<AsNumber> result;
  result.reserve(nodes_.size());
  for (const auto& [as, _] : nodes_) result.push_back(as);
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace gill::feat
