#include "features/features.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

namespace gill::feat {

FeatureComputer::Distances FeatureComputer::dijkstra(AsNumber source) const {
  Distances result;
  if (!graph_->has_node(source)) return result;

  std::unordered_map<AsNumber, double> distance;
  using Entry = std::pair<double, AsNumber>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  distance[source] = 0.0;
  queue.emplace(0.0, source);

  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    const auto it = distance.find(u);
    if (it != distance.end() && d > it->second) continue;  // stale
    if (u != source) {
      result.sum += d;
      result.harmonic_sum += 1.0 / d;
      result.max = std::max(result.max, d);
      ++result.reached;
    }
    for (const auto& [v, weight] : graph_->out(u)) {
      const double next = d + 1.0 / static_cast<double>(weight);
      const auto vit = distance.find(v);
      if (vit == distance.end() || next < vit->second) {
        distance[v] = next;
        queue.emplace(next, v);
      }
    }
  }
  return result;
}

double FeatureComputer::closeness(AsNumber as) const {
  const Distances d = dijkstra(as);
  if (d.reached == 0 || d.sum == 0.0) return 0.0;
  // Wasserman-Faust normalization: (r / (n-1)) * (r / sum) where r is the
  // number of reachable nodes — comparable across graph sizes.
  const auto n = static_cast<double>(graph_->node_count());
  const auto r = static_cast<double>(d.reached);
  if (n <= 1.0) return 0.0;
  return (r / (n - 1.0)) * (r / d.sum);
}

double FeatureComputer::harmonic(AsNumber as) const {
  return dijkstra(as).harmonic_sum;
}

double FeatureComputer::eccentricity(AsNumber as) const {
  return dijkstra(as).max;
}

double FeatureComputer::average_neighbor_degree(AsNumber as) const {
  const auto& out = graph_->out(as);
  if (out.empty()) return 0.0;
  double weighted_sum = 0.0;
  double weight_sum = 0.0;
  for (const auto& [neighbor, weight] : out) {
    weighted_sum += static_cast<double>(weight) *
                    static_cast<double>(graph_->undirected_degree(neighbor));
    weight_sum += static_cast<double>(weight);
  }
  return weighted_sum / weight_sum;
}

double FeatureComputer::triangles(AsNumber as) const {
  const auto neighbors = graph_->undirected_neighbors(as);
  if (neighbors.size() < 2) return 0.0;
  std::unordered_set<AsNumber> set(neighbors.begin(), neighbors.end());
  std::size_t count = 0;
  for (AsNumber u : neighbors) {
    for (AsNumber v : graph_->undirected_neighbors(u)) {
      if (v > u && set.contains(v)) ++count;
    }
  }
  return static_cast<double>(count);
}

double FeatureComputer::clustering(AsNumber as) const {
  // Onnela weighted clustering: mean over neighbor pairs of the geometric
  // mean of the three (max-normalized) undirected edge weights.
  const auto neighbors = graph_->undirected_neighbors(as);
  const std::size_t k = neighbors.size();
  if (k < 2) return 0.0;
  const double wmax = std::max<std::uint32_t>(graph_->max_weight(), 1);
  auto undirected_weight = [&](AsNumber a, AsNumber b) -> double {
    return static_cast<double>(
        std::max(graph_->weight(a, b), graph_->weight(b, a)));
  };
  double sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      const double w_uv = undirected_weight(neighbors[i], neighbors[j]);
      if (w_uv == 0.0) continue;
      const double w_au = undirected_weight(as, neighbors[i]);
      const double w_av = undirected_weight(as, neighbors[j]);
      sum += std::cbrt((w_au / wmax) * (w_av / wmax) * (w_uv / wmax));
    }
  }
  return 2.0 * sum / (static_cast<double>(k) * static_cast<double>(k - 1));
}

double FeatureComputer::jaccard(AsNumber a, AsNumber b) const {
  const auto na = graph_->undirected_neighbors(a);
  const auto nb = graph_->undirected_neighbors(b);
  if (na.empty() && nb.empty()) return 0.0;
  std::vector<AsNumber> intersection;
  std::set_intersection(na.begin(), na.end(), nb.begin(), nb.end(),
                        std::back_inserter(intersection));
  const double union_size = static_cast<double>(na.size() + nb.size()) -
                            static_cast<double>(intersection.size());
  return union_size == 0.0
             ? 0.0
             : static_cast<double>(intersection.size()) / union_size;
}

double FeatureComputer::adamic_adar(AsNumber a, AsNumber b) const {
  const auto na = graph_->undirected_neighbors(a);
  const auto nb = graph_->undirected_neighbors(b);
  std::vector<AsNumber> intersection;
  std::set_intersection(na.begin(), na.end(), nb.begin(), nb.end(),
                        std::back_inserter(intersection));
  double sum = 0.0;
  for (AsNumber shared : intersection) {
    const double degree =
        static_cast<double>(graph_->undirected_degree(shared));
    if (degree > 1.0) sum += 1.0 / std::log(degree);
  }
  return sum;
}

double FeatureComputer::preferential_attachment(AsNumber a, AsNumber b) const {
  return static_cast<double>(graph_->undirected_degree(a)) *
         static_cast<double>(graph_->undirected_degree(b));
}

NodeFeatures FeatureComputer::node_features(AsNumber as) const {
  NodeFeatures features{};
  if (!graph_->has_node(as)) return features;
  const Distances d = dijkstra(as);
  const auto n = static_cast<double>(graph_->node_count());
  const auto r = static_cast<double>(d.reached);
  features[0] = (d.reached == 0 || d.sum == 0.0 || n <= 1.0)
                    ? 0.0
                    : (r / (n - 1.0)) * (r / d.sum);
  features[1] = d.harmonic_sum;
  features[2] = average_neighbor_degree(as);
  features[3] = d.max;
  features[4] = triangles(as);
  features[5] = clustering(as);
  return features;
}

PairFeatures FeatureComputer::pair_features(AsNumber a, AsNumber b) const {
  return PairFeatures{jaccard(a, b), adamic_adar(a, b),
                      preferential_attachment(a, b)};
}

EventVector event_vector(const VpGraph& start_graph, const VpGraph& end_graph,
                         AsNumber as1, AsNumber as2) {
  const FeatureComputer start(start_graph);
  const FeatureComputer end(end_graph);
  EventVector vector{};
  const NodeFeatures s1 = start.node_features(as1);
  const NodeFeatures e1 = end.node_features(as1);
  const NodeFeatures s2 = start.node_features(as2);
  const NodeFeatures e2 = end.node_features(as2);
  for (std::size_t i = 0; i < kNodeFeatureCount; ++i) {
    vector[2 * i] = s1[i] - e1[i];
    vector[2 * i + 1] = s2[i] - e2[i];
  }
  const PairFeatures sp = start.pair_features(as1, as2);
  const PairFeatures ep = end.pair_features(as1, as2);
  for (std::size_t i = 0; i < kPairFeatureCount; ++i) {
    vector[2 * kNodeFeatureCount + i] = sp[i] - ep[i];
  }
  return vector;
}

}  // namespace gill::feat
