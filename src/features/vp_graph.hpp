// Per-VP weighted directed AS graph G_v(t) (§18).
//
// Built from the AS paths of the best routes a VP holds at time t: each
// directed adjacency (path[i] -> path[i+1]) is an edge whose weight is the
// number of routes in the RIB whose path contains it. Directed, because two
// identical paths in opposite directions must not look redundant (§18).
// Supports incremental route replacement so the anchor pipeline can slide
// through a stream without rebuilding graphs.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bgp/as_path.hpp"

namespace gill::feat {

using bgp::AsNumber;
using bgp::AsPath;

class VpGraph {
 public:
  /// Adds every directed link of `path` with weight +1.
  void add_route(const AsPath& path);

  /// Removes a previously added route (weights decrement; empty edges and
  /// nodes are dropped).
  void remove_route(const AsPath& path);

  /// Replaces `old_path` by `new_path` (either may be empty).
  void replace_route(const AsPath& old_path, const AsPath& new_path);

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t edge_count() const noexcept { return edge_count_; }
  bool has_node(AsNumber as) const { return nodes_.contains(as); }

  /// Weight of directed edge (from, to); 0 if absent.
  std::uint32_t weight(AsNumber from, AsNumber to) const;

  /// Out-neighbors with weights.
  const std::unordered_map<AsNumber, std::uint32_t>& out(AsNumber as) const;
  /// In-neighbors with weights.
  const std::unordered_map<AsNumber, std::uint32_t>& in(AsNumber as) const;

  /// Undirected neighbor set (union of in and out), deduplicated, sorted.
  std::vector<AsNumber> undirected_neighbors(AsNumber as) const;

  /// Total degree (|in| + |out| counted per unique undirected neighbor).
  std::size_t undirected_degree(AsNumber as) const {
    return undirected_neighbors(as).size();
  }

  /// Maximum edge weight in the graph (for Onnela weight normalization).
  std::uint32_t max_weight() const noexcept { return max_weight_; }

  /// All node ids currently present.
  std::vector<AsNumber> nodes() const;

 private:
  struct NodeState {
    std::unordered_map<AsNumber, std::uint32_t> out;
    std::unordered_map<AsNumber, std::uint32_t> in;
  };
  void bump(AsNumber from, AsNumber to, std::int32_t delta);

  std::unordered_map<AsNumber, NodeState> nodes_;
  std::size_t edge_count_ = 0;
  std::uint32_t max_weight_ = 0;
};

}  // namespace gill::feat
