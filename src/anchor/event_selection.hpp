// Step 1 of Component #2 (§18.1): select a large, unbiased set of local BGP
// events to gauge pairwise VP redundancy.
//
// Candidates are non-global events (seen by >=1 VP but by fewer than 50% of
// them) of three types: new links, outages, and origin changes. The final
// sample is stratified over the 15 unordered pairs of Table 5 AS categories
// so core and edge ASes are equally represented (Fig. 12).
#pragma once

#include <array>
#include <random>
#include <vector>

#include "simulator/internet.hpp"
#include "topology/topology.hpp"

namespace gill::anchor {

using bgp::AsNumber;
using bgp::Timestamp;
using topo::AsCategory;

/// One selected redundancy-probing event.
struct AnchorEvent {
  enum class Type { kNewLink, kOutage, kOriginChange };
  Type type{};
  Timestamp start = 0;
  Timestamp end = 0;
  AsNumber as1 = 0;  // link end / old origin
  AsNumber as2 = 0;  // link end / new origin
};

struct EventSelectionConfig {
  /// Target number of events per type (750 in the paper; 3x this total).
  std::size_t per_type_quota = 750;
  /// Events seen by at least this fraction of VPs are "global" -> excluded.
  double max_visibility = 0.5;
  /// Balanced (paper) vs. plain random (Fig. 12 comparison) selection.
  bool balanced = true;
  /// Reject candidates overlapping an already selected event in time.
  bool require_non_overlapping = false;
  /// How long after its trigger an event's convergence window lasts.
  Timestamp settle_time = 150;
  std::uint64_t seed = 1;
};

/// Converts simulator ground truth into candidate events, applying the
/// visibility filter. Restores become kNewLink, failures kOutage, and
/// origin changes / MOAS / hijacks kOriginChange.
std::vector<AnchorEvent> candidate_events(
    const std::vector<sim::GroundTruth>& truths, std::size_t vp_count,
    const EventSelectionConfig& config);

/// Stratified (or random, per config) sampling of the final event set.
std::vector<AnchorEvent> select_events(
    const std::vector<AnchorEvent>& candidates,
    const std::vector<AsCategory>& categories,
    const EventSelectionConfig& config);

/// Fig. 12: fraction of selected events per unordered category pair;
/// matrix[a][b] == matrix[b][a], indexed by AsCategory value - 1.
using SelectionMatrix =
    std::array<std::array<double, topo::kCategoryCount>, topo::kCategoryCount>;
SelectionMatrix selection_matrix(const std::vector<AnchorEvent>& events,
                                 const std::vector<AsCategory>& categories);

}  // namespace gill::anchor
