// Steps 2-3 of Component #2 (§18.2-§18.3): per-event per-VP feature-delta
// vectors, column normalization, pairwise Euclidean distances, and the
// min-max-scaled redundancy scores R(vn, vm) in [0, 1] (1 = most redundant).
#pragma once

#include <vector>

#include "anchor/event_selection.hpp"
#include "bgp/rib.hpp"
#include "features/features.hpp"

namespace gill::anchor {

using bgp::UpdateStream;
using bgp::VpId;

/// Feature matrix M(e): one 15-dim row per VP.
struct EventFeatureMatrix {
  std::vector<feat::EventVector> rows;  // indexed by VP position
};

/// Replays a stream while maintaining per-VP graphs and snapshots the
/// Table 6 features of each event's AS pair at the event's start and end.
class EventFeatureExtractor {
 public:
  /// `vps` lists the VPs (rows of every matrix, in this order).
  explicit EventFeatureExtractor(std::vector<VpId> vps);

  /// `rib_dump` seeds the initial graphs; `updates` is the collection
  /// stream covering every event window; `events` must be start-sorted.
  std::vector<EventFeatureMatrix> extract(
      const UpdateStream& rib_dump, const UpdateStream& updates,
      const std::vector<AnchorEvent>& events);

  const std::vector<VpId>& vps() const noexcept { return vps_; }

 private:
  std::vector<VpId> vps_;
};

/// §18.3 step 1: z-normalizes each column of M(e) in place (mean 0, unit
/// standard deviation; constant columns become zero).
void normalize_columns(EventFeatureMatrix& matrix);

/// §18.3 steps 2-3: pairwise redundancy scores in [0, 1]. Distances are the
/// paper's sum of squared differences, averaged over events, then min-max
/// inverted. Returns a symmetric VxV matrix (diagonal = 1).
std::vector<std::vector<double>> redundancy_scores(
    std::vector<EventFeatureMatrix> matrices);

}  // namespace gill::anchor
