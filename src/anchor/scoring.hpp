// Steps 2-3 of Component #2 (§18.2-§18.3): per-event per-VP feature-delta
// vectors, column normalization, pairwise Euclidean distances, and the
// min-max-scaled redundancy scores R(vn, vm) in [0, 1] (1 = most redundant).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "anchor/event_selection.hpp"
#include "bgp/rib.hpp"
#include "features/features.hpp"

namespace gill::par {
class ThreadPool;
}  // namespace gill::par

namespace gill::anchor {

using bgp::UpdateStream;
using bgp::VpId;

/// Feature matrix M(e): one 15-dim row per VP.
struct EventFeatureMatrix {
  std::vector<feat::EventVector> rows;  // indexed by VP position
};

/// Replays a stream while maintaining per-VP graphs and snapshots the
/// Table 6 features of each event's AS pair at the event's start and end.
class EventFeatureExtractor {
 public:
  /// `vps` lists the VPs (rows of every matrix, in this order).
  explicit EventFeatureExtractor(std::vector<VpId> vps);

  /// `rib_dump` seeds the initial graphs; `updates` is the collection
  /// stream covering every event window; `events` must be start-sorted.
  std::vector<EventFeatureMatrix> extract(
      const UpdateStream& rib_dump, const UpdateStream& updates,
      const std::vector<AnchorEvent>& events);

  const std::vector<VpId>& vps() const noexcept { return vps_; }

 private:
  std::vector<VpId> vps_;
};

/// §18.3 step 1: z-normalizes each column of M(e) in place (mean 0, unit
/// standard deviation; constant columns become zero).
void normalize_columns(EventFeatureMatrix& matrix);

/// Cross-refresh memo for the pairwise distances: one entry per unordered
/// VP pair, keyed by the two VPs' feature epochs (a hash of each VP's
/// normalized feature rows across the refresh's event set). When neither
/// VP's features changed since the last refresh, the averaged distance is
/// reused instead of rescored — bit-identical, because the cached value was
/// produced by exactly the arithmetic a recompute would run. The min-max
/// scaling still runs per refresh (it is global across pairs).
struct ScoreCache {
  struct Entry {
    std::uint64_t epoch_a = 0;  // epoch of the lower VP id
    std::uint64_t epoch_b = 0;  // epoch of the higher VP id
    double distance = 0.0;      // event-averaged squared distance
  };
  /// Key: (min(vpA,vpB) << 32) | max(vpA,vpB).
  std::unordered_map<std::uint64_t, Entry> pairs;
  std::uint64_t hits = 0;    // pairs served from the cache (lifetime)
  std::uint64_t misses = 0;  // pairs rescored (lifetime)
};

/// §18.3 steps 2-3: pairwise redundancy scores in [0, 1]. Distances are the
/// paper's sum of squared differences, averaged over events, then min-max
/// inverted. Returns a symmetric VxV matrix (diagonal = 1).
///
/// With a pool, column normalization fans out per event and the V×V upper
/// triangle is sharded by row across the workers; every cell is computed by
/// exactly one shard with the serial path's arithmetic, so the matrix is
/// byte-identical at any thread count (GILL_ANALYSIS_SERIAL forces the
/// serial path outright). `vps` (parallel to the matrix rows) enables the
/// cross-refresh `cache`; pass it empty to disable caching.
std::vector<std::vector<double>> redundancy_scores(
    std::vector<EventFeatureMatrix> matrices,
    const std::vector<VpId>& vps, par::ThreadPool* pool = nullptr,
    ScoreCache* cache = nullptr);

/// Serial, cache-free convenience overload (the PR-3 signature).
std::vector<std::vector<double>> redundancy_scores(
    std::vector<EventFeatureMatrix> matrices);

}  // namespace gill::anchor
