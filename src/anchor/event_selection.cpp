#include "anchor/event_selection.hpp"

#include <algorithm>
#include <map>

namespace gill::anchor {

namespace {

/// Unordered pair of categories as a flat index over the 15 combinations.
std::size_t pair_index(AsCategory a, AsCategory b) {
  auto x = static_cast<std::size_t>(a) - 1;
  auto y = static_cast<std::size_t>(b) - 1;
  if (x > y) std::swap(x, y);
  // Row-major upper triangle of a 5x5 matrix.
  return x * topo::kCategoryCount - x * (x + 1) / 2 + y;
}

bool overlaps(const AnchorEvent& a, const AnchorEvent& b) {
  return a.start <= b.end && b.start <= a.end;
}

}  // namespace

std::vector<AnchorEvent> candidate_events(
    const std::vector<sim::GroundTruth>& truths, std::size_t vp_count,
    const EventSelectionConfig& config) {
  std::vector<AnchorEvent> candidates;
  const double max_observers =
      config.max_visibility * static_cast<double>(vp_count);
  for (const auto& truth : truths) {
    // Visibility filter: local (non-global) events only.
    if (truth.observers.empty()) continue;
    if (static_cast<double>(truth.observers.size()) >= max_observers) continue;

    AnchorEvent event;
    event.start = truth.time;
    event.end = truth.time + config.settle_time;
    switch (truth.kind) {
      case sim::GroundTruth::Kind::kLinkFailure:
        event.type = AnchorEvent::Type::kOutage;
        event.as1 = truth.link_a;
        event.as2 = truth.link_b;
        break;
      case sim::GroundTruth::Kind::kLinkRestore:
        event.type = AnchorEvent::Type::kNewLink;
        event.as1 = truth.link_a;
        event.as2 = truth.link_b;
        break;
      case sim::GroundTruth::Kind::kOriginChange:
      case sim::GroundTruth::Kind::kMoas:
      case sim::GroundTruth::Kind::kHijack:
        event.type = AnchorEvent::Type::kOriginChange;
        event.as1 = truth.origin;
        event.as2 = truth.other_as;
        break;
      default:
        continue;  // community changes / transients are not probing events
    }
    candidates.push_back(event);
  }
  return candidates;
}

std::vector<AnchorEvent> select_events(
    const std::vector<AnchorEvent>& candidates,
    const std::vector<AsCategory>& categories,
    const EventSelectionConfig& config) {
  std::mt19937_64 rng(config.seed);
  std::vector<AnchorEvent> selected;

  auto try_add = [&](const AnchorEvent& event) {
    if (config.require_non_overlapping) {
      for (const auto& other : selected) {
        if (overlaps(event, other)) return false;
      }
    }
    selected.push_back(event);
    return true;
  };

  // Without a category map (e.g. a platform that has not loaded an AS
  // classification yet) stratification is impossible: fall back to random.
  if (!config.balanced || categories.empty()) {
    std::vector<std::size_t> order(candidates.size());
    std::iota(order.begin(), order.end(), 0);
    std::shuffle(order.begin(), order.end(), rng);
    const std::size_t target = 3 * config.per_type_quota;
    for (std::size_t index : order) {
      if (selected.size() >= target) break;
      try_add(candidates[index]);
    }
    return selected;
  }

  // Balanced: per type, per unordered category pair, up to quota/15 events.
  constexpr std::size_t kPairCount =
      topo::kCategoryCount * (topo::kCategoryCount + 1) / 2;  // 15
  const std::size_t per_pair =
      std::max<std::size_t>(1, config.per_type_quota / kPairCount);

  for (const auto type :
       {AnchorEvent::Type::kNewLink, AnchorEvent::Type::kOutage,
        AnchorEvent::Type::kOriginChange}) {
    std::array<std::vector<std::size_t>, kPairCount> buckets;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const AnchorEvent& event = candidates[i];
      if (event.type != type) continue;
      if (event.as1 >= categories.size() || event.as2 >= categories.size()) {
        continue;
      }
      buckets[pair_index(categories[event.as1], categories[event.as2])]
          .push_back(i);
    }
    for (auto& bucket : buckets) {
      std::shuffle(bucket.begin(), bucket.end(), rng);
      std::size_t taken = 0;
      for (std::size_t index : bucket) {
        if (taken >= per_pair) break;
        if (try_add(candidates[index])) ++taken;
      }
    }
  }
  std::sort(selected.begin(), selected.end(),
            [](const AnchorEvent& a, const AnchorEvent& b) {
              return a.start < b.start;
            });
  return selected;
}

SelectionMatrix selection_matrix(const std::vector<AnchorEvent>& events,
                                 const std::vector<AsCategory>& categories) {
  SelectionMatrix matrix{};
  if (events.empty()) return matrix;
  for (const auto& event : events) {
    if (event.as1 >= categories.size() || event.as2 >= categories.size()) {
      continue;
    }
    const auto a = static_cast<std::size_t>(categories[event.as1]) - 1;
    const auto b = static_cast<std::size_t>(categories[event.as2]) - 1;
    const double share = 1.0 / static_cast<double>(events.size());
    matrix[a][b] += share;
    if (a != b) matrix[b][a] += share;
  }
  return matrix;
}

}  // namespace gill::anchor
