#include "anchor/event_inference.hpp"

#include <map>
#include <unordered_map>
#include <unordered_set>

#include "bgp/delta.hpp"

namespace gill::anchor {

namespace {

std::uint64_t link_key(bgp::AsNumber a, bgp::AsNumber b) {
  const bgp::AsNumber lo = a < b ? a : b;
  const bgp::AsNumber hi = a < b ? b : a;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace

std::vector<InferredEvent> infer_events(const bgp::UpdateStream& rib,
                                        const bgp::UpdateStream& stream,
                                        const EventInferenceConfig& config) {
  // Known state seeded from the RIB dump.
  std::unordered_set<std::uint64_t> known_links;
  std::unordered_map<net::Prefix, bgp::AsNumber, net::PrefixHash> last_origin;
  for (const auto& entry : rib) {
    for (const auto& link : entry.path.links()) {
      known_links.insert(link_key(link.from, link.to));
    }
    if (!entry.path.empty()) {
      last_origin[entry.prefix] = entry.path.origin();
    }
  }

  // Pending events keyed by entity, with accumulated observers.
  struct Pending {
    AnchorEvent event;
    std::unordered_set<bgp::VpId> observers;
  };
  std::map<std::pair<int, std::uint64_t>, Pending> open;  // (type, entity)
  std::vector<InferredEvent> result;

  auto entity_of = [](AnchorEvent::Type type, std::uint64_t id) {
    return std::make_pair(static_cast<int>(type), id);
  };
  auto touch = [&](AnchorEvent::Type type, std::uint64_t entity,
                   bgp::AsNumber as1, bgp::AsNumber as2, bgp::VpId vp,
                   bgp::Timestamp time) {
    const auto key = entity_of(type, entity);
    auto it = open.find(key);
    if (it != open.end() &&
        time - it->second.event.end <= config.dedup_window) {
      // Same ongoing event: extend and add the observer.
      it->second.event.end = time + config.settle_time;
      it->second.observers.insert(vp);
      return;
    }
    if (it != open.end()) {
      result.push_back(InferredEvent{it->second.event,
                                     it->second.observers.size()});
      open.erase(it);
    }
    Pending pending;
    pending.event.type = type;
    pending.event.start = time;
    pending.event.end = time + config.settle_time;
    pending.event.as1 = as1;
    pending.event.as2 = as2;
    pending.observers.insert(vp);
    open.emplace(key, std::move(pending));
  };

  bgp::DeltaTracker tracker;
  // Seed the tracker with RIB entries so the first in-stream update has
  // correct implicit-withdrawal sets.
  for (const auto& entry : rib) tracker.annotate(entry);

  for (const auto& update : stream) {
    const auto annotated = tracker.annotate(update);
    // New links.
    for (const auto& link : annotated.links) {
      const std::uint64_t key = link_key(link.from, link.to);
      if (known_links.insert(key).second) {
        touch(AnchorEvent::Type::kNewLink, key, link.from, link.to, update.vp,
              update.time);
      }
    }
    // Outages (implicitly withdrawn links).
    for (const auto& link : annotated.withdrawn_links) {
      touch(AnchorEvent::Type::kOutage, link_key(link.from, link.to),
            link.from, link.to, update.vp, update.time);
    }
    // Origin changes.
    if (!update.withdrawal && !update.path.empty()) {
      const bgp::AsNumber origin = update.path.origin();
      auto [it, inserted] = last_origin.try_emplace(update.prefix, origin);
      if (!inserted && it->second != origin) {
        touch(AnchorEvent::Type::kOriginChange,
              net::hash_value(update.prefix), it->second, origin, update.vp,
              update.time);
        it->second = origin;
      }
    }
  }
  for (auto& [key, pending] : open) {
    result.push_back(
        InferredEvent{pending.event, pending.observers.size()});
  }
  return result;
}

std::vector<AnchorEvent> filter_non_global(
    const std::vector<InferredEvent>& events, std::size_t vp_count,
    double max_visibility) {
  std::vector<AnchorEvent> result;
  const double limit = max_visibility * static_cast<double>(vp_count);
  for (const auto& inferred : events) {
    if (inferred.observer_count == 0) continue;
    if (static_cast<double>(inferred.observer_count) >= limit) continue;
    result.push_back(inferred.event);
  }
  return result;
}

}  // namespace gill::anchor
