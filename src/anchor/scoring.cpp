#include "anchor/scoring.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_map>

#include "features/vp_graph.hpp"
#include "parallel/thread_pool.hpp"

namespace gill::anchor {

EventFeatureExtractor::EventFeatureExtractor(std::vector<VpId> vps)
    : vps_(std::move(vps)) {}

std::vector<EventFeatureMatrix> EventFeatureExtractor::extract(
    const UpdateStream& rib_dump, const UpdateStream& updates,
    const std::vector<AnchorEvent>& events) {
  const std::size_t v = vps_.size();
  std::unordered_map<VpId, std::size_t> vp_index;
  for (std::size_t i = 0; i < v; ++i) vp_index[vps_[i]] = i;

  // Current graphs and routes per VP.
  std::vector<feat::VpGraph> graphs(v);
  std::vector<bgp::Rib> ribs(v);
  auto apply = [&](const bgp::Update& update) {
    const auto it = vp_index.find(update.vp);
    if (it == vp_index.end()) return;
    const std::size_t index = it->second;
    const bgp::Route* old_route = ribs[index].find(update.prefix);
    const bgp::AsPath old_path = old_route ? old_route->path : bgp::AsPath{};
    const bgp::AsPath new_path =
        update.withdrawal ? bgp::AsPath{} : update.path;
    graphs[index].replace_route(old_path, new_path);
    ribs[index].apply(update);
  };
  for (const auto& update : rib_dump) apply(update);

  // Per-event start snapshots (node features of both ASes + pair features).
  struct Snapshot {
    std::vector<feat::NodeFeatures> node1, node2;
    std::vector<feat::PairFeatures> pair;
  };
  std::vector<Snapshot> snapshots(events.size());
  std::vector<EventFeatureMatrix> matrices(events.size());

  auto snapshot_event = [&](std::size_t event_index, bool at_start) {
    const AnchorEvent& event = events[event_index];
    Snapshot& snap = snapshots[event_index];
    if (at_start) {
      snap.node1.resize(v);
      snap.node2.resize(v);
      snap.pair.resize(v);
    } else {
      matrices[event_index].rows.resize(v);
    }
    for (std::size_t i = 0; i < v; ++i) {
      const feat::FeatureComputer computer(graphs[i]);
      const auto n1 = computer.node_features(event.as1);
      const auto n2 = computer.node_features(event.as2);
      const auto p = computer.pair_features(event.as1, event.as2);
      if (at_start) {
        snap.node1[i] = n1;
        snap.node2[i] = n2;
        snap.pair[i] = p;
      } else {
        feat::EventVector& row = matrices[event_index].rows[i];
        for (std::size_t f = 0; f < feat::kNodeFeatureCount; ++f) {
          row[2 * f] = snap.node1[i][f] - n1[f];
          row[2 * f + 1] = snap.node2[i][f] - n2[f];
        }
        for (std::size_t f = 0; f < feat::kPairFeatureCount; ++f) {
          row[2 * feat::kNodeFeatureCount + f] = snap.pair[i][f] - p[f];
        }
      }
    }
  };

  // Merge-walk: boundaries (event starts/ends) interleaved with updates.
  struct Boundary {
    bgp::Timestamp time;
    std::size_t event_index;
    bool is_start;
  };
  std::vector<Boundary> boundaries;
  boundaries.reserve(events.size() * 2);
  for (std::size_t i = 0; i < events.size(); ++i) {
    boundaries.push_back({events[i].start, i, true});
    boundaries.push_back({events[i].end, i, false});
  }
  std::sort(boundaries.begin(), boundaries.end(),
            [](const Boundary& a, const Boundary& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.is_start > b.is_start;  // starts before ends
            });

  std::size_t update_cursor = 0;
  const auto& stream = updates.updates();
  for (const Boundary& boundary : boundaries) {
    // Apply every update strictly before the boundary (start snapshots see
    // the pre-event graph; end snapshots see everything up to the end).
    const bgp::Timestamp limit =
        boundary.is_start ? boundary.time : boundary.time + 1;
    while (update_cursor < stream.size() &&
           stream[update_cursor].time < limit) {
      apply(stream[update_cursor]);
      ++update_cursor;
    }
    snapshot_event(boundary.event_index, boundary.is_start);
  }
  return matrices;
}

void normalize_columns(EventFeatureMatrix& matrix) {
  const std::size_t rows = matrix.rows.size();
  if (rows == 0) return;
  for (std::size_t column = 0; column < feat::kEventVectorSize; ++column) {
    double mean = 0.0;
    for (const auto& row : matrix.rows) mean += row[column];
    mean /= static_cast<double>(rows);
    double variance = 0.0;
    for (const auto& row : matrix.rows) {
      const double d = row[column] - mean;
      variance += d * d;
    }
    variance /= static_cast<double>(rows);
    const double stddev = std::sqrt(variance);
    for (auto& row : matrix.rows) {
      row[column] = stddev > 0.0 ? (row[column] - mean) / stddev : 0.0;
    }
  }
}

namespace {

/// FNV-1a over the bit patterns of a VP's normalized feature rows across
/// the refresh's event set — the "feature epoch" keying the score cache.
/// Equal epochs mean the rows (and the event count) are identical, so a
/// cached distance equals what a recompute would produce bit for bit.
std::uint64_t feature_epoch(const std::vector<EventFeatureMatrix*>& used,
                            std::size_t row) {
  std::uint64_t h = 14695981039346656037ull;
  for (const EventFeatureMatrix* matrix : used) {
    for (std::size_t f = 0; f < feat::kEventVectorSize; ++f) {
      std::uint64_t bits;
      static_assert(sizeof bits == sizeof(double));
      std::memcpy(&bits, &matrix->rows[row][f], sizeof bits);
      h ^= bits;
      h *= 1099511628211ull;
    }
  }
  return h;
}

std::uint64_t pair_key(bgp::VpId a, bgp::VpId b) {
  if (a > b) std::swap(a, b);
  return (std::uint64_t{a} << 32) | std::uint64_t{b};
}

}  // namespace

std::vector<std::vector<double>> redundancy_scores(
    std::vector<EventFeatureMatrix> matrices, const std::vector<VpId>& vps,
    par::ThreadPool* pool, ScoreCache* cache) {
  std::size_t v = 0;
  for (const auto& matrix : matrices) v = std::max(v, matrix.rows.size());
  std::vector<std::vector<double>> distance(v, std::vector<double>(v, 0.0));
  if (v == 0) return distance;
  if (pool != nullptr && par::serial_forced()) pool = nullptr;

  // Events whose matrix covers every VP participate; normalization is
  // per-matrix independent, so it fans out across the pool.
  std::vector<EventFeatureMatrix*> used;
  used.reserve(matrices.size());
  for (auto& matrix : matrices) {
    if (matrix.rows.size() == v) used.push_back(&matrix);
  }
  const std::size_t used_events = used.size();
  if (used_events == 0) return distance;
  const auto normalize = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) normalize_columns(*used[i]);
  };
  if (pool != nullptr && used_events > 1) {
    pool->parallel_for(used_events, normalize);
  } else {
    normalize(0, used_events);
  }

  // Feature epochs, only needed when the cache can key by VP id.
  const bool use_cache = cache != nullptr && vps.size() == v;
  std::vector<std::uint64_t> epochs;
  if (use_cache) {
    epochs.resize(v);
    const auto hash_rows = [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        epochs[i] = feature_epoch(used, i);
      }
    };
    if (pool != nullptr && v > 1) {
      pool->parallel_for(v, hash_rows);
    } else {
      hash_rows(0, v);
    }
  }

  // The O(V²) pairwise stage, sharded by row across the upper triangle.
  // Each cell belongs to exactly one shard and accumulates its events in
  // matrix order — the serial path's floating-point sequence — so the
  // result is identical at any thread count. Cache reads are const here;
  // writes happen after the join, on the calling thread.
  std::atomic<std::uint64_t> pair_hits{0};
  std::atomic<std::uint64_t> pair_misses{0};
  const auto score_rows = [&](std::size_t begin, std::size_t end) {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    for (std::size_t n = begin; n < end; ++n) {
      for (std::size_t m = n + 1; m < v; ++m) {
        double averaged = 0.0;
        bool cached = false;
        if (use_cache) {
          const auto it = cache->pairs.find(pair_key(vps[n], vps[m]));
          if (it != cache->pairs.end()) {
            const auto lo = vps[n] <= vps[m] ? n : m;
            const auto hi = vps[n] <= vps[m] ? m : n;
            if (it->second.epoch_a == epochs[lo] &&
                it->second.epoch_b == epochs[hi]) {
              averaged = it->second.distance;
              cached = true;
            }
          }
        }
        if (!cached) {
          double acc = 0.0;
          for (const EventFeatureMatrix* matrix : used) {
            double sum = 0.0;
            for (std::size_t f = 0; f < feat::kEventVectorSize; ++f) {
              const double d = matrix->rows[n][f] - matrix->rows[m][f];
              sum += d * d;  // the paper's ⋄ has no square root
            }
            acc += sum;
          }
          averaged = acc / static_cast<double>(used_events);
        }
        distance[n][m] = averaged;
        distance[m][n] = averaged;
        if (use_cache) cached ? ++hits : ++misses;
      }
    }
    pair_hits.fetch_add(hits, std::memory_order_relaxed);
    pair_misses.fetch_add(misses, std::memory_order_relaxed);
  };
  if (pool != nullptr && v > 2) {
    pool->parallel_for(v, score_rows);
  } else {
    score_rows(0, v);
  }
  if (use_cache) {
    cache->hits += pair_hits.load(std::memory_order_relaxed);
    cache->misses += pair_misses.load(std::memory_order_relaxed);
    for (std::size_t n = 0; n < v; ++n) {
      for (std::size_t m = n + 1; m < v; ++m) {
        const auto lo = vps[n] <= vps[m] ? n : m;
        const auto hi = vps[n] <= vps[m] ? m : n;
        cache->pairs[pair_key(vps[n], vps[m])] =
            ScoreCache::Entry{epochs[lo], epochs[hi], distance[n][m]};
      }
    }
  }

  double min_distance = std::numeric_limits<double>::infinity();
  double max_distance = 0.0;
  for (std::size_t n = 0; n < v; ++n) {
    for (std::size_t m = n + 1; m < v; ++m) {
      min_distance = std::min(min_distance, distance[n][m]);
      max_distance = std::max(max_distance, distance[n][m]);
    }
  }
  const double range = max_distance - min_distance;
  std::vector<std::vector<double>> scores(v, std::vector<double>(v, 1.0));
  for (std::size_t n = 0; n < v; ++n) {
    for (std::size_t m = 0; m < v; ++m) {
      if (n == m) continue;
      scores[n][m] =
          range > 0.0
              ? 1.0 - (distance[n][m] - min_distance) / range
              : 1.0;  // indistinguishable VPs are maximally redundant
    }
  }
  return scores;
}

std::vector<std::vector<double>> redundancy_scores(
    std::vector<EventFeatureMatrix> matrices) {
  return redundancy_scores(std::move(matrices), {}, nullptr, nullptr);
}

}  // namespace gill::anchor
