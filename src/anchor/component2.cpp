#include "anchor/component2.hpp"

#include <algorithm>
#include <limits>

namespace gill::anchor {

Component2Result select_anchors(
    const std::vector<std::vector<double>>& scores,
    const std::vector<VpId>& vps, const std::vector<double>& volumes,
    const Component2Config& config) {
  Component2Result result;
  const std::size_t v = scores.size();
  if (v == 0) return result;

  std::vector<bool> selected(v, false);

  // Initialization: the most redundant VP — the one with the lowest sum of
  // Euclidean distances, i.e. the highest total redundancy score.
  std::size_t first = 0;
  double best_total = -1.0;
  for (std::size_t i = 0; i < v; ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < v; ++j) {
      if (j != i) total += scores[i][j];
    }
    if (total > best_total) {
      best_total = total;
      first = i;
    }
  }
  selected[first] = true;
  result.anchor_positions.push_back(first);

  // P(O, v): maximum redundancy of v with any selected VP — maintained
  // incrementally as anchors are added.
  std::vector<double> max_redundancy(v, 0.0);
  for (std::size_t i = 0; i < v; ++i) {
    if (!selected[i]) max_redundancy[i] = scores[i][first];
  }

  while (result.anchor_positions.size() < config.max_anchors) {
    // Collect nonselected VPs and check the stop condition.
    std::vector<std::size_t> remaining;
    for (std::size_t i = 0; i < v; ++i) {
      if (!selected[i]) remaining.push_back(i);
    }
    if (remaining.empty()) break;
    const bool all_covered =
        std::all_of(remaining.begin(), remaining.end(), [&](std::size_t i) {
          return max_redundancy[i] >= config.stop_threshold;
        });
    if (all_covered) break;

    // Candidate pool K: the γ-fraction with the lowest maximum redundancy.
    std::sort(remaining.begin(), remaining.end(),
              [&](std::size_t a, std::size_t b) {
                if (max_redundancy[a] != max_redundancy[b]) {
                  return max_redundancy[a] < max_redundancy[b];
                }
                return a < b;
              });
    const std::size_t pool_size = std::max<std::size_t>(
        1, static_cast<std::size_t>(config.gamma *
                                    static_cast<double>(remaining.size())));

    // Within K, pick the lowest-volume VP.
    std::size_t chosen = remaining[0];
    double lowest_volume = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < pool_size; ++k) {
      const std::size_t candidate = remaining[k];
      const double volume =
          candidate < volumes.size() ? volumes[candidate] : 0.0;
      if (volume < lowest_volume) {
        lowest_volume = volume;
        chosen = candidate;
      }
    }

    selected[chosen] = true;
    result.anchor_positions.push_back(chosen);
    for (std::size_t i = 0; i < v; ++i) {
      if (!selected[i]) {
        max_redundancy[i] = std::max(max_redundancy[i], scores[i][chosen]);
      }
    }
  }

  if (!vps.empty()) {
    result.anchors.reserve(result.anchor_positions.size());
    for (std::size_t position : result.anchor_positions) {
      result.anchors.push_back(vps[position]);
    }
  }
  return result;
}

}  // namespace gill::anchor
