// Step 4 of Component #2 (§18.4): greedy, volume-aware anchor-VP selection.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/types.hpp"

namespace gill::anchor {

using bgp::VpId;

struct Component2Config {
  /// γ: fraction of nonselected VPs admitted to the candidate pool each
  /// iteration (lowest maximum-redundancy first). Paper default: 10%.
  double gamma = 0.10;
  /// Stop once every nonselected VP has P(O, v) at least this value (the
  /// paper's "redundancy score equal to one", relaxed because min-max
  /// scaled scores reach exactly 1.0 only for the single most redundant
  /// pair; on RIS/RV-sized data the literal rule stops at 178 anchors).
  double stop_threshold = 0.9;
  /// Hard cap as a safety valve for degenerate score matrices.
  std::size_t max_anchors = SIZE_MAX;
};

struct Component2Result {
  /// Selected anchors in selection order (positions into the VP list the
  /// score matrix was built over).
  std::vector<std::size_t> anchor_positions;
  /// Same anchors resolved through `vps` when provided to select_anchors.
  std::vector<VpId> anchors;
};

/// Greedy anchor selection over a symmetric redundancy-score matrix
/// (1 = most redundant pair). `volumes[i]` is VP i's update volume over the
/// probing window; lower-volume candidates win within the γ-pool.
Component2Result select_anchors(
    const std::vector<std::vector<double>>& scores,
    const std::vector<VpId>& vps, const std::vector<double>& volumes,
    const Component2Config& config = {});

}  // namespace gill::anchor
