// Data-driven BGP event inference (§18.1: "GILL infers the start and end of
// these events by processing all the data that it collects").
//
// The deployed system has no ground truth — it must find new-link, outage
// and origin-change events in the stream itself. This inference replays the
// stream over the initial RIBs and emits:
//   * kNewLink      — a directed AS adjacency never seen in any route before;
//   * kOutage       — a link implicitly withdrawn from at least one route;
//   * kOriginChange — a prefix whose observed origin AS changes.
// Events are deduplicated per entity within the correlation window, carry
// observer counts for the §18.1 visibility filter, and feed select_events().
#pragma once

#include "anchor/event_selection.hpp"
#include "bgp/update.hpp"

namespace gill::anchor {

/// A candidate event with its observing VPs (for the visibility filter).
struct InferredEvent {
  AnchorEvent event;
  std::size_t observer_count = 0;
};

struct EventInferenceConfig {
  Timestamp settle_time = 150;
  /// Minimum quiet time before the same entity may produce a new event.
  Timestamp dedup_window = bgp::kTimestampSlack;
};

/// Infers candidate events from a collection stream. `rib` seeds the
/// already-known links and origins.
std::vector<InferredEvent> infer_events(
    const bgp::UpdateStream& rib, const bgp::UpdateStream& stream,
    const EventInferenceConfig& config = {});

/// Applies the §18.1 visibility filter and strips observer counts.
std::vector<AnchorEvent> filter_non_global(
    const std::vector<InferredEvent>& events, std::size_t vp_count,
    double max_visibility = 0.5);

}  // namespace gill::anchor
