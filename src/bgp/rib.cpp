#include "bgp/rib.hpp"

#include <algorithm>

namespace gill::bgp {

void Rib::apply(const Update& update) {
  if (update.withdrawal) {
    routes_.erase(update.prefix);
    return;
  }
  routes_[update.prefix] =
      Route{update.path, update.communities, update.time};
}

const Route* Rib::find(const net::Prefix& prefix) const {
  auto it = routes_.find(prefix);
  return it == routes_.end() ? nullptr : &it->second;
}

UpdateStream Rib::dump(VpId vp, Timestamp time) const {
  UpdateStream out;
  for (const auto& [prefix, route] : routes_) {
    Update u;
    u.vp = vp;
    u.time = time;
    u.prefix = prefix;
    u.path = route.path;
    u.communities = route.communities;
    out.push(std::move(u));
  }
  out.sort();
  return out;
}

void Rib::mark_all_stale() {
  for (auto& [prefix, route] : routes_) route.stale = true;
}

bool Rib::refresh(const net::Prefix& prefix) {
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return false;
  it->second.stale = false;
  return true;
}

std::vector<net::Prefix> Rib::sweep_stale() {
  std::vector<net::Prefix> swept;
  for (auto it = routes_.begin(); it != routes_.end();) {
    if (it->second.stale) {
      swept.push_back(it->first);
      it = routes_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(swept.begin(), swept.end());
  return swept;
}

std::size_t Rib::stale_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [prefix, route] : routes_) n += route.stale ? 1 : 0;
  return n;
}

void RibSet::apply(const UpdateStream& stream) {
  for (const Update& u : stream) apply(u);
}

void RibSet::apply(const Update& update) { ribs_[update.vp].apply(update); }

const Rib* RibSet::find(VpId vp) const {
  auto it = ribs_.find(vp);
  return it == ribs_.end() ? nullptr : &it->second;
}

}  // namespace gill::bgp
