#include "bgp/rib.hpp"

namespace gill::bgp {

void Rib::apply(const Update& update) {
  if (update.withdrawal) {
    routes_.erase(update.prefix);
    return;
  }
  routes_[update.prefix] =
      Route{update.path, update.communities, update.time};
}

const Route* Rib::find(const net::Prefix& prefix) const {
  auto it = routes_.find(prefix);
  return it == routes_.end() ? nullptr : &it->second;
}

UpdateStream Rib::dump(VpId vp, Timestamp time) const {
  UpdateStream out;
  for (const auto& [prefix, route] : routes_) {
    Update u;
    u.vp = vp;
    u.time = time;
    u.prefix = prefix;
    u.path = route.path;
    u.communities = route.communities;
    out.push(std::move(u));
  }
  out.sort();
  return out;
}

void RibSet::apply(const UpdateStream& stream) {
  for (const Update& u : stream) apply(u);
}

void RibSet::apply(const Update& update) { ribs_[update.vp].apply(update); }

const Rib* RibSet::find(VpId vp) const {
  auto it = ribs_.find(vp);
  return it == ribs_.end() ? nullptr : &it->second;
}

}  // namespace gill::bgp
