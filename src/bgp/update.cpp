#include "bgp/update.hpp"

#include <algorithm>
#include <set>

namespace gill::bgp {

std::string Update::str() const {
  std::string out = "vp" + std::to_string(vp) + " t=" + std::to_string(time) +
                    " " + prefix.str();
  if (withdrawal) {
    out += " WITHDRAW";
  } else {
    out += " path=[" + path.str() + "]";
    if (!communities.empty()) {
      out += " comms=[";
      for (std::size_t i = 0; i < communities.size(); ++i) {
        if (i) out += ' ';
        out += communities[i].str();
      }
      out += ']';
    }
  }
  return out;
}

bool identical_updates(const Update& a, const Update& b) noexcept {
  if (a.vp != b.vp || a.prefix != b.prefix || a.withdrawal != b.withdrawal) {
    return false;
  }
  if (a.path != b.path || a.communities != b.communities) return false;
  const Timestamp dt = a.time > b.time ? a.time - b.time : b.time - a.time;
  return dt < kTimestampSlack;
}

UpdateStream::UpdateStream(std::vector<Update> updates)
    : updates_(std::move(updates)) {
  sort();
}

void UpdateStream::push(Update update) { updates_.push_back(std::move(update)); }

void UpdateStream::sort() {
  std::stable_sort(updates_.begin(), updates_.end(),
                   [](const Update& a, const Update& b) {
                     if (a.time != b.time) return a.time < b.time;
                     if (a.vp != b.vp) return a.vp < b.vp;
                     return a.prefix < b.prefix;
                   });
}

UpdateStream UpdateStream::window(Timestamp from, Timestamp to) const {
  UpdateStream out;
  for (const Update& u : updates_) {
    if (u.time >= from && u.time < to) out.push(u);
  }
  return out;
}

UpdateStream UpdateStream::by_vp(VpId vp) const {
  UpdateStream out;
  for (const Update& u : updates_) {
    if (u.vp == vp) out.push(u);
  }
  return out;
}

std::vector<VpId> UpdateStream::vps() const {
  std::set<VpId> seen;
  for (const Update& u : updates_) seen.insert(u.vp);
  return {seen.begin(), seen.end()};
}

std::vector<net::Prefix> UpdateStream::prefixes() const {
  std::set<net::Prefix> seen;
  for (const Update& u : updates_) seen.insert(u.prefix);
  return {seen.begin(), seen.end()};
}

void UpdateStream::append(const UpdateStream& other) {
  updates_.insert(updates_.end(), other.updates_.begin(),
                  other.updates_.end());
}

void insert_community(CommunitySet& set, Community community) {
  auto it = std::lower_bound(set.begin(), set.end(), community);
  if (it == set.end() || *it != community) set.insert(it, community);
}

bool is_subset(const CommunitySet& a, const CommunitySet& b) noexcept {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace gill::bgp
