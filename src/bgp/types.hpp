// Fundamental BGP vocabulary types used across the whole code base.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace gill::bgp {

/// Autonomous System number (4-byte ASN per RFC 6793).
using AsNumber = std::uint32_t;

/// Identifier of a vantage point (a BGP router feeding the platform).
using VpId = std::uint32_t;

/// Seconds since an arbitrary epoch. All simulation time is integral
/// seconds; sub-second behaviour is irrelevant to every algorithm in the
/// paper (the finest constant is the 100 s correlation slack).
using Timestamp = std::int64_t;

/// The 100-second slack used throughout the paper: when comparing update
/// timestamps (§4.2 condition 1, §17.2 identity), when building correlation
/// groups (§17.1), and when matching reconstituted updates.
inline constexpr Timestamp kTimestampSlack = 100;

/// A directed AS-level adjacency as it appears in an AS path, read from the
/// route receiver toward the origin: `from` announced the route to `to`...
/// i.e. the pair (path[i], path[i+1]).
struct AsLink {
  AsNumber from = 0;
  AsNumber to = 0;

  friend auto operator<=>(const AsLink&, const AsLink&) noexcept = default;
};

struct AsLinkHash {
  std::size_t operator()(const AsLink& link) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(link.from) << 32) | link.to);
  }
};

/// A classic RFC 1997 BGP community, stored as asn:value packed in 32 bits.
struct Community {
  std::uint16_t asn = 0;
  std::uint16_t value = 0;

  constexpr Community() = default;
  constexpr Community(std::uint16_t a, std::uint16_t v) : asn(a), value(v) {}

  constexpr std::uint32_t packed() const noexcept {
    return (static_cast<std::uint32_t>(asn) << 16) | value;
  }
  static constexpr Community from_packed(std::uint32_t raw) noexcept {
    return Community(static_cast<std::uint16_t>(raw >> 16),
                     static_cast<std::uint16_t>(raw & 0xFFFF));
  }

  std::string str() const {
    return std::to_string(asn) + ":" + std::to_string(value);
  }

  friend auto operator<=>(const Community&, const Community&) noexcept =
      default;
};

/// A sorted, duplicate-free set of communities (kept as a flat vector —
/// updates carry few communities and flat storage beats node containers).
using CommunitySet = std::vector<Community>;

/// Inserts `community` preserving sorted/unique invariants.
void insert_community(CommunitySet& set, Community community);

/// True if every element of `a` is in `b` (both sorted).
bool is_subset(const CommunitySet& a, const CommunitySet& b) noexcept;

}  // namespace gill::bgp
