// Implicit-withdrawal deltas of §4.2.
//
// The paper denotes an update u(v, t, p, L, Lw, C, Cw): L is the set of AS
// links in the new AS path, Lw the links of the *previous* path for (v, p)
// that the new update renders obsolete; C / Cw likewise for communities.
// DeltaTracker replays a stream in time order and annotates each update
// with those four sets.
#pragma once

#include <unordered_map>
#include <vector>

#include "bgp/update.hpp"

namespace gill::bgp {

/// An update annotated with the §4.2 link/community delta sets. Link and
/// community vectors are sorted so that subset tests are linear merges.
struct AnnotatedUpdate {
  Update update;
  std::vector<AsLink> links;            // L  : links in the new path
  std::vector<AsLink> withdrawn_links;  // Lw : links implicitly withdrawn
  CommunitySet communities;             // C  : communities on the update
  CommunitySet withdrawn_communities;   // Cw : communities withdrawn

  /// L \ Lw, the genuinely new link information (used by conditions 2/3).
  std::vector<AsLink> effective_links() const;
  /// C \ Cw.
  CommunitySet effective_communities() const;
};

/// Stateful annotator: feed updates in time order, per the stream they were
/// collected in. State is keyed by (vp, prefix).
class DeltaTracker {
 public:
  /// Annotates one update and advances the per-(vp,prefix) state.
  AnnotatedUpdate annotate(const Update& update);

  /// Convenience: annotates an entire time-sorted stream.
  static std::vector<AnnotatedUpdate> annotate_stream(
      const UpdateStream& stream);

 private:
  struct Key {
    VpId vp;
    net::Prefix prefix;
    friend bool operator==(const Key&, const Key&) noexcept = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return static_cast<std::size_t>(net::hash_value(k.prefix) * 31 + k.vp);
    }
  };
  struct Previous {
    std::vector<AsLink> links;
    CommunitySet communities;
  };

  std::unordered_map<Key, Previous, KeyHash> state_;
};

}  // namespace gill::bgp
