#include "bgp/as_path.hpp"

#include <algorithm>

namespace gill::bgp {

std::size_t AsPath::unique_length() const noexcept {
  std::size_t n = 0;
  AsNumber previous = 0;
  bool first = true;
  for (AsNumber hop : hops_) {
    if (first || hop != previous) ++n;
    previous = hop;
    first = false;
  }
  return n;
}

void AsPath::prepend(AsNumber as, unsigned count) {
  hops_.insert(hops_.begin(), count, as);
}

bool AsPath::contains(AsNumber as) const noexcept {
  return std::find(hops_.begin(), hops_.end(), as) != hops_.end();
}

std::vector<AsLink> AsPath::links() const {
  std::vector<AsLink> result;
  if (hops_.size() < 2) return result;
  result.reserve(hops_.size() - 1);
  for (std::size_t i = 0; i + 1 < hops_.size(); ++i) {
    if (hops_[i] == hops_[i + 1]) continue;  // prepend repetition
    result.push_back(AsLink{hops_[i], hops_[i + 1]});
  }
  return result;
}

std::string AsPath::str() const {
  std::string out;
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (i) out += ' ';
    out += std::to_string(hops_[i]);
  }
  return out;
}

}  // namespace gill::bgp
