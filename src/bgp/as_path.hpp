// AS path: the sequence of ASes a route announcement traversed.
#pragma once

#include <compare>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "bgp/types.hpp"

namespace gill::bgp {

/// An AS_PATH attribute. Element 0 is the neighbor the receiving router
/// heard the route from; the last element is the origin AS. Prepending is
/// represented by repeated elements, exactly as on the wire.
class AsPath {
 public:
  AsPath() = default;
  AsPath(std::initializer_list<AsNumber> hops) : hops_(hops) {}
  explicit AsPath(std::vector<AsNumber> hops) : hops_(std::move(hops)) {}

  const std::vector<AsNumber>& hops() const noexcept { return hops_; }
  bool empty() const noexcept { return hops_.empty(); }
  std::size_t size() const noexcept { return hops_.size(); }
  AsNumber operator[](std::size_t i) const noexcept { return hops_[i]; }

  /// The AS that originated the route (last hop); 0 if empty.
  AsNumber origin() const noexcept { return hops_.empty() ? 0 : hops_.back(); }

  /// The AS adjacent to the receiver (first hop); 0 if empty.
  AsNumber first() const noexcept { return hops_.empty() ? 0 : hops_.front(); }

  /// Path length after collapsing prepend repetitions (the metric BGP
  /// shortest-path comparison conceptually uses the raw length for, but
  /// topology analyses want unique hops).
  std::size_t unique_length() const noexcept;

  /// Adds `as` at the front `count` times (what an AS does when exporting).
  void prepend(AsNumber as, unsigned count = 1);

  /// True if `as` already appears in the path (BGP loop prevention).
  bool contains(AsNumber as) const noexcept;

  /// The set of directed AS links (from, to) along the path, skipping
  /// prepend repetitions. Reading direction: receiver side toward origin.
  std::vector<AsLink> links() const;

  /// "6 2 1 4"-style rendering.
  std::string str() const;

  friend auto operator<=>(const AsPath&, const AsPath&) noexcept = default;

 private:
  std::vector<AsNumber> hops_;
};

struct AsPathHash {
  std::size_t operator()(const AsPath& path) const noexcept {
    std::uint64_t h = 14695981039346656037ull;
    for (AsNumber hop : path.hops()) {
      h ^= hop;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace gill::bgp
