// Routing Information Base: the set of best routes a VP currently holds.
// Platforms dump RIB snapshots every few hours (§2, §8); GILL rebuilds a
// VP's RIB at time t from the last dump plus subsequent updates (§18).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/update.hpp"

namespace gill::bgp {

/// One installed route.
struct Route {
  AsPath path;
  CommunitySet communities;
  Timestamp installed = 0;
  /// RFC 4724 helper mode: the peer restarted and this entry has not yet
  /// been re-advertised. Swept at End-of-RIB or on restart-timer expiry.
  bool stale = false;

  friend bool operator==(const Route&, const Route&) noexcept = default;
};

/// The RIB of a single VP.
class Rib {
 public:
  /// Applies an announcement or withdrawal for this VP.
  void apply(const Update& update);

  const Route* find(const net::Prefix& prefix) const;
  std::size_t size() const noexcept { return routes_.size(); }
  bool empty() const noexcept { return routes_.empty(); }

  /// Snapshot of all (prefix, route) entries, unordered.
  const std::unordered_map<net::Prefix, Route, net::PrefixHash>& routes()
      const noexcept {
    return routes_;
  }

  /// Emits the RIB as a list of announcement updates stamped `time`
  /// (a TABLE_DUMP-style snapshot for VP `vp`).
  UpdateStream dump(VpId vp, Timestamp time) const;

  /// RFC 4724 helper mode: marks every entry stale when the peer's session
  /// drops. A subsequent apply() of an announcement replaces the entry with
  /// a fresh (non-stale) route.
  void mark_all_stale();
  /// Clears the stale bit on `prefix` without touching the route (used when
  /// a re-advertisement is byte-identical to the retained entry). Returns
  /// false when the prefix is not present.
  bool refresh(const net::Prefix& prefix);
  /// Erases every entry still stale and returns their prefixes (sorted, so
  /// the synthetic withdrawals the caller emits are deterministic).
  std::vector<net::Prefix> sweep_stale();
  std::size_t stale_count() const noexcept;

 private:
  std::unordered_map<net::Prefix, Route, net::PrefixHash> routes_;
};

/// RIBs for an entire platform, keyed by VP.
class RibSet {
 public:
  /// Replays `stream` (must be time-sorted) into per-VP RIBs.
  void apply(const UpdateStream& stream);
  void apply(const Update& update);

  const Rib* find(VpId vp) const;
  Rib& at(VpId vp) { return ribs_[vp]; }
  const std::unordered_map<VpId, Rib>& ribs() const noexcept { return ribs_; }

 private:
  std::unordered_map<VpId, Rib> ribs_;
};

}  // namespace gill::bgp
