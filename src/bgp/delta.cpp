#include "bgp/delta.hpp"

#include <algorithm>

namespace gill::bgp {

namespace {

template <typename T>
std::vector<T> sorted_difference(const std::vector<T>& a,
                                 const std::vector<T>& b) {
  std::vector<T> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace

std::vector<AsLink> AnnotatedUpdate::effective_links() const {
  return sorted_difference(links, withdrawn_links);
}

CommunitySet AnnotatedUpdate::effective_communities() const {
  return sorted_difference(communities, withdrawn_communities);
}

AnnotatedUpdate DeltaTracker::annotate(const Update& update) {
  AnnotatedUpdate annotated;
  annotated.update = update;

  std::vector<AsLink> new_links = update.path.links();
  std::sort(new_links.begin(), new_links.end());
  new_links.erase(std::unique(new_links.begin(), new_links.end()),
                  new_links.end());
  CommunitySet new_communities = update.communities;  // already sorted

  const Key key{update.vp, update.prefix};
  auto it = state_.find(key);
  if (it != state_.end()) {
    // Lw = links of the previous route that are not on the new path.
    annotated.withdrawn_links = sorted_difference(it->second.links, new_links);
    annotated.withdrawn_communities =
        sorted_difference(it->second.communities, new_communities);
  }
  annotated.links = new_links;
  annotated.communities = new_communities;

  if (update.withdrawal) {
    state_.erase(key);
  } else {
    state_[key] = Previous{std::move(new_links), std::move(new_communities)};
    annotated.links = annotated.update.path.links();
    std::sort(annotated.links.begin(), annotated.links.end());
    annotated.links.erase(
        std::unique(annotated.links.begin(), annotated.links.end()),
        annotated.links.end());
  }
  return annotated;
}

std::vector<AnnotatedUpdate> DeltaTracker::annotate_stream(
    const UpdateStream& stream) {
  DeltaTracker tracker;
  std::vector<AnnotatedUpdate> out;
  out.reserve(stream.size());
  for (const Update& u : stream) out.push_back(tracker.annotate(u));
  return out;
}

}  // namespace gill::bgp
