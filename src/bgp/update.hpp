// The BGP update record as stored by a collection platform (§2): the four
// attributes the paper identifies as relevant — timestamp, prefix, AS path,
// communities — plus the observing vantage point and a withdrawal flag.
#pragma once

#include <compare>
#include <string>
#include <vector>

#include "bgp/as_path.hpp"
#include "bgp/types.hpp"
#include "netbase/prefix.hpp"

namespace gill::bgp {

/// One stored BGP update.
struct Update {
  VpId vp = 0;
  Timestamp time = 0;
  net::Prefix prefix;
  AsPath path;             // empty for withdrawals
  CommunitySet communities;
  bool withdrawal = false;

  std::string str() const;

  friend bool operator==(const Update&, const Update&) noexcept = default;
};

/// §17.2 update identity: same VP, prefix, AS path and communities, and
/// timestamps within the 100 s slack.
bool identical_updates(const Update& a, const Update& b) noexcept;

/// A time-ordered sequence of updates from many VPs (one collection run).
class UpdateStream {
 public:
  UpdateStream() = default;
  explicit UpdateStream(std::vector<Update> updates);

  void push(Update update);

  /// Sorts by (time, vp, prefix) — call once after bulk generation.
  void sort();

  const std::vector<Update>& updates() const noexcept { return updates_; }
  std::vector<Update>& updates() noexcept { return updates_; }
  std::size_t size() const noexcept { return updates_.size(); }
  bool empty() const noexcept { return updates_.empty(); }

  auto begin() const noexcept { return updates_.begin(); }
  auto end() const noexcept { return updates_.end(); }

  /// All updates with `from <= time < to`.
  UpdateStream window(Timestamp from, Timestamp to) const;

  /// All updates observed by `vp`.
  UpdateStream by_vp(VpId vp) const;

  /// The distinct VPs appearing in the stream, ascending.
  std::vector<VpId> vps() const;

  /// The distinct prefixes appearing in the stream.
  std::vector<net::Prefix> prefixes() const;

  void append(const UpdateStream& other);

 private:
  std::vector<Update> updates_;
};

}  // namespace gill::bgp
