// Forged-origin hijack analyses.
//
// Two layers, matching the paper's two uses:
//  * Visibility scoring (§3.1, §11): a hijack is detectable only if at
//    least one collected route traverses the attacker — the coverage
//    experiments measure exactly this.
//  * DFOH-lite (§12): a feature-based classifier over candidate new
//    origin-adjacent links, reproducing the DFOH [25] methodology: a new
//    link is suspicious when the involved ASes are topologically unrelated
//    (no common neighbors, distant, no triangle support) in the baseline
//    view built from previously collected routes.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "simulator/internet.hpp"
#include "usecases/data_sample.hpp"

namespace gill::uc {

using bgp::AsNumber;

/// Fraction of ground-truth hijacks of type `type` (0 = any) for which the
/// sample contains at least one route through the attacker.
double hijack_visibility_score(const DataSample& sample,
                               const std::vector<sim::GroundTruth>& truths,
                               int type = 0);

/// Baseline AS-level view for DFOH features: undirected adjacency built
/// from previously observed routes.
class BaselineView {
 public:
  static BaselineView from_stream(const UpdateStream& stream);

  bool has_link(AsNumber a, AsNumber b) const;
  std::size_t degree(AsNumber as) const;
  std::size_t common_neighbors(AsNumber a, AsNumber b) const;
  /// BFS hop distance between a and b, capped at `limit` (returns limit if
  /// farther or disconnected).
  unsigned distance(AsNumber a, AsNumber b, unsigned limit = 4) const;

 private:
  std::unordered_map<AsNumber, std::unordered_set<AsNumber>> adjacency_;
};

struct DfohConfig {
  /// Minimum suspicion score to flag a candidate link.
  int threshold = 3;
  /// Links at baseline distance >= this look forged.
  unsigned distant = 3;
};

/// One candidate new origin-adjacent link found in a sample.
struct DfohCase {
  AsNumber neighbor = 0;  // the suspected attacker-side AS
  AsNumber origin = 0;    // the prefix origin the link is adjacent to
  net::Prefix prefix;
  Timestamp time = 0;
  int score = 0;
  bool flagged = false;
};

/// DFOH-lite detector over one baseline view.
class DfohDetector {
 public:
  DfohDetector(const BaselineView& baseline, DfohConfig config = {})
      : baseline_(&baseline), config_(config) {}

  /// Suspicion score of a candidate new link (higher = more suspicious).
  int suspicion_score(AsNumber a, AsNumber b) const;
  bool is_suspicious(AsNumber a, AsNumber b) const {
    return suspicion_score(a, b) >= config_.threshold;
  }

  /// Scans a sample for new origin-adjacent links (absent from the
  /// baseline) and classifies each.
  std::vector<DfohCase> scan(const DataSample& sample) const;

 private:
  const BaselineView* baseline_;
  DfohConfig config_;
};

/// Classification quality vs. ground truth: a case is a true positive if a
/// flagged link corresponds to a ground-truth forged-origin hijack.
struct DfohScore {
  double true_positive_rate = 0.0;
  double false_positive_rate = 0.0;
  std::size_t flagged = 0;
  std::size_t cases = 0;
};

DfohScore dfoh_score(const std::vector<DfohCase>& cases,
                     const std::vector<sim::GroundTruth>& truths);

}  // namespace gill::uc
