// The unit of data a sampling scheme hands to an analysis: a set of
// retained updates plus the RIB entries of fully collected VPs, and the
// public origin table (prefix -> expected origin) every analysis may
// consult (users always have access to a RIB snapshot of record).
#pragma once

#include <unordered_map>

#include "bgp/update.hpp"

namespace gill::uc {

using bgp::Timestamp;
using bgp::Update;
using bgp::UpdateStream;
using bgp::VpId;

struct DataSample {
  UpdateStream updates;
  /// RIB-snapshot entries (announcements) of fully collected VPs.
  UpdateStream ribs;

  std::size_t update_volume() const noexcept { return updates.size(); }
};

/// prefix -> legitimate origin AS, from a reference RIB snapshot.
class OriginTable {
 public:
  OriginTable() = default;

  /// Builds the table from a full RIB dump (majority origin per prefix).
  static OriginTable from_rib(const UpdateStream& rib);

  void set(const net::Prefix& prefix, bgp::AsNumber origin) {
    origins_[prefix] = origin;
  }
  /// 0 if unknown.
  bgp::AsNumber origin_of(const net::Prefix& prefix) const {
    const auto it = origins_.find(prefix);
    return it == origins_.end() ? 0 : it->second;
  }
  std::size_t size() const noexcept { return origins_.size(); }

 private:
  std::unordered_map<net::Prefix, bgp::AsNumber, net::PrefixHash> origins_;
};

}  // namespace gill::uc
