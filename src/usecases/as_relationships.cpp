#include "usecases/as_relationships.hpp"

#include <algorithm>
#include <unordered_set>

#include "usecases/detectors.hpp"

namespace gill::uc {

const InferredRelationship* InferredRelationships::find(AsNumber a,
                                                        AsNumber b) const {
  const auto it = index.find(undirected_link_key(a, b));
  return it == index.end() ? nullptr : &entries[it->second];
}

InferredRelationships infer_relationships(
    const DataSample& sample, const RelationshipInferenceConfig& config) {
  // Collect unique paths (RIB entries + updates).
  std::vector<const bgp::AsPath*> paths;
  auto collect = [&](const UpdateStream& stream) {
    for (const auto& update : stream) {
      if (!update.withdrawal && update.path.size() >= 2) {
        paths.push_back(&update.path);
      }
    }
  };
  collect(sample.ribs);
  collect(sample.updates);

  // Transit degree: number of distinct neighbors an AS has while appearing
  // in the *middle* of a path (it carried traffic for someone).
  std::unordered_map<AsNumber, std::unordered_set<AsNumber>> transit_neighbors;
  for (const auto* path : paths) {
    const auto& hops = path->hops();
    for (std::size_t i = 1; i + 1 < hops.size(); ++i) {
      if (hops[i] == hops[i - 1] || hops[i] == hops[i + 1]) continue;
      transit_neighbors[hops[i]].insert(hops[i - 1]);
      transit_neighbors[hops[i]].insert(hops[i + 1]);
    }
  }
  auto transit_degree = [&](AsNumber as) -> std::size_t {
    const auto it = transit_neighbors.find(as);
    return it == transit_neighbors.end() ? 0 : it->second.size();
  };

  // Clique: the top transit-degree ASes.
  std::vector<AsNumber> ranked;
  ranked.reserve(transit_neighbors.size());
  for (const auto& [as, _] : transit_neighbors) ranked.push_back(as);
  std::sort(ranked.begin(), ranked.end(), [&](AsNumber a, AsNumber b) {
    const auto da = transit_degree(a);
    const auto db = transit_degree(b);
    return da != db ? da > db : a < b;
  });
  std::unordered_set<AsNumber> clique(
      ranked.begin(),
      ranked.begin() +
          static_cast<std::ptrdiff_t>(
              std::min(config.clique_size, ranked.size())));

  // Vote per undirected link: c2p in either direction, or p2p.
  struct Votes {
    std::size_t c2p_ab = 0;  // lower-id AS is the customer
    std::size_t c2p_ba = 0;  // higher-id AS is the customer
    std::size_t p2p = 0;
    AsNumber lo = 0, hi = 0;
  };
  std::unordered_map<std::uint64_t, Votes> votes;
  auto vote = [&](AsNumber customer, AsNumber provider, bool peer) {
    const std::uint64_t key = undirected_link_key(customer, provider);
    Votes& v = votes[key];
    v.lo = std::min(customer, provider);
    v.hi = std::max(customer, provider);
    if (peer) {
      ++v.p2p;
    } else if (customer == v.lo) {
      ++v.c2p_ab;
    } else {
      ++v.c2p_ba;
    }
  };

  for (const auto* path : paths) {
    const auto& hops = path->hops();
    // Summit: the hop with the highest transit degree (clique members win).
    std::size_t summit = 0;
    for (std::size_t i = 1; i < hops.size(); ++i) {
      const bool better =
          (clique.contains(hops[i]) && !clique.contains(hops[summit])) ||
          (clique.contains(hops[i]) == clique.contains(hops[summit]) &&
           transit_degree(hops[i]) > transit_degree(hops[summit]));
      if (better) summit = i;
    }
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      const AsNumber left = hops[i];
      const AsNumber right = hops[i + 1];
      if (left == right) continue;
      const auto dl = static_cast<double>(std::max<std::size_t>(
          transit_degree(left), 1));
      const auto dr = static_cast<double>(std::max<std::size_t>(
          transit_degree(right), 1));
      const bool similar = dl / dr < config.peer_degree_ratio &&
                           dr / dl < config.peer_degree_ratio;
      const bool at_summit = i == summit || i + 1 == summit;
      if (at_summit && similar &&
          (clique.contains(left) || clique.contains(right) ||
           transit_degree(left) > 0)) {
        vote(left, right, /*peer=*/true);
      } else if (i + 1 <= summit) {
        // Left of the summit the path climbs the hierarchy: each hop
        // learned the route from its provider, so `left` (closer to the
        // receiver) is the customer of `right`.
        vote(left, right, /*peer=*/false);
      } else {
        // Right of the summit the path descends toward the origin: `right`
        // exported the route up to its provider `left`.
        vote(right, left, /*peer=*/false);
      }
    }
  }

  // Hierarchy signal: BFS depth from the clique over the observed
  // undirected graph. Real (and simulated) p2p links overwhelmingly connect
  // ASes at the same depth of the provider hierarchy, while c2p links cross
  // depths — the same structural prior ASRank exploits via its clique.
  std::unordered_map<AsNumber, std::unordered_set<AsNumber>> adjacency;
  for (const auto& [key, v] : votes) {
    adjacency[v.lo].insert(v.hi);
    adjacency[v.hi].insert(v.lo);
  }
  std::unordered_map<AsNumber, unsigned> depth;
  {
    std::vector<AsNumber> frontier;
    for (const AsNumber as : clique) {
      if (adjacency.contains(as)) {
        depth[as] = 0;
        frontier.push_back(as);
      }
    }
    unsigned level = 0;
    while (!frontier.empty()) {
      ++level;
      std::vector<AsNumber> next;
      for (const AsNumber u : frontier) {
        for (const AsNumber v : adjacency[u]) {
          if (depth.emplace(v, level).second) next.push_back(v);
        }
      }
      frontier = std::move(next);
    }
  }

  InferredRelationships result;
  for (const auto& [key, v] : votes) {
    InferredRelationship entry;
    const auto da = depth.find(v.lo);
    const auto db = depth.find(v.hi);
    const bool have_depths = da != depth.end() && db != depth.end();
    // Observed-graph depths overestimate the true hierarchy level when
    // links are missing, so a one-level difference is ambiguous: resolve it
    // with the path-direction votes (a true c2p link accumulates strongly
    // one-sided customer->provider votes; a peering does not).
    const bool depth_decides =
        have_depths &&
        (da->second != db->second) &&
        ((da->second > db->second ? da->second - db->second
                                  : db->second - da->second) > 1 ||
         std::max(v.c2p_ab, v.c2p_ba) >=
             2 * std::min(v.c2p_ab, v.c2p_ba) + v.p2p);
    if (depth_decides) {
      // Depth difference: the deeper AS pays the shallower one.
      entry.rel = topo::Relationship::kCustomerToProvider;
      entry.a = da->second > db->second ? v.lo : v.hi;  // customer
      entry.b = da->second > db->second ? v.hi : v.lo;  // provider
    } else if (have_depths && v.c2p_ab == 0 && v.c2p_ba == 0) {
      entry.rel = topo::Relationship::kPeerToPeer;
      entry.a = v.lo;
      entry.b = v.hi;
    } else if (have_depths &&
               std::max(v.c2p_ab, v.c2p_ba) <
                   3 * std::min(v.c2p_ab + 1, v.c2p_ba + 1)) {
      // Same depth without a dominant c2p direction: peering.
      entry.rel = topo::Relationship::kPeerToPeer;
      entry.a = v.lo;
      entry.b = v.hi;
    } else if (v.p2p >= v.c2p_ab && v.p2p >= v.c2p_ba) {
      entry.rel = topo::Relationship::kPeerToPeer;
      entry.a = v.lo;
      entry.b = v.hi;
    } else if (v.c2p_ab >= v.c2p_ba) {
      entry.rel = topo::Relationship::kCustomerToProvider;
      entry.a = v.lo;  // customer
      entry.b = v.hi;  // provider
    } else {
      entry.rel = topo::Relationship::kCustomerToProvider;
      entry.a = v.hi;
      entry.b = v.lo;
    }
    result.index[key] = result.entries.size();
    result.entries.push_back(entry);
  }
  return result;
}

std::unordered_map<AsNumber, std::size_t> customer_cones(
    const InferredRelationships& inferred) {
  std::unordered_map<AsNumber, std::vector<AsNumber>> customers;
  std::unordered_set<AsNumber> ases;
  for (const auto& entry : inferred.entries) {
    ases.insert(entry.a);
    ases.insert(entry.b);
    if (entry.rel == topo::Relationship::kCustomerToProvider) {
      customers[entry.b].push_back(entry.a);
    }
  }
  std::unordered_map<AsNumber, std::size_t> cones;
  for (const AsNumber root : ases) {
    std::unordered_set<AsNumber> visited;
    std::vector<AsNumber> stack{root};
    while (!stack.empty()) {
      const AsNumber as = stack.back();
      stack.pop_back();
      if (!visited.insert(as).second) continue;
      const auto it = customers.find(as);
      if (it == customers.end()) continue;
      for (const AsNumber customer : it->second) stack.push_back(customer);
    }
    cones[root] = visited.size();
  }
  return cones;
}

RelationshipValidation validate_relationships(
    const InferredRelationships& inferred, const topo::AsTopology& truth) {
  RelationshipValidation validation;
  validation.inferred = inferred.entries.size();
  for (const auto& entry : inferred.entries) {
    if (entry.a >= truth.as_count() || entry.b >= truth.as_count()) continue;
    const auto rel = truth.relationship(entry.a, entry.b);
    if (!rel.has_value()) continue;
    ++validation.evaluable;
    const bool truth_is_p2p = *rel == topo::Relationship::kPeerToPeer;
    if (truth_is_p2p) {
      ++validation.p2p_evaluable;
    } else {
      ++validation.c2p_evaluable;
    }
    if (*rel != entry.rel) continue;
    if (entry.rel == topo::Relationship::kPeerToPeer) {
      ++validation.correct;
      ++validation.p2p_correct;
    } else {
      // Direction check: entry.a must really be the customer.
      const auto& providers = truth.providers(entry.a);
      if (std::find(providers.begin(), providers.end(), entry.b) !=
          providers.end()) {
        ++validation.correct;
        ++validation.c2p_correct;
      }
    }
  }
  return validation;
}

}  // namespace gill::uc
