// The five §10 use-case analyses, each consuming a DataSample and scoring
// against simulator ground truth:
//   I   transient path detection      (needs the timestamp attribute)
//   II  MOAS prefix detection         (needs the prefix attribute)
//   III AS topology mapping           (needs the AS-path attribute)
//   IV  action community detection    (needs the community attribute)
//   V   unchanged-path update detection (community + path attributes)
#pragma once

#include <unordered_set>
#include <vector>

#include "simulator/internet.hpp"
#include "usecases/data_sample.hpp"

namespace gill::uc {

using sim::GroundTruth;

// --- I: transient paths ----------------------------------------------------

/// A route visible for less than `max_lifetime` seconds at one VP.
struct TransientPath {
  VpId vp = 0;
  net::Prefix prefix;
  Timestamp appeared = 0;
  Timestamp replaced = 0;
};

/// Finds transient paths in a sample (routes replaced within 5 minutes).
std::vector<TransientPath> detect_transient_paths(const DataSample& sample,
                                                  Timestamp max_lifetime = 300);

/// Fraction of ground-truth transient-path events visible in the sample.
double transient_detection_score(const DataSample& sample,
                                 const std::vector<GroundTruth>& truths);

// --- II: MOAS ---------------------------------------------------------------

/// Prefixes observed (in updates or RIB entries) with two or more distinct
/// origins, or with an origin conflicting with the reference table.
std::vector<net::Prefix> detect_moas(const DataSample& sample,
                                     const OriginTable& reference);

double moas_detection_score(const DataSample& sample,
                            const OriginTable& reference,
                            const std::vector<GroundTruth>& truths);

// --- III: topology mapping ---------------------------------------------------

/// Distinct directed AS links appearing in any path of the sample.
std::unordered_set<std::uint64_t> observed_links(const DataSample& sample);

/// Canonical undirected key of a link.
std::uint64_t undirected_link_key(bgp::AsNumber a, bgp::AsNumber b) noexcept;

/// Fraction of `reference_links` (undirected keys) observed in the sample.
double topology_mapping_score(
    const DataSample& sample,
    const std::unordered_set<std::uint64_t>& reference_links);

/// Helper: undirected link keys present in a full stream (the usual
/// "best case / all data" reference set).
std::unordered_set<std::uint64_t> undirected_links_of(
    const UpdateStream& stream);

// --- IV: action communities ---------------------------------------------------

/// Fraction of ground-truth action-community events whose community value
/// is observed on the event's prefix in the sample.
double action_community_score(const DataSample& sample,
                              const std::vector<GroundTruth>& truths);

// --- V: unchanged-path updates -------------------------------------------------

/// Updates that repeat the previous AS path for (vp, prefix) but change the
/// community set.
std::vector<Update> detect_unchanged_path_updates(const DataSample& sample);

double unchanged_path_score(const DataSample& sample,
                            const std::vector<GroundTruth>& truths);

}  // namespace gill::uc
