// Link-failure localization (§3.1), following the tomography approach of
// Feldmann et al. [21]: each VP whose route changed contributes the
// candidate set "links on its old path that left its new path"; the failed
// link is localized when the intersection of the candidate sets across VPs
// pins down exactly one link.
#pragma once

#include <optional>
#include <vector>

#include "simulator/internet.hpp"
#include "usecases/data_sample.hpp"

namespace gill::uc {

struct LocalizationResult {
  /// Undirected keys of the top-voted candidate links (ties included).
  std::vector<std::uint64_t> candidates;
  /// Localized = a unique link dominates the removed-link votes.
  bool localized() const noexcept { return candidates.size() == 1; }
};

/// Localizes a failure known to have happened at `failure_time` from the
/// routes in `sample` (RIB entries seed the pre-failure paths; updates in
/// [failure_time, failure_time + window) are the reaction).
LocalizationResult localize_failure(const DataSample& sample,
                                    Timestamp failure_time,
                                    Timestamp window = 150);

/// Scores localization over all ground-truth link failures: the fraction
/// whose failed link is uniquely identified. When `p2p_only` is set, only
/// failures of p2p links count (Fig. 4 reports p2p and c2p separately).
double failure_localization_score(const DataSample& sample,
                                  const std::vector<sim::GroundTruth>& truths,
                                  std::optional<bool> p2p_filter = {});

}  // namespace gill::uc
