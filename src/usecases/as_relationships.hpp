// AS-relationship inference and customer cones (§12).
//
// A simplified reimplementation of the Luckie et al. [31] / ASRank [11]
// methodology: compute transit degrees from the collected AS paths, treat
// the top transit ASes as the clique, locate each path's summit, vote c2p
// for the uphill/downhill segments and p2p around the summit, and resolve
// by majority. Customer cones are computed over the inferred c2p DAG.
#pragma once

#include <unordered_map>
#include <vector>

#include "topology/topology.hpp"
#include "usecases/data_sample.hpp"

namespace gill::uc {

using bgp::AsNumber;

struct InferredRelationship {
  AsNumber a = 0;  // customer for c2p; lower id for p2p
  AsNumber b = 0;  // provider for c2p; higher id for p2p
  topo::Relationship rel = topo::Relationship::kPeerToPeer;
};

struct InferredRelationships {
  std::vector<InferredRelationship> entries;
  /// Undirected link key -> index into entries.
  std::unordered_map<std::uint64_t, std::size_t> index;

  std::size_t size() const noexcept { return entries.size(); }
  const InferredRelationship* find(AsNumber a, AsNumber b) const;
};

struct RelationshipInferenceConfig {
  /// Number of top-transit-degree ASes assumed fully meshed (the clique).
  std::size_t clique_size = 3;
  /// Two adjacent hops whose transit degrees are within this ratio at the
  /// path summit vote p2p instead of c2p.
  double peer_degree_ratio = 2.0;
};

/// Infers a relationship for every link observed in the sample.
InferredRelationships infer_relationships(
    const DataSample& sample, const RelationshipInferenceConfig& config = {});

/// Customer cone size (number of ASes in the cone, including the AS) per
/// AS, over the inferred c2p edges.
std::unordered_map<AsNumber, std::size_t> customer_cones(
    const InferredRelationships& inferred);

/// Validation against the simulator's ground-truth topology (the stand-in
/// for the IRR/RIR validation of [31]).
struct RelationshipValidation {
  std::size_t inferred = 0;   // links with an inferred relationship
  std::size_t evaluable = 0;  // of those, links that exist in ground truth
  std::size_t correct = 0;    // type (and c2p direction) match
  // Per-type breakdown: p2p inference is the known-hard part of the
  // problem, so benches report it separately.
  std::size_t c2p_evaluable = 0;
  std::size_t c2p_correct = 0;
  std::size_t p2p_evaluable = 0;
  std::size_t p2p_correct = 0;
  double accuracy() const {
    return evaluable == 0 ? 0.0
                          : static_cast<double>(correct) /
                                static_cast<double>(evaluable);
  }
  double c2p_accuracy() const {
    return c2p_evaluable == 0 ? 0.0
                              : static_cast<double>(c2p_correct) /
                                    static_cast<double>(c2p_evaluable);
  }
  double p2p_accuracy() const {
    return p2p_evaluable == 0 ? 0.0
                              : static_cast<double>(p2p_correct) /
                                    static_cast<double>(p2p_evaluable);
  }
};

RelationshipValidation validate_relationships(
    const InferredRelationships& inferred, const topo::AsTopology& truth);

}  // namespace gill::uc
