#include "usecases/detectors.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace gill::uc {

OriginTable OriginTable::from_rib(const UpdateStream& rib) {
  // Majority origin per prefix across VPs.
  std::unordered_map<net::Prefix,
                     std::unordered_map<bgp::AsNumber, std::size_t>,
                     net::PrefixHash>
      votes;
  for (const auto& entry : rib) {
    if (entry.withdrawal || entry.path.empty()) continue;
    ++votes[entry.prefix][entry.path.origin()];
  }
  OriginTable table;
  for (const auto& [prefix, counts] : votes) {
    const auto best = std::max_element(
        counts.begin(), counts.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    table.set(prefix, best->first);
  }
  return table;
}

// --- I ----------------------------------------------------------------------

std::vector<TransientPath> detect_transient_paths(const DataSample& sample,
                                                  Timestamp max_lifetime) {
  struct LastRoute {
    bgp::AsPath path;
    Timestamp since = 0;
    bool valid = false;
  };
  std::map<std::pair<VpId, net::Prefix>, LastRoute> state;
  std::vector<TransientPath> result;

  for (const auto& update : sample.updates) {
    auto& last = state[{update.vp, update.prefix}];
    const bgp::AsPath new_path =
        update.withdrawal ? bgp::AsPath{} : update.path;
    if (last.valid && !last.path.empty() && new_path != last.path &&
        update.time - last.since < max_lifetime) {
      result.push_back(
          TransientPath{update.vp, update.prefix, last.since, update.time});
    }
    last.path = new_path;
    last.since = update.time;
    last.valid = true;
  }
  return result;
}

double transient_detection_score(const DataSample& sample,
                                 const std::vector<GroundTruth>& truths) {
  std::size_t total = 0;
  std::size_t detected = 0;
  const auto found = detect_transient_paths(sample);
  // Index detections by (vp, prefix) with their appearance times.
  std::map<std::pair<VpId, net::Prefix>, std::vector<Timestamp>> index;
  for (const auto& t : found) index[{t.vp, t.prefix}].push_back(t.appeared);

  for (const auto& truth : truths) {
    if (truth.kind != GroundTruth::Kind::kTransientPath) continue;
    ++total;
    const auto it = index.find({truth.vp, truth.prefix});
    if (it == index.end()) continue;
    for (const Timestamp appeared : it->second) {
      const Timestamp dt =
          appeared > truth.time ? appeared - truth.time : truth.time - appeared;
      if (dt < bgp::kTimestampSlack) {
        ++detected;
        break;
      }
    }
  }
  return total == 0 ? 1.0
                    : static_cast<double>(detected) /
                          static_cast<double>(total);
}

// --- II ----------------------------------------------------------------------

std::vector<net::Prefix> detect_moas(const DataSample& sample,
                                     const OriginTable& reference) {
  std::unordered_map<net::Prefix, std::unordered_set<bgp::AsNumber>,
                     net::PrefixHash>
      origins;
  auto collect = [&](const UpdateStream& stream) {
    for (const auto& update : stream) {
      if (update.withdrawal || update.path.empty()) continue;
      origins[update.prefix].insert(update.path.origin());
    }
  };
  collect(sample.updates);
  collect(sample.ribs);

  std::vector<net::Prefix> result;
  for (const auto& [prefix, seen] : origins) {
    const bgp::AsNumber expected = reference.origin_of(prefix);
    const bool conflicting_reference =
        expected != 0 && (seen.size() > 1 || !seen.contains(expected));
    if (seen.size() > 1 || conflicting_reference) result.push_back(prefix);
  }
  return result;
}

double moas_detection_score(const DataSample& sample,
                            const OriginTable& reference,
                            const std::vector<GroundTruth>& truths) {
  const auto detected = detect_moas(sample, reference);
  const std::unordered_set<net::Prefix, net::PrefixHash> found(
      detected.begin(), detected.end());
  std::size_t total = 0;
  std::size_t hit = 0;
  for (const auto& truth : truths) {
    if (truth.kind != GroundTruth::Kind::kMoas) continue;
    ++total;
    if (found.contains(truth.prefix)) ++hit;
  }
  return total == 0 ? 1.0
                    : static_cast<double>(hit) / static_cast<double>(total);
}

// --- III ----------------------------------------------------------------------

std::uint64_t undirected_link_key(bgp::AsNumber a, bgp::AsNumber b) noexcept {
  const bgp::AsNumber lo = a < b ? a : b;
  const bgp::AsNumber hi = a < b ? b : a;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

std::unordered_set<std::uint64_t> observed_links(const DataSample& sample) {
  std::unordered_set<std::uint64_t> links;
  auto collect = [&](const UpdateStream& stream) {
    for (const auto& update : stream) {
      for (const auto& link : update.path.links()) {
        links.insert(undirected_link_key(link.from, link.to));
      }
    }
  };
  collect(sample.updates);
  collect(sample.ribs);
  return links;
}

std::unordered_set<std::uint64_t> undirected_links_of(
    const UpdateStream& stream) {
  DataSample sample;
  sample.updates = stream;
  return observed_links(sample);
}

double topology_mapping_score(
    const DataSample& sample,
    const std::unordered_set<std::uint64_t>& reference_links) {
  if (reference_links.empty()) return 1.0;
  const auto seen = observed_links(sample);
  std::size_t hit = 0;
  for (const std::uint64_t key : reference_links) {
    if (seen.contains(key)) ++hit;
  }
  return static_cast<double>(hit) /
         static_cast<double>(reference_links.size());
}

// --- IV ----------------------------------------------------------------------

double action_community_score(const DataSample& sample,
                              const std::vector<GroundTruth>& truths) {
  // Index: prefix -> communities observed on it.
  std::unordered_map<net::Prefix, std::unordered_set<std::uint32_t>,
                     net::PrefixHash>
      seen;
  auto collect = [&](const UpdateStream& stream) {
    for (const auto& update : stream) {
      for (const auto community : update.communities) {
        seen[update.prefix].insert(community.packed());
      }
    }
  };
  collect(sample.updates);
  collect(sample.ribs);

  std::size_t total = 0;
  std::size_t hit = 0;
  for (const auto& truth : truths) {
    if (truth.kind != GroundTruth::Kind::kCommunityChange ||
        !truth.action_community) {
      continue;
    }
    ++total;
    const auto it = seen.find(truth.prefix);
    if (it != seen.end() && it->second.contains(truth.community.packed())) {
      ++hit;
    }
  }
  return total == 0 ? 1.0
                    : static_cast<double>(hit) / static_cast<double>(total);
}

// --- V ----------------------------------------------------------------------

std::vector<Update> detect_unchanged_path_updates(const DataSample& sample) {
  struct LastSeen {
    bgp::AsPath path;
    bgp::CommunitySet communities;
    bool valid = false;
  };
  std::map<std::pair<VpId, net::Prefix>, LastSeen> state;
  // Seed with RIB entries so the first in-window update can be classified.
  for (const auto& entry : sample.ribs) {
    auto& last = state[{entry.vp, entry.prefix}];
    last.path = entry.path;
    last.communities = entry.communities;
    last.valid = true;
  }
  std::vector<Update> result;
  for (const auto& update : sample.updates) {
    auto& last = state[{update.vp, update.prefix}];
    if (!update.withdrawal && last.valid && update.path == last.path &&
        update.communities != last.communities) {
      result.push_back(update);
    }
    last.path = update.withdrawal ? bgp::AsPath{} : update.path;
    last.communities = update.communities;
    last.valid = true;
  }
  return result;
}

double unchanged_path_score(const DataSample& sample,
                            const std::vector<GroundTruth>& truths) {
  const auto found = detect_unchanged_path_updates(sample);
  std::unordered_map<net::Prefix, std::vector<Timestamp>, net::PrefixHash>
      index;
  for (const auto& update : found) {
    index[update.prefix].push_back(update.time);
  }
  std::size_t total = 0;
  std::size_t hit = 0;
  for (const auto& truth : truths) {
    if (truth.kind != GroundTruth::Kind::kCommunityChange) continue;
    ++total;
    const auto it = index.find(truth.prefix);
    if (it == index.end()) continue;
    for (const Timestamp t : it->second) {
      if (t >= truth.time && t - truth.time < 2 * bgp::kTimestampSlack) {
        ++hit;
        break;
      }
    }
  }
  return total == 0 ? 1.0
                    : static_cast<double>(hit) / static_cast<double>(total);
}

}  // namespace gill::uc
