#include "usecases/hijack.hpp"

#include <algorithm>
#include <queue>

#include "usecases/detectors.hpp"

namespace gill::uc {

double hijack_visibility_score(const DataSample& sample,
                               const std::vector<sim::GroundTruth>& truths,
                               int type) {
  // Index sampled routes: prefix -> set of ASes traversed (updates + ribs).
  std::unordered_map<net::Prefix, std::unordered_set<AsNumber>,
                     net::PrefixHash>
      traversed;
  auto collect = [&](const UpdateStream& stream) {
    for (const auto& update : stream) {
      auto& set = traversed[update.prefix];
      for (const AsNumber hop : update.path.hops()) set.insert(hop);
    }
  };
  collect(sample.updates);
  collect(sample.ribs);

  std::size_t total = 0;
  std::size_t visible = 0;
  for (const auto& truth : truths) {
    if (truth.kind != sim::GroundTruth::Kind::kHijack) continue;
    if (type != 0 && truth.hijack_type != type) continue;
    ++total;
    const auto it = traversed.find(truth.prefix);
    if (it != traversed.end() && it->second.contains(truth.other_as)) {
      ++visible;
    }
  }
  return total == 0 ? 1.0
                    : static_cast<double>(visible) /
                          static_cast<double>(total);
}

BaselineView BaselineView::from_stream(const UpdateStream& stream) {
  BaselineView view;
  for (const auto& update : stream) {
    for (const auto& link : update.path.links()) {
      view.adjacency_[link.from].insert(link.to);
      view.adjacency_[link.to].insert(link.from);
    }
  }
  return view;
}

bool BaselineView::has_link(AsNumber a, AsNumber b) const {
  const auto it = adjacency_.find(a);
  return it != adjacency_.end() && it->second.contains(b);
}

std::size_t BaselineView::degree(AsNumber as) const {
  const auto it = adjacency_.find(as);
  return it == adjacency_.end() ? 0 : it->second.size();
}

std::size_t BaselineView::common_neighbors(AsNumber a, AsNumber b) const {
  const auto ia = adjacency_.find(a);
  const auto ib = adjacency_.find(b);
  if (ia == adjacency_.end() || ib == adjacency_.end()) return 0;
  const auto& small = ia->second.size() < ib->second.size() ? ia->second
                                                            : ib->second;
  const auto& large = ia->second.size() < ib->second.size() ? ib->second
                                                            : ia->second;
  std::size_t count = 0;
  for (const AsNumber n : small) {
    if (large.contains(n)) ++count;
  }
  return count;
}

unsigned BaselineView::distance(AsNumber a, AsNumber b, unsigned limit) const {
  if (a == b) return 0;
  if (!adjacency_.contains(a) || !adjacency_.contains(b)) return limit;
  std::unordered_map<AsNumber, unsigned> depth;
  std::queue<AsNumber> queue;
  depth[a] = 0;
  queue.push(a);
  while (!queue.empty()) {
    const AsNumber u = queue.front();
    queue.pop();
    const unsigned d = depth[u];
    if (d + 1 >= limit) continue;
    const auto it = adjacency_.find(u);
    if (it == adjacency_.end()) continue;
    for (const AsNumber v : it->second) {
      if (v == b) return d + 1;
      if (depth.emplace(v, d + 1).second) queue.push(v);
    }
  }
  return limit;
}

int DfohDetector::suspicion_score(AsNumber a, AsNumber b) const {
  // Endpoints absent from the baseline are new ASes: a first announcement
  // is the normal way such a link appears, so there is no evidence of
  // forgery (DFOH similarly treats unknown nodes conservatively).
  if (baseline_->degree(a) == 0 || baseline_->degree(b) == 0) return 1;
  int score = 0;
  if (baseline_->distance(a, b, config_.distant + 1) >= config_.distant) {
    score += 2;  // topologically distant endpoints are the strongest signal
  }
  if (baseline_->common_neighbors(a, b) == 0) score += 1;
  // A brand-new adjacency of a well-connected origin toward a low-degree AS
  // is a classic forged-origin pattern.
  const std::size_t da = baseline_->degree(a);
  const std::size_t db = baseline_->degree(b);
  if (da > 0 && db > 0 && (da >= 8 * db || db >= 8 * da)) score += 1;
  return score;
}

std::vector<DfohCase> DfohDetector::scan(const DataSample& sample) const {
  std::vector<DfohCase> cases;
  std::unordered_set<std::uint64_t> reported;
  auto consider = [&](const Update& update) {
    if (update.withdrawal || update.path.size() < 2) return;
    const AsNumber origin = update.path.origin();
    const auto& hops = update.path.hops();
    // The origin-adjacent link is the last pair of the path.
    const AsNumber neighbor = hops[hops.size() - 2];
    if (neighbor == origin) return;
    if (baseline_->has_link(neighbor, origin)) return;
    const std::uint64_t key = undirected_link_key(neighbor, origin);
    if (!reported.insert(key).second) return;
    DfohCase candidate;
    candidate.neighbor = neighbor;
    candidate.origin = origin;
    candidate.prefix = update.prefix;
    candidate.time = update.time;
    candidate.score = suspicion_score(neighbor, origin);
    candidate.flagged = candidate.score >= config_.threshold;
    cases.push_back(candidate);
  };
  for (const auto& update : sample.updates) consider(update);
  return cases;
}

DfohScore dfoh_score(const std::vector<DfohCase>& cases,
                     const std::vector<sim::GroundTruth>& truths) {
  // Ground truth: set of forged origin-adjacent links.
  std::unordered_set<std::uint64_t> forged;
  for (const auto& truth : truths) {
    if (truth.kind != sim::GroundTruth::Kind::kHijack) continue;
    forged.insert(undirected_link_key(truth.other_as, truth.origin));
  }
  std::size_t true_positive = 0, false_positive = 0;
  std::size_t positives = 0, negatives = 0;
  DfohScore score;
  for (const auto& candidate : cases) {
    const bool is_forged =
        forged.contains(undirected_link_key(candidate.neighbor,
                                            candidate.origin));
    if (is_forged) {
      ++positives;
      if (candidate.flagged) ++true_positive;
    } else {
      ++negatives;
      if (candidate.flagged) ++false_positive;
    }
    if (candidate.flagged) ++score.flagged;
  }
  score.cases = cases.size();
  score.true_positive_rate =
      positives == 0 ? 0.0
                     : static_cast<double>(true_positive) /
                           static_cast<double>(positives);
  score.false_positive_rate =
      negatives == 0 ? 0.0
                     : static_cast<double>(false_positive) /
                           static_cast<double>(negatives);
  return score;
}

}  // namespace gill::uc
