#include "usecases/failure_localization.hpp"

#include <map>
#include <set>
#include <unordered_set>

#include "usecases/detectors.hpp"

namespace gill::uc {

LocalizationResult localize_failure(const DataSample& sample,
                                    Timestamp failure_time, Timestamp window) {
  // Pre-failure routes per (vp, prefix): RIB entries, then replayed updates
  // strictly before the failure.
  std::map<std::pair<VpId, net::Prefix>, bgp::AsPath> before;
  for (const auto& entry : sample.ribs) {
    before[{entry.vp, entry.prefix}] = entry.path;
  }
  for (const auto& update : sample.updates) {
    if (update.time >= failure_time) break;  // stream is time-sorted
    before[{update.vp, update.prefix}] =
        update.withdrawal ? bgp::AsPath{} : update.path;
  }

  // Reaction: last update per (vp, prefix) inside the window.
  std::map<std::pair<VpId, net::Prefix>, bgp::AsPath> after;
  for (const auto& update : sample.updates) {
    if (update.time < failure_time) continue;
    if (update.time >= failure_time + window) break;
    after[{update.vp, update.prefix}] =
        update.withdrawal ? bgp::AsPath{} : update.path;
  }

  // Tally, per candidate link, how many (vp, prefix) observations removed
  // it from their path. A strict intersection would be defeated by any
  // concurrent unrelated event in the window; the failed link instead
  // dominates the vote because every reaction to the failure removes it.
  LocalizationResult result;
  std::map<std::uint64_t, std::size_t> votes;
  std::unordered_set<net::Prefix, net::PrefixHash> touched_prefixes;
  std::unordered_set<std::uint64_t> exonerated;
  for (const auto& [key, new_path] : after) {
    const auto it = before.find(key);
    if (it == before.end() || it->second.empty()) continue;
    if (it->second == new_path) continue;
    touched_prefixes.insert(key.second);

    std::unordered_set<std::uint64_t> new_links;
    for (const auto& link : new_path.links()) {
      const std::uint64_t undirected = undirected_link_key(link.from, link.to);
      new_links.insert(undirected);
      // A link on a post-failure path is demonstrably alive.
      exonerated.insert(undirected);
    }
    for (const auto& link : it->second.links()) {
      const std::uint64_t undirected =
          undirected_link_key(link.from, link.to);
      if (!new_links.contains(undirected)) ++votes[undirected];
    }
  }

  // Feldmann-style exoneration: the reroutes share their old paths' suffix
  // toward the origin, so those links gather as many removal votes as the
  // failed link itself — but they still appear on the *surviving* paths of
  // VPs that did not react, which clears them.
  for (const auto& [key, path] : before) {
    if (!touched_prefixes.contains(key.second)) continue;
    if (after.contains(key)) continue;  // this VP reacted: not a survivor
    for (const auto& link : path.links()) {
      exonerated.insert(undirected_link_key(link.from, link.to));
    }
  }

  std::size_t best = 0;
  for (const auto& [link, count] : votes) {
    if (!exonerated.contains(link)) best = std::max(best, count);
  }
  for (const auto& [link, count] : votes) {
    if (count == best && best > 0 && !exonerated.contains(link)) {
      result.candidates.push_back(link);
    }
  }
  return result;
}

double failure_localization_score(const DataSample& sample,
                                  const std::vector<sim::GroundTruth>& truths,
                                  std::optional<bool> p2p_filter) {
  std::size_t total = 0;
  std::size_t localized = 0;
  for (const auto& truth : truths) {
    if (truth.kind != sim::GroundTruth::Kind::kLinkFailure) continue;
    if (p2p_filter && truth.link_is_p2p != *p2p_filter) continue;
    ++total;
    const auto result = localize_failure(sample, truth.time);
    if (result.localized() &&
        result.candidates[0] ==
            undirected_link_key(truth.link_a, truth.link_b)) {
      ++localized;
    }
  }
  return total == 0 ? 1.0
                    : static_cast<double>(localized) /
                          static_cast<double>(total);
}

}  // namespace gill::uc
