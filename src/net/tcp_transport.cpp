#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace gill::net {

namespace {

metrics::Registry& resolve(metrics::Registry* registry) {
  return registry != nullptr ? *registry : metrics::default_registry();
}

/// Parses an IPv4 literal, an IPv6 literal, or a bracketed IPv6 literal
/// ("[::1]") into a socket address. Returns the address length, 0 on a
/// parse failure.
socklen_t fill_addr(const std::string& host, std::uint16_t port,
                    sockaddr_storage& addr) {
  addr = {};
  std::string bare = host;
  if (bare.size() >= 2 && bare.front() == '[' && bare.back() == ']') {
    bare = bare.substr(1, bare.size() - 2);
  }
  auto* v4 = reinterpret_cast<sockaddr_in*>(&addr);
  if (inet_pton(AF_INET, bare.c_str(), &v4->sin_addr) == 1) {
    v4->sin_family = AF_INET;
    v4->sin_port = htons(port);
    return sizeof(sockaddr_in);
  }
  auto* v6 = reinterpret_cast<sockaddr_in6*>(&addr);
  if (inet_pton(AF_INET6, bare.c_str(), &v6->sin6_addr) == 1) {
    v6->sin6_family = AF_INET6;
    v6->sin6_port = htons(port);
    return sizeof(sockaddr_in6);
  }
  return 0;
}

int make_tcp_socket(int family) {
  const int fd =
      ::socket(family, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd >= 0) {
    // BGP messages are small and latency-sensitive during the handshake;
    // the send path batches in the ByteQueue, so Nagle only adds delay.
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  return fd;
}

/// Renders the peer of an accepted socket, whatever its family.
std::string peer_ip(const sockaddr_storage& addr) {
  char ip[INET6_ADDRSTRLEN] = "?";
  if (addr.ss_family == AF_INET6) {
    const auto* v6 = reinterpret_cast<const sockaddr_in6*>(&addr);
    inet_ntop(AF_INET6, &v6->sin6_addr, ip, sizeof ip);
  } else {
    const auto* v4 = reinterpret_cast<const sockaddr_in*>(&addr);
    inet_ntop(AF_INET, &v4->sin_addr, ip, sizeof ip);
  }
  return ip;
}

std::uint16_t peer_port(const sockaddr_storage& addr) {
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<const sockaddr_in6*>(&addr)->sin6_port);
  }
  return ntohs(reinterpret_cast<const sockaddr_in*>(&addr)->sin_port);
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpTransport
// ---------------------------------------------------------------------------

TcpTransport::TcpTransport(EventLoop& loop, Role role,
                           metrics::Registry* registry)
    : loop_(&loop),
      role_(role),
      bytes_read_(resolve(registry).counter(
          "gill_net_bytes_read_total", "Bytes read from TCP sockets")),
      bytes_written_(resolve(registry).counter(
          "gill_net_bytes_written_total", "Bytes written to TCP sockets")),
      connects_(resolve(registry).counter(
          "gill_net_connects_total", "TCP connect handshakes completed")),
      socket_errors_(resolve(registry).counter(
          "gill_net_socket_errors_total",
          "Socket-level failures (connect errors, ECONNRESET, EPIPE, ...)")),
      remote_closes_(resolve(registry).counter(
          "gill_net_remote_closes_total",
          "Orderly remote shutdowns observed (FIN / half-close)")),
      read_pauses_(resolve(registry).counter(
          "gill_overload_read_pauses_total",
          "Times EPOLLIN was disarmed (rate ceiling or queue watermark)")),
      read_resumes_(resolve(registry).counter(
          "gill_overload_read_resumes_total",
          "Times a paused session resumed reading")),
      paused_sessions_(resolve(registry).gauge(
          "gill_overload_paused_sessions",
          "Sessions currently exerting TCP backpressure")) {}

TcpTransport::~TcpTransport() { close_socket(/*and_endpoint=*/false); }

bool TcpTransport::dial(const std::string& host, std::uint16_t port) {
  close_socket(/*and_endpoint=*/false);
  sockaddr_storage addr{};
  const socklen_t addr_len = fill_addr(host, port, addr);
  if (addr_len == 0) return false;
  fd_ = make_tcp_socket(addr.ss_family);
  if (fd_ < 0) return false;
  can_redial_ = true;
  redial_ip_ = host;
  redial_port_ = port;
  connect_done_ = false;
  const int rc =
      ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), addr_len);
  if (rc == 0) {
    connect_done_ = true;
    connects_.inc();
  } else if (errno != EINPROGRESS) {
    // Immediate failure (ENETUNREACH, ...): surface it as a session drop so
    // the daemon's retry policy takes over.
    socket_errors_.inc();
    close_socket(/*and_endpoint=*/true);
    return true;
  }
  register_fd();
  return true;
}

bool TcpTransport::adopt(int fd) {
  if (fd < 0) return false;
  close_socket(/*and_endpoint=*/false);
  fd_ = fd;
  can_redial_ = false;
  connect_done_ = true;
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  register_fd();
  return true;
}

void TcpTransport::register_fd() {
  if (fd_ < 0) return;
  // Write interest stays armed until the connect completes and the backlog
  // is flushed once; afterwards it is re-armed only on short writes.
  want_write_ = true;
  loop_->add(fd_, kReadable | kWritable,
             [this](std::uint32_t events) { on_event(events); });
}

void TcpTransport::on_event(std::uint32_t events) {
  if (fd_ < 0) return;
  if (events & kWritable) {
    if (!connect_done_) {
      int err = 0;
      socklen_t len = sizeof err;
      if (getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
          err != 0) {
        socket_errors_.inc();
        close_socket(/*and_endpoint=*/true);
        return;
      }
      connect_done_ = true;
      connects_.inc();
    }
    flush_outbound();
  }
  if ((events & kReadable) && fd_ >= 0) drain_socket();
}

void TcpTransport::set_ingest_limits(const IngestLimits& limits) {
  limits_ = limits;
  ingest_bucket_ = TokenBucket(limits.max_bytes_per_sec, limits.burst_bytes);
}

bool TcpTransport::maybe_pause_reads(std::size_t chunk) {
  bool over = !ingest_bucket_.spend(static_cast<double>(chunk),
                                    loop_->now_ms());
  if (limits_.queue_high_watermark > 0 &&
      inbound().size() >= limits_.queue_high_watermark) {
    over = true;
  }
  if (!over || reads_paused_ || fd_ < 0) return false;
  reads_paused_ = true;
  loop_->modify(fd_, want_write_ ? kWritable : 0);
  read_pauses_.inc();
  paused_sessions_.add(1);
  return true;
}

void TcpTransport::maybe_resume_reads() {
  if (!reads_paused_ || fd_ < 0) return;
  if (ingest_bucket_.in_debt(loop_->now_ms())) return;
  if (limits_.queue_high_watermark > 0) {
    const std::size_t low = limits_.queue_low_watermark > 0
                                ? limits_.queue_low_watermark
                                : limits_.queue_high_watermark / 4;
    if (inbound().size() > low) return;
  }
  reads_paused_ = false;
  loop_->modify(fd_, kReadable | (want_write_ ? kWritable : 0));
  read_resumes_.inc();
  paused_sessions_.sub(1);
  // EPOLL_CTL_MOD re-reports a still-readable fd under EPOLLET, but drain
  // now so the resume does not depend on that edge.
  drain_socket();
}

void TcpTransport::drain_socket() {
  std::uint8_t buffer[16384];
  while (!reads_paused_ && fd_ >= 0) {
    const ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
    if (n > 0) {
      bytes_read_.inc(static_cast<std::uint64_t>(n));
      deliver_inbound(std::span(buffer, static_cast<std::size_t>(n)));
      maybe_pause_reads(static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      // FIN: the remote end closed (or half-closed) the conversation. BGP
      // has no meaningful simplex mode — treat it as the session ending.
      remote_closes_.inc();
      close_socket(/*and_endpoint=*/true);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    socket_errors_.inc();  // ECONNRESET and friends
    close_socket(/*and_endpoint=*/true);
    return;
  }
}

void TcpTransport::deliver_inbound(std::span<const std::uint8_t> chunk) {
  // Routed through the endpoint's write hook so a fault overlay perturbs
  // real socket traffic exactly like it perturbed in-memory messages
  // (granularity is the read chunk rather than one encoded message).
  if (role_ == Role::kDaemonSide) {
    endpoint_->write_to_daemon(chunk);
  } else {
    endpoint_->write_to_peer(chunk);
  }
}

void TcpTransport::flush_outbound() {
  if (fd_ < 0 || !connect_done_) return;
  auto& queue = outbound();
  while (!queue.empty()) {
    const auto chunk = queue.peek();
    const ssize_t n = ::send(fd_, chunk.data(), chunk.size(), MSG_NOSIGNAL);
    if (n > 0) {
      bytes_written_.inc(static_cast<std::uint64_t>(n));
      queue.consume(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Kernel buffer full: keep the backlog and ask for EPOLLOUT.
      if (!want_write_) {
        want_write_ = true;
        loop_->modify(fd_, kReadable | kWritable);
      }
      return;
    }
    socket_errors_.inc();  // EPIPE / ECONNRESET on write
    close_socket(/*and_endpoint=*/true);
    return;
  }
  if (want_write_) {
    want_write_ = false;
    loop_->modify(fd_, kReadable);
  }
}

void TcpTransport::sync() {
  if (fd_ < 0) {
    // The endpoint was reconnected (retry policy) while the socket was
    // dead, or an overlay reset was rolled back: restore the socket.
    if (endpoint_ != this && endpoint_->connected() && can_redial_) {
      dial(redial_ip_, redial_port_);
    }
    return;
  }
  if (!endpoint_->connected() && endpoint_ == this) {
    // Endpoint-initiated disconnect already closed us via the virtual
    // disconnect(); nothing to do.
    return;
  }
  maybe_resume_reads();
  flush_outbound();
}

void TcpTransport::write_to_peer(std::span<const std::uint8_t> message) {
  daemon::Transport::write_to_peer(message);
  if (role_ == Role::kDaemonSide) flush_outbound();
}

void TcpTransport::write_to_daemon(std::span<const std::uint8_t> message) {
  daemon::Transport::write_to_daemon(message);
  if (role_ == Role::kPeerSide) flush_outbound();
}

void TcpTransport::disconnect() {
  close_socket(/*and_endpoint=*/false);
  daemon::Transport::disconnect();
}

void TcpTransport::reconnect() {
  if (!can_redial_) return;  // adopted socket: the remote re-dials us
  daemon::Transport::reconnect();
  if (fd_ < 0) dial(redial_ip_, redial_port_);
}

void TcpTransport::close_socket(bool and_endpoint) {
  if (fd_ >= 0) {
    loop_->remove(fd_);
    ::close(fd_);
    fd_ = -1;
  }
  connect_done_ = false;
  want_write_ = false;
  if (reads_paused_) {
    reads_paused_ = false;
    paused_sessions_.sub(1);
  }
  if (and_endpoint && endpoint_->connected()) endpoint_->disconnect();
}

// ---------------------------------------------------------------------------
// TcpListener
// ---------------------------------------------------------------------------

TcpListener::TcpListener(EventLoop& loop, metrics::Registry* registry)
    : loop_(&loop),
      accepts_(resolve(registry).counter("gill_net_accepts_total",
                                         "Inbound connections accepted")),
      accept_errors_(resolve(registry).counter(
          "gill_net_accept_errors_total", "accept() failures")) {}

TcpListener::~TcpListener() { close(); }

bool TcpListener::listen(const std::string& host, std::uint16_t port,
                         AcceptCallback on_accept, int backlog,
                         bool reuse_port) {
  close();
  sockaddr_storage addr{};
  const socklen_t addr_len = fill_addr(host, port, addr);
  if (addr_len == 0) return false;
  fd_ = ::socket(addr.ss_family,
                 SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return false;
  const int one = 1;
  setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (reuse_port &&
      setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
    // The caller asked for shared-port sharding; claiming the port without
    // it would steal every connection from the sibling listeners.
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  if (addr.ss_family == AF_INET6) {
    // Dual-stack where the host allows it: an explicit v6 bind should not
    // also claim the v4 port space decision — leave v6only off (default on
    // Linux is configurable; pin it).
    const int off = 0;
    setsockopt(fd_, IPPROTO_IPV6, IPV6_V6ONLY, &off, sizeof off);
  }
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), addr_len) != 0 ||
      ::listen(fd_, backlog) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  sockaddr_storage bound{};
  socklen_t len = sizeof bound;
  if (getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = peer_port(bound);
  }
  on_accept_ = std::move(on_accept);
  loop_->add(fd_, kReadable, [this](std::uint32_t) { on_readable(); });
  return true;
}

void TcpListener::close() {
  if (fd_ >= 0) {
    loop_->remove(fd_);
    ::close(fd_);
    fd_ = -1;
  }
  port_ = 0;
}

void TcpListener::on_readable() {
  for (;;) {
    sockaddr_storage peer{};
    socklen_t len = sizeof peer;
    const int fd = ::accept4(fd_, reinterpret_cast<sockaddr*>(&peer), &len,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) accept_errors_.inc();
      return;
    }
    accepts_.inc();
    if (on_accept_) {
      on_accept_(fd, peer_ip(peer), peer_port(peer));
    } else {
      ::close(fd);
    }
  }
}

}  // namespace gill::net
