#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

namespace gill::net {

namespace {

std::uint64_t monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::uint32_t to_epoll(std::uint32_t interest) noexcept {
  std::uint32_t events = EPOLLET;
  if (interest & kReadable) events |= EPOLLIN;
  if (interest & kWritable) events |= EPOLLOUT;
  return events;
}

}  // namespace

EventLoop::EventLoop(std::uint32_t granularity_ms)
    : epoll_fd_(epoll_create1(EPOLL_CLOEXEC)),
      start_ns_(monotonic_ns()),
      granularity_ms_(std::max<std::uint32_t>(1, granularity_ms)) {
  // The wakeup eventfd lives outside handlers_ so it never shows up in
  // watched_count()/watched() — it is loop plumbing, not a session fd.
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ >= 0 && epoll_fd_ >= 0) {
    epoll_event event{};
    event.events = EPOLLIN | EPOLLET;
    event.data.fd = wake_fd_;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event) != 0) {
      ::close(wake_fd_);
      wake_fd_ = -1;
    }
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool EventLoop::post(std::function<void()> task) {
  if (wake_fd_ < 0) return false;
  {
    const std::lock_guard<std::mutex> lock(post_mutex_);
    posted_.push_back(std::move(task));
  }
  wake();
  return true;
}

void EventLoop::wake() noexcept {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::run_posted() {
  // Swap the batch out under the lock, run it outside: a task may post
  // again (even to this loop) without deadlocking. Tasks posted while the
  // batch runs land in the next iteration — the wake() they issued keeps
  // epoll_wait from blocking on them.
  std::vector<std::function<void()>> batch;
  {
    const std::lock_guard<std::mutex> lock(post_mutex_);
    batch.swap(posted_);
  }
  for (auto& task : batch) task();
}

std::uint64_t EventLoop::now_ms() const {
  return (monotonic_ns() - start_ns_) / 1'000'000ull;
}

bool EventLoop::add(int fd, std::uint32_t interest, FdCallback callback) {
  if (fd < 0 || epoll_fd_ < 0) return false;
  epoll_event event{};
  event.events = to_epoll(interest);
  event.data.fd = fd;
  const int op = handlers_.contains(fd) ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
  if (epoll_ctl(epoll_fd_, op, fd, &event) != 0) return false;
  handlers_[fd] = std::make_shared<FdCallback>(std::move(callback));
  return true;
}

bool EventLoop::modify(int fd, std::uint32_t interest) {
  if (!handlers_.contains(fd)) return false;
  epoll_event event{};
  event.events = to_epoll(interest);
  event.data.fd = fd;
  return epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) == 0;
}

void EventLoop::remove(int fd) {
  if (handlers_.erase(fd) > 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
}

EventLoop::TimerId EventLoop::schedule(std::uint64_t first_delay_ms,
                                       std::uint64_t interval_ms,
                                       TimerCallback callback) {
  Timer timer;
  timer.id = next_timer_id_++;
  timer.deadline_ms = now_ms() + first_delay_ms;
  timer.interval_ms = interval_ms;
  timer.callback = std::move(callback);
  const TimerId id = timer.id;
  insert(std::move(timer));
  return id;
}

void EventLoop::insert(Timer&& timer) {
  // Deadlines are quantized UP to the wheel grid, and never into the
  // current (already-crossed) tick's slot — either would strand the entry
  // for a full rotation. The quantized deadline makes the harvest check
  // exact: once a slot is visited, `deadline <= now` holds iff the entry's
  // tick (not a laps-away future lap of the same slot) has arrived.
  const std::uint64_t deadline_tick =
      (timer.deadline_ms + granularity_ms_ - 1) / granularity_ms_;
  const std::uint64_t min_tick = now_ms() / granularity_ms_ + 1;
  const std::uint64_t tick = std::max(deadline_tick, min_tick);
  timer.deadline_ms = tick * granularity_ms_;
  wheel_[static_cast<std::size_t>(tick % kWheelSlots)].push_back(
      std::move(timer));
  ++timer_count_;
}

EventLoop::TimerId EventLoop::call_after(std::uint64_t delay_ms,
                                         TimerCallback callback) {
  return schedule(delay_ms, 0, std::move(callback));
}

EventLoop::TimerId EventLoop::call_every(std::uint64_t interval_ms,
                                         TimerCallback callback) {
  const std::uint64_t interval = std::max<std::uint64_t>(1, interval_ms);
  return schedule(interval, interval, std::move(callback));
}

void EventLoop::cancel(TimerId id) {
  for (auto& slot : wheel_) {
    for (auto it = slot.begin(); it != slot.end(); ++it) {
      if (it->id == id) {
        slot.erase(it);
        --timer_count_;
        return;
      }
    }
  }
  // Not in the wheel: already expired (ignore), or harvested for the
  // dispatch batch running right now — a callback cancelling itself or a
  // sibling. Record it so the timer neither fires later in the batch nor
  // re-arms.
  if (dispatching_) cancelled_in_dispatch_.push_back(id);
}

void EventLoop::advance_wheel() {
  const std::uint64_t now = now_ms();
  const std::uint64_t now_tick = now / granularity_ms_;
  const std::uint64_t last_tick = last_advance_ms_ / granularity_ms_;
  if (now_tick == last_tick) return;
  last_advance_ms_ = now;
  // Visit every wheel slot the clock crossed since the last advance; a
  // stalled loop (long callback) catches up without skipping slots. Far
  // deadlines simply stay put: entries are deadline-checked, so crossing a
  // slot never fires a timer whose deadline is laps away. After a full
  // rotation (second-scale stall) one sweep of all slots suffices.
  const std::uint64_t crossed = now_tick - last_tick;
  const std::uint64_t slots_to_visit = std::min<std::uint64_t>(
      crossed, static_cast<std::uint64_t>(kWheelSlots));
  std::vector<Timer> due;
  auto harvest = [&](std::vector<Timer>& slot) {
    for (auto it = slot.begin(); it != slot.end();) {
      if (it->deadline_ms <= now) {
        due.push_back(std::move(*it));
        it = slot.erase(it);
        --timer_count_;
      } else {
        ++it;
      }
    }
  };
  for (std::uint64_t i = 0; i < slots_to_visit; ++i) {
    harvest(wheel_[static_cast<std::size_t>((last_tick + 1 + i) %
                                            kWheelSlots)]);
  }
  std::sort(due.begin(), due.end(), [](const Timer& a, const Timer& b) {
    return a.deadline_ms < b.deadline_ms ||
           (a.deadline_ms == b.deadline_ms && a.id < b.id);
  });
  dispatching_ = true;
  const auto cancelled = [this](TimerId id) {
    return std::find(cancelled_in_dispatch_.begin(),
                     cancelled_in_dispatch_.end(),
                     id) != cancelled_in_dispatch_.end();
  };
  for (auto& timer : due) {
    if (cancelled(timer.id)) continue;
    timer.callback();
    if (timer.interval_ms > 0 && !cancelled(timer.id)) {
      // Re-arm relative to the nominal deadline so a recurring tick does
      // not drift under load; insert() clamps deadlines in the past onto
      // the next tick.
      Timer next = std::move(timer);
      next.deadline_ms += next.interval_ms;
      insert(std::move(next));
    }
  }
  dispatching_ = false;
  cancelled_in_dispatch_.clear();
}

int EventLoop::run_once(int max_wait_ms) {
  owner_.store(std::this_thread::get_id(), std::memory_order_release);
  int timeout = max_wait_ms;
  if (timer_count_ > 0) {
    timeout = std::min<int>(timeout < 0 ? static_cast<int>(granularity_ms_)
                                        : timeout,
                            static_cast<int>(granularity_ms_));
  }
  epoll_event events[64];
  int n = 0;
  if (epoll_fd_ >= 0) {
    n = epoll_wait(epoll_fd_, events, 64, timeout);
    if (n < 0) n = 0;  // EINTR: fall through to the wheel
  }
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_fd_) {  // drain the counter; tasks run below
      std::uint64_t count = 0;
      while (::read(wake_fd_, &count, sizeof count) > 0) {
      }
      continue;
    }
    const auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;  // removed by an earlier callback
    std::uint32_t mask = 0;
    if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP)) {
      mask |= kReadable;
    }
    if (events[i].events & EPOLLOUT) mask |= kWritable;
    const auto handler = it->second;  // keep alive across self-removal
    (*handler)(mask);
  }
  run_posted();
  advance_wheel();
  return n;
}

void EventLoop::run() {
  stopped_.store(false, std::memory_order_release);
  owner_.store(std::this_thread::get_id(), std::memory_order_release);
  while (!stopped()) run_once(static_cast<int>(granularity_ms_));
  owner_.store(std::thread::id{}, std::memory_order_release);
}

}  // namespace gill::net
