// Minimal HTTP/1.1 server for the operator plane: GET /metrics (Prometheus
// text exposition straight from a metrics::Registry) and GET /healthz
// (JSON) — the scrape endpoint the ROADMAP deferred "once a network layer
// exists". Deliberately tiny: GET only, no keep-alive (Connection: close),
// 8 KiB request cap, one response per connection. A Prometheus scraper and
// `curl` are the entire client population.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "metrics/metrics.hpp"
#include "net/event_loop.hpp"

namespace gill::net {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Prometheus exposition content type (text format v0.0.4).
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

class HttpEndpoint {
 public:
  using Handler = std::function<HttpResponse()>;

  explicit HttpEndpoint(EventLoop& loop,
                        metrics::Registry* registry = nullptr);
  ~HttpEndpoint();
  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// Registers a GET route for an exact path (no patterns, no queries).
  void route(std::string path, Handler handler);
  /// Convenience: routes GET /metrics to `registry.expose_prometheus()`
  /// with the v0.0.4 content type. `registry` must outlive the endpoint.
  void serve_metrics(const metrics::Registry& registry);

  /// Binds and starts serving. Port 0 picks an ephemeral port (see port()).
  bool listen(const std::string& ipv4, std::uint16_t port);
  void close();
  bool listening() const noexcept;
  std::uint16_t port() const noexcept;

  std::size_t open_connections() const noexcept { return connections_.size(); }

 private:
  struct Connection {
    int fd = -1;
    std::string in;
    std::string out;
    std::size_t out_offset = 0;
    bool responding = false;
  };

  void on_accept(int fd);
  void on_event(int fd, std::uint32_t events);
  void handle_request(Connection& connection);
  void flush(Connection& connection);
  void drop(int fd);

  EventLoop* loop_;
  metrics::Registry& registry_;
  std::unique_ptr<class TcpListener> listener_;
  std::map<std::string, Handler> routes_;
  std::map<int, Connection> connections_;
  metrics::Counter& requests_;
  metrics::Counter& bad_requests_;
};

}  // namespace gill::net
