// Minimal HTTP/1.1 server for the operator/data plane. The surface is
// versioned (`/v1/...`): GET /v1/metrics (Prometheus text exposition
// straight from a metrics::Registry), GET /v1/healthz (JSON), the archive's
// data-retrieval routes (/v1/data, /v1/segments) and the live distribution
// plane (/v1/stream, see net/stream.hpp). Alternate spellings of a route
// can be registered with alias(). Deliberately tiny: GET only, no
// keep-alive (Connection: close), 8 KiB request cap, one response per
// connection. A Prometheus scraper, `curl` and a streaming consumer are the
// entire client population.
//
// Errors are uniform JSON envelopes: {"error":{"code":"...","message":
// "..."}} with the matching status code (400 malformed request/params, 404
// unknown route, 405 non-GET) — see error_response().
//
// Three response shapes exist. A plain response carries its whole body and
// is sent with Content-Length. A *streaming* response sets `producer`: the
// body is then sent with Transfer-Encoding: chunked, and the producer is
// pulled for the next chunk only as the socket drains — a query over a
// large archive never materializes in server memory. A *live* response
// additionally sets `live`: an empty pull then parks the connection open
// (waiting for future data) instead of terminating the stream; the data
// source wakes it with wake(stream_id) when bytes become available, or ends
// it with close_stream(stream_id).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "metrics/metrics.hpp"
#include "net/event_loop.hpp"

namespace gill::net {

/// One parsed GET request: the path and its percent-decoded query
/// parameters (`/v1/data?start=5&vp=2` -> path "/v1/data", query
/// {start: "5", vp: "2"}).
struct HttpRequest {
  std::string path;
  std::map<std::string, std::string> query;

  /// The parameter's value, or nullptr when absent.
  const std::string* get(const std::string& key) const {
    const auto it = query.find(key);
    return it != query.end() ? &it->second : nullptr;
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  /// Streaming body: appends the next chunk to its argument and returns
  /// true while more data may follow; false ends the stream, and so does
  /// an empty append unless `live` is set. When set, `body` is ignored and
  /// the response is chunked.
  using ChunkProducer = std::function<bool(std::string&)>;
  ChunkProducer producer;

  /// Live (continuous-chunked) mode: an empty pull parks the connection
  /// open instead of ending the stream. The producer's owner is handed the
  /// connection's stream id via `on_stream` and re-arms delivery with
  /// HttpEndpoint::wake(); producer returning false still ends the stream.
  bool live = false;
  std::function<void(std::uint64_t stream_id)> on_stream;
};

/// Builds the uniform JSON error envelope
/// {"error":{"code":code,"message":message}} with `status`.
HttpResponse error_response(int status, std::string_view code,
                            std::string_view message);

/// Strict full-string decimal parse (no sign, no whitespace, no trailing
/// junk, no overflow) — the validation the /v1/data query params need.
bool parse_u64(std::string_view text, std::uint64_t* out);

/// Prometheus exposition content type (text format v0.0.4).
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

class HttpEndpoint {
 public:
  using Handler = std::function<HttpResponse()>;
  using RouteHandler = std::function<HttpResponse(const HttpRequest&)>;
  /// Identity of one live (parked) streaming connection. Never reused
  /// within an endpoint's lifetime — unlike the fd, which the kernel
  /// recycles — so a stale wake()/close_stream() can never hit the wrong
  /// connection.
  using StreamId = std::uint64_t;

  explicit HttpEndpoint(EventLoop& loop,
                        metrics::Registry* registry = nullptr);
  ~HttpEndpoint();
  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// Registers a GET route for an exact path; queries are ignored. Returns
  /// false (and registers nothing) when the path is already taken — a
  /// duplicate registration is a wiring bug, never a silent overwrite.
  bool route(std::string path, Handler handler);
  /// Registers a GET route that sees the parsed request (query params) and
  /// may answer with a streaming (chunked) response.
  bool route(std::string path, RouteHandler handler);
  /// Registers `path` as an alias dispatching to `target`'s handler, e.g.
  /// alias("/v2/metrics", "/v1/metrics") when a future version keeps a
  /// route unchanged. The target must already be routed; duplicates are
  /// rejected like route(). (The pre-/v1 unversioned spellings were served
  /// through this for one release and are gone now — they answer 404.)
  bool alias(std::string path, std::string target);
  /// Convenience: routes GET /v1/metrics to
  /// `registry.expose_prometheus()` with the v0.0.4 content type.
  /// `registry` must outlive the endpoint.
  void serve_metrics(const metrics::Registry& registry);

  /// Binds and starts serving. `host` may be an IPv4 literal, an IPv6
  /// literal, or a bracketed IPv6 literal ("[::1]"). Port 0 picks an
  /// ephemeral port (see port()).
  bool listen(const std::string& host, std::uint16_t port);
  void close();
  bool listening() const noexcept;
  std::uint16_t port() const noexcept;

  /// Re-attempts delivery on a live connection (typically after its
  /// producer's source queued new data). Unknown/finished ids are ignored.
  void wake(StreamId id);
  /// Drops a live connection (subscriber eviction). Unknown ids ignored.
  void close_stream(StreamId id);

  /// Evicts connections with no read *or* send progress for `timeout_ms`.
  /// A stalled `GET /v1/data` reader would otherwise pin its fd — and, in
  /// chunked mode, the archive segment its producer holds — forever. A
  /// *parked* live stream (every queued byte delivered, no data pending)
  /// is idle-exempt: quiet is not stalled; only a connection with bytes it
  /// cannot push (or a request it never completes) is swept.
  /// 0 disables the sweep. Takes effect at the next listen().
  void set_idle_timeout_ms(std::uint64_t timeout_ms) {
    idle_timeout_ms_ = timeout_ms;
  }

  std::size_t open_connections() const noexcept { return connections_.size(); }

 private:
  struct Connection {
    int fd = -1;
    std::string in;
    std::string out;
    std::size_t out_offset = 0;
    bool responding = false;
    HttpResponse::ChunkProducer producer;  // chunked mode when set
    bool final_chunk_queued = false;
    bool live = false;    // continuous-chunked mode (live stream)
    bool parked = false;  // live stream drained; waiting for wake()
    StreamId stream_id = 0;
    std::uint64_t last_activity_ms = 0;
  };

  void on_accept(int fd);
  void on_event(int fd, std::uint32_t events);
  void handle_request(Connection& connection);
  void flush(Connection& connection);
  void drop(int fd);
  void sweep_idle();

  EventLoop* loop_;
  metrics::Registry& registry_;
  std::unique_ptr<class TcpListener> listener_;
  std::map<std::string, RouteHandler> routes_;
  std::map<std::string, std::string> aliases_;  // alias path -> canonical
  std::map<int, Connection> connections_;
  std::map<StreamId, int> streams_;  // live stream id -> fd
  StreamId next_stream_id_ = 1;
  std::uint64_t idle_timeout_ms_ = 60000;
  EventLoop::TimerId sweep_timer_ = 0;
  metrics::Counter& requests_;
  metrics::Counter& bad_requests_;
  metrics::Counter& idle_evictions_;
};

}  // namespace gill::net
