// Minimal HTTP/1.1 server for the operator plane: GET /metrics (Prometheus
// text exposition straight from a metrics::Registry), GET /healthz (JSON)
// and the archive's data-retrieval routes (/data, /segments). Deliberately
// tiny: GET only, no keep-alive (Connection: close), 8 KiB request cap,
// one response per connection. A Prometheus scraper and `curl` are the
// entire client population.
//
// Two response shapes exist. A plain response carries its whole body and
// is sent with Content-Length. A *streaming* response sets `producer`: the
// body is then sent with Transfer-Encoding: chunked, and the producer is
// pulled for the next chunk only as the socket drains — a query over a
// large archive never materializes in server memory.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "metrics/metrics.hpp"
#include "net/event_loop.hpp"

namespace gill::net {

/// One parsed GET request: the path and its percent-decoded query
/// parameters (`/data?start=5&vp=2` -> path "/data", query {start: "5",
/// vp: "2"}).
struct HttpRequest {
  std::string path;
  std::map<std::string, std::string> query;

  /// The parameter's value, or nullptr when absent.
  const std::string* get(const std::string& key) const {
    const auto it = query.find(key);
    return it != query.end() ? &it->second : nullptr;
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  /// Streaming body: appends the next chunk to its argument and returns
  /// true while more data may follow; false (or an empty append) ends the
  /// stream. When set, `body` is ignored and the response is chunked.
  using ChunkProducer = std::function<bool(std::string&)>;
  ChunkProducer producer;
};

/// Prometheus exposition content type (text format v0.0.4).
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

class HttpEndpoint {
 public:
  using Handler = std::function<HttpResponse()>;
  using RouteHandler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpEndpoint(EventLoop& loop,
                        metrics::Registry* registry = nullptr);
  ~HttpEndpoint();
  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// Registers a GET route for an exact path; queries are ignored.
  void route(std::string path, Handler handler);
  /// Registers a GET route that sees the parsed request (query params) and
  /// may answer with a streaming (chunked) response.
  void route(std::string path, RouteHandler handler);
  /// Convenience: routes GET /metrics to `registry.expose_prometheus()`
  /// with the v0.0.4 content type. `registry` must outlive the endpoint.
  void serve_metrics(const metrics::Registry& registry);

  /// Binds and starts serving. `host` may be an IPv4 literal, an IPv6
  /// literal, or a bracketed IPv6 literal ("[::1]"). Port 0 picks an
  /// ephemeral port (see port()).
  bool listen(const std::string& host, std::uint16_t port);
  void close();
  bool listening() const noexcept;
  std::uint16_t port() const noexcept;

  /// Evicts connections with no read *or* send progress for `timeout_ms`.
  /// A stalled `GET /data` reader would otherwise pin its fd — and, in
  /// chunked mode, the archive segment its producer holds — forever.
  /// 0 disables the sweep. Takes effect at the next listen().
  void set_idle_timeout_ms(std::uint64_t timeout_ms) {
    idle_timeout_ms_ = timeout_ms;
  }

  std::size_t open_connections() const noexcept { return connections_.size(); }

 private:
  struct Connection {
    int fd = -1;
    std::string in;
    std::string out;
    std::size_t out_offset = 0;
    bool responding = false;
    HttpResponse::ChunkProducer producer;  // chunked mode when set
    bool final_chunk_queued = false;
    std::uint64_t last_activity_ms = 0;
  };

  void on_accept(int fd);
  void on_event(int fd, std::uint32_t events);
  void handle_request(Connection& connection);
  void flush(Connection& connection);
  void drop(int fd);
  void sweep_idle();

  EventLoop* loop_;
  metrics::Registry& registry_;
  std::unique_ptr<class TcpListener> listener_;
  std::map<std::string, RouteHandler> routes_;
  std::map<int, Connection> connections_;
  std::uint64_t idle_timeout_ms_ = 60000;
  EventLoop::TimerId sweep_timer_ = 0;
  metrics::Counter& requests_;
  metrics::Counter& bad_requests_;
  metrics::Counter& idle_evictions_;
};

}  // namespace gill::net
