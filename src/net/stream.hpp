// The live streaming distribution plane (GET /v1/stream): the third leg of
// the platform beside ingest and the archive. Isolario's do-ut-des model
// (PAPERS.md) argues a collector attracts vantage points by serving
// filtered live feeds back to its users; RIS Live is the deployed shape.
// Every UPDATE the platform accepts is fanned out in real time to many
// concurrent HTTP subscribers, each with its own filter compiled from the
// request's query parameters:
//
//   curl -N 'host:9179/v1/stream?prefix=10.0.0.0/8&format=json'
//   params: vp=N            only this vantage point
//           prefix=CIDR     equal-or-more-specific prefixes (like /v1/data)
//           aspath=REGEX    POSIX-extended regex over "65010 65020 64500"
//           community=A:B   updates carrying this RFC 1997 community
//           format=json|mrt NDJSON live-feed documents (default) or raw
//                           framed MRT records
//
// Backpressure (DESIGN.md §12): each subscriber owns a bounded ByteQueue
// with high/low watermarks. Encoding happens once per update per format;
// enqueueing is a byte append. A subscriber whose queue is full has its
// *new* messages trimmed (dropped whole — framing never tears) until the
// queue drains below the low watermark; one that keeps dropping without
// ever draining (a stalled socket) is evicted. Slow readers therefore cost
// drops and eventually their subscription — never collector memory, and
// never another subscriber's latency.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <regex>
#include <string>
#include <vector>

#include "bgp/update.hpp"
#include "daemon/daemon.hpp"
#include "metrics/metrics.hpp"
#include "net/http_endpoint.hpp"

namespace gill::net {

/// One subscriber's filter, compiled from the /v1/stream query parameters.
/// All present clauses must match (conjunction); an empty subscription
/// matches everything (the full firehose).
struct StreamSubscription {
  enum class Format : std::uint8_t { kJson, kMrt };

  std::optional<bgp::VpId> vp;
  std::optional<net::Prefix> prefix;  // equal-or-more-specific, like /v1/data
  std::optional<std::regex> aspath;   // over AsPath::str(): "65010 65020 ..."
  std::string aspath_text;            // the source pattern (diagnostics)
  std::optional<bgp::Community> community;
  Format format = Format::kJson;

  /// Compiles the query parameters; on failure returns nullopt and stores
  /// a human-readable reason in `error` (the 400 envelope message).
  static std::optional<StreamSubscription> parse(const HttpRequest& request,
                                                 std::string* error);

  bool matches(const bgp::Update& update) const;
};

struct StreamConfig {
  /// Concurrent /v1/stream subscribers before new ones get 503.
  std::size_t max_subscribers = 1024;
  /// Per-subscriber queue high watermark: enqueues that would cross it are
  /// trimmed instead (the queue itself never exceeds it).
  std::size_t queue_high_bytes = 1 << 20;
  /// Trim mode ends once the queue drains below this; 0 = high / 2.
  std::size_t queue_low_bytes = 0;
  /// Consecutive trimmed messages (queue never draining in between) before
  /// the subscriber is evicted as stalled.
  std::size_t evict_after_drops = 4096;
};

/// Fans accepted updates out to every live /v1/stream subscriber. Lives on
/// the event-loop thread with the HttpEndpoint it serves through — publish,
/// subscribe and drain all run there, so no state is locked.
class StreamHub {
 public:
  /// `http` must outlive the hub. Registers GET /v1/stream; returns false
  /// if the path was already taken.
  StreamHub(HttpEndpoint& http, StreamConfig config = {},
            metrics::Registry* registry = nullptr);

  /// Registers the routes (called by the constructor; exposed so tests can
  /// assert the duplicate-rejection contract).
  bool register_routes();

  /// Fans one accepted update out to every matching subscriber. Encodes at
  /// most once per format, regardless of subscriber count.
  void publish(const bgp::Update& update);

  std::size_t subscriber_count() const;
  /// Bytes currently queued across all subscribers.
  std::size_t queue_bytes() const;
  /// Largest single-subscriber queue ever observed (bench/tests assert it
  /// stays at or below the configured high watermark).
  std::size_t max_subscriber_queue_bytes() const noexcept {
    return max_subscriber_queue_bytes_;
  }
  const StreamConfig& config() const noexcept { return config_; }

 private:
  /// One live subscriber: its compiled filter, its bounded byte queue and
  /// its delivery state. Owned by the HTTP connection's producer closure
  /// (shared_ptr); the hub holds weak references and prunes expired ones,
  /// so a dropped connection is the single point of truth for lifetime.
  struct Subscriber {
    Subscriber(StreamSubscription subscription, metrics::Gauge& subscribers,
               metrics::Gauge& queue_bytes);
    ~Subscriber();

    StreamSubscription subscription;
    daemon::ByteQueue queue;
    HttpEndpoint::StreamId stream_id = 0;
    bool trimming = false;  // above high watermark: new messages dropped
    bool evicted = false;   // producer ends the stream on next pull
    std::size_t drops_in_a_row = 0;
    metrics::Gauge& subscribers_gauge;
    metrics::Gauge& queue_bytes_gauge;
  };

  HttpResponse subscribe(const HttpRequest& request);
  void prune_expired();

  HttpEndpoint* http_;
  StreamConfig config_;
  metrics::Registry& registry_;
  std::vector<std::weak_ptr<Subscriber>> subscribers_;
  std::size_t max_subscriber_queue_bytes_ = 0;
  metrics::Counter& fanout_msgs_;
  metrics::Counter& dropped_msgs_;
  metrics::Counter& evictions_;
  metrics::Counter& rejected_;
  metrics::Gauge& subscribers_gauge_;
  metrics::Gauge& queue_bytes_gauge_;
};

}  // namespace gill::net
