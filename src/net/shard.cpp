#include "net/shard.hpp"

#include <utility>

namespace gill::net {

namespace {
metrics::Registry& resolve(metrics::Registry* registry) {
  return registry != nullptr ? *registry : metrics::default_registry();
}
}  // namespace

ShardSet::ShardSet(std::size_t count, std::uint32_t granularity_ms) {
  const std::size_t n = count > 0 ? count : 1;
  loops_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    loops_.push_back(std::make_unique<EventLoop>(granularity_ms));
  }
}

ShardSet::~ShardSet() { stop(); }

void ShardSet::start() {
  if (running()) return;
  threads_.reserve(loops_.size());
  for (auto& loop : loops_) {
    threads_.emplace_back([raw = loop.get()] { raw->run(); });
  }
}

void ShardSet::stop() {
  if (!running()) return;
  // stop() is cross-thread safe (atomic flag + eventfd wake), so a loop
  // parked in epoll_wait exits its current iteration immediately.
  for (auto& loop : loops_) loop->stop();
  for (auto& thread : threads_) thread.join();
  threads_.clear();
}

void ShardSet::post(std::size_t shard, std::function<void()> task) {
  if (!running()) {
    task();
    return;
  }
  loops_[shard]->post(std::move(task));
}

ShardedListener::ShardedListener(ShardSet& shards,
                                 metrics::Registry* registry)
    : shards_(&shards),
      registry_(registry),
      handoffs_(resolve(registry).counter(
          "gill_net_shard_handoffs_total",
          "Accepted fds round-robined to another shard's loop (dispatcher "
          "fallback; 0 while SO_REUSEPORT sharding is active)")) {}

ShardedListener::~ShardedListener() { close(); }

bool ShardedListener::listen(const std::string& host, std::uint16_t port,
                             AcceptCallback on_accept, Mode mode) {
  close();
  on_accept_ = std::move(on_accept);

  if (mode == Mode::kAuto) {
    // One SO_REUSEPORT listener per shard. The first bind resolves an
    // ephemeral port; the siblings must then join that exact port, so any
    // failure past the first tears the group down and falls back.
    bool ok = true;
    for (std::size_t shard = 0; shard < shards_->size(); ++shard) {
      auto listener =
          std::make_unique<TcpListener>(shards_->loop(shard), registry_);
      const std::uint16_t bind_port = shard == 0 ? port : port_;
      if (!listener->listen(
              host, bind_port,
              [this, shard](int fd, std::string ip, std::uint16_t p) {
                on_accept_(shard, fd, std::move(ip), p);
              },
              /*backlog=*/128, /*reuse_port=*/true)) {
        ok = false;
        break;
      }
      port_ = listener->port();
      listeners_.push_back(std::move(listener));
    }
    if (ok) {
      reuse_port_ = true;
      return true;
    }
    listeners_.clear();
    port_ = 0;
  }

  // Dispatcher fallback: shard 0 accepts everything and hands each fd to
  // its round-robin owner BEFORE any epoll registration — the post() is
  // the ownership transfer.
  auto listener = std::make_unique<TcpListener>(shards_->loop(0), registry_);
  const bool ok = listener->listen(
      host, port, [this](int fd, std::string ip, std::uint16_t p) {
        const std::size_t shard = next_shard_;
        next_shard_ = (next_shard_ + 1) % shards_->size();
        if (shard != 0) handoffs_.inc();
        shards_->post(shard, [this, shard, fd, ip = std::move(ip), p] {
          on_accept_(shard, fd, ip, p);
        });
      });
  if (!ok) return false;
  port_ = listener->port();
  listeners_.push_back(std::move(listener));
  reuse_port_ = false;
  return true;
}

void ShardedListener::close() {
  // Each TcpListener's fd is registered with its shard's loop; closing
  // from another thread while the fleet runs would race the loop's fd
  // table, so closes are posted (call(): post + wait) shard by shard.
  for (std::size_t i = 0; i < listeners_.size(); ++i) {
    TcpListener* raw = listeners_[i].get();
    const std::size_t shard = reuse_port_ ? i : 0;
    shards_->call(shard, [raw] { raw->close(); });
  }
  listeners_.clear();
  port_ = 0;
  reuse_port_ = false;
  next_shard_ = 0;
}

}  // namespace gill::net
