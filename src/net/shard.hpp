// The multi-loop ingest fleet (DESIGN.md §14): N EventLoops, one pinned
// thread each, plus the two primitives that shard inbound sessions across
// them without ever sharing a session between threads.
//
//   * ShardSet owns the loops and their threads. Cross-shard communication
//     is EventLoop::post() only — a closure runs on the owning shard's
//     thread, so shard state needs no locks. call() is the synchronous
//     spelling (post + wait) the control plane uses for harvests.
//   * ShardedListener puts one SO_REUSEPORT listener on every shard, so
//     the kernel spreads inbound connections across the loops with zero
//     hand-off cost. When the port cannot be shared (no SO_REUSEPORT, or a
//     deterministic spread is wanted: dispatcher mode), a single acceptor
//     on shard 0 adopts the fd and round-robins it to the owning shard via
//     post() — the fd crosses threads BEFORE it is registered with any
//     epoll, so ownership is unambiguous either way.
//
// The accept callback always runs on the owning shard's loop thread; the
// session it builds (transport, daemon FSM, token buckets) lives and dies
// on that thread.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "metrics/metrics.hpp"
#include "net/event_loop.hpp"
#include "net/tcp_transport.hpp"

namespace gill::net {

class ShardSet {
 public:
  /// Builds `count` loops (clamped to at least 1). Threads start in
  /// start(); until then every loop may be used single-threaded (setup).
  explicit ShardSet(std::size_t count, std::uint32_t granularity_ms = 10);
  ~ShardSet();
  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  std::size_t size() const noexcept { return loops_.size(); }
  EventLoop& loop(std::size_t shard) { return *loops_[shard]; }

  /// Spawns one thread per loop, each running EventLoop::run().
  void start();
  /// Stops every loop (posted, so a loop parked in epoll_wait wakes) and
  /// joins the threads. Idempotent; also runs from the destructor.
  void stop();
  bool running() const noexcept { return !threads_.empty(); }

  /// Runs `task` on shard `shard`'s thread: posted when the fleet is
  /// running, inline when it is not (setup/teardown phases).
  void post(std::size_t shard, std::function<void()> task);

  /// post() + wait: runs `fn` on the shard thread and returns its result.
  /// The control plane's harvest primitive (mirror take, health snapshot,
  /// filter install). Never call from a shard thread onto another shard
  /// that might be blocked on this one — the control thread is the only
  /// intended caller, and shards never call() anybody.
  template <typename F>
  auto call(std::size_t shard, F&& fn) -> std::invoke_result_t<F> {
    using Result = std::invoke_result_t<F>;
    if (!running()) return fn();
    std::packaged_task<Result()> task(std::forward<F>(fn));
    std::future<Result> future = task.get_future();
    loops_[shard]->post([&task] { task(); });
    return future.get();
  }

 private:
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<std::thread> threads_;
};

class ShardedListener {
 public:
  /// How connections are spread across shards.
  enum class Mode : std::uint8_t {
    kAuto,        // SO_REUSEPORT listeners; dispatcher when that fails
    kDispatcher,  // single acceptor on shard 0, round-robin hand-off
  };

  /// Runs on the OWNING shard's loop thread; the callback owns the fd.
  using AcceptCallback = std::function<void(
      std::size_t shard, int fd, std::string peer_ip, std::uint16_t port)>;

  ShardedListener(ShardSet& shards, metrics::Registry* registry = nullptr);
  ~ShardedListener();
  ShardedListener(const ShardedListener&) = delete;
  ShardedListener& operator=(const ShardedListener&) = delete;

  /// Binds `host:port` across the fleet. Call BEFORE ShardSet::start():
  /// listener registration touches each loop's fd table from this thread.
  bool listen(const std::string& host, std::uint16_t port,
              AcceptCallback on_accept, Mode mode = Mode::kAuto);
  void close();

  /// The bound port (resolves ephemeral binds).
  std::uint16_t port() const noexcept { return port_; }
  /// True when every shard got its own SO_REUSEPORT listener; false in
  /// dispatcher (hand-off) mode.
  bool reuse_port_active() const noexcept { return reuse_port_; }
  std::size_t handoffs() const noexcept {
    return static_cast<std::size_t>(handoffs_.value());
  }

 private:
  ShardSet* shards_;
  metrics::Registry* registry_;
  std::vector<std::unique_ptr<TcpListener>> listeners_;
  AcceptCallback on_accept_;
  std::uint16_t port_ = 0;
  bool reuse_port_ = false;
  std::size_t next_shard_ = 0;  // dispatcher round-robin cursor (shard 0 only)
  metrics::Counter& handoffs_;
};

}  // namespace gill::net
