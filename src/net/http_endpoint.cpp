#include "net/http_endpoint.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <vector>

#include "net/tcp_transport.hpp"

namespace gill::net {

namespace {

constexpr std::size_t kMaxRequestBytes = 8192;

std::string_view status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

std::string render(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " ";
  out += status_text(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  if (response.producer) {
    out += "\r\nTransfer-Encoding: chunked";
    out += "\r\nConnection: close\r\n\r\n";
    return out;  // chunks follow as the socket drains
  }
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string url_decode(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '%' && i + 2 < in.size()) {
      const int hi = hex_digit(in[i + 1]);
      const int lo = hex_digit(in[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
        continue;
      }
    }
    out += in[i] == '+' ? ' ' : in[i];
  }
  return out;
}

HttpRequest parse_target(std::string_view target) {
  HttpRequest request;
  const std::size_t question = target.find('?');
  request.path = std::string(target.substr(0, question));
  if (question == std::string_view::npos) return request;
  std::string_view rest = target.substr(question + 1);
  while (!rest.empty()) {
    const std::size_t amp = rest.find('&');
    const std::string_view pair = rest.substr(0, amp);
    const std::size_t eq = pair.find('=');
    if (!pair.empty()) {
      request.query[url_decode(pair.substr(0, eq))] =
          eq == std::string_view::npos ? std::string()
                                       : url_decode(pair.substr(eq + 1));
    }
    if (amp == std::string_view::npos) break;
    rest = rest.substr(amp + 1);
  }
  return request;
}

std::string encode_chunk(const std::string& data) {
  char size_line[32];
  const int n =
      std::snprintf(size_line, sizeof size_line, "%zx\r\n", data.size());
  std::string out(size_line, static_cast<std::size_t>(n));
  out += data;
  out += "\r\n";
  return out;
}

void append_json_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

metrics::Registry& resolve(metrics::Registry* registry) {
  return registry != nullptr ? *registry : metrics::default_registry();
}

}  // namespace

HttpResponse error_response(int status, std::string_view code,
                            std::string_view message) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = "{\"error\":{\"code\":\"";
  append_json_escaped(response.body, code);
  response.body += "\",\"message\":\"";
  append_json_escaped(response.body, message);
  response.body += "\"}}";
  return response;
}

bool parse_u64(std::string_view text, std::uint64_t* out) {
  if (text.empty() || text.size() > 20) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // would overflow
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

HttpEndpoint::HttpEndpoint(EventLoop& loop, metrics::Registry* registry)
    : loop_(&loop),
      registry_(resolve(registry)),
      listener_(std::make_unique<TcpListener>(loop, &registry_)),
      requests_(registry_.counter("gill_net_http_requests_total",
                                  "HTTP requests answered with 200")),
      bad_requests_(registry_.counter(
          "gill_net_http_bad_requests_total",
          "HTTP requests rejected (parse error, bad method, unknown path)")),
      idle_evictions_(registry_.counter(
          "gill_net_http_idle_evictions_total",
          "HTTP connections dropped for inactivity (stalled readers)")) {}

HttpEndpoint::~HttpEndpoint() { close(); }

bool HttpEndpoint::route(std::string path, Handler handler) {
  return route(std::move(path),
               RouteHandler([handler = std::move(handler)](
                   const HttpRequest&) { return handler(); }));
}

bool HttpEndpoint::route(std::string path, RouteHandler handler) {
  if (routes_.contains(path) || aliases_.contains(path)) return false;
  routes_.emplace(std::move(path), std::move(handler));
  return true;
}

bool HttpEndpoint::alias(std::string path, std::string target) {
  if (routes_.contains(path) || aliases_.contains(path)) return false;
  if (!routes_.contains(target)) return false;  // alias to nothing
  aliases_.emplace(std::move(path), std::move(target));
  return true;
}

void HttpEndpoint::serve_metrics(const metrics::Registry& registry) {
  route("/v1/metrics", [&registry] {
    HttpResponse response;
    response.content_type = kPrometheusContentType;
    response.body = registry.expose_prometheus();
    return response;
  });
}

bool HttpEndpoint::listen(const std::string& host, std::uint16_t port) {
  const bool ok = listener_->listen(
      host, port, [this](int fd, std::string, std::uint16_t) { on_accept(fd); });
  if (ok && idle_timeout_ms_ > 0 && sweep_timer_ == 0) {
    // Sweep a few times per timeout so the worst-case overstay is a
    // fraction of the configured limit, not double it.
    const std::uint64_t interval =
        std::max<std::uint64_t>(50, idle_timeout_ms_ / 4);
    sweep_timer_ = loop_->call_every(interval, [this] { sweep_idle(); });
  }
  return ok;
}

void HttpEndpoint::close() {
  if (sweep_timer_ != 0) {
    loop_->cancel(sweep_timer_);
    sweep_timer_ = 0;
  }
  listener_->close();
  while (!connections_.empty()) drop(connections_.begin()->first);
}

bool HttpEndpoint::listening() const noexcept {
  return listener_->listening();
}

std::uint16_t HttpEndpoint::port() const noexcept { return listener_->port(); }

void HttpEndpoint::wake(StreamId id) {
  const auto it = streams_.find(id);
  if (it == streams_.end()) return;
  const auto connection = connections_.find(it->second);
  if (connection == connections_.end() || !connection->second.responding) {
    return;
  }
  // A parked stream pulls its producer again; a stream mid-send simply
  // retries the flush (harmless if EPOLLOUT would have resumed it anyway).
  flush(connection->second);
}

void HttpEndpoint::close_stream(StreamId id) {
  const auto it = streams_.find(id);
  if (it == streams_.end()) return;
  drop(it->second);
}

void HttpEndpoint::on_accept(int fd) {
  Connection connection;
  connection.fd = fd;
  connection.last_activity_ms = loop_->now_ms();
  connections_.emplace(fd, std::move(connection));
  loop_->add(fd, kReadable,
             [this, fd](std::uint32_t events) { on_event(fd, events); });
}

void HttpEndpoint::on_event(int fd, std::uint32_t events) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& connection = it->second;
  if (events & kReadable) {
    char buffer[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
      if (n > 0) {
        connection.last_activity_ms = loop_->now_ms();
        if (!connection.responding) {
          connection.in.append(buffer, static_cast<std::size_t>(n));
        }
        continue;  // a response in flight: drain and ignore extra bytes
      }
      if (n == 0) {  // client closed before/while we answer
        if (!connection.responding || connection.live) {
          // No request to answer — or a live stream whose consumer left:
          // nobody is reading, so the subscription ends here.
          drop(fd);
          return;
        }
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      drop(fd);
      return;
    }
    if (!connection.responding) {
      if (connection.in.size() > kMaxRequestBytes) {
        bad_requests_.inc();
        connection.out =
            render(error_response(400, "bad_request", "request too large"));
        connection.responding = true;
      } else if (connection.in.find("\r\n\r\n") != std::string::npos) {
        handle_request(connection);
      }
    }
  }
  if (connection.responding) flush(connection);
}

void HttpEndpoint::handle_request(Connection& connection) {
  HttpResponse response;
  const std::string_view request(connection.in);
  const std::size_t line_end = request.find("\r\n");
  const std::string_view line = request.substr(0, line_end);
  const std::size_t method_end = line.find(' ');
  const std::size_t target_end =
      method_end == std::string_view::npos
          ? std::string_view::npos
          : line.find(' ', method_end + 1);
  if (method_end == std::string_view::npos ||
      target_end == std::string_view::npos) {
    bad_requests_.inc();
    response = error_response(400, "bad_request", "malformed request line");
  } else {
    const std::string_view method = line.substr(0, method_end);
    const std::string_view target =
        line.substr(method_end + 1, target_end - method_end - 1);
    const HttpRequest parsed = parse_target(target);
    auto it = routes_.find(parsed.path);
    if (it == routes_.end()) {
      const auto alias = aliases_.find(parsed.path);
      if (alias != aliases_.end()) it = routes_.find(alias->second);
    }
    if (method != "GET") {
      bad_requests_.inc();
      response = error_response(405, "method_not_allowed",
                                "only GET is supported");
    } else if (it != routes_.end()) {
      response = it->second(parsed);
      requests_.inc();
    } else {
      bad_requests_.inc();
      response = error_response(404, "not_found", "no such route");
    }
  }
  connection.out = render(response);
  connection.producer = std::move(response.producer);
  connection.live = response.live && connection.producer != nullptr;
  connection.responding = true;
  if (connection.live) {
    connection.stream_id = next_stream_id_++;
    streams_[connection.stream_id] = connection.fd;
    if (response.on_stream) response.on_stream(connection.stream_id);
  }
}

void HttpEndpoint::flush(Connection& connection) {
  const int fd = connection.fd;
  connection.parked = false;
  for (;;) {
    while (connection.out_offset < connection.out.size()) {
      const ssize_t n =
          ::send(fd, connection.out.data() + connection.out_offset,
                 connection.out.size() - connection.out_offset, MSG_NOSIGNAL);
      if (n > 0) {
        connection.out_offset += static_cast<std::size_t>(n);
        connection.last_activity_ms = loop_->now_ms();
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        loop_->modify(fd, kReadable | kWritable);
        return;  // EPOLLOUT resumes the flush
      }
      drop(fd);
      return;
    }
    // Everything queued so far is on the wire. In chunked mode, pull the
    // producer for the next chunk — one chunk in memory at a time.
    if (connection.producer && !connection.final_chunk_queued) {
      connection.out.clear();
      connection.out_offset = 0;
      std::string chunk;
      const bool more = connection.producer(chunk);
      if (more && !chunk.empty()) {
        connection.out = encode_chunk(chunk);
        continue;
      }
      if (more && connection.live) {
        // Live stream with nothing pending: park with the connection open
        // and fully drained; wake(stream_id) resumes delivery. Quiet, not
        // stalled — the idle sweep leaves parked streams alone.
        connection.parked = true;
        connection.last_activity_ms = loop_->now_ms();
        loop_->modify(fd, kReadable);  // only client-close interest remains
        return;
      }
      connection.out = "0\r\n\r\n";  // terminating chunk
      connection.final_chunk_queued = true;
      continue;
    }
    drop(fd);  // Connection: close — one response per connection
    return;
  }
}

void HttpEndpoint::drop(int fd) {
  const auto it = connections_.find(fd);
  if (it != connections_.end() && it->second.stream_id != 0) {
    streams_.erase(it->second.stream_id);
  }
  loop_->remove(fd);
  ::close(fd);
  connections_.erase(fd);
}

void HttpEndpoint::sweep_idle() {
  if (idle_timeout_ms_ == 0) return;
  const std::uint64_t now = loop_->now_ms();
  std::vector<int> stale;
  for (const auto& [fd, connection] : connections_) {
    // Idle means no *socket* progress while work is pending: an unfinished
    // request, or response bytes the peer will not read. A parked live
    // stream has delivered everything and owes nothing — a quiet feed must
    // not cost a subscriber its connection.
    if (connection.parked) continue;
    if (now - connection.last_activity_ms >= idle_timeout_ms_) {
      stale.push_back(fd);
    }
  }
  for (const int fd : stale) {
    idle_evictions_.inc();
    drop(fd);  // releases the fd and any chunk producer (segment reader)
  }
}

}  // namespace gill::net
