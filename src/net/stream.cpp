#include "net/stream.hpp"

#include <algorithm>

#include "feed/live_feed.hpp"
#include "mrt/mrt.hpp"

namespace gill::net {

namespace {

/// Upper bound on one chunk pulled from a subscriber queue: large enough
/// to amortize framing, small enough that one slow reader's flush never
/// monopolizes the loop.
constexpr std::size_t kMaxChunkBytes = 64 * 1024;

bool parse_u16(const std::string& text, std::uint16_t* out) {
  std::uint64_t value = 0;
  if (!parse_u64(text, &value) || value > 65535) return false;
  *out = static_cast<std::uint16_t>(value);
  return true;
}

}  // namespace

std::optional<StreamSubscription> StreamSubscription::parse(
    const HttpRequest& request, std::string* error) {
  StreamSubscription out;
  const auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };
  for (const auto& [key, value] : request.query) {
    if (key == "vp") {
      std::uint64_t vp = 0;
      if (!parse_u64(value, &vp) || vp > UINT32_MAX) {
        return fail("bad vp '" + value + "': want a decimal VP id");
      }
      out.vp = static_cast<bgp::VpId>(vp);
    } else if (key == "prefix") {
      const auto prefix = net::Prefix::parse(value);
      if (!prefix) {
        return fail("bad prefix '" + value + "': want CIDR like 10.0.0.0/8");
      }
      out.prefix = *prefix;
    } else if (key == "aspath") {
      try {
        out.aspath.emplace(value, std::regex::extended);
      } catch (const std::regex_error&) {
        return fail("bad aspath '" + value +
                    "': want a POSIX extended regex");
      }
      out.aspath_text = value;
    } else if (key == "community") {
      const std::size_t colon = value.find(':');
      std::uint16_t asn = 0;
      std::uint16_t community_value = 0;
      if (colon == std::string::npos ||
          !parse_u16(value.substr(0, colon), &asn) ||
          !parse_u16(value.substr(colon + 1), &community_value)) {
        return fail("bad community '" + value + "': want ASN:VALUE");
      }
      out.community = bgp::Community(asn, community_value);
    } else if (key == "format") {
      if (value == "json") {
        out.format = Format::kJson;
      } else if (value == "mrt") {
        out.format = Format::kMrt;
      } else {
        return fail("bad format '" + value + "': want json or mrt");
      }
    } else {
      return fail("unknown parameter '" + key + "'");
    }
  }
  return out;
}

bool StreamSubscription::matches(const bgp::Update& update) const {
  if (vp && update.vp != *vp) return false;
  if (prefix && !prefix->covers(update.prefix)) return false;
  if (community &&
      std::find(update.communities.begin(), update.communities.end(),
                *community) == update.communities.end()) {
    return false;
  }
  if (aspath && !std::regex_search(update.path.str(), *aspath)) return false;
  return true;
}

StreamHub::Subscriber::Subscriber(StreamSubscription subscription_in,
                                  metrics::Gauge& subscribers,
                                  metrics::Gauge& queue_bytes)
    : subscription(std::move(subscription_in)),
      subscribers_gauge(subscribers),
      queue_bytes_gauge(queue_bytes) {
  subscribers_gauge.add(1.0);
}

StreamHub::Subscriber::~Subscriber() {
  queue_bytes_gauge.sub(static_cast<double>(queue.size()));
  subscribers_gauge.sub(1.0);
}

StreamHub::StreamHub(HttpEndpoint& http, StreamConfig config,
                     metrics::Registry* registry)
    : http_(&http),
      config_(config),
      registry_(registry != nullptr ? *registry
                                    : metrics::default_registry()),
      fanout_msgs_(registry_.counter(
          "gill_stream_fanout_msgs_total",
          "Updates delivered into subscriber queues (per subscriber)")),
      dropped_msgs_(registry_.counter(
          "gill_stream_dropped_msgs_total",
          "Updates trimmed because a subscriber queue was full")),
      evictions_(registry_.counter(
          "gill_stream_evictions_total",
          "Subscribers evicted as stalled (queue full, never draining)")),
      rejected_(registry_.counter(
          "gill_stream_rejected_total",
          "Subscriptions refused (bad parameters or subscriber limit)")),
      subscribers_gauge_(registry_.gauge(
          "gill_stream_subscribers", "Live /v1/stream subscribers")),
      queue_bytes_gauge_(registry_.gauge(
          "gill_stream_queue_bytes",
          "Bytes queued across all subscriber queues")) {
  register_routes();
}

bool StreamHub::register_routes() {
  return http_->route(
      "/v1/stream",
      [this](const HttpRequest& request) { return subscribe(request); });
}

HttpResponse StreamHub::subscribe(const HttpRequest& request) {
  prune_expired();
  std::string error;
  auto subscription = StreamSubscription::parse(request, &error);
  if (!subscription) {
    rejected_.inc();
    return error_response(400, "bad_param", error);
  }
  if (subscribers_.size() >= config_.max_subscribers) {
    rejected_.inc();
    return error_response(503, "subscribers_exhausted",
                          "subscriber limit reached, retry later");
  }
  const bool json = subscription->format == StreamSubscription::Format::kJson;
  auto subscriber = std::make_shared<Subscriber>(
      std::move(*subscription), subscribers_gauge_, queue_bytes_gauge_);
  subscribers_.push_back(subscriber);

  HttpResponse response;
  response.content_type =
      json ? "application/x-ndjson" : "application/octet-stream";
  response.live = true;
  response.on_stream = [subscriber](HttpEndpoint::StreamId id) {
    subscriber->stream_id = id;
  };
  // The producer closure owns the subscriber: when the connection drops
  // (client left, idle-evicted, or close_stream), the closure's destruction
  // releases the last reference and the hub prunes its expired weak_ptr.
  response.producer = [subscriber](std::string& out) {
    if (subscriber->queue.empty()) return !subscriber->evicted;
    const auto pending = subscriber->queue.peek();
    const std::size_t n = std::min(pending.size(), kMaxChunkBytes);
    out.append(reinterpret_cast<const char*>(pending.data()), n);
    subscriber->queue.consume(n);
    subscriber->queue_bytes_gauge.sub(static_cast<double>(n));
    return true;
  };
  return response;
}

void StreamHub::publish(const bgp::Update& update) {
  if (subscribers_.empty()) return;
  // Encode lazily, at most once per format — fanning one update out to a
  // thousand subscribers is a thousand byte appends, not a thousand
  // encodings.
  std::string json_line;
  std::string mrt_record;
  const auto payload_for =
      [&](StreamSubscription::Format format) -> const std::string& {
    if (format == StreamSubscription::Format::kJson) {
      if (json_line.empty()) json_line = feed::encode_live_update(update);
      return json_line;
    }
    if (mrt_record.empty()) {
      mrt::Writer writer;
      writer.write_update(update);
      mrt_record.assign(writer.buffer().begin(), writer.buffer().end());
    }
    return mrt_record;
  };
  const std::size_t low = config_.queue_low_bytes > 0
                              ? config_.queue_low_bytes
                              : config_.queue_high_bytes / 2;
  bool expired = false;
  for (const auto& weak : subscribers_) {
    const auto subscriber = weak.lock();
    if (!subscriber) {
      expired = true;
      continue;
    }
    if (subscriber->evicted) continue;
    if (!subscriber->subscription.matches(update)) continue;
    const std::string& payload = payload_for(subscriber->subscription.format);
    if (subscriber->trimming && subscriber->queue.size() <= low) {
      subscriber->trimming = false;  // drained below the low watermark
      subscriber->drops_in_a_row = 0;
    }
    if (subscriber->trimming ||
        subscriber->queue.size() + payload.size() >
            config_.queue_high_bytes) {
      // Trim: the whole message is dropped (framing never tears) and the
      // queue stays at or under the watermark. A reader that never drains
      // — a stalled socket — accumulates consecutive drops and is evicted.
      subscriber->trimming = true;
      ++subscriber->drops_in_a_row;
      dropped_msgs_.inc();
      if (subscriber->drops_in_a_row >= config_.evict_after_drops) {
        subscriber->evicted = true;
        evictions_.inc();
        // Dropping the connection frees the producer closure and with it
        // the subscriber itself; healthy subscribers are untouched.
        http_->close_stream(subscriber->stream_id);
        expired = true;
      }
      continue;
    }
    subscriber->queue.write(
        {reinterpret_cast<const std::uint8_t*>(payload.data()),
         payload.size()});
    queue_bytes_gauge_.add(static_cast<double>(payload.size()));
    max_subscriber_queue_bytes_ =
        std::max(max_subscriber_queue_bytes_, subscriber->queue.size());
    fanout_msgs_.inc();
    subscriber->drops_in_a_row = 0;
    http_->wake(subscriber->stream_id);
  }
  if (expired) prune_expired();
}

std::size_t StreamHub::subscriber_count() const {
  std::size_t count = 0;
  for (const auto& weak : subscribers_) {
    if (!weak.expired()) ++count;
  }
  return count;
}

std::size_t StreamHub::queue_bytes() const {
  std::size_t bytes = 0;
  for (const auto& weak : subscribers_) {
    if (const auto subscriber = weak.lock()) bytes += subscriber->queue.size();
  }
  return bytes;
}

void StreamHub::prune_expired() {
  std::erase_if(subscribers_,
                [](const std::weak_ptr<Subscriber>& weak) {
                  return weak.expired();
                });
}

}  // namespace gill::net
