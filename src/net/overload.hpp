// Overload-control primitives for the ingest path (DESIGN.md §11): a
// token bucket for per-peer byte-rate ceilings, bounded-queue watermark
// policy for real TCP backpressure (TcpTransport disarms EPOLLIN when the
// inbound queue crosses the high watermark, so the kernel window closes
// and the sender stalls instead of the collector buffering without bound),
// and a per-source accept governor that throttles connect/reconnect storms
// before they reach the session layer.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "metrics/metrics.hpp"

namespace gill::net {

/// Classic token bucket over a millisecond clock. Rate 0 means unlimited.
/// `spend()` is for costs that were already incurred (bytes read off the
/// socket): the balance may go negative, and the bucket reports "in debt"
/// until refill catches up. `try_take()` is for admission decisions that
/// can be refused outright (accepts).
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec),
        burst_(burst > 0 ? burst : rate_per_sec),
        tokens_(burst_) {}

  bool unlimited() const noexcept { return rate_ <= 0; }

  /// Deducts `n` tokens unconditionally; returns true while the balance
  /// stays positive (the caller may keep going).
  bool spend(double n, std::uint64_t now_ms) {
    if (unlimited()) return true;
    refill(now_ms);
    tokens_ -= n;
    return tokens_ > 0;
  }

  /// Deducts `n` tokens only when the balance covers them.
  bool try_take(double n, std::uint64_t now_ms) {
    if (unlimited()) return true;
    refill(now_ms);
    if (tokens_ < n) return false;
    tokens_ -= n;
    return true;
  }

  bool in_debt(std::uint64_t now_ms) {
    if (unlimited()) return false;
    refill(now_ms);
    return tokens_ <= 0;
  }

  double tokens() const noexcept { return tokens_; }
  /// True when the bucket has been idle long enough to be full again.
  bool full(std::uint64_t now_ms) {
    if (unlimited()) return true;
    refill(now_ms);
    return tokens_ >= burst_;
  }

 private:
  void refill(std::uint64_t now_ms) {
    if (!primed_) {  // the first observation pins the clock (even at t=0)
      primed_ = true;
      last_ms_ = now_ms;
      return;
    }
    if (now_ms <= last_ms_) return;
    tokens_ += rate_ * static_cast<double>(now_ms - last_ms_) / 1000.0;
    if (tokens_ > burst_) tokens_ = burst_;
    last_ms_ = now_ms;
  }

  double rate_ = 0;   // tokens per second; <= 0 = unlimited
  double burst_ = 0;  // bucket capacity
  double tokens_ = 0;
  bool primed_ = false;
  std::uint64_t last_ms_ = 0;
};

/// Per-session ingest policy applied by TcpTransport::set_ingest_limits().
struct IngestLimits {
  /// Byte-rate ceiling (token bucket). 0 = unlimited.
  double max_bytes_per_sec = 0;
  /// Bucket capacity; defaults to one second's worth when 0.
  double burst_bytes = 0;
  /// Inbound-queue bound: reads pause (EPOLLIN disarmed) once the queue
  /// holds at least this many bytes. 0 = unbounded.
  std::size_t queue_high_watermark = 0;
  /// Reads resume once the queue drains to this level; defaults to a
  /// quarter of the high watermark when 0.
  std::size_t queue_low_watermark = 0;
};

/// Per-source-address admission control for accept/reconnect storms: each
/// source gets its own token bucket; a connection is admitted only when a
/// token is available. Rejected sources keep their (empty) bucket, so a
/// storm stays rejected until it actually slows down. Buckets that have
/// fully recovered are pruned, bounding memory to the set of currently
/// noisy sources.
class AcceptGovernor {
 public:
  /// `rate_per_sec` accepts per source per second, bursting to `burst`
  /// (defaults to 2s worth). `registry` hosts the
  /// gill_overload_accepts_{admitted,rejected}_total counters; null uses
  /// metrics::default_registry().
  AcceptGovernor(double rate_per_sec, double burst = 0,
                 metrics::Registry* registry = nullptr);

  /// Admission check for one connection attempt from `source`.
  bool admit(const std::string& source, std::uint64_t now_ms);

  std::size_t tracked_sources() const noexcept { return buckets_.size(); }

 private:
  double rate_;
  double burst_;
  std::unordered_map<std::string, TokenBucket> buckets_;
  metrics::Counter& admitted_;
  metrics::Counter& rejected_;
};

/// The sharded-ingest spelling of the accept governor (DESIGN.md §14):
/// admission control must act GLOBALLY — a reconnect storm spread across N
/// SO_REUSEPORT listeners is still one storm — so every shard's accept
/// callback consults this one mutex-guarded governor. Accepts are orders
/// of magnitude rarer than reads, so the lock never sits on a data path
/// (ingest token buckets stay shard-local and lock-free).
class SharedAcceptGovernor {
 public:
  SharedAcceptGovernor(double rate_per_sec, double burst = 0,
                       metrics::Registry* registry = nullptr)
      : governor_(rate_per_sec, burst, registry) {}

  /// Thread-safe admission check for one connection attempt from `source`.
  bool admit(const std::string& source, std::uint64_t now_ms) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return governor_.admit(source, now_ms);
  }

  std::size_t tracked_sources() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return governor_.tracked_sources();
  }

 private:
  std::mutex mutex_;
  AcceptGovernor governor_;
};

}  // namespace gill::net
