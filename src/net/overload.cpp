#include "net/overload.hpp"

namespace gill::net {

namespace {
metrics::Registry& resolve(metrics::Registry* registry) {
  return registry != nullptr ? *registry : metrics::default_registry();
}
}  // namespace

AcceptGovernor::AcceptGovernor(double rate_per_sec, double burst,
                               metrics::Registry* registry)
    : rate_(rate_per_sec),
      burst_(burst > 0 ? burst : 2 * rate_per_sec),
      admitted_(resolve(registry).counter(
          "gill_overload_accepts_admitted_total",
          "Connections admitted by the per-source accept governor")),
      rejected_(resolve(registry).counter(
          "gill_overload_accepts_rejected_total",
          "Connections rejected by the per-source accept governor")) {}

bool AcceptGovernor::admit(const std::string& source, std::uint64_t now_ms) {
  if (rate_ <= 0) {  // governor disabled
    admitted_.inc();
    return true;
  }
  auto [it, inserted] = buckets_.try_emplace(source, rate_, burst_);
  const bool ok = it->second.try_take(1.0, now_ms);
  (ok ? admitted_ : rejected_).inc();
  // Bound the table: quiet sources (full buckets) carry no state worth
  // keeping. Amortized over inserts, so a storm from N sources tracks at
  // most the noisy ones.
  if (inserted && buckets_.size() > 1024) {
    for (auto bucket = buckets_.begin(); bucket != buckets_.end();) {
      if (bucket != it && bucket->second.full(now_ms)) {
        bucket = buckets_.erase(bucket);
      } else {
        ++bucket;
      }
    }
  }
  return ok;
}

}  // namespace gill::net
