// The networking substrate of the live collector (§8: the platform speaks
// the BGP wire protocol to thousands of peers over real TCP sessions): a
// single-threaded, non-blocking epoll event loop.
//
// Design (DESIGN.md §7):
//   * One thread owns every fd. No locks on the data path — sessions,
//     listeners and the HTTP endpoint all run as callbacks on this loop,
//     which is exactly the share-nothing model the per-VP daemon wants
//     (one relaxed-atomic metrics increment is the only cross-thread
//     visible state).
//   * Edge-triggered (EPOLLET) read/write interest: callbacks must drain
//     until EAGAIN. Level-triggered wakeups per undrained byte would make
//     a 4k-peer collector spin.
//   * Timers live in a monotonic hashed timer wheel (fixed granularity,
//     256 slots, deadline-checked entries so arbitrarily far deadlines
//     work without cascading). tick() scheduling for the BGP daemons —
//     keepalives, hold timers, reconnect backoff — costs O(1) per timer
//     per wheel step, independent of the peer count.
//   * Sharded ingest (DESIGN.md §14) runs one loop per core. The ONLY
//     cross-thread entry points are post() (task hand-off via an eventfd
//     wakeup) and stop(); everything else keeps the one-thread-owns-every-
//     fd contract, which in_loop_thread() lets callers assert.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gill::net {

/// Bitmask for fd interest, mapped onto EPOLLIN/EPOLLOUT internally so
/// callers do not need <sys/epoll.h>.
enum : std::uint32_t {
  kReadable = 1u << 0,
  kWritable = 1u << 1,
};

class EventLoop {
 public:
  /// `events` is a kReadable/kWritable mask. Error/hangup conditions are
  /// delivered as kReadable so the handler's drain loop observes them.
  using FdCallback = std::function<void(std::uint32_t events)>;
  using TimerCallback = std::function<void()>;
  using TimerId = std::uint64_t;

  /// `granularity_ms` is the wheel's tick size: the scheduling error bound
  /// for every timer (BGP timers are whole seconds; 10 ms is plenty).
  explicit EventLoop(std::uint32_t granularity_ms = 10);
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` with edge-triggered interest. Replaces any previous
  /// registration of the same fd. Returns false when epoll_ctl fails.
  bool add(int fd, std::uint32_t interest, FdCallback callback);
  /// Changes the interest mask of a registered fd. An interest of 0 keeps
  /// the registration but disarms both directions — the backpressure lever:
  /// with EPOLLIN off, unread socket bytes close the kernel receive window
  /// and the sender stalls (TcpTransport's watermark pause).
  bool modify(int fd, std::uint32_t interest);
  /// Deregisters `fd` (safe from inside its own callback; the fd is not
  /// closed). Unknown fds are ignored.
  void remove(int fd);
  bool watched(int fd) const { return handlers_.contains(fd); }
  std::size_t watched_count() const noexcept { return handlers_.size(); }

  /// One-shot timer: fires once, `delay_ms` from now (rounded up to the
  /// wheel granularity). The id stays valid until the timer fires or is
  /// cancelled.
  TimerId call_after(std::uint64_t delay_ms, TimerCallback callback);
  /// Recurring timer: fires every `interval_ms` until cancelled. This is
  /// what drives BgpDaemon::tick() for every session.
  TimerId call_every(std::uint64_t interval_ms, TimerCallback callback);
  /// Cancels a pending timer; unknown/expired ids are ignored.
  void cancel(TimerId id);
  std::size_t pending_timers() const noexcept { return timer_count_; }

  /// Waits for fd events for at most `max_wait_ms` (clamped down so due
  /// timers are never delayed past the wheel granularity), dispatches
  /// them, then advances the wheel. Returns the number of fd events
  /// dispatched. 0 max_wait polls.
  int run_once(int max_wait_ms);

  /// Runs until stop(). Blocks in epoll_wait between events.
  void run();
  /// Makes run() return after the current iteration. Callable from any
  /// callback, and — unlike every other method except post() — from any
  /// thread: the atomic store pairs with a wakeup write so a loop parked
  /// in epoll_wait notices immediately.
  void stop() noexcept {
    stopped_.store(true, std::memory_order_release);
    wake();
  }
  bool stopped() const noexcept {
    return stopped_.load(std::memory_order_acquire);
  }

  /// Enqueues `task` to run on the loop thread during its next iteration
  /// and wakes the loop (eventfd). THREAD-SAFE — this is the cross-shard
  /// hand-off primitive: an accept dispatcher posts adopted fds to the
  /// owning shard, the merge plane posts mirror harvests and filter
  /// installs. Tasks run in post order, after fd dispatch, before timers.
  /// Returns false when the loop has no wakeup fd (construction failed).
  bool post(std::function<void()> task);
  /// Forces the next epoll_wait to return (no-op without a wakeup fd).
  void wake() noexcept;

  /// True when the calling thread is the one inside run()/run_once() —
  /// the owner allowed to touch fds and timers. Loops that were never run
  /// have no owner yet and answer true (single-threaded setup phase).
  bool in_loop_thread() const noexcept {
    const auto owner = owner_.load(std::memory_order_acquire);
    return owner == std::thread::id{} || owner == std::this_thread::get_id();
  }

  /// Monotonic milliseconds since the loop was constructed (CLOCK_MONOTONIC;
  /// immune to wall-clock steps).
  std::uint64_t now_ms() const;

 private:
  static constexpr std::size_t kWheelSlots = 256;

  struct Timer {
    TimerId id = 0;
    std::uint64_t deadline_ms = 0;
    std::uint64_t interval_ms = 0;  // 0 = one-shot
    TimerCallback callback;
  };

  TimerId schedule(std::uint64_t first_delay_ms, std::uint64_t interval_ms,
                   TimerCallback callback);
  void insert(Timer&& timer);
  void advance_wheel();
  void run_posted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: post()/stop() from other threads
  std::uint64_t start_ns_ = 0;
  std::uint32_t granularity_ms_;
  std::atomic<bool> stopped_{false};
  std::atomic<std::thread::id> owner_{};  // thread inside run()/run_once()
  std::mutex post_mutex_;
  std::vector<std::function<void()>> posted_;
  // shared_ptr so a handler that removes itself (or another fd) mid-dispatch
  // cannot free a callback the dispatcher is still executing.
  std::map<int, std::shared_ptr<FdCallback>> handlers_;
  std::vector<std::vector<Timer>> wheel_{kWheelSlots};
  std::uint64_t next_timer_id_ = 1;
  std::uint64_t last_advance_ms_ = 0;  // wheel progress watermark
  std::size_t timer_count_ = 0;
  // Cancels issued from inside a timer callback target entries already
  // harvested out of the wheel; they are recorded here so the dispatch
  // loop skips/never re-arms them.
  bool dispatching_ = false;
  std::vector<TimerId> cancelled_in_dispatch_;
};

}  // namespace gill::net
