// Real-socket endpoints for the BGP session layer: TcpTransport implements
// the daemon::Transport interface over a non-blocking TCP socket on an
// EventLoop, and TcpListener accepts inbound sessions (the paper's §8
// collector listens; routers dial in).
//
// Orientation. The in-memory Transport is a duplex pipe with both ends in
// one process; a socket replaces exactly ONE side of that pipe. A
// kDaemonSide transport backs a local BgpDaemon whose remote peer lives
// across the socket: inbound socket bytes land in `to_daemon`, and
// write_to_peer() sends to the socket. A kPeerSide transport is the mirror
// (a local FakePeer / load generator talking to a remote daemon): inbound
// bytes land in `to_peer`, write_to_daemon() sends. Either way the unused
// queue of the base class doubles as the outbound backlog, so backpressure
// is visible through ByteQueue::size() and no bytes are ever dropped by a
// short write.
//
// Fault composition. FaultyTransport (PR 1) stays a pure in-memory
// decorator: set_overlay(faulty) re-routes the socket's byte flow through
// it — inbound chunks enter via the overlay's write_to_*() hooks (faults
// applied per chunk), and the flusher drains the overlay's outbound queue
// into the socket. The daemon binds the overlay; the chaos machinery works
// over real sockets unchanged. Overlay resets are *logical*: the TCP
// connection stays up while the overlay simulates the reset, exactly like
// the in-memory transport did.
//
// Close semantics. A peer's orderly shutdown (recv() == 0, i.e. FIN /
// half-close) and a hard reset (ECONNRESET & friends) both end the
// session: the fd is closed and the endpoint transport is disconnected,
// which bumps the epoch the daemon FSM watches. Graceful local teardown is
// the daemon's NOTIFICATION followed by disconnect(), which flushes
// nothing further and closes the socket.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "daemon/daemon.hpp"
#include "metrics/metrics.hpp"
#include "net/event_loop.hpp"
#include "net/overload.hpp"

namespace gill::net {

/// Which end of the BGP conversation lives on this side of the socket.
enum class Role : std::uint8_t {
  kDaemonSide,  // local BgpDaemon, remote router
  kPeerSide,    // local FakePeer / generator, remote daemon
};

class TcpTransport : public daemon::Transport {
 public:
  /// `registry` hosts the gill_net_* byte/connection counters; when null
  /// they land in metrics::default_registry().
  explicit TcpTransport(EventLoop& loop, Role role = Role::kDaemonSide,
                        metrics::Registry* registry = nullptr);
  ~TcpTransport() override;

  /// Starts a non-blocking connect to `host:port` (the handshake completes
  /// on the loop; writes issued meanwhile are backlogged and flushed on
  /// connect completion). `host` may be an IPv4 literal, an IPv6 literal,
  /// or a bracketed IPv6 literal ("[::1]"). Returns false when the address
  /// cannot be parsed or the socket cannot be created; a refused/failed
  /// connect surfaces later as a disconnect.
  bool dial(const std::string& host, std::uint16_t port);

  /// Takes ownership of an already-connected socket (listener accept).
  /// Adopted sessions cannot re-dial: the remote end re-establishes.
  bool adopt(int fd);

  /// Routes the socket's byte flow through `overlay` (typically a
  /// FaultyTransport) instead of this object's own queues. The daemon /
  /// peer must then be bound to the overlay, not to this transport. Call
  /// before traffic flows.
  void set_overlay(daemon::Transport& overlay) { endpoint_ = &overlay; }

  /// Housekeeping for state changes the transport cannot observe as they
  /// happen: drains the (overlay's) outbound backlog, closes the fd after
  /// an endpoint-initiated disconnect, and re-dials when the endpoint was
  /// reconnected while the socket was gone. Drivers call this once per
  /// step; with no overlay and no pending backlog it is a no-op.
  void sync();

  // --- daemon::Transport ----------------------------------------------------
  void write_to_peer(std::span<const std::uint8_t> message) override;
  void write_to_daemon(std::span<const std::uint8_t> message) override;
  /// Daemon-initiated teardown: closes the socket, then disconnects the
  /// in-memory pipe (epoch bump).
  void disconnect() override;
  /// Re-opens the session: re-dials the last dialed address (no-op for
  /// adopted sockets, which stay closed until the remote re-dials us).
  void reconnect() override;

  bool socket_open() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  /// True once the non-blocking connect handshake finished.
  bool handshake_done() const noexcept { return connect_done_; }
  /// Bytes accepted by write_to_*() but not yet written to the socket.
  std::size_t backlog_bytes() const noexcept { return outbound().size(); }

  /// Overload control (DESIGN.md §11): a byte-rate token bucket and/or an
  /// inbound-queue watermark. When either trips, EPOLLIN is disarmed — the
  /// kernel receive window fills and the peer gets real TCP backpressure.
  /// sync() re-arms reads once the bucket refills and the session layer
  /// has drained the queue below the low watermark.
  void set_ingest_limits(const IngestLimits& limits);
  bool reads_paused() const noexcept { return reads_paused_; }
  /// Bytes read off the socket but not yet consumed by the session layer.
  std::size_t inbound_queue_bytes() const noexcept { return inbound().size(); }

 private:
  void register_fd();
  void on_event(std::uint32_t events);
  void drain_socket();
  void flush_outbound();
  /// Closes the fd and, when `and_endpoint`, disconnects the endpoint
  /// transport so its epoch bump reaches the session FSM.
  void close_socket(bool and_endpoint);
  daemon::ByteQueue& outbound() noexcept {
    return role_ == Role::kDaemonSide ? endpoint_->to_peer
                                      : endpoint_->to_daemon;
  }
  const daemon::ByteQueue& outbound() const noexcept {
    return role_ == Role::kDaemonSide ? endpoint_->to_peer
                                      : endpoint_->to_daemon;
  }
  const daemon::ByteQueue& inbound() const noexcept {
    return role_ == Role::kDaemonSide ? endpoint_->to_daemon
                                      : endpoint_->to_peer;
  }
  void deliver_inbound(std::span<const std::uint8_t> chunk);
  /// Charges `chunk` bytes to the ingest bucket and checks the watermark;
  /// returns true when reads just paused (caller must stop draining).
  bool maybe_pause_reads(std::size_t chunk);
  /// Re-arms EPOLLIN when the pause conditions have cleared, then drains
  /// whatever arrived while paused (EPOLLET would not re-report it).
  void maybe_resume_reads();

  EventLoop* loop_;
  Role role_;
  daemon::Transport* endpoint_ = this;  // overlay when composed with faults
  int fd_ = -1;
  bool connect_done_ = false;  // non-blocking connect still in flight when false
  bool want_write_ = false;    // EPOLLOUT armed
  bool can_redial_ = false;
  std::string redial_ip_;
  std::uint16_t redial_port_ = 0;
  IngestLimits limits_;
  TokenBucket ingest_bucket_;
  bool reads_paused_ = false;
  metrics::Counter& bytes_read_;
  metrics::Counter& bytes_written_;
  metrics::Counter& connects_;
  metrics::Counter& socket_errors_;
  metrics::Counter& remote_closes_;
  metrics::Counter& read_pauses_;
  metrics::Counter& read_resumes_;
  metrics::Gauge& paused_sessions_;
};

/// Accepts inbound BGP/BMP connections and hands the raw fds to the
/// owner's callback (which typically wraps them in a TcpTransport and
/// registers the session with the Platform).
class TcpListener {
 public:
  /// (fd, peer_ip, peer_port); the callback owns the fd.
  using AcceptCallback =
      std::function<void(int fd, std::string peer_ip, std::uint16_t peer_port)>;

  explicit TcpListener(EventLoop& loop,
                       metrics::Registry* registry = nullptr);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds `host:port` (port 0 picks an ephemeral port, see port()) and
  /// starts accepting. `host` may be an IPv4 literal, an IPv6 literal, or
  /// a bracketed IPv6 literal ("[::1]"); v6 binds accept v4-mapped
  /// connections too (IPV6_V6ONLY off). Returns false on bind/listen
  /// failure. With `reuse_port` the socket sets SO_REUSEPORT before bind,
  /// so several listeners (one per ingest shard, DESIGN.md §14) share the
  /// port and the kernel spreads incoming connections across them.
  bool listen(const std::string& host, std::uint16_t port,
              AcceptCallback on_accept, int backlog = 128,
              bool reuse_port = false);
  void close();

  bool listening() const noexcept { return fd_ >= 0; }
  /// The bound port (resolves ephemeral binds).
  std::uint16_t port() const noexcept { return port_; }
  std::size_t accepted() const noexcept {
    return static_cast<std::size_t>(accepts_.value());
  }

 private:
  void on_readable();

  EventLoop* loop_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  AcceptCallback on_accept_;
  metrics::Counter& accepts_;
  metrics::Counter& accept_errors_;
};

}  // namespace gill::net
