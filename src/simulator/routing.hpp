// Gao-Rexford route computation (the C-BGP substitute, §3.1).
//
// For one destination (one or more origin "seeds") the engine computes the
// policy-compliant best route of every AS:
//   * preference: customer-learned > peer-learned > provider-learned;
//   * within a class: shortest AS path, then lowest next-hop AS id;
//   * export: customer routes go to everyone; peer/provider routes go to
//     customers only (valley-free propagation).
// The fixed point is computed with the classic three-phase bucket BFS
// (customer-up, one peer step, provider-down) in O(E) per destination.
//
// Multiple seeds model MOAS conflicts and forged-origin hijacks: a Type-X
// hijack seeds the attacker with `base_length = X` and a forged path tail,
// so hijacked routes compete with legitimate ones at the correct length.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "bgp/as_path.hpp"
#include "topology/topology.hpp"

namespace gill::sim {

using bgp::AsNumber;
using bgp::AsPath;

/// Preference class of an installed route; larger is preferred.
enum class RouteClass : std::uint8_t {
  kNone = 0,
  kProvider = 1,
  kPeer = 2,
  kCustomer = 3,
  kOrigin = 4,
};

/// One announcement source for a destination prefix.
struct Seed {
  AsNumber as = 0;
  /// Virtual extra hops before `tail` (forged-path length for hijacks).
  std::uint16_t base_length = 0;
  /// Forged path suffix appended after `as` in extracted paths, e.g. the
  /// victim origin for a Type-1 hijack.
  std::vector<AsNumber> tail;
};

/// Best-route state of every AS for one destination.
class DestinationRouting {
 public:
  DestinationRouting() = default;

  bool has_route(AsNumber as) const noexcept {
    return cls_[as] != RouteClass::kNone;
  }
  RouteClass route_class(AsNumber as) const noexcept { return cls_[as]; }
  std::uint16_t length(AsNumber as) const noexcept { return len_[as]; }
  AsNumber next_hop(AsNumber as) const noexcept { return next_[as]; }

  /// The full AS path observed at `as` (leading with `as` itself, ending at
  /// the origin — including any forged tail). Empty if no route.
  AsPath path(AsNumber as) const;

  /// Index into seeds() of the origin `as` routes toward; 0xFF if none.
  std::uint8_t seed_index(AsNumber as) const noexcept { return seed_[as]; }

  const std::vector<Seed>& seeds() const noexcept { return seeds_; }

  /// True if the undirected link (a, b) carries traffic in this routing
  /// tree, i.e. it is some AS's next hop.
  bool uses_link(AsNumber a, AsNumber b) const noexcept {
    return (cls_[a] != RouteClass::kNone && next_[a] == b && a != b) ||
           (cls_[b] != RouteClass::kNone && next_[b] == a && a != b);
  }

  std::uint32_t as_count() const noexcept {
    return static_cast<std::uint32_t>(cls_.size());
  }

 private:
  friend class RoutingEngine;
  std::vector<RouteClass> cls_;
  std::vector<std::uint16_t> len_;
  std::vector<AsNumber> next_;
  std::vector<std::uint8_t> seed_;
  std::vector<Seed> seeds_;
};

/// Computes DestinationRouting fixed points over one topology.
class RoutingEngine {
 public:
  explicit RoutingEngine(const topo::AsTopology& topology)
      : topology_(&topology) {}

  /// Undirected keys (topo::Link::key) of links to treat as down.
  void set_down_links(std::unordered_set<std::uint64_t> down) {
    down_links_ = std::move(down);
  }
  const std::unordered_set<std::uint64_t>& down_links() const noexcept {
    return down_links_;
  }
  void fail_link(AsNumber a, AsNumber b);
  void restore_link(AsNumber a, AsNumber b);

  /// Computes best routes of every AS toward the given seeds.
  DestinationRouting compute(const std::vector<Seed>& seeds) const;

  /// Single-origin convenience.
  DestinationRouting compute(AsNumber origin) const {
    return compute(std::vector<Seed>{Seed{origin, 0, {}}});
  }

  const topo::AsTopology& topology() const noexcept { return *topology_; }

 private:
  bool link_up(AsNumber a, AsNumber b) const noexcept;

  const topo::AsTopology* topology_;
  std::unordered_set<std::uint64_t> down_links_;
};

}  // namespace gill::sim
