#include "simulator/workload.hpp"

#include <algorithm>
#include <numeric>

namespace gill::sim {

namespace {

/// One scheduled event, applied in time order.
struct Scheduled {
  enum class What {
    kFail,
    kRestore,
    kMoas,
    kMoasEnd,
    kOriginChange,
    kCommunity,
    kHijack,
    kHijackEnd,
  };
  What what{};
  Timestamp time = 0;
  AsNumber a = 0, b = 0;
  net::Prefix prefix;
  Community community{};
  bool action = false;
  int hijack_type = 1;
};

}  // namespace

bool is_action_community_value(std::uint16_t value) noexcept {
  return (value & 0xFF00) == 0x0600;
}

UpdateStream generate_workload(Internet& internet, Timestamp start,
                               const WorkloadConfig& config) {
  std::mt19937_64 rng(config.seed);
  const topo::AsTopology& topology = internet.topology();
  const auto& links = topology.links();
  const std::uint32_t n = topology.as_count();

  auto count_for = [&](double per_hour) {
    return static_cast<std::size_t>(per_hour * static_cast<double>(config.duration) /
                                    3600.0 + 0.5);
  };
  std::uniform_int_distribution<Timestamp> when(0, config.duration - 1);

  // Hot pools: the subset of links/ASes that event randomness draws from.
  // Built from pool_seed so that separate windows share the same hot set.
  const double fraction = std::clamp(config.hotspot_fraction, 0.0, 1.0);
  std::mt19937_64 pool_rng(config.pool_seed);
  std::vector<std::size_t> link_pool(links.size());
  std::iota(link_pool.begin(), link_pool.end(), 0);
  std::shuffle(link_pool.begin(), link_pool.end(), pool_rng);
  link_pool.resize(std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction * static_cast<double>(links.size()))));
  std::vector<AsNumber> as_pool(n);
  std::iota(as_pool.begin(), as_pool.end(), 0);
  std::shuffle(as_pool.begin(), as_pool.end(), pool_rng);
  as_pool.resize(std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction * static_cast<double>(n))));

  std::uniform_int_distribution<std::size_t> link_pick(0, link_pool.size() - 1);
  std::uniform_int_distribution<std::size_t> as_pick(0, as_pool.size() - 1);
  auto link_index = [&]() { return link_pool[link_pick(rng)]; };
  auto any_as = [&]() { return as_pool[as_pick(rng)]; };

  auto random_prefix = [&]() -> net::Prefix {
    for (int tries = 0; tries < 64; ++tries) {
      const AsNumber as = any_as();
      const auto& list = internet.prefixes()[as];
      if (!list.empty()) {
        std::uniform_int_distribution<std::size_t> pick(0, list.size() - 1);
        return list[pick(rng)];
      }
    }
    return internet.prefixes()[0].empty() ? net::Prefix{}
                                          : internet.prefixes()[0][0];
  };

  std::vector<Scheduled> schedule;

  std::uniform_int_distribution<Timestamp> restore_delay(
      config.restore_after_min, config.restore_after_max);
  for (std::size_t i = 0; i < count_for(config.link_failures_per_hour); ++i) {
    Scheduled fail;
    fail.what = Scheduled::What::kFail;
    fail.time = start + when(rng);
    const topo::Link& link = links[link_index()];
    fail.a = link.a;
    fail.b = link.b;
    Scheduled restore = fail;
    restore.what = Scheduled::What::kRestore;
    restore.time = fail.time + restore_delay(rng);
    schedule.push_back(fail);
    schedule.push_back(restore);
  }
  for (std::size_t i = 0; i < count_for(config.moas_per_hour); ++i) {
    Scheduled moas;
    moas.what = Scheduled::What::kMoas;
    moas.time = start + when(rng);
    moas.prefix = random_prefix();
    moas.a = any_as();  // the conflicting second origin
    Scheduled end = moas;
    end.what = Scheduled::What::kMoasEnd;
    end.time = moas.time + restore_delay(rng);
    schedule.push_back(moas);
    schedule.push_back(end);
  }
  for (std::size_t i = 0; i < count_for(config.origin_changes_per_hour); ++i) {
    Scheduled oc;
    oc.what = Scheduled::What::kOriginChange;
    oc.time = start + when(rng);
    oc.prefix = random_prefix();
    oc.a = any_as();
    schedule.push_back(oc);
  }
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (std::size_t i = 0; i < count_for(config.community_changes_per_hour);
       ++i) {
    Scheduled cc;
    cc.what = Scheduled::What::kCommunity;
    cc.time = start + when(rng);
    cc.prefix = random_prefix();
    cc.action = coin(rng) < config.action_community_fraction;
    const AsNumber tagger = internet.origin_of(cc.prefix);
    const auto base = static_cast<std::uint16_t>(
        cc.action ? 0x0600 : 0x0400);
    cc.community =
        Community(static_cast<std::uint16_t>(tagger % 65521),
                  static_cast<std::uint16_t>(base | (rng() % 64)));
    schedule.push_back(cc);
  }
  for (std::size_t i = 0; i < count_for(config.hijacks_per_hour); ++i) {
    Scheduled hijack;
    hijack.what = Scheduled::What::kHijack;
    hijack.time = start + when(rng);
    hijack.prefix = random_prefix();
    do {
      hijack.a = any_as();  // attacker
    } while (hijack.a == internet.origin_of(hijack.prefix));
    hijack.hijack_type = coin(rng) < 0.7 ? 1 : 2;
    Scheduled end = hijack;
    end.what = Scheduled::What::kHijackEnd;
    end.time = hijack.time + restore_delay(rng);
    schedule.push_back(hijack);
    schedule.push_back(end);
  }

  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const Scheduled& x, const Scheduled& y) {
                     return x.time < y.time;
                   });

  UpdateStream stream;
  for (const Scheduled& event : schedule) {
    switch (event.what) {
      case Scheduled::What::kFail:
        stream.append(internet.fail_link(event.a, event.b, event.time));
        break;
      case Scheduled::What::kRestore:
        stream.append(internet.restore_link(event.a, event.b, event.time));
        break;
      case Scheduled::What::kMoas:
        stream.append(internet.start_moas(event.a, event.prefix, event.time));
        break;
      case Scheduled::What::kMoasEnd:
      case Scheduled::What::kHijackEnd:
        stream.append(
            internet.clear_prefix_override(event.prefix, event.time));
        break;
      case Scheduled::What::kOriginChange:
        stream.append(
            internet.change_origin(event.a, event.prefix, event.time));
        break;
      case Scheduled::What::kCommunity:
        stream.append(internet.change_community(event.prefix, event.community,
                                                event.action, event.time));
        break;
      case Scheduled::What::kHijack:
        stream.append(internet.start_hijack(event.a, event.prefix,
                                            event.hijack_type, event.time));
        break;
    }
  }
  stream.sort();
  return stream;
}

}  // namespace gill::sim
