// The simulated Internet: topology + announced prefixes + deployed VPs +
// per-destination routing state, with an event engine that produces the
// timestamped BGP update streams a collection platform would receive.
//
// Events supported (these drive every experiment in the paper):
//   * link failure / restoration         -> path changes, withdrawals
//   * forged-origin hijack (Type-X)      -> §3.1, §11, §12 hijack use cases
//   * MOAS announcement / origin change  -> use case II, anchor events
//   * community changes                  -> action communities (IV) and
//                                           unchanged-path updates (V)
//   * path exploration                   -> transient paths (use case I)
//   * route leaks                        -> a leaker re-exports provider /
//                                           peer routes to all neighbors
//   * sub-prefix hijacks                 -> a more-specific announced by an
//                                           attacker under path prepending
//
// Every event records ground truth so benches can score detections.
#pragma once

#include <optional>
#include <random>
#include <unordered_map>
#include <vector>

#include "bgp/rib.hpp"
#include "bgp/update.hpp"
#include "netbase/prefix.hpp"
#include "simulator/routing.hpp"
#include "topology/topology.hpp"

namespace gill::sim {

using bgp::Community;
using bgp::CommunitySet;
using bgp::Timestamp;
using bgp::Update;
using bgp::UpdateStream;
using bgp::VpId;

/// Tuning knobs of the simulated world.
struct InternetConfig {
  /// ASes hosting a VP; VpId i corresponds to vp_hosts[i].
  std::vector<AsNumber> vp_hosts;
  /// Per-AS announced prefixes; element `as` lists AS `as`'s prefixes.
  /// If empty, every AS announces one /24.
  std::vector<std::vector<net::Prefix>> prefixes;
  /// Update propagation delay: per-hop seconds plus uniform jitter, keeping
  /// event-correlated updates inside the paper's 100 s window.
  Timestamp per_hop_delay = 3;
  Timestamp jitter = 30;
  /// Probability that a VP whose route changes emits a short-lived
  /// intermediate (path-exploration) route first.
  double path_exploration_probability = 0.0;
  std::uint64_t rng_seed = 1;
};

/// Ground truth of one simulated event.
struct GroundTruth {
  enum class Kind {
    kLinkFailure,
    kLinkRestore,
    kHijack,
    kMoas,
    kOriginChange,
    kCommunityChange,
    kTransientPath,
    kRouteLeak,
    kSubprefixHijack,
  };
  Kind kind{};
  Timestamp time = 0;
  // Link events.
  AsNumber link_a = 0, link_b = 0;
  bool link_is_p2p = false;
  // Hijack / MOAS / origin-change events.
  AsNumber origin = 0;    // legitimate / old origin
  AsNumber other_as = 0;  // attacker / new origin
  int hijack_type = 0;
  net::Prefix prefix;
  // Community events.
  Community community{};
  bool action_community = false;
  // Transient paths: the VP that exposed one.
  VpId vp = 0;
  /// VPs that observed at least one update caused by this event.
  std::vector<VpId> observers;
};

/// Simulated Internet with event-driven update generation.
class Internet {
 public:
  Internet(const topo::AsTopology& topology, InternetConfig config);

  const topo::AsTopology& topology() const noexcept { return *topology_; }
  const std::vector<AsNumber>& vp_hosts() const noexcept {
    return config_.vp_hosts;
  }
  std::size_t vp_count() const noexcept { return config_.vp_hosts.size(); }
  const std::vector<std::vector<net::Prefix>>& prefixes() const noexcept {
    return config_.prefixes;
  }
  /// The AS that legitimately originates `prefix` (by the static plan).
  AsNumber origin_of(const net::Prefix& prefix) const;

  // --- Events -----------------------------------------------------------

  /// Fails the undirected link (a, b); returns the updates VPs observe.
  UpdateStream fail_link(AsNumber a, AsNumber b, Timestamp t);

  /// Restores a previously failed link.
  UpdateStream restore_link(AsNumber a, AsNumber b, Timestamp t);

  /// Starts a Type-`type` forged-origin hijack: `attacker` announces
  /// `prefix` (owned by its legitimate origin) with a forged path of
  /// `type` extra hops ending at the true origin.
  UpdateStream start_hijack(AsNumber attacker, const net::Prefix& prefix,
                            int type, Timestamp t);

  /// `leaker` re-exports its provider/peer-learned routes to all neighbors
  /// (the classic valley-violating route leak): every destination the leaker
  /// reaches through a provider or peer is re-announced as if it were a
  /// customer route, so the leaker's providers and peers prefer it. At most
  /// `max_prefixes` destinations leak (0 = no cap). An optional community
  /// `tag` marks the leaked routes (exercises GILL-asp-comm style filters).
  UpdateStream leak_routes(AsNumber leaker, Timestamp t,
                           std::size_t max_prefixes = 0,
                           std::optional<Community> tag = std::nullopt);

  /// `attacker` announces the low more-specific half of `parent` (length+1)
  /// with `prepends` extra copies of itself on the path (prepending makes
  /// the path look long while the more-specific still wins on longest-prefix
  /// match everywhere). Optional community `tag` marks the hijacked routes.
  UpdateStream start_subprefix_hijack(AsNumber attacker,
                                      const net::Prefix& parent, int prepends,
                                      Timestamp t,
                                      std::optional<Community> tag = std::nullopt);

  /// Ends an ongoing hijack / MOAS / origin override on `prefix`.
  UpdateStream clear_prefix_override(const net::Prefix& prefix, Timestamp t);

  /// `new_origin` additionally announces `prefix` (a MOAS conflict).
  UpdateStream start_moas(AsNumber new_origin, const net::Prefix& prefix,
                          Timestamp t);

  /// Moves `prefix` from its current origin to `new_origin` exclusively.
  UpdateStream change_origin(AsNumber new_origin, const net::Prefix& prefix,
                             Timestamp t);

  /// The origin attaches (or replaces) an extra community on `prefix`,
  /// producing unchanged-path updates at every VP with a route.
  UpdateStream change_community(const net::Prefix& prefix, Community community,
                                bool is_action, Timestamp t);

  /// AS `as` starts announcing a brand-new prefix (world growth; drives
  /// the Fig. 7 aging experiment — new prefixes match no filter).
  UpdateStream announce_prefix(AsNumber as, const net::Prefix& prefix,
                               Timestamp t);

  // --- State inspection ---------------------------------------------------

  /// Current best AS path from VP `vp` to `prefix` (empty if unreachable).
  bgp::AsPath vp_path(VpId vp, const net::Prefix& prefix) const;

  /// Communities VP `vp` currently sees on `prefix`.
  CommunitySet vp_communities(VpId vp, const net::Prefix& prefix) const;

  /// Full RIB dump of every VP at time `t` (one announcement per prefix).
  UpdateStream rib_dump(Timestamp t) const;

  /// RIB dump restricted to one VP.
  UpdateStream rib_dump_vp(VpId vp, Timestamp t) const;

  /// Routing state for the destination prefix (override or origin tree).
  const DestinationRouting& routing_for(const net::Prefix& prefix) const;

  /// Routing tree for a legitimate origin AS.
  const DestinationRouting& routing_for_origin(AsNumber origin) const;

  const std::vector<GroundTruth>& ground_truth() const noexcept {
    return truths_;
  }
  std::vector<GroundTruth>& ground_truth() noexcept { return truths_; }

  /// Directed AS links on the best path of at least one VP right now.
  std::vector<bgp::AsLink> visible_links(const std::vector<VpId>& vps) const;

 private:
  struct PrefixOverride {
    DestinationRouting routing;
    std::optional<GroundTruth> truth;  // hijack/MOAS metadata
  };

  UpdateStream diff_and_emit(
      const std::vector<std::pair<const DestinationRouting*,
                                  const DestinationRouting*>>& changes,
      const std::vector<AsNumber>& affected_origins,
      const std::vector<const net::Prefix*>& explicit_prefixes, Timestamp t,
      GroundTruth* truth);

  Update make_update(VpId vp, const net::Prefix& prefix, const bgp::AsPath& path,
                     Timestamp t) const;
  Update make_withdrawal(VpId vp, const net::Prefix& prefix, Timestamp t) const;
  CommunitySet communities_for(const bgp::AsPath& path,
                               const net::Prefix& prefix) const;
  Timestamp delay_for(const bgp::AsPath& path, std::mt19937_64& rng) const;

  void recompute_origin_trees(const std::vector<AsNumber>& origins);
  std::vector<AsNumber> origins_using_link(AsNumber a, AsNumber b) const;

  const topo::AsTopology* topology_;
  InternetConfig config_;
  RoutingEngine engine_;
  mutable std::mt19937_64 rng_;

  std::vector<DestinationRouting> origin_trees_;  // index = origin AS
  std::unordered_map<net::Prefix, PrefixOverride, net::PrefixHash> overrides_;
  std::unordered_map<net::Prefix, CommunitySet, net::PrefixHash>
      community_overrides_;
  std::unordered_map<net::Prefix, AsNumber, net::PrefixHash> origin_by_prefix_;
  /// Origins whose trees were invalidated by each failed link, so that
  /// restoration recomputes exactly those.
  std::unordered_map<std::uint64_t, std::vector<AsNumber>> failure_scope_;
  std::vector<GroundTruth> truths_;
};

}  // namespace gill::sim
