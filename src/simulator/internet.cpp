#include "simulator/internet.hpp"

#include <algorithm>

#include "netbase/prefix_alloc.hpp"

namespace gill::sim {

Internet::Internet(const topo::AsTopology& topology, InternetConfig config)
    : topology_(&topology),
      config_(std::move(config)),
      engine_(topology),
      rng_(config_.rng_seed) {
  const std::uint32_t n = topology.as_count();
  if (config_.prefixes.empty()) {
    config_.prefixes.resize(n);
    for (AsNumber as = 0; as < n; ++as) {
      config_.prefixes[as].push_back(net::PrefixAllocator::v4_slot(as));
    }
  }
  origin_trees_.resize(n);
  std::vector<AsNumber> origins;
  for (AsNumber as = 0; as < n; ++as) {
    for (const net::Prefix& p : config_.prefixes[as]) {
      origin_by_prefix_[p] = as;
    }
    if (!config_.prefixes[as].empty()) origins.push_back(as);
  }
  recompute_origin_trees(origins);
}

AsNumber Internet::origin_of(const net::Prefix& prefix) const {
  auto it = origin_by_prefix_.find(prefix);
  return it == origin_by_prefix_.end() ? 0 : it->second;
}

void Internet::recompute_origin_trees(const std::vector<AsNumber>& origins) {
  for (AsNumber origin : origins) {
    if (!config_.prefixes[origin].empty()) {
      origin_trees_[origin] = engine_.compute(origin);
    }
  }
}

std::vector<AsNumber> Internet::origins_using_link(AsNumber a,
                                                   AsNumber b) const {
  std::vector<AsNumber> out;
  for (AsNumber origin = 0; origin < topology_->as_count(); ++origin) {
    if (origin_trees_[origin].as_count() == 0) continue;
    if (origin_trees_[origin].uses_link(a, b)) out.push_back(origin);
  }
  return out;
}

CommunitySet Internet::communities_for(const bgp::AsPath& path,
                                       const net::Prefix& prefix) const {
  CommunitySet set;
  if (path.empty()) return set;
  const AsNumber origin = path.origin();
  // Origin tag: stable informational community ("geo code" style).
  bgp::insert_community(
      set, Community(static_cast<std::uint16_t>(origin % 65521),
                     static_cast<std::uint16_t>(0x0200 | (origin % 50))));
  if (path.size() >= 2) {
    // Ingress tag set by the VP's first hop, encoding the relationship the
    // route was learned over — informational communities correlate with the
    // AS path (§18.2 reports 93% correlation), which this model reproduces.
    const AsNumber hop = path[1];
    int rel_code = 0;
    if (auto rel = topology_->relationship(path[0], hop)) {
      rel_code = (*rel == topo::Relationship::kPeerToPeer) ? 2 : 1;
    }
    bgp::insert_community(
        set, Community(static_cast<std::uint16_t>(hop % 65521),
                       static_cast<std::uint16_t>(0x0100 | rel_code)));
    // Sparse per-origin salt breaks perfect path<->community correlation
    // without differentiating the prefixes of one origin (updates for all
    // prefixes of an AS carry identical communities, as real ones do —
    // Component #1's cross-prefix step depends on this).
    const std::uint64_t salt =
        (static_cast<std::uint64_t>(origin) << 20) ^ (hop * 0x9e3779b9ull);
    if (salt % 8 == 0) {
      bgp::insert_community(
          set, Community(static_cast<std::uint16_t>(hop % 65521),
                         static_cast<std::uint16_t>(0x0300 | (salt % 16))));
    }
  }
  if (auto it = community_overrides_.find(prefix);
      it != community_overrides_.end()) {
    for (Community c : it->second) bgp::insert_community(set, c);
  }
  return set;
}

Timestamp Internet::delay_for(const bgp::AsPath& path,
                              std::mt19937_64& rng) const {
  const auto hops = static_cast<Timestamp>(path.empty() ? 4 : path.size());
  std::uniform_int_distribution<Timestamp> jitter(0, config_.jitter);
  return config_.per_hop_delay * hops + jitter(rng);
}

Update Internet::make_update(VpId vp, const net::Prefix& prefix,
                             const bgp::AsPath& path, Timestamp t) const {
  Update u;
  u.vp = vp;
  u.time = t;
  u.prefix = prefix;
  u.path = path;
  u.communities = communities_for(path, prefix);
  return u;
}

Update Internet::make_withdrawal(VpId vp, const net::Prefix& prefix,
                                 Timestamp t) const {
  Update u;
  u.vp = vp;
  u.time = t;
  u.prefix = prefix;
  u.withdrawal = true;
  return u;
}

UpdateStream Internet::diff_and_emit(
    const std::vector<std::pair<const DestinationRouting*,
                                const DestinationRouting*>>& changes,
    const std::vector<AsNumber>& affected_origins,
    const std::vector<const net::Prefix*>& explicit_prefixes, Timestamp t,
    GroundTruth* truth) {
  UpdateStream out;
  for (std::size_t c = 0; c < changes.size(); ++c) {
    const DestinationRouting* before = changes[c].first;
    const DestinationRouting* after = changes[c].second;
    // Which prefixes this routing change applies to.
    std::vector<net::Prefix> prefixes;
    if (c < explicit_prefixes.size() && explicit_prefixes[c] != nullptr) {
      prefixes.push_back(*explicit_prefixes[c]);
    } else if (c < affected_origins.size()) {
      prefixes = config_.prefixes[affected_origins[c]];
    }
    if (prefixes.empty()) continue;

    for (VpId vp = 0; vp < config_.vp_hosts.size(); ++vp) {
      const AsNumber host = config_.vp_hosts[vp];
      const bgp::AsPath old_path =
          before ? before->path(host) : bgp::AsPath{};
      const bgp::AsPath new_path = after ? after->path(host) : bgp::AsPath{};
      if (old_path == new_path) continue;
      if (truth) truth->observers.push_back(vp);

      const Timestamp arrival =
          t + delay_for(new_path.empty() ? old_path : new_path, rng_);

      // Optional path exploration: a short-lived intermediate route through
      // another neighbor that is about to become stale too.
      bool explored = false;
      bgp::AsPath transient;
      if (!old_path.empty() && !new_path.empty() &&
          config_.path_exploration_probability > 0) {
        std::uniform_real_distribution<double> coin(0.0, 1.0);
        if (coin(rng_) < config_.path_exploration_probability && before) {
          const AsNumber old_first =
              old_path.size() >= 2 ? old_path[1] : 0;
          for (AsNumber neighbor : topology_->neighbors(host)) {
            if (neighbor == old_first) continue;
            if (!before->has_route(neighbor)) continue;
            bgp::AsPath via = before->path(neighbor);
            if (via.contains(host)) continue;
            std::vector<AsNumber> hops{host};
            hops.insert(hops.end(), via.hops().begin(), via.hops().end());
            transient = bgp::AsPath(std::move(hops));
            if (transient != new_path && transient != old_path) {
              explored = true;
            }
            break;
          }
        }
      }

      for (const net::Prefix& prefix : prefixes) {
        if (explored) {
          const Timestamp mid = t + (arrival - t) / 2;
          out.push(make_update(vp, prefix, transient, mid));
          GroundTruth transient_truth;
          transient_truth.kind = GroundTruth::Kind::kTransientPath;
          transient_truth.time = mid;
          transient_truth.vp = vp;
          transient_truth.prefix = prefix;
          transient_truth.observers.push_back(vp);
          truths_.push_back(std::move(transient_truth));
        }
        if (new_path.empty()) {
          out.push(make_withdrawal(vp, prefix, arrival));
        } else {
          out.push(make_update(vp, prefix, new_path, arrival));
        }
      }
    }
    if (truth) {
      std::sort(truth->observers.begin(), truth->observers.end());
      truth->observers.erase(
          std::unique(truth->observers.begin(), truth->observers.end()),
          truth->observers.end());
    }
  }
  out.sort();
  return out;
}

UpdateStream Internet::fail_link(AsNumber a, AsNumber b, Timestamp t) {
  GroundTruth truth;
  truth.kind = GroundTruth::Kind::kLinkFailure;
  truth.time = t;
  truth.link_a = a;
  truth.link_b = b;
  if (auto rel = topology_->relationship(a, b)) {
    truth.link_is_p2p = (*rel == topo::Relationship::kPeerToPeer);
  }

  const std::vector<AsNumber> affected = origins_using_link(a, b);
  std::vector<net::Prefix> affected_overrides;
  for (auto& [prefix, ov] : overrides_) {
    if (ov.routing.uses_link(a, b)) affected_overrides.push_back(prefix);
  }
  engine_.fail_link(a, b);
  failure_scope_[topo::Link{a, b}.key()] = affected;

  // Recompute new trees, then diff old vs new.
  std::vector<DestinationRouting> old_trees;
  old_trees.reserve(affected.size());
  std::vector<std::pair<const DestinationRouting*, const DestinationRouting*>>
      changes;
  std::vector<const net::Prefix*> explicit_prefixes;
  for (AsNumber origin : affected) {
    old_trees.push_back(std::move(origin_trees_[origin]));
    origin_trees_[origin] = engine_.compute(origin);
  }
  for (std::size_t i = 0; i < affected.size(); ++i) {
    changes.emplace_back(&old_trees[i], &origin_trees_[affected[i]]);
    explicit_prefixes.push_back(nullptr);
  }
  std::vector<DestinationRouting> old_override_trees;
  old_override_trees.reserve(affected_overrides.size());
  for (const net::Prefix& prefix : affected_overrides) {
    PrefixOverride& ov = overrides_.at(prefix);
    old_override_trees.push_back(std::move(ov.routing));
    ov.routing = engine_.compute(old_override_trees.back().seeds());
  }
  for (std::size_t i = 0; i < affected_overrides.size(); ++i) {
    changes.emplace_back(&old_override_trees[i],
                         &overrides_.at(affected_overrides[i]).routing);
    explicit_prefixes.push_back(&affected_overrides[i]);
  }

  std::vector<AsNumber> origin_list = affected;
  origin_list.resize(changes.size(), 0);  // overrides use explicit prefixes
  UpdateStream out =
      diff_and_emit(changes, origin_list, explicit_prefixes, t, &truth);
  truths_.push_back(std::move(truth));
  return out;
}

UpdateStream Internet::restore_link(AsNumber a, AsNumber b, Timestamp t) {
  GroundTruth truth;
  truth.kind = GroundTruth::Kind::kLinkRestore;
  truth.time = t;
  truth.link_a = a;
  truth.link_b = b;
  engine_.restore_link(a, b);

  std::vector<AsNumber> affected;
  if (auto it = failure_scope_.find(topo::Link{a, b}.key());
      it != failure_scope_.end()) {
    affected = it->second;
    failure_scope_.erase(it);
  } else {
    for (AsNumber origin = 0; origin < topology_->as_count(); ++origin) {
      if (!config_.prefixes[origin].empty()) affected.push_back(origin);
    }
  }

  std::vector<DestinationRouting> old_trees;
  std::vector<std::pair<const DestinationRouting*, const DestinationRouting*>>
      changes;
  std::vector<const net::Prefix*> explicit_prefixes;
  old_trees.reserve(affected.size());
  for (AsNumber origin : affected) {
    old_trees.push_back(std::move(origin_trees_[origin]));
    origin_trees_[origin] = engine_.compute(origin);
  }
  for (std::size_t i = 0; i < affected.size(); ++i) {
    changes.emplace_back(&old_trees[i], &origin_trees_[affected[i]]);
    explicit_prefixes.push_back(nullptr);
  }
  // Overrides may also heal.
  std::vector<net::Prefix> override_prefixes;
  for (auto& [prefix, ov] : overrides_) override_prefixes.push_back(prefix);
  std::vector<DestinationRouting> old_override_trees;
  old_override_trees.reserve(override_prefixes.size());
  for (const net::Prefix& prefix : override_prefixes) {
    PrefixOverride& ov = overrides_.at(prefix);
    old_override_trees.push_back(std::move(ov.routing));
    ov.routing = engine_.compute(old_override_trees.back().seeds());
  }
  for (std::size_t i = 0; i < override_prefixes.size(); ++i) {
    changes.emplace_back(&old_override_trees[i],
                         &overrides_.at(override_prefixes[i]).routing);
    explicit_prefixes.push_back(&override_prefixes[i]);
  }

  std::vector<AsNumber> origin_list = affected;
  origin_list.resize(changes.size(), 0);
  UpdateStream out =
      diff_and_emit(changes, origin_list, explicit_prefixes, t, &truth);
  truths_.push_back(std::move(truth));
  return out;
}

UpdateStream Internet::start_hijack(AsNumber attacker,
                                    const net::Prefix& prefix, int type,
                                    Timestamp t) {
  const AsNumber origin = origin_of(prefix);
  std::vector<AsNumber> tail;
  if (type <= 1) {
    tail = {origin};
  } else {
    // Type-2+: the attacker forges its adjacency to a real neighbor of the
    // origin so that only the attacker-side link is bogus.
    AsNumber mid = origin;
    for (AsNumber neighbor : topology_->neighbors(origin)) {
      if (neighbor != attacker) {
        mid = neighbor;
        break;
      }
    }
    tail = {mid, origin};
    for (int extra = 3; extra <= type; ++extra) {
      tail.insert(tail.begin(), mid);  // degenerate padding for Type>2
    }
  }

  GroundTruth truth;
  truth.kind = GroundTruth::Kind::kHijack;
  truth.time = t;
  truth.origin = origin;
  truth.other_as = attacker;
  truth.hijack_type = type;
  truth.prefix = prefix;

  const DestinationRouting* before = &routing_for(prefix);
  PrefixOverride ov;
  ov.routing = engine_.compute(
      {Seed{origin, 0, {}},
       Seed{attacker, static_cast<std::uint16_t>(type), tail}});
  // Keep the pre-event routing alive while diffing.
  DestinationRouting old_copy = *before;
  overrides_[prefix] = std::move(ov);

  UpdateStream out = diff_and_emit({{&old_copy, &overrides_[prefix].routing}},
                                   {origin}, {&prefix}, t, &truth);
  overrides_[prefix].truth = truth;
  truths_.push_back(std::move(truth));
  return out;
}

UpdateStream Internet::leak_routes(AsNumber leaker, Timestamp t,
                                   std::size_t max_prefixes,
                                   std::optional<Community> tag) {
  UpdateStream out;
  std::size_t leaked = 0;
  for (AsNumber origin = 0; origin < topology_->as_count(); ++origin) {
    if (max_prefixes && leaked >= max_prefixes) break;
    if (origin == leaker || config_.prefixes[origin].empty()) continue;
    const DestinationRouting& tree = origin_trees_[origin];
    if (tree.as_count() == 0) continue;
    const RouteClass cls = tree.route_class(leaker);
    if (cls != RouteClass::kProvider && cls != RouteClass::kPeer) continue;
    // The leaker re-announces its current provider/peer-learned path as if
    // it were a customer route. Seeding the leaker with its existing path as
    // a forged tail reproduces that path byte-for-byte at the leaker while
    // letting it propagate valley-violating (to the leaker's providers and
    // peers, who now prefer the customer-class route through the leaker).
    const bgp::AsPath leaker_path = tree.path(leaker);
    const std::vector<AsNumber> tail(leaker_path.hops().begin() + 1,
                                     leaker_path.hops().end());
    for (const net::Prefix& prefix : config_.prefixes[origin]) {
      if (max_prefixes && leaked >= max_prefixes) break;
      if (overrides_.contains(prefix)) continue;  // don't stack events

      GroundTruth truth;
      truth.kind = GroundTruth::Kind::kRouteLeak;
      truth.time = t;
      truth.origin = origin;
      truth.other_as = leaker;
      truth.prefix = prefix;
      if (tag) {
        truth.community = *tag;
        bgp::insert_community(community_overrides_[prefix], *tag);
      }

      DestinationRouting old_copy = routing_for(prefix);
      PrefixOverride ov;
      ov.routing = engine_.compute(
          {Seed{origin, 0, {}},
           Seed{leaker, static_cast<std::uint16_t>(tail.size()), tail}});
      overrides_[prefix] = std::move(ov);

      out.append(diff_and_emit({{&old_copy, &overrides_[prefix].routing}},
                               {origin}, {&prefix}, t, &truth));
      overrides_[prefix].truth = truth;
      truths_.push_back(std::move(truth));
      ++leaked;
    }
  }
  out.sort();
  return out;
}

UpdateStream Internet::start_subprefix_hijack(AsNumber attacker,
                                              const net::Prefix& parent,
                                              int prepends, Timestamp t,
                                              std::optional<Community> tag) {
  const AsNumber origin = origin_of(parent);
  const net::Prefix sub(parent.address(), parent.length() + 1);
  if (overrides_.contains(sub) || origin_by_prefix_.contains(sub)) return {};

  GroundTruth truth;
  truth.kind = GroundTruth::Kind::kSubprefixHijack;
  truth.time = t;
  truth.origin = origin;
  truth.other_as = attacker;
  truth.hijack_type = prepends;
  truth.prefix = sub;
  if (tag) {
    truth.community = *tag;
    bgp::insert_community(community_overrides_[sub], *tag);
  }

  // AS-path prepending: the attacker repeats itself `prepends` extra times,
  // lengthening the path without hiding the bogus origin. The more-specific
  // still wins on longest-prefix match at every VP.
  const std::vector<AsNumber> tail(static_cast<std::size_t>(prepends),
                                   attacker);
  PrefixOverride ov;
  ov.routing = engine_.compute(
      {Seed{attacker, static_cast<std::uint16_t>(prepends), tail}});
  overrides_[sub] = std::move(ov);

  // The more-specific is brand new, so there is no "before" routing: every
  // VP that reaches the attacker announces it.
  UpdateStream out = diff_and_emit({{nullptr, &overrides_[sub].routing}},
                                   {origin}, {&sub}, t, &truth);
  overrides_[sub].truth = truth;
  truths_.push_back(std::move(truth));
  return out;
}

UpdateStream Internet::start_moas(AsNumber new_origin,
                                  const net::Prefix& prefix, Timestamp t) {
  const AsNumber origin = origin_of(prefix);
  GroundTruth truth;
  truth.kind = GroundTruth::Kind::kMoas;
  truth.time = t;
  truth.origin = origin;
  truth.other_as = new_origin;
  truth.prefix = prefix;

  DestinationRouting old_copy = routing_for(prefix);
  PrefixOverride ov;
  ov.routing =
      engine_.compute({Seed{origin, 0, {}}, Seed{new_origin, 0, {}}});
  overrides_[prefix] = std::move(ov);

  UpdateStream out = diff_and_emit({{&old_copy, &overrides_[prefix].routing}},
                                   {origin}, {&prefix}, t, &truth);
  overrides_[prefix].truth = truth;
  truths_.push_back(std::move(truth));
  return out;
}

UpdateStream Internet::change_origin(AsNumber new_origin,
                                     const net::Prefix& prefix, Timestamp t) {
  GroundTruth truth;
  truth.kind = GroundTruth::Kind::kOriginChange;
  truth.time = t;
  truth.origin = origin_of(prefix);
  truth.other_as = new_origin;
  truth.prefix = prefix;

  DestinationRouting old_copy = routing_for(prefix);
  PrefixOverride ov;
  ov.routing = engine_.compute(new_origin);
  overrides_[prefix] = std::move(ov);

  UpdateStream out = diff_and_emit({{&old_copy, &overrides_[prefix].routing}},
                                   {truth.origin}, {&prefix}, t, &truth);
  truths_.push_back(std::move(truth));
  return out;
}

UpdateStream Internet::clear_prefix_override(const net::Prefix& prefix,
                                             Timestamp t) {
  auto it = overrides_.find(prefix);
  if (it == overrides_.end()) return {};
  DestinationRouting old_copy = std::move(it->second.routing);
  overrides_.erase(it);
  // A prefix with no static origin (e.g. a hijacked more-specific) simply
  // disappears once the override ends: every route to it is withdrawn.
  auto origin_it = origin_by_prefix_.find(prefix);
  if (origin_it == origin_by_prefix_.end()) {
    return diff_and_emit({{&old_copy, nullptr}}, {0}, {&prefix}, t, nullptr);
  }
  const AsNumber origin = origin_it->second;
  return diff_and_emit({{&old_copy, &origin_trees_[origin]}}, {origin},
                       {&prefix}, t, nullptr);
}

UpdateStream Internet::change_community(const net::Prefix& prefix,
                                        Community community, bool is_action,
                                        Timestamp t) {
  GroundTruth truth;
  truth.kind = GroundTruth::Kind::kCommunityChange;
  truth.time = t;
  truth.prefix = prefix;
  truth.community = community;
  truth.action_community = is_action;

  community_overrides_[prefix] = CommunitySet{community};

  // Unchanged-path updates: every VP with a route re-announces with the new
  // community set and the identical AS path (use case V).
  UpdateStream out;
  const DestinationRouting& routing = routing_for(prefix);
  for (VpId vp = 0; vp < config_.vp_hosts.size(); ++vp) {
    const AsNumber host = config_.vp_hosts[vp];
    if (!routing.has_route(host)) continue;
    const bgp::AsPath path = routing.path(host);
    out.push(make_update(vp, prefix, path, t + delay_for(path, rng_)));
    truth.observers.push_back(vp);
  }
  out.sort();
  truths_.push_back(std::move(truth));
  return out;
}

UpdateStream Internet::announce_prefix(AsNumber as, const net::Prefix& prefix,
                                       Timestamp t) {
  if (origin_by_prefix_.contains(prefix)) return {};
  const bool had_prefixes = !config_.prefixes[as].empty();
  config_.prefixes[as].push_back(prefix);
  origin_by_prefix_[prefix] = as;
  if (!had_prefixes) {
    origin_trees_[as] = engine_.compute(as);
  }
  UpdateStream out;
  const DestinationRouting& routing = origin_trees_[as];
  for (VpId vp = 0; vp < config_.vp_hosts.size(); ++vp) {
    const AsNumber host = config_.vp_hosts[vp];
    if (!routing.has_route(host)) continue;
    const bgp::AsPath path = routing.path(host);
    out.push(make_update(vp, prefix, path, t + delay_for(path, rng_)));
  }
  out.sort();
  return out;
}

const DestinationRouting& Internet::routing_for(
    const net::Prefix& prefix) const {
  if (auto it = overrides_.find(prefix); it != overrides_.end()) {
    return it->second.routing;
  }
  return origin_trees_[origin_of(prefix)];
}

const DestinationRouting& Internet::routing_for_origin(AsNumber origin) const {
  return origin_trees_[origin];
}

bgp::AsPath Internet::vp_path(VpId vp, const net::Prefix& prefix) const {
  return routing_for(prefix).path(config_.vp_hosts[vp]);
}

CommunitySet Internet::vp_communities(VpId vp,
                                      const net::Prefix& prefix) const {
  return communities_for(vp_path(vp, prefix), prefix);
}

UpdateStream Internet::rib_dump(Timestamp t) const {
  UpdateStream out;
  for (VpId vp = 0; vp < config_.vp_hosts.size(); ++vp) {
    out.append(rib_dump_vp(vp, t));
  }
  out.sort();
  return out;
}

UpdateStream Internet::rib_dump_vp(VpId vp, Timestamp t) const {
  UpdateStream out;
  const AsNumber host = config_.vp_hosts[vp];
  for (AsNumber origin = 0; origin < topology_->as_count(); ++origin) {
    if (config_.prefixes[origin].empty()) continue;
    if (origin_trees_[origin].as_count() == 0) continue;
    for (const net::Prefix& prefix : config_.prefixes[origin]) {
      const DestinationRouting& routing = routing_for(prefix);
      if (!routing.has_route(host)) continue;
      out.push(make_update(vp, prefix, routing.path(host), t));
    }
  }
  return out;
}

std::vector<bgp::AsLink> Internet::visible_links(
    const std::vector<VpId>& vps) const {
  std::unordered_set<std::uint64_t> seen;
  std::vector<bgp::AsLink> out;
  auto add_path = [&](const bgp::AsPath& path) {
    for (const bgp::AsLink& link : path.links()) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(link.from) << 32) | link.to;
      if (seen.insert(key).second) out.push_back(link);
    }
  };
  for (VpId vp : vps) {
    const AsNumber host = config_.vp_hosts[vp];
    for (AsNumber origin = 0; origin < topology_->as_count(); ++origin) {
      if (config_.prefixes[origin].empty()) continue;
      if (origin_trees_[origin].as_count() == 0) continue;
      if (origin_trees_[origin].has_route(host)) {
        add_path(origin_trees_[origin].path(host));
      }
    }
    for (const auto& [prefix, ov] : overrides_) {
      if (ov.routing.has_route(host)) add_path(ov.routing.path(host));
    }
  }
  return out;
}

}  // namespace gill::sim
