// Random event workloads: produce the "one hour of RIS/RV data" streams the
// paper's measurements and benchmarks run on (§4.2, §10), with per-event
// ground truth for scoring detections.
#pragma once

#include <random>

#include "simulator/internet.hpp"

namespace gill::sim {

/// Event mix for one generated window. Rates are events per hour.
struct WorkloadConfig {
  Timestamp duration = 3600;
  double link_failures_per_hour = 30.0;
  /// Failed links are restored after a uniform delay in this range.
  Timestamp restore_after_min = 200;
  Timestamp restore_after_max = 1200;
  double moas_per_hour = 4.0;
  double origin_changes_per_hour = 4.0;
  double community_changes_per_hour = 15.0;
  /// Fraction of community changes that attach an *action* community.
  double action_community_fraction = 0.4;
  double hijacks_per_hour = 2.0;
  std::uint64_t seed = 1;
  /// Real BGP activity is heavy-tailed: a small set of links and prefixes
  /// produces most events (flapping links, unstable origins). Events are
  /// drawn from a "hot" pool containing this fraction of links/ASes. The
  /// pool depends on pool_seed only, so consecutive windows on the same
  /// world share it — which is what makes filters trained on one window
  /// match the next (Fig. 7).
  double hotspot_fraction = 1.0;
  std::uint64_t pool_seed = 424242;
};

/// Values tagged as traffic-engineering actions in the simulated community
/// space (the stand-in for the 8683 action communities of [60]).
bool is_action_community_value(std::uint16_t value) noexcept;

/// Schedules and applies a random event mix on `internet`, returning every
/// update the VPs observed (time-sorted). Ground truth accumulates in
/// internet.ground_truth().
UpdateStream generate_workload(Internet& internet, Timestamp start,
                               const WorkloadConfig& config);

}  // namespace gill::sim
