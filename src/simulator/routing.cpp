#include "simulator/routing.hpp"

#include <algorithm>

namespace gill::sim {

AsPath DestinationRouting::path(AsNumber as) const {
  if (cls_[as] == RouteClass::kNone) return AsPath{};
  std::vector<AsNumber> hops;
  AsNumber current = as;
  // Bounded walk: the next-hop graph is a forest rooted at the seeds, but
  // guard against corruption with an explicit hop budget.
  for (std::uint32_t guard = 0; guard <= as_count(); ++guard) {
    hops.push_back(current);
    if (next_[current] == current) {  // reached a seed
      const std::uint8_t seed = seed_[current];
      if (seed < seeds_.size()) {
        const auto& tail = seeds_[seed].tail;
        hops.insert(hops.end(), tail.begin(), tail.end());
      }
      return AsPath(std::move(hops));
    }
    current = next_[current];
  }
  return AsPath{};  // unreachable unless state is corrupt
}

void RoutingEngine::fail_link(AsNumber a, AsNumber b) {
  down_links_.insert(topo::Link{a, b}.key());
}

void RoutingEngine::restore_link(AsNumber a, AsNumber b) {
  down_links_.erase(topo::Link{a, b}.key());
}

bool RoutingEngine::link_up(AsNumber a, AsNumber b) const noexcept {
  if (down_links_.empty()) return true;
  return !down_links_.contains(topo::Link{a, b}.key());
}

namespace {

/// Bucket queue keyed by path length; pops nodes in nondecreasing length.
class LengthBuckets {
 public:
  void push(std::uint16_t length, AsNumber as) {
    if (length >= buckets_.size()) buckets_.resize(length + 1);
    buckets_[length].push_back(as);
    if (length < cursor_) cursor_ = length;
  }

  /// Pops the next (length, as); returns false when empty.
  bool pop(std::uint16_t& length, AsNumber& as) {
    while (cursor_ < buckets_.size()) {
      if (buckets_[cursor_].empty()) {
        ++cursor_;
        continue;
      }
      as = buckets_[cursor_].back();
      buckets_[cursor_].pop_back();
      length = static_cast<std::uint16_t>(cursor_);
      return true;
    }
    return false;
  }

 private:
  std::vector<std::vector<AsNumber>> buckets_;
  std::size_t cursor_ = 0;
};

}  // namespace

DestinationRouting RoutingEngine::compute(const std::vector<Seed>& seeds) const {
  const std::uint32_t n = topology_->as_count();
  DestinationRouting routing;
  routing.cls_.assign(n, RouteClass::kNone);
  routing.len_.assign(n, 0xFFFF);
  routing.next_.assign(n, 0);
  routing.seed_.assign(n, 0xFF);
  routing.seeds_ = seeds;

  auto& cls = routing.cls_;
  auto& len = routing.len_;
  auto& next = routing.next_;
  auto& seed_of = routing.seed_;

  // Candidate acceptance shared by all phases. Returns true if the route
  // (klass, length, via) replaces the current one at `as`.
  auto better = [&](AsNumber as, RouteClass klass, std::uint16_t length,
                    AsNumber via) {
    if (cls[as] == RouteClass::kNone) return true;
    if (klass != cls[as]) return klass > cls[as];
    if (length != len[as]) return length < len[as];
    return via < next[as];
  };

  // --- Seeds -------------------------------------------------------------
  LengthBuckets up;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const Seed& seed = seeds[i];
    // Between two origins at one AS (rare), prefer the shorter base path.
    if (better(seed.as, RouteClass::kOrigin, seed.base_length, seed.as)) {
      cls[seed.as] = RouteClass::kOrigin;
      len[seed.as] = seed.base_length;
      next[seed.as] = seed.as;
      seed_of[seed.as] = static_cast<std::uint8_t>(i);
      up.push(seed.base_length, seed.as);
    }
  }

  // --- Phase 1: customer routes climb the provider hierarchy -------------
  {
    std::uint16_t length;
    AsNumber u;
    while (up.pop(length, u)) {
      if (len[u] != length) continue;  // stale entry
      if (cls[u] != RouteClass::kOrigin && cls[u] != RouteClass::kCustomer) {
        continue;
      }
      for (AsNumber provider : topology_->providers(u)) {
        if (!link_up(u, provider)) continue;
        const auto candidate = static_cast<std::uint16_t>(length + 1);
        if (better(provider, RouteClass::kCustomer, candidate, u)) {
          const bool repush =
              cls[provider] == RouteClass::kNone || len[provider] != candidate;
          cls[provider] = RouteClass::kCustomer;
          len[provider] = candidate;
          next[provider] = u;
          seed_of[provider] = seed_of[u];
          if (repush) up.push(candidate, provider);
        }
      }
    }
  }

  // --- Phase 2: one hop across peer links --------------------------------
  // Peer routes are not re-exported to other peers, so a single pass over
  // all peer adjacencies from customer/origin-routed nodes suffices.
  {
    // Snapshot: only routes that existed after phase 1 may cross a peering.
    std::vector<std::uint32_t> exporters;
    for (AsNumber u = 0; u < n; ++u) {
      if (cls[u] == RouteClass::kOrigin || cls[u] == RouteClass::kCustomer) {
        exporters.push_back(u);
      }
    }
    for (AsNumber u : exporters) {
      for (AsNumber peer : topology_->peers(u)) {
        if (!link_up(u, peer)) continue;
        const auto candidate = static_cast<std::uint16_t>(len[u] + 1);
        if (better(peer, RouteClass::kPeer, candidate, u)) {
          cls[peer] = RouteClass::kPeer;
          len[peer] = candidate;
          next[peer] = u;
          seed_of[peer] = seed_of[u];
        }
      }
    }
  }

  // --- Phase 3: provider routes descend to customers ----------------------
  {
    LengthBuckets down;
    for (AsNumber u = 0; u < n; ++u) {
      if (cls[u] != RouteClass::kNone) down.push(len[u], u);
    }
    std::uint16_t length;
    AsNumber u;
    while (down.pop(length, u)) {
      if (len[u] != length) continue;  // stale
      for (AsNumber customer : topology_->customers(u)) {
        if (!link_up(u, customer)) continue;
        const auto candidate = static_cast<std::uint16_t>(length + 1);
        if (better(customer, RouteClass::kProvider, candidate, u)) {
          const bool repush =
              cls[customer] == RouteClass::kNone || len[customer] != candidate;
          cls[customer] = RouteClass::kProvider;
          len[customer] = candidate;
          next[customer] = u;
          seed_of[customer] = seed_of[u];
          if (repush) down.push(candidate, customer);
        }
      }
    }
  }

  return routing;
}

}  // namespace gill::sim
