// Chaos soak (ISSUE 6 acceptance): a flap storm over real loopback TCP.
// Dozens-to-hundreds of GR-enabled sessions all drop and return repeatedly,
// each resyncing by delta (RFC 4724); the surviving RIBs must be
// byte-identical to a no-fault baseline that received only the true deltas,
// with zero full resyncs. A second test spikes one peer's ingest 10x and
// asserts the watermark keeps queue memory bounded.
//
// Sized for the plain ctest run; tools/soak.sh scales it up via
// GILL_SOAK_PEERS / GILL_SOAK_ROUNDS and runs it under ASan/UBSan + TSan.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "collector/platform.hpp"
#include "daemon/daemon.hpp"
#include "mrt/mrt.hpp"
#include "net/event_loop.hpp"
#include "net/tcp_transport.hpp"

namespace gill::net {
namespace {

using daemon::SessionState;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

net::Prefix pfx(const std::string& text) {
  return net::Prefix::parse(text).value();
}

/// Canonical bytes of a RIB: the TABLE_DUMP-style snapshot, sorted, MRT
/// encoded. Two tables with the same routes produce identical bytes.
std::vector<std::uint8_t> rib_bytes(const bgp::Rib& rib) {
  auto stream = rib.dump(/*vp=*/1, /*time=*/7777);
  stream.sort();
  mrt::Writer writer;
  for (const auto& update : stream) writer.write_update(update);
  return writer.buffer();
}

/// A scripted GR-capable remote router (the far end of one --dial
/// peering): every accepted connection gets a fresh FakePeer advertising
/// the RFC 4724 capability; reconnections claim a restart.
struct GrRouter {
  EventLoop& loop;
  metrics::Registry& registry;
  bgp::AsNumber as;
  TcpListener listener;
  std::unique_ptr<TcpTransport> transport;
  std::unique_ptr<daemon::FakePeer> peer;
  std::size_t connections = 0;

  GrRouter(EventLoop& loop, metrics::Registry& registry, bgp::AsNumber as)
      : loop(loop), registry(registry), as(as), listener(loop, &registry) {
    EXPECT_TRUE(listener.listen(
        "127.0.0.1", 0, [this](int fd, std::string, std::uint16_t) {
          transport = std::make_unique<TcpTransport>(
              this->loop, Role::kPeerSide, &this->registry);
          transport->adopt(fd);
          peer = std::make_unique<daemon::FakePeer>(this->as, *transport);
          peer->enable_graceful_restart(120,
                                        /*restarting=*/connections > 0);
          ++connections;
        }));
  }

  void pump() {
    if (peer) peer->poll();
    if (transport) transport->sync();
  }

  /// The router dies mid-session: FIN to the collector.
  void restart() {
    peer.reset();
    transport.reset();
  }
};

TEST(Soak, FlapStormResyncsByteIdenticalToBaseline) {
  const std::size_t peer_count = env_size("GILL_SOAK_PEERS", 40);
  const std::size_t rounds = env_size("GILL_SOAK_ROUNDS", 2);
  constexpr std::size_t kRoutes = 6;

  EventLoop loop;
  metrics::Registry registry;
  collect::PlatformConfig config;
  config.registry = &registry;
  config.retry.base = 1;
  config.retry.jitter = 0.0;
  collect::Platform platform(config);

  // The no-fault baseline: identical sessions over in-memory transports
  // whose peers never flap and send only the true deltas.
  collect::Platform baseline;

  std::vector<std::unique_ptr<GrRouter>> routers;
  std::vector<TcpTransport*> transports;
  std::vector<bgp::VpId> vps, base_vps;
  bgp::Timestamp now = 1000;
  for (std::size_t i = 0; i < peer_count; ++i) {
    const auto as = static_cast<bgp::AsNumber>(65001 + i);
    routers.push_back(std::make_unique<GrRouter>(loop, registry, as));
    auto transport =
        std::make_unique<TcpTransport>(loop, Role::kDaemonSide, &registry);
    auto* raw = transport.get();
    ASSERT_TRUE(raw->dial("127.0.0.1", routers[i]->listener.port()));
    vps.push_back(platform.add_dialed_peer(as, now, std::move(transport)));
    platform.daemon_mut(vps[i]).enable_rib_dumps(8 * 3600);
    transports.push_back(raw);
    base_vps.push_back(baseline.add_peer(as, now));
    baseline.daemon_mut(base_vps[i]).enable_rib_dumps(8 * 3600);
  }

  const auto drive = [&](auto done, bool advance_time) {
    for (int i = 0; i < 6000; ++i) {
      if (advance_time && i < 64) ++now;  // lets reconnect backoffs elapse
      loop.run_once(2);
      platform.step(now);
      for (auto* transport : transports) transport->sync();
      for (auto& router : routers) router->pump();
      if (done()) return true;
    }
    return done();
  };
  const auto all_established = [&] {
    for (std::size_t i = 0; i < peer_count; ++i) {
      if (platform.daemon_of(vps[i]).state() != SessionState::kEstablished ||
          !routers[i]->peer || !routers[i]->peer->established()) {
        return false;
      }
    }
    return true;
  };

  ASSERT_TRUE(drive(all_established, /*advance_time=*/false));
  baseline.step(now);
  baseline.step(now);
  for (const auto vp : vps) {
    ASSERT_TRUE(platform.daemon_of(vp).gr_negotiated());
  }

  // The live table every router serves, tracked by the test: the storm
  // mutates it per round and both platforms must converge onto it.
  struct RouteState {
    bool alive = true;
    bgp::AsPath path;
  };
  std::vector<RouteState> table(kRoutes);
  const auto prefix_of = [](std::size_t j) {
    return pfx("10.0." + std::to_string(j) + ".0/24");
  };
  const auto announce_of = [&](std::size_t i, std::size_t j) {
    bgp::Update update;
    update.prefix = prefix_of(j);
    update.path = table[j].path;
    update.path.prepend(static_cast<bgp::AsNumber>(65001 + i));
    return update;
  };
  for (std::size_t j = 0; j < kRoutes; ++j) {
    table[j].path = bgp::AsPath{static_cast<bgp::AsNumber>(100 + j)};
  }

  // Initial full feed, both sides.
  for (std::size_t i = 0; i < peer_count; ++i) {
    for (std::size_t j = 0; j < kRoutes; ++j) {
      routers[i]->peer->send_update(announce_of(i, j));
      baseline.remote(base_vps[i]).send_update(announce_of(i, j));
    }
  }
  const auto all_fed = [&] {
    for (std::size_t i = 0; i < peer_count; ++i) {
      if (platform.daemon_of(vps[i]).rib().size() != kRoutes) return false;
    }
    return true;
  };
  ASSERT_TRUE(drive(all_fed, /*advance_time=*/false));
  baseline.step(now);

  // The storm: every session drops at once, every round.
  for (std::size_t round = 0; round < rounds; ++round) {
    for (auto& router : routers) router->restart();
    const auto all_down = [&] {
      for (std::size_t i = 0; i < peer_count; ++i) {
        if (platform.daemon_of(vps[i]).state() != SessionState::kIdle) {
          return false;
        }
      }
      return true;
    };
    ASSERT_TRUE(drive(all_down, /*advance_time=*/false));
    // Helper mode engaged: tables retained as stale, nothing purged.
    for (const auto vp : vps) {
      ASSERT_TRUE(platform.daemon_of(vp).gr_syncing());
      ASSERT_GT(platform.daemon_of(vp).rib().stale_count(), 0u);
    }

    ASSERT_TRUE(drive(all_established, /*advance_time=*/true));

    // The round's delta: one route withdrawn, some paths changed, the
    // rest re-advertised byte-identically (as a restarted router would).
    const std::size_t withdrawn =
        kRoutes - 1 - (round % kRoutes);  // distinct per round (< kRoutes)
    for (std::size_t j = 0; j < kRoutes; ++j) {
      if (j == withdrawn) {
        table[j].alive = false;
      } else if (table[j].alive && (j + round) % 3 == 0) {
        table[j].path = bgp::AsPath{static_cast<bgp::AsNumber>(100 + j),
                                    static_cast<bgp::AsNumber>(200 + round)};
      }
    }
    for (std::size_t i = 0; i < peer_count; ++i) {
      for (std::size_t j = 0; j < kRoutes; ++j) {
        if (!table[j].alive) {
          if (j == withdrawn) {  // the baseline hears an honest withdrawal
            bgp::Update gone;
            gone.prefix = prefix_of(j);
            gone.withdrawal = true;
            baseline.remote(base_vps[i]).send_update(gone);
          }
          continue;  // the restarted router simply omits it
        }
        routers[i]->peer->send_update(announce_of(i, j));
        if ((j + round) % 3 == 0) {  // only true deltas reach the baseline
          baseline.remote(base_vps[i]).send_update(announce_of(i, j));
        }
      }
      routers[i]->peer->send_end_of_rib();
    }
    const auto all_synced = [&] {
      for (std::size_t i = 0; i < peer_count; ++i) {
        if (platform.daemon_of(vps[i]).stats().eor_received != round + 1 ||
            platform.daemon_of(vps[i]).gr_syncing()) {
          return false;
        }
      }
      return true;
    };
    ASSERT_TRUE(drive(all_synced, /*advance_time=*/false));
    baseline.step(now);
  }

  // Acceptance: the surviving RIBs are byte-identical to the no-fault
  // baseline, with not one full resync across the whole storm.
  for (std::size_t i = 0; i < peer_count; ++i) {
    const auto& stormed = platform.daemon_of(vps[i]);
    const auto& calm = baseline.daemon_of(base_vps[i]);
    EXPECT_EQ(rib_bytes(stormed.rib()), rib_bytes(calm.rib())) << "vp " << i;
    EXPECT_EQ(stormed.stats().resyncs, 0u);
    EXPECT_GT(stormed.stats().stale_refreshed, 0u);
    // Storage saw the same delta: no replayed-RIB inflation.
    EXPECT_EQ(stormed.stats().updates_stored, calm.stats().updates_stored);
  }
  EXPECT_EQ(registry.counter_total("gill_gr_stale_swept_total"),
            peer_count * rounds);
}

TEST(Soak, TenfoldIngestSpikeStaysUnderTheWatermark) {
  constexpr std::size_t kHighWatermark = 32 * 1024;
  constexpr bgp::Timestamp kNow = 1000;

  EventLoop loop;
  metrics::Registry registry;
  collect::PlatformConfig config;
  config.registry = &registry;
  collect::Platform platform(config);
  TcpListener bgp_listener(loop, &registry);
  TcpTransport* raw = nullptr;
  bgp::VpId session_vp = 0;
  bool accepted = false;
  ASSERT_TRUE(bgp_listener.listen(
      "127.0.0.1", 0, [&](int fd, std::string, std::uint16_t) {
        auto transport =
            std::make_unique<TcpTransport>(loop, Role::kDaemonSide, &registry);
        IngestLimits limits;
        limits.queue_high_watermark = kHighWatermark;
        transport->set_ingest_limits(limits);
        raw = transport.get();
        transport->adopt(fd);
        session_vp = platform.add_remote_peer(0, kNow, std::move(transport));
        platform.daemon_mut(session_vp).enable_rib_dumps(8 * 3600);
        accepted = true;
      }));
  TcpTransport client(loop, Role::kPeerSide, &registry);
  ASSERT_TRUE(client.dial("127.0.0.1", bgp_listener.port()));
  daemon::FakePeer peer(65010, client);

  const auto drive = [&](auto done, bool step_platform) {
    for (int i = 0; i < 6000; ++i) {
      loop.run_once(2);
      if (step_platform) {
        platform.step(kNow);
        if (raw) raw->sync();
      }
      peer.poll();
      client.sync();
      if (done()) return true;
    }
    return done();
  };
  ASSERT_TRUE(drive(
      [&] {
        return accepted &&
               platform.daemon_of(session_vp).state() ==
                   SessionState::kEstablished &&
               peer.established();
      },
      /*step_platform=*/true));

  // The spike: ~10x a normal burst, fired while the collector's session
  // layer is stalled (platform.step withheld) — worst case for queueing.
  constexpr std::size_t kSpikeUpdates = 4000;
  peer.send_synthetic_burst(kSpikeUpdates, 10u << 24);
  std::size_t max_queue = 0;
  for (int i = 0; i < 600; ++i) {
    loop.run_once(2);
    peer.poll();
    client.sync();
    max_queue = std::max(max_queue, raw->inbound_queue_bytes());
  }
  // Bounded by the watermark plus at most one 16 KiB read chunk — NOT by
  // the size of the spike.
  EXPECT_GE(max_queue, static_cast<std::size_t>(1));
  EXPECT_LE(max_queue, kHighWatermark + 16384);
  EXPECT_TRUE(raw->reads_paused());
  EXPECT_GE(registry.counter_total("gill_overload_read_pauses_total"), 1u);

  // Service resumes: every update of the spike is eventually ingested and
  // the queue drains (backpressure shed load in time, not in data).
  ASSERT_TRUE(drive(
      [&] {
        return platform.daemon_of(session_vp).stats().updates_received ==
               kSpikeUpdates;
      },
      /*step_platform=*/true));
  for (int i = 0; i < 600; ++i) {
    max_queue = std::max(max_queue, raw->inbound_queue_bytes());
    loop.run_once(2);
    platform.step(kNow);
    raw->sync();
    peer.poll();
    client.sync();
  }
  EXPECT_LE(max_queue, kHighWatermark + 16384);
  EXPECT_FALSE(raw->reads_paused());
  EXPECT_EQ(platform.daemon_of(session_vp).rib().size(), kSpikeUpdates);
}

}  // namespace
}  // namespace gill::net
