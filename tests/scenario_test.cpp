// The closed-loop scenario harness (DESIGN.md §13): link shaping, the
// long-memory pacing model, the leak/hijack scenario builders, the verdict
// scorer, the deterministic in-memory loop — and the real thing: a forked
// gill-scenariod driving a forked gill-collectord over shaped loopback TCP
// end to end (`ctest -L scenario`, scaled by tools/soak.sh under
// sanitizers).
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/driver.hpp"
#include "harness/interarrival.hpp"
#include "harness/link_model.hpp"
#include "harness/scenario.hpp"
#include "harness/verdict.hpp"
#include "simulator/internet.hpp"
#include "topology/generator.hpp"

namespace {

using namespace gill;
using harness::LinkModelConfig;
using harness::ShapedTransport;

std::vector<std::uint8_t> bgp_message(std::uint8_t type, std::size_t size,
                                      std::uint8_t marker = 0) {
  std::vector<std::uint8_t> message(size, 0xff);
  message[16] = static_cast<std::uint8_t>(size >> 8);
  message[17] = static_cast<std::uint8_t>(size & 0xff);
  message[18] = type;
  if (size > 19) message[19] = marker;  // sequence tag for FIFO checks
  return message;
}

int run_command(const std::string& command) {
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---------------------------------------------------------------------------
// Link model.
// ---------------------------------------------------------------------------

TEST(LinkModel, LatencyDelaysDeliveryUntilDue) {
  LinkModelConfig config;
  config.latency_ms = 50.0;
  ShapedTransport transport(config);
  const auto update = bgp_message(2, 40);
  transport.write_to_daemon(update);
  transport.advance(10.0);
  EXPECT_TRUE(transport.to_daemon.empty());
  transport.advance(60.0);
  EXPECT_EQ(transport.to_daemon.size(), update.size());
  EXPECT_GE(transport.shaping_stats().max_delay_ms, 50.0);
}

TEST(LinkModel, JitterNeverReordersADirection) {
  LinkModelConfig config;
  config.latency_ms = 5.0;
  config.jitter_ms = 30.0;
  config.seed = 42;
  ShapedTransport transport(config);
  for (std::uint8_t i = 0; i < 20; ++i) {
    transport.write_to_daemon(bgp_message(2, 40, i));
  }
  transport.advance(10000.0);
  const auto bytes = transport.to_daemon.read();
  ASSERT_EQ(bytes.size(), 20u * 40u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(bytes[i * 40 + 19], i) << "message " << i << " out of order";
  }
}

TEST(LinkModel, LossDropsOnlyRealUpdates) {
  LinkModelConfig config;
  config.loss_rate = 1.0;  // drop every eligible message
  ShapedTransport transport(config);
  transport.write_to_daemon(bgp_message(4, 19));  // KEEPALIVE: kept
  transport.write_to_daemon(bgp_message(2, 23));  // End-of-RIB: kept
  transport.write_to_daemon(bgp_message(2, 40));  // UPDATE: dropped
  transport.write_to_peer(bgp_message(2, 40));    // daemon->peer: never lossy
  transport.advance(1000.0);
  EXPECT_EQ(transport.to_daemon.size(), 19u + 23u);
  EXPECT_EQ(transport.to_peer.size(), 40u);
  EXPECT_EQ(transport.shaping_stats().lost_updates, 1u);
}

TEST(LinkModel, BandwidthCapSerializesBackToBack) {
  LinkModelConfig config;
  config.bandwidth_bytes_per_sec = 1000.0;  // 100 bytes = 100 ms on the wire
  ShapedTransport transport(config);
  transport.write_to_daemon(bgp_message(2, 100));
  transport.write_to_daemon(bgp_message(2, 100));
  transport.advance(150.0);
  EXPECT_EQ(transport.to_daemon.size(), 100u);  // second still serializing
  transport.advance(250.0);
  EXPECT_EQ(transport.to_daemon.size(), 200u);
}

TEST(LinkModel, DisconnectFlushesTheShapingQueues) {
  LinkModelConfig config;
  config.latency_ms = 100.0;
  ShapedTransport transport(config);
  transport.write_to_daemon(bgp_message(2, 40));
  transport.disconnect();
  transport.reconnect();
  transport.advance(10000.0);
  EXPECT_TRUE(transport.to_daemon.empty());
  EXPECT_TRUE(transport.shaping_idle());
}

// ---------------------------------------------------------------------------
// Long-memory pacing.
// ---------------------------------------------------------------------------

TEST(Interarrival, PaceFillsTheWindowMonotonically) {
  harness::InterarrivalConfig config;
  config.seed = 7;
  harness::LongMemoryScheduler scheduler(config);
  const auto offsets = scheduler.pace(200, 3000.0);
  ASSERT_EQ(offsets.size(), 200u);
  EXPECT_DOUBLE_EQ(offsets.back(), 3000.0);
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    EXPECT_LE(offsets[i - 1], offsets[i]);
  }
}

// The point of the Kitsak-style model: BGP update interarrivals have long
// memory. Counts binned per second must show a variance-time Hurst
// exponent well above the ~0.5 of a plain Poisson process.
TEST(Interarrival, LongMemoryBeatsPoissonOnTheHurstExponent) {
  auto hurst_of = [](double volatility) {
    harness::InterarrivalConfig config;
    config.mean_rate_per_sec = 40.0;
    config.volatility = volatility;
    config.seed = 11;
    harness::LongMemoryScheduler scheduler(config);
    std::vector<double> counts(2048, 0.0);
    double t_ms = 0.0;
    while (true) {
      t_ms += scheduler.next_gap_ms();
      const auto bin = static_cast<std::size_t>(t_ms / 1000.0);
      if (bin >= counts.size()) break;
      counts[bin] += 1.0;
    }
    return harness::variance_time_hurst(counts);
  };
  const double poisson = hurst_of(0.0);
  const double long_memory = hurst_of(0.9);
  EXPECT_NEAR(poisson, 0.5, 0.15);
  EXPECT_GT(long_memory, poisson + 0.1);
}

// ---------------------------------------------------------------------------
// Scenario builders + simulator events.
// ---------------------------------------------------------------------------

harness::ScenarioConfig small_config(harness::ScenarioKind kind,
                                     std::uint64_t seed) {
  harness::ScenarioConfig config;
  config.kind = kind;
  config.as_count = 32;
  config.vp_count = 4;
  config.seed = seed;
  config.link.latency_ms = 5.0;
  config.link.jitter_ms = 2.0;
  config.link.loss_rate = 0.01;
  return config;
}

TEST(Scenario, RouteLeakBuildsObservableGroundTruth) {
  const auto scenario = harness::build_scenario(
      small_config(harness::ScenarioKind::kRouteLeak, 3));
  EXPECT_FALSE(scenario.rib.empty());
  EXPECT_FALSE(scenario.events.empty());
  ASSERT_FALSE(scenario.anomaly_truths.empty());
  for (const auto& truth : scenario.anomaly_truths) {
    EXPECT_EQ(truth.kind, sim::GroundTruth::Kind::kRouteLeak);
    EXPECT_FALSE(truth.observers.empty());
    EXPECT_EQ(truth.other_as, scenario.actor);
  }
  // The replay must actually carry evidence for every scored truth.
  harness::VerdictScorer scorer(scenario);
  for (std::size_t i = 0; i < scenario.anomaly_truths.size(); ++i) {
    std::size_t evidence = 0;
    for (const auto& update : scenario.events.updates()) {
      if (scorer.is_evidence(i, update)) ++evidence;
    }
    EXPECT_GE(evidence, 1u) << "truth " << i << " has no evidence update";
  }
}

TEST(Scenario, SubprefixHijackAnnouncesTheMoreSpecific) {
  const auto scenario = harness::build_scenario(
      small_config(harness::ScenarioKind::kSubprefixHijack, 5));
  ASSERT_FALSE(scenario.anomaly_truths.empty());
  const auto& truth = scenario.anomaly_truths.front();
  EXPECT_EQ(truth.kind, sim::GroundTruth::Kind::kSubprefixHijack);
  EXPECT_EQ(truth.other_as, scenario.actor);
  bool tagged_evidence = false;
  harness::VerdictScorer scorer(scenario);
  for (const auto& update : scenario.events.updates()) {
    if (!scorer.is_evidence(0, update)) continue;
    EXPECT_EQ(update.prefix, truth.prefix);
    EXPECT_EQ(update.path.origin(), scenario.actor);
    for (const auto& community : update.communities) {
      tagged_evidence = tagged_evidence || community == scenario.tag;
    }
  }
  EXPECT_TRUE(tagged_evidence) << "no evidence update carries the tag";
}

TEST(Scenario, ClearingAHijackOverrideWithdrawsTheSubprefix) {
  const auto params =
      topo::ArtificialParams{.as_count = 32, .seed = 9};
  const auto topology = topo::generate_artificial(params);
  sim::InternetConfig config;
  config.vp_hosts = {0, 1, 2};
  config.rng_seed = 9;
  sim::Internet internet(topology, config);
  // Find an (attacker, parent) pair the hijack event accepts.
  bgp::Update evidence;
  net::Prefix sub;
  bool hijacked = false;
  for (bgp::AsNumber victim = 3; victim < 32 && !hijacked; ++victim) {
    if (internet.prefixes()[victim].empty()) continue;
    const net::Prefix parent = internet.prefixes()[victim].front();
    for (bgp::AsNumber attacker = 3; attacker < 32; ++attacker) {
      if (attacker == victim) continue;
      const auto stream =
          internet.start_subprefix_hijack(attacker, parent, 2, 100);
      if (stream.empty()) continue;
      evidence = stream.updates().front();
      sub = evidence.prefix;
      hijacked = true;
      break;
    }
  }
  ASSERT_TRUE(hijacked);
  EXPECT_FALSE(evidence.withdrawal);
  // The regression this pins down: clearing an override whose prefix no
  // origin statically announces must WITHDRAW it, not diff against AS 0's
  // unrelated table.
  const auto cleanup = internet.clear_prefix_override(sub, 200);
  ASSERT_FALSE(cleanup.empty());
  for (const auto& update : cleanup.updates()) {
    EXPECT_TRUE(update.withdrawal);
    EXPECT_EQ(update.prefix, sub);
  }
}

// ---------------------------------------------------------------------------
// The closed loop, deterministic in-memory flavor.
// ---------------------------------------------------------------------------

TEST(ClosedLoop, InMemoryRunDetectsBothScenarioKinds) {
  for (const auto kind : {harness::ScenarioKind::kRouteLeak,
                          harness::ScenarioKind::kSubprefixHijack}) {
    auto scenario = harness::build_scenario(small_config(kind, 4));
    harness::DriverConfig driver_config;
    driver_config.replay_ms = 800.0;
    harness::ScenarioDriver driver(scenario, driver_config);
    const auto verdict = driver.run_in_memory();
    EXPECT_TRUE(verdict.passed) << verdict.to_json();
    EXPECT_GT(verdict.delivery_completeness, 0.9);
    EXPECT_GT(verdict.updates_sent, 0u);
    for (const auto& event : verdict.events) {
      EXPECT_TRUE(event.detected_archive) << verdict.to_json();
      EXPECT_TRUE(event.detected_stream) << verdict.to_json();
      EXPECT_TRUE(event.tagged) << verdict.to_json();
      EXPECT_GE(event.detection_latency_ms, 0.0);
    }
  }
}

// Same scenario config + seed => byte-identical archived MRT, run to run
// and across analysis-thread counts (the platform's determinism contract
// extended through the whole harness stack).
TEST(ClosedLoop, ArchivedStreamIsByteIdenticalAcrossRunsAndThreadCounts) {
  const auto config =
      small_config(harness::ScenarioKind::kRouteLeak, 6);
  auto run = [&](std::size_t threads) {
    auto scenario = harness::build_scenario(config);
    harness::DriverConfig driver_config;
    driver_config.replay_ms = 800.0;
    driver_config.analysis_threads = threads;
    harness::ScenarioDriver driver(scenario, driver_config);
    const auto verdict = driver.run_in_memory();
    EXPECT_TRUE(verdict.passed) << verdict.to_json();
    return driver.archived_bytes();
  };
  const auto first = run(0);
  const auto second = run(0);
  const auto threaded = run(2);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "re-run diverged";
  EXPECT_EQ(first, threaded) << "analysis-thread count leaked into bytes";
}

// ---------------------------------------------------------------------------
// The real thing: gill-scenariod forks a gill-collectord and drives it
// over shaped loopback TCP; the verdict and the exit status close the loop.
// ---------------------------------------------------------------------------

TEST(ClosedLoop, ScenariodDrivesARealCollectordOverShapedTcp) {
  const std::string verdict_path =
      ::testing::TempDir() + "/scenario_verdict.json";
  std::remove(verdict_path.c_str());
  const std::string command =
      std::string(GILL_SCENARIOD_PATH) + " --collectord " +
      GILL_COLLECTORD_PATH +
      " --scenario route-leak --scenario subprefix-hijack"
      " --latency-ms 12 --jitter-ms 5 --loss 0.02"
      " --replay-ms 1200 --settle-ms 2000 --seed 2"
      " --verdict " + verdict_path + " >/dev/null 2>&1";
  ASSERT_EQ(run_command(command), 0) << command;
  const std::string verdict = slurp(verdict_path);
  ASSERT_FALSE(verdict.empty());
  EXPECT_NE(verdict.find("\"passed\":true"), std::string::npos) << verdict;
  EXPECT_NE(verdict.find("\"detected\":true"), std::string::npos) << verdict;
  EXPECT_NE(verdict.find("\"scenario\":\"route-leak\""), std::string::npos);
  EXPECT_NE(verdict.find("\"scenario\":\"subprefix-hijack\""),
            std::string::npos);
  EXPECT_EQ(verdict.find("\"detected\":false"), std::string::npos) << verdict;
  std::remove(verdict_path.c_str());
}

// gill-simulate's status code is part of the harness contract: nonsense
// configs and mid-run failures must not exit 0.
TEST(ClosedLoop, SimulateExitsNonZeroOnBadScenarios) {
  EXPECT_NE(run_command(std::string(GILL_SIMULATE_PATH) +
                        " --ases 0 --out /dev/null 2>/dev/null"),
            0);
  EXPECT_NE(run_command(std::string(GILL_SIMULATE_PATH) +
                        " --ases 40 --vps 6 --hours 1"
                        " --out /nonexistent-dir/u.mrt 2>/dev/null"),
            0);
  const std::string out = ::testing::TempDir() + "/simulate_ok.mrt";
  EXPECT_EQ(run_command(std::string(GILL_SIMULATE_PATH) +
                        " --ases 40 --vps 6 --hours 1 --out " + out +
                        " >/dev/null 2>&1"),
            0);
  std::remove(out.c_str());
}

}  // namespace
