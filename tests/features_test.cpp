#include <gtest/gtest.h>

#include <cmath>

#include "features/features.hpp"
#include "features/vp_graph.hpp"

namespace gill::feat {
namespace {

using bgp::AsPath;

TEST(VpGraph, AddAndRemoveRoutes) {
  VpGraph graph;
  graph.add_route(AsPath{1, 2, 3});
  graph.add_route(AsPath{1, 2, 4});
  EXPECT_EQ(graph.weight(1, 2), 2u);
  EXPECT_EQ(graph.weight(2, 3), 1u);
  EXPECT_EQ(graph.edge_count(), 3u);
  EXPECT_EQ(graph.node_count(), 4u);

  graph.remove_route(AsPath{1, 2, 3});
  EXPECT_EQ(graph.weight(1, 2), 1u);
  EXPECT_EQ(graph.weight(2, 3), 0u);
  EXPECT_FALSE(graph.has_node(3));
  EXPECT_EQ(graph.edge_count(), 2u);
}

TEST(VpGraph, ReplaceRouteIsAddPlusRemove) {
  VpGraph graph;
  graph.add_route(AsPath{1, 2, 3});
  graph.replace_route(AsPath{1, 2, 3}, AsPath{1, 4, 3});
  EXPECT_EQ(graph.weight(1, 2), 0u);
  EXPECT_EQ(graph.weight(1, 4), 1u);
  EXPECT_EQ(graph.weight(4, 3), 1u);
  // Replacing with an identical path is a no-op.
  graph.replace_route(AsPath{1, 4, 3}, AsPath{1, 4, 3});
  EXPECT_EQ(graph.weight(1, 4), 1u);
}

TEST(VpGraph, DirectionMatters) {
  VpGraph graph;
  graph.add_route(AsPath{1, 2});
  EXPECT_EQ(graph.weight(1, 2), 1u);
  EXPECT_EQ(graph.weight(2, 1), 0u);
  EXPECT_EQ(graph.in(2).size(), 1u);
  EXPECT_EQ(graph.out(2).size(), 0u);
  EXPECT_EQ(graph.undirected_neighbors(2), (std::vector<bgp::AsNumber>{1}));
}

TEST(VpGraph, PrependRepetitionsDoNotSelfLoop) {
  VpGraph graph;
  AsPath path{1, 2, 3};
  path.prepend(1, 2);  // 1 1 1 2 3
  graph.add_route(path);
  EXPECT_EQ(graph.weight(1, 1), 0u);
  EXPECT_EQ(graph.weight(1, 2), 1u);
}

// A small fixed graph for feature sanity: star + triangle.
//   0 -> 1, 0 -> 2, 1 -> 2 (triangle 0-1-2), 0 -> 3 (pendant)
VpGraph diamond() {
  VpGraph graph;
  graph.add_route(AsPath{0, 1, 2});
  graph.add_route(AsPath{0, 2});
  graph.add_route(AsPath{0, 3});
  return graph;
}

TEST(Features, TrianglesAndClustering) {
  const VpGraph graph = diamond();
  const FeatureComputer computer(graph);
  EXPECT_DOUBLE_EQ(computer.triangles(0), 1.0);
  EXPECT_DOUBLE_EQ(computer.triangles(3), 0.0);
  EXPECT_GT(computer.clustering(0), 0.0);
  EXPECT_LE(computer.clustering(0), 1.0);
  EXPECT_DOUBLE_EQ(computer.clustering(3), 0.0);
}

TEST(Features, CentralitiesPositiveAndOrdered) {
  const VpGraph graph = diamond();
  const FeatureComputer computer(graph);
  // Node 0 reaches everything, node 3 reaches nothing (only inbound edge).
  EXPECT_GT(computer.closeness(0), 0.0);
  EXPECT_DOUBLE_EQ(computer.closeness(3), 0.0);
  EXPECT_GT(computer.harmonic(0), computer.harmonic(1));
  EXPECT_GT(computer.eccentricity(0), 0.0);
}

TEST(Features, WeightedDistancesShortenWithWeight) {
  VpGraph heavy;
  for (int i = 0; i < 10; ++i) heavy.add_route(AsPath{0, 1});
  VpGraph light;
  light.add_route(AsPath{0, 1});
  // Edge length is 1/weight: the heavy edge is much shorter.
  EXPECT_GT(FeatureComputer(heavy).harmonic(0),
            FeatureComputer(light).harmonic(0));
}

TEST(Features, AverageNeighborDegree) {
  const VpGraph graph = diamond();
  const FeatureComputer computer(graph);
  // Node 3 has no out-edges => 0 by convention.
  EXPECT_DOUBLE_EQ(computer.average_neighbor_degree(3), 0.0);
  EXPECT_GT(computer.average_neighbor_degree(0), 0.0);
}

TEST(Features, PairFeatures) {
  const VpGraph graph = diamond();
  const FeatureComputer computer(graph);
  // 1 and 2 share neighbor 0.
  EXPECT_GT(computer.jaccard(1, 2), 0.0);
  EXPECT_GT(computer.adamic_adar(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(computer.preferential_attachment(1, 2),
                   static_cast<double>(graph.undirected_degree(1) *
                                       graph.undirected_degree(2)));
  // 3 and 1 share neighbor 0 too; 3's only neighbor is 0.
  EXPECT_GT(computer.jaccard(1, 3), 0.0);
}

TEST(Features, AbsentNodesGiveZeroVectors) {
  const VpGraph graph = diamond();
  const FeatureComputer computer(graph);
  const NodeFeatures features = computer.node_features(99);
  for (const double f : features) EXPECT_DOUBLE_EQ(f, 0.0);
}

TEST(Features, EventVectorIsStartMinusEnd) {
  VpGraph start = diamond();
  VpGraph end = diamond();
  end.remove_route(AsPath{0, 3});  // the event removes the pendant edge
  const EventVector vector = event_vector(start, end, 0, 3);
  // Something changed for node 0 and node 3.
  bool any_nonzero = false;
  for (const double v : vector) {
    if (std::abs(v) > 1e-12) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);

  // No event => all-zero vector.
  const EventVector zero = event_vector(start, start, 0, 3);
  for (const double v : zero) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Features, VectorLayoutMatchesTable6) {
  static_assert(kNodeFeatureCount == 6);
  static_assert(kPairFeatureCount == 3);
  static_assert(kEventVectorSize == 15);
}

}  // namespace
}  // namespace gill::feat
