#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "daemon/bmp_ingest.hpp"
#include "daemon/daemon.hpp"
#include "wire/bmp.hpp"

namespace gill::daemon {
namespace {

net::Prefix pfx(const char* text) { return net::Prefix::parse(text).value(); }

struct Harness {
  Transport transport;
  MrtStore store;
  filt::FilterTable filters;
  BgpDaemon daemon{1, 65000, transport, &filters, &store};
  FakePeer peer{65010, transport};

  void establish() {
    daemon.start(0);
    peer.poll();       // peer answers OPEN + KEEPALIVE
    daemon.poll(1);    // daemon handles both, replies KEEPALIVE
    peer.poll();       // peer sees the KEEPALIVE
    daemon.tick(1);
  }
};

TEST(Session, HandshakeReachesEstablished) {
  Harness h;
  EXPECT_EQ(h.daemon.state(), SessionState::kIdle);
  h.daemon.start(0);
  EXPECT_EQ(h.daemon.state(), SessionState::kOpenSent);
  h.peer.poll();
  h.daemon.poll(1);
  EXPECT_EQ(h.daemon.state(), SessionState::kEstablished);
  EXPECT_EQ(h.daemon.peer_as(), 65010u);
  h.peer.poll();
  EXPECT_TRUE(h.peer.established());
}

TEST(Session, UpdateBeforeEstablishedResetsSession) {
  Harness h;
  h.daemon.start(0);
  // Peer misbehaves: sends an UPDATE without completing the handshake.
  bgp::Update update;
  update.prefix = pfx("10.0.0.0/24");
  update.path = bgp::AsPath{65010};
  h.peer.send_update(update);
  h.daemon.poll(1);
  EXPECT_EQ(h.daemon.state(), SessionState::kIdle);
  EXPECT_EQ(h.daemon.stats().notifications_sent, 1u);
  EXPECT_EQ(h.store.stored(), 0u);
}

TEST(Session, UpdatesAreStoredWhenEstablished) {
  Harness h;
  h.establish();
  bgp::Update update;
  update.prefix = pfx("10.0.0.0/24");
  update.path = bgp::AsPath{65010, 65011};
  update.communities = bgp::CommunitySet{{65010, 1}};
  h.peer.send_update(update);
  h.daemon.poll(5);
  EXPECT_EQ(h.daemon.stats().updates_received, 1u);
  EXPECT_EQ(h.daemon.stats().updates_stored, 1u);
  EXPECT_EQ(h.store.stored(), 1u);

  // The stored record decodes back with VP id and timestamp applied.
  mrt::Reader reader(h.store.writer().buffer());
  const auto record = reader.next();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->update.vp, 1u);
  EXPECT_EQ(record->update.time, 5);
  EXPECT_EQ(record->update.path.str(), "65010 65011");

  // stats() is a view over the registry: the same count is scrapeable.
  EXPECT_EQ(h.daemon.metrics().counter_total("gill_daemon_updates_stored_total"),
            1u);
  EXPECT_NE(h.daemon.metrics().expose_prometheus().find(
                "gill_daemon_updates_stored_total{vp=\"1\"} 1"),
            std::string::npos);
}

TEST(Session, FiltersDiscardBeforeStore) {
  Harness h;
  h.filters.add_drop(1, pfx("10.0.0.0/24"));
  h.establish();

  bgp::Update dropped;
  dropped.prefix = pfx("10.0.0.0/24");
  dropped.path = bgp::AsPath{65010};
  h.peer.send_update(dropped);
  bgp::Update kept;
  kept.prefix = pfx("10.0.1.0/24");
  kept.path = bgp::AsPath{65010};
  h.peer.send_update(kept);
  h.daemon.poll(5);

  EXPECT_EQ(h.daemon.stats().updates_received, 2u);
  EXPECT_EQ(h.daemon.stats().updates_filtered, 1u);
  EXPECT_EQ(h.daemon.stats().updates_stored, 1u);
}

TEST(Session, MirrorSeesUpdatesBeforeFilters) {
  Harness h;
  h.filters.add_drop(1, pfx("10.0.0.0/24"));
  std::size_t mirrored = 0;
  h.daemon.set_mirror([&](const bgp::Update&) { ++mirrored; });
  h.establish();
  bgp::Update update;
  update.prefix = pfx("10.0.0.0/24");
  update.path = bgp::AsPath{65010};
  h.peer.send_update(update);
  h.daemon.poll(5);
  EXPECT_EQ(mirrored, 1u);                            // mirrored
  EXPECT_EQ(h.daemon.stats().updates_filtered, 1u);   // but filtered
}

TEST(Session, WithdrawalsFlowThrough) {
  Harness h;
  h.establish();
  bgp::Update withdrawal;
  withdrawal.prefix = pfx("10.0.0.0/24");
  withdrawal.withdrawal = true;
  h.peer.send_update(withdrawal);
  h.daemon.poll(7);
  EXPECT_EQ(h.daemon.stats().updates_stored, 1u);
  mrt::Reader reader(h.store.writer().buffer());
  const auto record = reader.next();
  ASSERT_TRUE(record.has_value());
  EXPECT_TRUE(record->update.withdrawal);
}

TEST(Session, HoldTimerExpiryTearsDown) {
  Harness h;
  h.establish();
  EXPECT_EQ(h.daemon.state(), SessionState::kEstablished);
  h.daemon.tick(50);  // within hold time (90 s)
  EXPECT_EQ(h.daemon.state(), SessionState::kEstablished);
  h.daemon.tick(200);  // past hold time
  EXPECT_EQ(h.daemon.state(), SessionState::kIdle);
  EXPECT_EQ(h.daemon.stats().notifications_sent, 1u);
}

TEST(Session, GarbageBytesAreResynchronized) {
  Harness h;
  h.establish();
  const std::vector<std::uint8_t> garbage(10, 0x55);
  h.transport.to_daemon.write(garbage);
  bgp::Update update;
  update.prefix = pfx("10.0.0.0/24");
  update.path = bgp::AsPath{65010};
  h.peer.send_update(update);
  h.daemon.poll(5);
  EXPECT_EQ(h.daemon.stats().garbage_bytes, 10u);
  EXPECT_EQ(h.daemon.stats().updates_stored, 1u);  // still decodes after
}

TEST(Session, SyntheticBurst) {
  Harness h;
  h.establish();
  h.peer.send_synthetic_burst(100, 10u << 24);
  h.daemon.poll(5);
  EXPECT_EQ(h.daemon.stats().updates_received, 100u);
  EXPECT_EQ(h.store.stored(), 100u);
}

TEST(ByteQueue, PartialReads) {
  ByteQueue queue;
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  queue.write(data);
  const auto first = queue.read(2);
  EXPECT_EQ(first, (std::vector<std::uint8_t>{1, 2}));
  const auto rest = queue.read();
  EXPECT_EQ(rest, (std::vector<std::uint8_t>{3, 4, 5}));
  EXPECT_TRUE(queue.empty());
}

TEST(Session, PeriodicRibDumps) {
  Harness h;
  h.daemon.enable_rib_dumps(8 * 3600);  // §8: every eight hours
  h.establish();

  bgp::Update update;
  update.prefix = pfx("10.0.0.0/24");
  update.path = bgp::AsPath{65010, 64500};
  h.peer.send_update(update);
  bgp::Update other;
  other.prefix = pfx("10.0.1.0/24");
  other.path = bgp::AsPath{65010, 64501};
  h.peer.send_update(other);
  h.daemon.poll(5);
  EXPECT_EQ(h.daemon.rib().size(), 2u);

  const std::size_t before = h.store.stored();
  h.peer.send_keepalive();
  h.daemon.poll(9 * 3600 - 10);  // keepalive refreshes the hold timer
  h.daemon.tick(9 * 3600);       // crosses the dump interval
  EXPECT_EQ(h.daemon.rib_dumps_written(), 1u);
  EXPECT_EQ(h.store.stored(), before + 2);  // one entry per prefix

  // The snapshot records decode as TABLE_DUMP entries with the session VP.
  mrt::Reader reader(h.store.writer().buffer());
  std::size_t table_dump_records = 0;
  while (const auto record = reader.next()) {
    if (record->type == mrt::RecordType::kTableDumpV2) {
      ++table_dump_records;
      EXPECT_EQ(record->update.vp, 1u);
      EXPECT_EQ(record->update.time, 9 * 3600);
    }
  }
  EXPECT_EQ(table_dump_records, 2u);

  // A withdrawal shrinks the tracked RIB; the next interval dumps less.
  bgp::Update withdrawal;
  withdrawal.prefix = pfx("10.0.0.0/24");
  withdrawal.withdrawal = true;
  h.peer.send_update(withdrawal);
  h.daemon.poll(9 * 3600 + 10);
  h.peer.send_keepalive();
  h.daemon.poll(18 * 3600 - 10);
  h.daemon.tick(18 * 3600);
  EXPECT_EQ(h.daemon.rib_dumps_written(), 2u);
  EXPECT_EQ(h.daemon.rib().size(), 1u);
}

TEST(ByteQueue, InterleavedWritesAndReads) {
  ByteQueue queue;
  std::vector<std::uint8_t> reference;  // bytes written, in order
  std::size_t read_cursor = 0;
  std::mt19937_64 rng(7);
  for (int round = 0; round < 4000; ++round) {
    const std::size_t n = 1 + rng() % 37;
    std::vector<std::uint8_t> block(n);
    for (auto& b : block) b = static_cast<std::uint8_t>(rng());
    queue.write(block);
    reference.insert(reference.end(), block.begin(), block.end());
    if (rng() % 3 != 0) {
      const auto out = queue.read(1 + rng() % 53);
      for (const std::uint8_t b : out) {
        ASSERT_LT(read_cursor, reference.size());
        ASSERT_EQ(b, reference[read_cursor]) << "at byte " << read_cursor;
        ++read_cursor;
      }
    }
  }
  const auto rest = queue.read();
  for (const std::uint8_t b : rest) {
    ASSERT_EQ(b, reference.at(read_cursor++));
  }
  EXPECT_EQ(read_cursor, reference.size());
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
}

// ---------------------------------------------------------------------------
// Reconnect FSM, backoff, and teardown causes.
// ---------------------------------------------------------------------------

RetryPolicy no_jitter_policy() {
  RetryPolicy policy;
  policy.jitter = 0.0;
  return policy;
}

TEST(RetryPolicy, DeterministicSchedule) {
  RetryPolicy jittered;
  jittered.jitter_seed = 42;
  // Golden schedule for {base=1, cap=64, multiplier=2, jitter=0.25, seed=42}.
  const Timestamp golden[] = {1, 2, 4, 7, 12, 24, 61, 59, 53, 52};
  for (std::size_t attempt = 0; attempt < 10; ++attempt) {
    EXPECT_EQ(jittered.delay(attempt), golden[attempt]) << attempt;
  }
  // Pure function of (policy, attempt): order of evaluation is irrelevant.
  for (std::size_t attempt = 10; attempt-- > 0;) {
    EXPECT_EQ(jittered.delay(attempt), golden[attempt]) << attempt;
  }

  const Timestamp exact[] = {1, 2, 4, 8, 16, 32, 64, 64, 64, 64};
  for (std::size_t attempt = 0; attempt < 10; ++attempt) {
    EXPECT_EQ(no_jitter_policy().delay(attempt), exact[attempt]) << attempt;
  }
}

TEST(RetryPolicy, JitterStaysWithinBounds) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    RetryPolicy policy;
    policy.jitter_seed = seed;
    for (std::size_t attempt = 0; attempt < 12; ++attempt) {
      const Timestamp raw = std::min<Timestamp>(
          policy.cap, policy.base << std::min<std::size_t>(attempt, 6));
      const Timestamp delay = policy.delay(attempt);
      EXPECT_LE(delay, raw) << "seed " << seed << " attempt " << attempt;
      EXPECT_GE(delay, std::max<Timestamp>(
                           1, static_cast<Timestamp>(
                                  std::floor(0.75 * static_cast<double>(raw)))))
          << "seed " << seed << " attempt " << attempt;
    }
  }
}

TEST(Session, HoldTimerExpiryNotificationCode) {
  Harness h;
  h.establish();
  h.daemon.tick(200);  // past the 90 s hold time
  EXPECT_EQ(h.daemon.state(), SessionState::kIdle);
  ASSERT_TRUE(h.daemon.last_notification_sent().has_value());
  EXPECT_EQ(h.daemon.last_notification_sent()->code, 4);  // hold expired
  EXPECT_EQ(h.daemon.last_notification_sent()->subcode, 0);
}

TEST(Session, UpdateBeforeEstablishedNotificationCode) {
  Harness h;
  h.daemon.start(0);
  bgp::Update update;
  update.prefix = pfx("10.0.0.0/24");
  update.path = bgp::AsPath{65010};
  h.peer.send_update(update);
  h.daemon.poll(1);
  ASSERT_TRUE(h.daemon.last_notification_sent().has_value());
  EXPECT_EQ(h.daemon.last_notification_sent()->code, 5);  // FSM error
}

TEST(Session, UnexpectedOpenNotificationCode) {
  Harness h;
  h.establish();
  wire::OpenMessage open;
  open.as = 65010;
  h.transport.write_to_daemon(wire::encode(open));  // OPEN while Established
  h.daemon.poll(2);
  EXPECT_EQ(h.daemon.state(), SessionState::kIdle);
  ASSERT_TRUE(h.daemon.last_notification_sent().has_value());
  EXPECT_EQ(h.daemon.last_notification_sent()->code, 6);
}

TEST(Session, PeerNotificationTearsDownSilently) {
  Harness h;
  h.establish();
  h.transport.write_to_daemon(wire::encode(wire::NotificationMessage{6, 0}));
  h.daemon.poll(2);
  EXPECT_EQ(h.daemon.state(), SessionState::kIdle);
  // The daemon did not answer with a NOTIFICATION of its own.
  EXPECT_EQ(h.daemon.stats().notifications_sent, 0u);
  EXPECT_FALSE(h.daemon.last_notification_sent().has_value());
}

TEST(Session, KeepalivesAreGenerated) {
  Harness h;
  h.establish();
  // One keepalive per hold_time/3 = 30 s of silence from our side.
  h.daemon.tick(31);
  EXPECT_EQ(h.daemon.stats().keepalives_sent, 1u);
  h.daemon.tick(45);  // not due yet
  EXPECT_EQ(h.daemon.stats().keepalives_sent, 1u);
  h.daemon.tick(61);
  EXPECT_EQ(h.daemon.stats().keepalives_sent, 2u);
  h.peer.poll();  // the peer reads them without complaint
  EXPECT_TRUE(h.peer.established());
}

TEST(Session, ReconnectAfterHoldExpiryWithBackoff) {
  Harness h;
  h.daemon.set_retry_policy(no_jitter_policy());
  h.establish();
  h.daemon.tick(200);  // hold expiry -> Idle, reconnect in base=1 s
  EXPECT_EQ(h.daemon.state(), SessionState::kIdle);
  EXPECT_EQ(h.daemon.next_reconnect_at(), 201);
  h.daemon.tick(200);  // not due yet
  EXPECT_EQ(h.daemon.state(), SessionState::kIdle);

  h.daemon.tick(201);  // backoff elapsed: OPEN re-sent
  EXPECT_EQ(h.daemon.state(), SessionState::kOpenSent);
  EXPECT_EQ(h.daemon.stats().reconnects, 1u);
  h.peer.poll();
  h.daemon.poll(202);
  EXPECT_EQ(h.daemon.state(), SessionState::kEstablished);
  EXPECT_EQ(h.daemon.peer_as(), 65010u);
  h.peer.poll();
  EXPECT_TRUE(h.peer.established());
}

TEST(Session, BackoffGrowsAcrossConsecutiveFailures) {
  Harness h;
  h.daemon.set_retry_policy(no_jitter_policy());
  h.daemon.start(0);
  // The peer never answers: every session attempt dies by hold expiry, and
  // the gap between attempts doubles (1, 2, 4, ... capped at 64).
  Timestamp now = 0;
  Timestamp previous_gap = 0;
  for (int failures = 0; failures < 4; ++failures) {
    now += 91;  // hold expires
    h.daemon.tick(now);
    EXPECT_EQ(h.daemon.state(), SessionState::kIdle);
    const Timestamp gap = h.daemon.next_reconnect_at() - now;
    EXPECT_EQ(gap, Timestamp{1} << failures);
    EXPECT_GT(gap, previous_gap);
    previous_gap = gap;
    now = h.daemon.next_reconnect_at();
    h.daemon.tick(now);
    EXPECT_EQ(h.daemon.state(), SessionState::kOpenSent);
  }
}

TEST(Session, EstablishedSessionResetsBackoff) {
  Harness h;
  h.daemon.set_retry_policy(no_jitter_policy());
  h.establish();
  h.daemon.tick(200);  // failure #1 while attempt counter is fresh
  EXPECT_EQ(h.daemon.next_reconnect_at() - 200, 1);
  h.daemon.tick(201);
  h.peer.poll();
  h.daemon.poll(202);
  EXPECT_EQ(h.daemon.state(), SessionState::kEstablished);
  // A full session reset the schedule: the next failure starts at base again.
  h.daemon.tick(400);
  EXPECT_EQ(h.daemon.next_reconnect_at() - 400, 1);
}

TEST(Session, TransportDisconnectSchedulesReconnect) {
  Harness h;
  h.daemon.set_retry_policy(no_jitter_policy());
  h.establish();
  h.transport.disconnect();  // TCP reset under the daemon
  h.daemon.poll(10);
  EXPECT_EQ(h.daemon.state(), SessionState::kIdle);
  EXPECT_EQ(h.daemon.next_reconnect_at(), 11);
  h.daemon.tick(11);  // the daemon reopens the transport itself
  EXPECT_TRUE(h.transport.connected());
  EXPECT_EQ(h.daemon.state(), SessionState::kOpenSent);
  h.peer.poll();
  h.daemon.poll(12);
  EXPECT_EQ(h.daemon.state(), SessionState::kEstablished);
}

TEST(Session, ReconnectClearsStaleRib) {
  Harness h;
  h.daemon.set_retry_policy(no_jitter_policy());
  h.daemon.enable_rib_dumps(8 * 3600);  // arms RIB tracking
  h.establish();
  bgp::Update update;
  update.prefix = pfx("10.0.0.0/24");
  update.path = bgp::AsPath{65010};
  h.peer.send_update(update);
  h.daemon.poll(5);
  EXPECT_EQ(h.daemon.rib().size(), 1u);

  h.daemon.tick(200);  // hold expiry
  h.daemon.tick(201);  // reconnect
  EXPECT_EQ(h.daemon.rib().size(), 0u);  // stale table dropped for replay
  EXPECT_EQ(h.daemon.stats().resyncs, 1u);

  h.peer.poll();
  h.daemon.poll(202);
  EXPECT_EQ(h.daemon.state(), SessionState::kEstablished);
  h.peer.send_update(update);  // the peer replays its routes
  h.daemon.poll(203);
  EXPECT_EQ(h.daemon.rib().size(), 1u);
}

TEST(Session, NoReconnectWithoutRetryPolicy) {
  Harness h;
  h.establish();
  h.daemon.tick(200);
  EXPECT_EQ(h.daemon.state(), SessionState::kIdle);
  EXPECT_EQ(h.daemon.next_reconnect_at(), 0);
  h.daemon.tick(10000);
  EXPECT_EQ(h.daemon.state(), SessionState::kIdle);  // single-shot session
}

TEST(Session, MalformedMessagesCountDecodeErrors) {
  Harness h;
  h.establish();
  // A contiguous garbage run counts once, however long it is. A trailing
  // keepalive lets the resynchronization walk the full run (the last <19
  // bytes would otherwise wait as a potentially incomplete header).
  const std::vector<std::uint8_t> garbage(32, 0x55);
  h.transport.write_to_daemon(garbage);
  h.peer.send_keepalive();
  h.daemon.poll(2);
  EXPECT_EQ(h.daemon.stats().decode_errors, 1u);
  EXPECT_EQ(h.daemon.stats().garbage_bytes, 32u);
  EXPECT_EQ(h.daemon.state(), SessionState::kEstablished);  // resynchronized
}

// ---------------------------------------------------------------------------
// Table 1 capacity model.
// ---------------------------------------------------------------------------

TEST(CapacityModel, Table1Shape) {
  const CapacityModel model;
  const double average = 28000.0;  // updates per hour (§8)
  const double p99 = 241000.0;
  const double match = 0.93;  // fraction discarded by GILL's filters (§6)

  // With filters: 100 and 1k peers always fine; 10k fine at the average
  // rate but "high" loss at the 99th percentile.
  EXPECT_DOUBLE_EQ(model.loss_fraction(100, average, true, match), 0.0);
  EXPECT_DOUBLE_EQ(model.loss_fraction(1000, average, true, match), 0.0);
  EXPECT_DOUBLE_EQ(model.loss_fraction(10000, average, true, match), 0.0);
  EXPECT_DOUBLE_EQ(model.loss_fraction(100, p99, true, match), 0.0);
  EXPECT_DOUBLE_EQ(model.loss_fraction(1000, p99, true, match), 0.0);
  EXPECT_GT(model.loss_fraction(10000, p99, true, match), 0.3);

  // Without filters: 10k peers lose updates even at the average rate, and
  // 1k peers lose updates at the 99th percentile.
  EXPECT_DOUBLE_EQ(model.loss_fraction(100, average, false, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(model.loss_fraction(1000, average, false, 0.0), 0.0);
  const double loss_10k_avg = model.loss_fraction(10000, average, false, 0.0);
  EXPECT_GT(loss_10k_avg, 0.2);
  EXPECT_LT(loss_10k_avg, 0.6);
  EXPECT_GT(model.loss_fraction(1000, p99, false, 0.0), 0.1);
  EXPECT_GT(model.loss_fraction(10000, p99, false, 0.0), 0.7);
}

TEST(CapacityModel, FiltersAlwaysHelp) {
  const CapacityModel model;
  for (const std::size_t peers : {100u, 1000u, 10000u, 50000u}) {
    for (const double rate : {28000.0, 241000.0}) {
      EXPECT_LE(model.loss_fraction(peers, rate, true, 0.93),
                model.loss_fraction(peers, rate, false, 0.0))
          << peers << " peers @ " << rate;
    }
  }
}

TEST(CapacityModel, LossIsMonotoneInLoad) {
  const CapacityModel model;
  double previous = 0.0;
  for (std::size_t peers = 1000; peers <= 64000; peers *= 2) {
    const double loss = model.loss_fraction(peers, 28000.0, false, 0.0);
    EXPECT_GE(loss, previous);
    previous = loss;
  }
}

// ---------------------------------------------------------------------------
// BMP ingestion (§14).
// ---------------------------------------------------------------------------

wire::BmpRouteMonitoring monitoring_for(const char* prefix,
                                        std::initializer_list<bgp::AsNumber>
                                            path,
                                        std::uint32_t timestamp) {
  wire::BmpRouteMonitoring monitoring;
  monitoring.peer.address = net::IpAddress::parse("192.0.2.9").value();
  monitoring.peer.as = 65010;
  monitoring.peer.timestamp_sec = timestamp;
  monitoring.update.nlri = {pfx(prefix)};
  monitoring.update.path = bgp::AsPath(path);
  monitoring.update.next_hop = 1;
  return monitoring;
}

TEST(BmpIngest, RouteMonitoringFlowsThroughFiltersToStore) {
  filt::FilterTable filters;
  filters.add_drop(7, pfx("10.0.0.0/24"));
  MrtStore store;
  BmpIngest ingest(7, &filters, &store);
  std::size_t mirrored = 0;
  ingest.set_mirror([&](const bgp::Update&) { ++mirrored; });

  const auto dropped =
      wire::encode_bmp(monitoring_for("10.0.0.0/24", {65010, 64500}, 1000));
  const auto kept =
      wire::encode_bmp(monitoring_for("10.0.1.0/24", {65010, 64500}, 1000));
  ingest.feed(dropped, 5);
  ingest.feed(kept, 5);

  EXPECT_EQ(ingest.stats().messages, 2u);
  EXPECT_EQ(ingest.stats().route_monitoring, 2u);
  EXPECT_EQ(ingest.stats().updates_received, 2u);
  EXPECT_EQ(ingest.stats().updates_filtered, 1u);
  EXPECT_EQ(ingest.stats().updates_stored, 1u);
  EXPECT_EQ(mirrored, 2u);  // mirror sees everything, pre-filter
  EXPECT_EQ(store.stored(), 1u);

  // The BMP per-peer timestamp wins over the feed clock.
  mrt::Reader reader(store.writer().buffer());
  const auto record = reader.next();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->update.time, 1000);
  EXPECT_EQ(record->update.vp, 7u);
}

TEST(BmpIngest, PartialAndGarbageBytes) {
  MrtStore store;
  BmpIngest ingest(1, nullptr, &store);
  const auto bytes =
      wire::encode_bmp(monitoring_for("10.0.0.0/24", {65010}, 50));
  // Feed in two halves: nothing decodes until the message completes.
  ingest.feed(std::span(bytes.data(), bytes.size() / 2), 1);
  EXPECT_EQ(ingest.stats().messages, 0u);
  ingest.feed(std::span(bytes.data() + bytes.size() / 2,
                        bytes.size() - bytes.size() / 2),
              1);
  EXPECT_EQ(ingest.stats().messages, 1u);
  // Garbage resynchronizes.
  const std::vector<std::uint8_t> garbage(8, 0xEE);
  ingest.feed(garbage, 2);
  ingest.feed(bytes, 3);
  EXPECT_EQ(ingest.stats().garbage_bytes, 8u);
  EXPECT_EQ(ingest.stats().messages, 2u);
}

TEST(BmpIngest, PeerEventsCounted) {
  BmpIngest ingest(1, nullptr, nullptr);
  wire::BmpPeerDown down;
  down.peer.address = net::IpAddress::parse("192.0.2.9").value();
  ingest.feed(wire::encode_bmp(down), 1);
  ingest.feed(wire::encode_bmp(wire::BmpInitiation{{{2, "sys"}}}), 1);
  EXPECT_EQ(ingest.stats().peer_events, 1u);
  EXPECT_EQ(ingest.stats().messages, 2u);
}

}  // namespace
}  // namespace gill::daemon
