#include <gtest/gtest.h>

#include "bgp/delta.hpp"
#include "redundancy/component1.hpp"
#include "redundancy/correlation.hpp"
#include "redundancy/definitions.hpp"
#include "redundancy/reconstitution.hpp"
#include "simulator/internet.hpp"
#include "simulator/workload.hpp"
#include "topology/generator.hpp"

namespace gill::red {
namespace {

using bgp::AnnotatedUpdate;
using bgp::AsPath;
using bgp::Update;

net::Prefix pfx(const char* text) { return net::Prefix::parse(text).value(); }

Update make(VpId vp, Timestamp t, const char* prefix,
            std::initializer_list<bgp::AsNumber> path,
            CommunitySet communities = {}) {
  Update u;
  u.vp = vp;
  u.time = t;
  u.prefix = pfx(prefix);
  u.path = AsPath(path);
  u.communities = std::move(communities);
  return u;
}

std::vector<AnnotatedUpdate> annotate(std::vector<Update> updates) {
  bgp::UpdateStream stream(std::move(updates));
  return bgp::DeltaTracker::annotate_stream(stream);
}

// ---------------------------------------------------------------------------
// §4.2 conditions and definitions.
// ---------------------------------------------------------------------------

TEST(Definitions, Condition1TimeAndPrefix) {
  const auto updates = annotate({
      make(1, 0, "10.0.0.0/24", {2, 1, 4}),
      make(2, 99, "10.0.0.0/24", {6, 2, 1, 4}),
      make(3, 100, "10.0.0.0/24", {5, 1, 4}),
      make(4, 0, "10.0.1.0/24", {2, 1, 4}),
  });
  auto by_vp = [&](VpId vp) -> const AnnotatedUpdate& {
    for (const auto& u : updates) {
      if (u.update.vp == vp) return u;
    }
    ADD_FAILURE() << "vp " << vp << " missing";
    return updates.front();
  };
  EXPECT_TRUE(condition1(by_vp(1), by_vp(2)));
  EXPECT_FALSE(condition1(by_vp(1), by_vp(3)));  // exactly 100 s
  EXPECT_FALSE(condition1(by_vp(1), by_vp(4)));  // different prefix
}

TEST(Definitions, Condition2LinkInclusionIsAsymmetric) {
  const auto updates = annotate({
      make(1, 0, "10.0.0.0/24", {2, 1, 4}),     // links {2-1, 1-4}
      make(2, 10, "10.0.0.0/24", {6, 2, 1, 4}), // links {6-2, 2-1, 1-4}
  });
  EXPECT_TRUE(condition2(updates[0], updates[1]));
  EXPECT_FALSE(condition2(updates[1], updates[0]));
  EXPECT_TRUE(redundant_with(updates[0], updates[1], Definition::kDef2));
  EXPECT_FALSE(redundant_with(updates[1], updates[0], Definition::kDef2));
}

TEST(Definitions, Condition3CommunityInclusion) {
  const auto updates = annotate({
      make(1, 0, "10.0.0.0/24", {2, 1, 4}, CommunitySet{{10, 1}}),
      make(2, 10, "10.0.0.0/24", {6, 2, 1, 4},
           CommunitySet{{10, 1}, {20, 2}}),
      make(3, 20, "10.0.0.0/24", {5, 2, 1, 4}, CommunitySet{{30, 3}}),
  });
  EXPECT_TRUE(condition3(updates[0], updates[1]));
  EXPECT_FALSE(condition3(updates[1], updates[0]));
  EXPECT_TRUE(redundant_with(updates[0], updates[1], Definition::kDef3));
  EXPECT_FALSE(redundant_with(updates[0], updates[2], Definition::kDef3));
}

TEST(Definitions, StrictnessOrdering) {
  // Def3 => Def2 => Def1 for any pair (property check over a small stream).
  const auto updates = annotate({
      make(1, 0, "10.0.0.0/24", {2, 1, 4}, CommunitySet{{10, 1}}),
      make(2, 10, "10.0.0.0/24", {6, 2, 1, 4}, CommunitySet{{10, 1}, {9, 9}}),
      make(3, 50, "10.0.0.0/24", {5, 4}, CommunitySet{{7, 7}}),
      make(1, 250, "10.0.0.0/24", {2, 4}),
      make(2, 280, "10.0.0.0/24", {6, 2, 4}),
  });
  for (const auto& a : updates) {
    for (const auto& b : updates) {
      if (&a == &b) continue;
      if (redundant_with(a, b, Definition::kDef3)) {
        EXPECT_TRUE(redundant_with(a, b, Definition::kDef2));
      }
      if (redundant_with(a, b, Definition::kDef2)) {
        EXPECT_TRUE(redundant_with(a, b, Definition::kDef1));
      }
    }
  }
}

TEST(Analyzer, UpdateFractionDecreasesWithStricterDefinitions) {
  // Simulated hour on a mid-size topology: the strictness ordering of §4.2
  // must show up as monotonically decreasing redundancy fractions.
  const auto topology = topo::generate_artificial({.as_count = 300, .seed = 21});
  sim::InternetConfig config;
  for (bgp::AsNumber as = 0; as < 300; as += 6) config.vp_hosts.push_back(as);
  config.rng_seed = 9;
  sim::Internet internet(topology, config);
  sim::WorkloadConfig workload;
  workload.seed = 10;
  const auto stream = sim::generate_workload(internet, 0, workload);
  ASSERT_GT(stream.size(), 100u);

  const auto annotated = bgp::DeltaTracker::annotate_stream(stream);
  RedundancyAnalyzer analyzer(annotated);
  const double d1 = analyzer.redundant_update_fraction(Definition::kDef1);
  const double d2 = analyzer.redundant_update_fraction(Definition::kDef2);
  const double d3 = analyzer.redundant_update_fraction(Definition::kDef3);
  EXPECT_GE(d1, d2);
  EXPECT_GE(d2, d3);
  EXPECT_GT(d1, 0.5);  // BGP data is highly redundant
}

TEST(Analyzer, VpRedundancyMatrix) {
  // VP 1 and VP 2 observe identical bursts; VP 3 sees something unique.
  std::vector<Update> updates;
  for (int burst = 0; burst < 5; ++burst) {
    const Timestamp t = burst * 1000;
    updates.push_back(make(1, t, "10.0.0.0/24", {2, 1, 4}));
    updates.push_back(make(2, t + 10, "10.0.0.0/24", {2, 1, 4}));
    updates.push_back(
        make(3, t + 20, "10.0.0.0/24", {9, 8, 7, 5, 1, 4}));
  }
  const auto annotated = annotate(std::move(updates));
  RedundancyAnalyzer analyzer(annotated);
  const auto matrix = analyzer.vp_redundancy_matrix(Definition::kDef2);
  // vps() is sorted: index 0 = VP1, 1 = VP2, 2 = VP3.
  EXPECT_TRUE(matrix[0][1]);
  EXPECT_TRUE(matrix[1][0]);
  EXPECT_FALSE(matrix[2][0]);  // VP3's long path is included in nobody's
  const double fraction = analyzer.redundant_vp_fraction(Definition::kDef2);
  EXPECT_NEAR(fraction, 2.0 / 3.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Correlation groups (§17.1) — including the Fig. 10 walk-through.
// ---------------------------------------------------------------------------

TEST(Correlation, Fig10GroupsAndWeights) {
  // Events #1..#4 of Fig. 10 for prefix p1 (events 1000 s apart).
  std::vector<Update> updates{
      // Event #1: failure of 2-4.
      make(1, 0, "10.4.1.0/24", {2, 1, 4}),
      make(2, 10, "10.4.1.0/24", {6, 2, 1, 4}),
      // Event #2: restoration.
      make(1, 1000, "10.4.1.0/24", {2, 4}),
      make(2, 1010, "10.4.1.0/24", {6, 2, 4}),
      // Event #3: double failure.
      make(1, 2000, "10.4.1.0/24", {2, 1, 4}),
      make(2, 2010, "10.4.1.0/24", {6, 3, 1, 4}),
      // Event #4: both restored — same attributes as event #2.
      make(1, 3000, "10.4.1.0/24", {2, 4}),
      make(2, 3010, "10.4.1.0/24", {6, 2, 4}),
  };
  const auto corr = PrefixCorrelations::build(updates);
  ASSERT_EQ(corr.groups().size(), 3u);  // G1, G2, G3 of Fig. 10
  // G2 (the restoration group) has weight 2.
  std::vector<std::uint32_t> weights;
  for (const auto& g : corr.groups()) weights.push_back(g.weight);
  std::sort(weights.begin(), weights.end());
  EXPECT_EQ(weights, (std::vector<std::uint32_t>{1, 1, 2}));

  const auto* heaviest = corr.heaviest_group_for(
      UpdateSignature::of(make(2, 0, "10.4.1.0/24", {6, 2, 4})));
  ASSERT_NE(heaviest, nullptr);
  EXPECT_EQ(heaviest->weight, 2u);
  EXPECT_EQ(heaviest->members.size(), 2u);
}

TEST(Correlation, BurstsSplitOnWindow) {
  std::vector<Update> updates{
      make(1, 0, "10.0.0.0/24", {1, 2}),
      make(2, 90, "10.0.0.0/24", {3, 2}),   // gap 90 < 100: same burst
      make(1, 250, "10.0.0.0/24", {1, 2}),  // gap 160: new burst
  };
  const auto corr = PrefixCorrelations::build(updates);
  ASSERT_EQ(corr.groups().size(), 2u);
  EXPECT_EQ(corr.groups()[0].members.size(), 2u);
  EXPECT_EQ(corr.groups()[1].members.size(), 1u);
}

TEST(Correlation, UnknownSignatureHasNoGroups) {
  const auto corr = PrefixCorrelations::build(
      {make(1, 0, "10.0.0.0/24", {1, 2})});
  EXPECT_TRUE(
      corr.groups_containing(
              UpdateSignature::of(make(9, 0, "10.0.0.0/24", {9, 9})))
          .empty());
  EXPECT_EQ(corr.heaviest_group_for(
                UpdateSignature::of(make(9, 0, "10.0.0.0/24", {9, 9}))),
            nullptr);
}

// ---------------------------------------------------------------------------
// Reconstitution power (§17.2) — the appendix's own worked example.
// ---------------------------------------------------------------------------

std::vector<Update> fig10_updates() {
  return {
      make(1, 0, "10.4.1.0/24", {2, 1, 4}),        // U1
      make(2, 10, "10.4.1.0/24", {6, 2, 1, 4}),    // U2
      make(1, 1000, "10.4.1.0/24", {2, 4}),        // U3
      make(2, 1010, "10.4.1.0/24", {6, 2, 4}),     // U4
      make(1, 2000, "10.4.1.0/24", {2, 1, 4}),     // U5
      make(2, 2010, "10.4.1.0/24", {6, 3, 1, 4}),  // U6
      make(1, 3000, "10.4.1.0/24", {2, 4}),        // U7
      make(2, 3010, "10.4.1.0/24", {6, 2, 4}),     // U8
  };
}

TEST(Reconstitution, Vp2ReconstitutesEverything) {
  PrefixReconstitution reconstitution(fig10_updates());
  // §17.2: U = {U2, U4, U6, U8} (all from VP2) reconstitutes V entirely.
  EXPECT_DOUBLE_EQ(reconstitution.reconstitution_power({2}), 1.0);
  EXPECT_DOUBLE_EQ(reconstitution.incorrect_reconstitution_fraction({2}), 0.0);
}

TEST(Reconstitution, Vp1AloneCannotReconstituteEverything) {
  PrefixReconstitution reconstitution(fig10_updates());
  // §17.2: U1 and U5 are identical but correlate with different updates, so
  // either U2 or U6 is missed and one update is incorrectly reconstituted.
  EXPECT_LT(reconstitution.reconstitution_power({1}), 1.0);
  EXPECT_GT(reconstitution.incorrect_reconstitution_fraction({1}), 0.0);
}

TEST(Reconstitution, GreedyPicksVp2) {
  PrefixReconstitution reconstitution(fig10_updates());
  const auto result = reconstitution.greedy_select(0.94);
  ASSERT_EQ(result.selected_vps.size(), 1u);
  EXPECT_EQ(result.selected_vps[0], 2u);
  EXPECT_DOUBLE_EQ(result.final_rp, 1.0);
  EXPECT_EQ(result.selected_update_count, 4u);
  ASSERT_EQ(result.rp_curve.size(), 1u);
  EXPECT_DOUBLE_EQ(result.retained_fraction_curve[0], 0.5);
}

TEST(Reconstitution, RpCurveIsMonotonic) {
  // Larger stream: the greedy RP curve must be nondecreasing.
  const auto topology = topo::generate_artificial({.as_count = 200, .seed = 2});
  sim::InternetConfig config;
  for (bgp::AsNumber as = 0; as < 200; as += 5) config.vp_hosts.push_back(as);
  sim::Internet internet(topology, config);
  sim::WorkloadConfig workload;
  workload.seed = 3;
  const auto stream = sim::generate_workload(internet, 0, workload);
  // Pick the busiest prefix.
  std::map<net::Prefix, std::vector<Update>> by_prefix;
  for (const auto& u : stream) by_prefix[u.prefix].push_back(u);
  const auto busiest = std::max_element(
      by_prefix.begin(), by_prefix.end(), [](const auto& a, const auto& b) {
        return a.second.size() < b.second.size();
      });
  ASSERT_NE(busiest, by_prefix.end());
  PrefixReconstitution reconstitution(busiest->second);
  const auto result = reconstitution.greedy_select(1.01);  // run to the end
  for (std::size_t i = 1; i < result.rp_curve.size(); ++i) {
    EXPECT_GE(result.rp_curve[i], result.rp_curve[i - 1]);
  }
}

// ---------------------------------------------------------------------------
// Component #1 end to end.
// ---------------------------------------------------------------------------

TEST(Component1, AllOrNothingPerVpPrefix) {
  bgp::UpdateStream stream(fig10_updates());
  const auto result = find_redundant_updates(stream);
  // VP2's updates for the prefix are nonredundant; VP1's are redundant.
  EXPECT_TRUE(
      result.nonredundant.contains(VpPrefix{2, pfx("10.4.1.0/24")}));
  EXPECT_TRUE(result.redundant.contains(VpPrefix{1, pfx("10.4.1.0/24")}));
  EXPECT_EQ(result.total_updates, 8u);
  EXPECT_EQ(result.nonredundant_updates, 4u);
  EXPECT_DOUBLE_EQ(result.retained_fraction(), 0.5);
}

TEST(Component1, CrossPrefixDeduplication) {
  // Two prefixes of the same origin receive identical updates (p1/p2 of
  // Fig. 5); step 3 keeps only one prefix's worth.
  std::vector<Update> updates;
  for (const char* prefix : {"10.4.1.0/24", "10.4.2.0/24"}) {
    for (const auto& u : fig10_updates()) {
      Update copy = u;
      copy.prefix = pfx(prefix);
      updates.push_back(copy);
    }
  }
  bgp::UpdateStream stream(std::move(updates));

  Component1Config with_dedup;
  const auto deduped = find_redundant_updates(stream, with_dedup);
  Component1Config without_dedup;
  without_dedup.cross_prefix = false;
  const auto plain = find_redundant_updates(stream, without_dedup);

  EXPECT_EQ(plain.nonredundant_updates, 8u);
  EXPECT_EQ(deduped.nonredundant_updates, 4u);
  // One of the two (VP2, prefix) pairs was reclassified as redundant.
  EXPECT_EQ(deduped.nonredundant.size(), 1u);
  EXPECT_EQ(deduped.redundant.size(), 3u);
}

TEST(Component1, RetainedFractionShrinksOnRedundantStreams) {
  const auto topology = topo::generate_artificial({.as_count = 250, .seed = 5});
  sim::InternetConfig config;
  for (bgp::AsNumber as = 0; as < 250; as += 4) config.vp_hosts.push_back(as);
  config.rng_seed = 11;
  sim::Internet internet(topology, config);
  sim::WorkloadConfig workload;
  workload.seed = 12;
  const auto stream = sim::generate_workload(internet, 0, workload);
  ASSERT_GT(stream.size(), 200u);

  const auto result = find_redundant_updates(stream);
  // Many VPs see the same events: most updates must be classified
  // redundant, echoing the paper's |U|/|V| ≈ 0.07–0.16.
  EXPECT_LT(result.retained_fraction(), 0.6);
  EXPECT_GT(result.retained_fraction(), 0.0);
  EXPECT_GE(result.mean_rp, 0.85);
  // Classification covers every (vp, prefix) pair exactly once.
  for (const auto& key : result.nonredundant) {
    EXPECT_FALSE(result.redundant.contains(key));
  }
}

TEST(Correlation, WeightAccumulatesAcrossRepeatedBursts) {
  std::vector<Update> updates;
  for (int burst = 0; burst < 7; ++burst) {
    updates.push_back(make(1, burst * 1000, "10.0.0.0/24", {2, 4}));
    updates.push_back(make(2, burst * 1000 + 10, "10.0.0.0/24", {6, 2, 4}));
  }
  const auto corr = PrefixCorrelations::build(updates);
  ASSERT_EQ(corr.groups().size(), 1u);
  EXPECT_EQ(corr.groups()[0].weight, 7u);
  EXPECT_EQ(corr.groups()[0].members.size(), 2u);
}

TEST(Correlation, WithdrawalsAreDistinctSignatures) {
  std::vector<Update> updates;
  updates.push_back(make(1, 0, "10.0.0.0/24", {2, 4}));
  Update withdrawal;
  withdrawal.vp = 1;
  withdrawal.time = 10;
  withdrawal.prefix = pfx("10.0.0.0/24");
  withdrawal.withdrawal = true;
  updates.push_back(withdrawal);
  const auto corr = PrefixCorrelations::build(updates);
  ASSERT_EQ(corr.groups().size(), 1u);
  // One burst containing two distinct signatures (announce + withdraw).
  EXPECT_EQ(corr.groups()[0].members.size(), 2u);
}

TEST(Reconstitution, EmptySelectionReconstitutesNothing) {
  PrefixReconstitution reconstitution(fig10_updates());
  EXPECT_DOUBLE_EQ(reconstitution.reconstitution_power({}), 0.0);
  EXPECT_DOUBLE_EQ(reconstitution.reconstitution_power({999}), 0.0);
}

TEST(Component1, SingleVpStreamRetainsEverything) {
  // With one VP there is nothing redundant to discard: the greedy pass
  // selects the VP itself for every prefix.
  std::vector<Update> updates;
  for (int i = 0; i < 10; ++i) {
    updates.push_back(make(1, i * 1000, "10.0.0.0/24",
                           {2, static_cast<bgp::AsNumber>(4 + i % 2)}));
  }
  bgp::UpdateStream stream(std::move(updates));
  const auto result = find_redundant_updates(stream);
  EXPECT_EQ(result.nonredundant.size(), 1u);
  EXPECT_TRUE(result.redundant.empty());
  EXPECT_DOUBLE_EQ(result.retained_fraction(), 1.0);
}

TEST(Component1, ThresholdControlsRetention) {
  // Lower RP thresholds must never retain more than higher ones.
  const auto topology = topo::generate_artificial({.as_count = 200, .seed = 9});
  sim::InternetConfig config;
  for (bgp::AsNumber as = 0; as < 200; as += 4) config.vp_hosts.push_back(as);
  sim::Internet internet(topology, config);
  sim::WorkloadConfig workload;
  workload.seed = 10;
  workload.duration = 1800;
  const auto stream = sim::generate_workload(internet, 0, workload);
  double previous = 0.0;
  for (const double threshold : {0.3, 0.6, 0.9, 0.99}) {
    Component1Config c;
    c.rp_threshold = threshold;
    const auto result = find_redundant_updates(stream, c);
    EXPECT_GE(result.retained_fraction(), previous - 1e-9) << threshold;
    previous = result.retained_fraction();
  }
}

// ---------------------------------------------------------------------------
// VpPrefixHash distribution: the platform's realistic key population is a
// DENSE range of VP ids (0..N assigned in arrival order) crossed with a
// prefix set. The old `prefix_hash * 31 + vp` mapped every VP of one prefix
// into consecutive buckets — whole table regions collided. The splitmix
// finalizer must keep bucket loads near uniform on exactly that population.
// ---------------------------------------------------------------------------

TEST(VpPrefixHash, DenseVpIdsSpreadAcrossBuckets) {
  constexpr std::size_t kVps = 64;
  constexpr std::size_t kPrefixes = 256;
  constexpr std::size_t kBuckets = 1024;  // power of two, like libstdc++ isn't
  std::vector<std::size_t> load(kBuckets, 0);
  VpPrefixHash hash;
  for (std::size_t p = 0; p < kPrefixes; ++p) {
    const std::string text = "10." + std::to_string(p / 256) + '.' +
                             std::to_string(p % 256) + ".0/24";
    const net::Prefix prefix = pfx(text.c_str());
    for (VpId vp = 0; vp < kVps; ++vp) {
      ++load[hash(VpPrefix{vp, prefix}) & (kBuckets - 1)];
    }
  }
  const double expected =
      static_cast<double>(kVps * kPrefixes) / static_cast<double>(kBuckets);
  std::size_t max_load = 0;
  std::size_t empty = 0;
  double chi2 = 0.0;
  for (const std::size_t l : load) {
    max_load = std::max(max_load, l);
    if (l == 0) ++empty;
    const double d = static_cast<double>(l) - expected;
    chi2 += d * d / expected;
  }
  // Uniform hashing over 16384 keys into 1024 buckets: expected load 16,
  // chi-square ~ kBuckets. Generous 2x margins keep the test stable while
  // still failing hard for the old hash (which loaded runs of buckets with
  // entire VP columns and left swaths empty).
  EXPECT_LT(max_load, 3 * static_cast<std::size_t>(expected)) << "hot bucket";
  EXPECT_LT(empty, kBuckets / 10) << "dead buckets";
  EXPECT_LT(chi2, 2.0 * static_cast<double>(kBuckets));
}

TEST(VpPrefixHash, VpAndPrefixBothContribute) {
  VpPrefixHash hash;
  const net::Prefix a = pfx("10.0.0.0/24");
  const net::Prefix b = pfx("10.0.1.0/24");
  EXPECT_NE(hash(VpPrefix{1, a}), hash(VpPrefix{2, a}));
  EXPECT_NE(hash(VpPrefix{1, a}), hash(VpPrefix{1, b}));
}

}  // namespace
}  // namespace gill::red
