#include <gtest/gtest.h>

#include "netbase/prefix_alloc.hpp"
#include "simulator/internet.hpp"
#include "simulator/routing.hpp"
#include "simulator/workload.hpp"
#include "topology/generator.hpp"

namespace gill::sim {
namespace {

using topo::fig5_topology;

// ---------------------------------------------------------------------------
// Routing engine vs. the paper's own Fig. 5 / Fig. 10 example.
// ---------------------------------------------------------------------------

TEST(Routing, Fig5PrimaryPaths) {
  const auto topology = fig5_topology();
  RoutingEngine engine(topology);

  // Destination p1/p2: origin AS4.
  const auto to4 = engine.compute(4);
  EXPECT_EQ(to4.path(2).str(), "2 4");      // peer route over the 2-4 link
  EXPECT_EQ(to4.path(6).str(), "6 2 4");    // via provider 2
  EXPECT_EQ(to4.path(1).str(), "1 4");      // customer route
  EXPECT_EQ(to4.path(3).str(), "3 1 4");    // peer route via Tier-1 peering
  // Information hiding: AS5 only has a peer route at 6 upstream, which is
  // not exported over the 5-6 peering — 5 and 7 cannot reach p1.
  EXPECT_FALSE(to4.has_route(5));
  EXPECT_FALSE(to4.has_route(7));

  // Destination p3: origin AS6.
  const auto to6 = engine.compute(6);
  EXPECT_EQ(to6.path(2).str(), "2 6");
  EXPECT_EQ(to6.path(4).str(), "4 2 6");  // peer route via 2-4
  EXPECT_EQ(to6.path(5).str(), "5 6");    // peer route
  EXPECT_EQ(to6.path(7).str(), "7 5 6");  // provider route
  EXPECT_EQ(to6.path(1).str(), "1 2 6");  // customer route via 2
}

TEST(Routing, Fig5FailureOfPeeringLink) {
  const auto topology = fig5_topology();
  RoutingEngine engine(topology);
  engine.fail_link(2, 4);

  const auto to4 = engine.compute(4);
  // Exactly the updates of Fig. 5a: AS2 falls back to its provider, AS6
  // follows (tie between providers 2 and 3 broken by lowest next-hop id).
  EXPECT_EQ(to4.path(2).str(), "2 1 4");
  EXPECT_EQ(to4.path(6).str(), "6 2 1 4");

  // Fig. 5b: VP3 at AS4 also loses the peering route toward p3.
  const auto to6 = engine.compute(6);
  EXPECT_EQ(to6.path(4).str(), "4 1 2 6");
}

TEST(Routing, Fig10DoubleFailure) {
  const auto topology = fig5_topology();
  RoutingEngine engine(topology);
  engine.fail_link(2, 4);
  engine.fail_link(2, 6);
  const auto to4 = engine.compute(4);
  // Event #3 of Fig. 10: VP2 at AS6 circumvents both failures via AS3.
  EXPECT_EQ(to4.path(6).str(), "6 3 1 4");
  EXPECT_EQ(to4.path(2).str(), "2 1 4");
  engine.restore_link(2, 4);
  engine.restore_link(2, 6);
  const auto restored = engine.compute(4);
  EXPECT_EQ(restored.path(6).str(), "6 2 4");
}

TEST(Routing, Fig5OriginHijackAttractsNearbyAses) {
  const auto topology = fig5_topology();
  RoutingEngine engine(topology);
  // AS7 illegitimately originates p3 (owned by AS6).
  const auto routing =
      engine.compute({Seed{6, 0, {}}, Seed{7, 0, {}}});
  // VP4 at AS5 prefers its customer route to the hijacker.
  EXPECT_EQ(routing.path(5).str(), "5 7");
  EXPECT_EQ(routing.seed_index(5), 1);
  // The rest of the topology keeps the legitimate origin.
  EXPECT_EQ(routing.path(2).str(), "2 6");
  EXPECT_EQ(routing.seed_index(2), 0);
  EXPECT_EQ(routing.path(4).str(), "4 2 6");
}

TEST(Routing, ForgedOriginHijackTypes) {
  const auto topology = fig5_topology();
  RoutingEngine engine(topology);
  // Type-1: AS7 forges adjacency 7-6 and announces p3 with path "7 6".
  const auto type1 =
      engine.compute({Seed{6, 0, {}}, Seed{7, 1, {6}}});
  EXPECT_EQ(type1.path(5).str(), "5 7 6");  // customer beats peer despite len
  const auto path5 = type1.path(5);
  EXPECT_EQ(path5.origin(), 6u);  // forged origin preserved in the path

  // Type-2 adds one more forged hop, making the route less attractive
  // length-wise but still customer-preferred at AS5.
  const auto type2 =
      engine.compute({Seed{6, 0, {}}, Seed{7, 2, {5, 6}}});
  EXPECT_EQ(type2.path(5).size(), 4u);
}

TEST(Routing, ValleyFreePropertyOnGeneratedTopology) {
  const auto topology = topo::generate_artificial({.as_count = 400, .seed = 8});
  RoutingEngine engine(topology);
  // Every computed path must be valley-free: once the path goes "down"
  // (provider->customer) or across a peering, it may never go "up" or
  // across again. Walking from the origin toward the receiver: uphill
  // (customer->provider) segments first, at most one peering, then downhill.
  for (AsNumber origin = 0; origin < topology.as_count(); origin += 7) {
    const auto routing = engine.compute(origin);
    for (AsNumber as = 0; as < topology.as_count(); as += 3) {
      if (!routing.has_route(as)) continue;
      const auto path = routing.path(as);
      const auto& hops = path.hops();
      // Traverse from origin side (back) to receiver (front):
      // phase 0 = climbing c2p, 1 = after peering/plateau, descending only.
      int phase = 0;
      for (std::size_t i = hops.size(); i-- >= 2;) {
        const AsNumber lower = hops[i];       // closer to origin
        const AsNumber upper = hops[i - 1];   // closer to receiver
        const auto rel = topology.relationship(lower, upper);
        ASSERT_TRUE(rel.has_value())
            << "nonexistent link " << upper << "-" << lower;
        const bool is_p2p = *rel == topo::Relationship::kPeerToPeer;
        bool upward = false;
        if (!is_p2p) {
          // c2p stored as (customer, provider): upward if lower is customer.
          const auto& providers = topology.providers(lower);
          upward = std::find(providers.begin(), providers.end(), upper) !=
                   providers.end();
        }
        if (phase == 0) {
          if (is_p2p || !upward) phase = 1;
        } else {
          EXPECT_FALSE(is_p2p) << "second peering in " << path.str();
          EXPECT_FALSE(upward) << "valley in " << path.str();
        }
        if (i == 1) break;
      }
    }
  }
}

TEST(Routing, TreeLinkUsage) {
  const auto topology = fig5_topology();
  RoutingEngine engine(topology);
  const auto to4 = engine.compute(4);
  EXPECT_TRUE(to4.uses_link(2, 4));
  EXPECT_TRUE(to4.uses_link(4, 2));  // undirected
  EXPECT_FALSE(to4.uses_link(5, 6));
}

// ---------------------------------------------------------------------------
// Internet event engine.
// ---------------------------------------------------------------------------

InternetConfig fig5_config() {
  InternetConfig config;
  config.vp_hosts = {2, 6, 4, 5};  // VP1..VP4 of the paper (VpIds 0..3)
  config.prefixes.resize(8);
  config.prefixes[4] = {net::Prefix::parse("10.4.1.0/24").value(),
                        net::Prefix::parse("10.4.2.0/24").value()};
  config.prefixes[6] = {net::Prefix::parse("10.6.3.0/24").value()};
  config.jitter = 10;
  return config;
}

TEST(Internet, LinkFailureEmitsCorrelatedUpdates) {
  const auto topology = fig5_topology();
  Internet internet(topology, fig5_config());
  const auto stream = internet.fail_link(2, 4, 1000);

  // VP1 (AS2) and VP2 (AS6) each change for p1 and p2; VP3 (AS4) changes
  // for p3 (loses "4 2 6"). VP4 unaffected.
  std::size_t vp1 = 0, vp2 = 0, vp3 = 0, vp4 = 0;
  for (const auto& u : stream) {
    EXPECT_GE(u.time, 1000);
    EXPECT_LT(u.time, 1000 + 100);  // inside the convergence window
    if (u.vp == 0) ++vp1;
    if (u.vp == 1) ++vp2;
    if (u.vp == 2) ++vp3;
    if (u.vp == 3) ++vp4;
  }
  EXPECT_EQ(vp1, 2u);
  EXPECT_EQ(vp2, 2u);
  EXPECT_EQ(vp3, 1u);
  EXPECT_EQ(vp4, 0u);

  const auto& truth = internet.ground_truth().back();
  EXPECT_EQ(truth.kind, GroundTruth::Kind::kLinkFailure);
  EXPECT_TRUE(truth.link_is_p2p);
  EXPECT_EQ(truth.observers.size(), 3u);
}

TEST(Internet, RestoreBringsPathsBack) {
  const auto topology = fig5_topology();
  Internet internet(topology, fig5_config());
  const auto p1 = net::Prefix::parse("10.4.1.0/24").value();

  internet.fail_link(2, 4, 1000);
  EXPECT_EQ(internet.vp_path(0, p1).str(), "2 1 4");
  const auto stream = internet.restore_link(2, 4, 2000);
  EXPECT_EQ(internet.vp_path(0, p1).str(), "2 4");
  EXPECT_FALSE(stream.empty());
}

TEST(Internet, HijackUpdatesOnlyNearAttacker) {
  const auto topology = fig5_topology();
  Internet internet(topology, fig5_config());
  const auto p3 = net::Prefix::parse("10.6.3.0/24").value();

  const auto stream = internet.start_hijack(7, p3, 1, 500);
  // Only VP4 (AS5) switches to the hijacked route.
  ASSERT_EQ(stream.size(), 1u);
  EXPECT_EQ(stream.updates()[0].vp, 3u);
  EXPECT_EQ(stream.updates()[0].path.str(), "5 7 6");
  EXPECT_EQ(stream.updates()[0].path.origin(), 6u);  // forged origin

  const auto cleared = internet.clear_prefix_override(p3, 1500);
  ASSERT_EQ(cleared.size(), 1u);
  EXPECT_EQ(cleared.updates()[0].path.str(), "5 6");
}

TEST(Internet, MoasProducesTwoVisibleOrigins) {
  const auto topology = fig5_topology();
  Internet internet(topology, fig5_config());
  const auto p3 = net::Prefix::parse("10.6.3.0/24").value();

  internet.start_moas(7, p3, 100);
  EXPECT_EQ(internet.vp_path(3, p3).origin(), 7u);  // VP4 sees hijacker
  EXPECT_EQ(internet.vp_path(0, p3).origin(), 6u);  // VP1 keeps legit origin
}

TEST(Internet, CommunityChangeKeepsPaths) {
  const auto topology = fig5_topology();
  Internet internet(topology, fig5_config());
  const auto p3 = net::Prefix::parse("10.6.3.0/24").value();

  const auto before_path = internet.vp_path(0, p3);
  const auto before_comms = internet.vp_communities(0, p3);
  const auto stream =
      internet.change_community(p3, bgp::Community(6, 0x0666), true, 100);
  EXPECT_GE(stream.size(), 3u);  // every VP with a route re-announces
  for (const auto& u : stream) {
    EXPECT_FALSE(u.withdrawal);
    EXPECT_NE(u.communities, before_comms);
  }
  EXPECT_EQ(internet.vp_path(0, p3), before_path);
  const auto after = internet.vp_communities(0, p3);
  EXPECT_TRUE(std::find(after.begin(), after.end(),
                        bgp::Community(6, 0x0666)) != after.end());
}

TEST(Internet, OriginChangeMovesPrefix) {
  const auto topology = fig5_topology();
  Internet internet(topology, fig5_config());
  const auto p3 = net::Prefix::parse("10.6.3.0/24").value();
  internet.change_origin(4, p3, 100);
  for (VpId vp = 0; vp < 4; ++vp) {
    if (!internet.vp_path(vp, p3).empty()) {
      EXPECT_EQ(internet.vp_path(vp, p3).origin(), 4u);
    }
  }
}

TEST(Internet, RibDumpCoversReachablePrefixes) {
  const auto topology = fig5_topology();
  Internet internet(topology, fig5_config());
  const auto dump = internet.rib_dump(0);
  // VP1/VP2/VP3 see all three prefixes; VP4 sees only p3 (see Fig. 5).
  EXPECT_EQ(dump.size(), 3u + 3u + 3u + 1u);
  const auto vp4 = dump.by_vp(3);
  ASSERT_EQ(vp4.size(), 1u);
  EXPECT_EQ(vp4.updates()[0].path.str(), "5 6");
}

TEST(Internet, VisibleLinksDependOnVpSet) {
  const auto topology = fig5_topology();
  Internet internet(topology, fig5_config());
  const auto all = internet.visible_links({0, 1, 2, 3});
  const auto only_vp4 = internet.visible_links({3});
  EXPECT_GT(all.size(), only_vp4.size());
  ASSERT_EQ(only_vp4.size(), 1u);
  EXPECT_EQ(only_vp4[0], (bgp::AsLink{5, 6}));
}

TEST(Internet, DeterministicStreamsForFixedSeed) {
  const auto topology = fig5_topology();
  auto config = fig5_config();
  config.rng_seed = 77;
  Internet a(topology, config);
  Internet b(topology, config);
  const auto sa = a.fail_link(2, 4, 1000);
  const auto sb = b.fail_link(2, 4, 1000);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa.updates()[i], sb.updates()[i]);
  }
}

TEST(Workload, GeneratesEventsAndGroundTruth) {
  const auto topology = topo::generate_artificial({.as_count = 300, .seed = 4});
  InternetConfig config;
  for (AsNumber as = 0; as < 300; as += 10) config.vp_hosts.push_back(as);
  config.rng_seed = 5;
  config.path_exploration_probability = 0.2;
  Internet internet(topology, config);

  WorkloadConfig workload;
  workload.seed = 6;
  const auto stream = generate_workload(internet, 0, workload);
  EXPECT_GT(stream.size(), 50u);
  // Time-sorted.
  for (std::size_t i = 1; i < stream.size(); ++i) {
    EXPECT_LE(stream.updates()[i - 1].time, stream.updates()[i].time);
  }
  // Ground truth covers several kinds.
  std::set<int> kinds;
  for (const auto& t : internet.ground_truth()) {
    kinds.insert(static_cast<int>(t.kind));
  }
  EXPECT_GE(kinds.size(), 4u);
}

TEST(Internet, IsolatingAnAsEmitsWithdrawals) {
  const auto topology = fig5_topology();
  Internet internet(topology, fig5_config());
  const auto p3 = net::Prefix::parse("10.6.3.0/24").value();
  // AS5 reaches p3 only over the 5-6 peering; cutting it leaves VP4
  // without any route, which must surface as an explicit withdrawal.
  const auto stream = internet.fail_link(5, 6, 100);
  bool withdrawal_seen = false;
  for (const auto& update : stream) {
    if (update.vp == 3 && update.prefix == p3 && update.withdrawal) {
      withdrawal_seen = true;
    }
  }
  EXPECT_TRUE(withdrawal_seen);
  EXPECT_TRUE(internet.vp_path(3, p3).empty());
  // Restoration re-announces.
  const auto restored = internet.restore_link(5, 6, 1000);
  bool announced = false;
  for (const auto& update : restored) {
    if (update.vp == 3 && update.prefix == p3 && !update.withdrawal) {
      announced = true;
    }
  }
  EXPECT_TRUE(announced);
}

TEST(Internet, AnnouncePrefixReachesVpsWithRoutes) {
  const auto topology = fig5_topology();
  Internet internet(topology, fig5_config());
  const auto fresh = net::Prefix::parse("198.51.100.0/24").value();
  const auto stream = internet.announce_prefix(6, fresh, 500);
  // Every VP with a route to AS6 hears about the new prefix.
  EXPECT_GE(stream.size(), 3u);
  EXPECT_EQ(internet.origin_of(fresh), 6u);
  EXPECT_EQ(internet.vp_path(0, fresh).origin(), 6u);
  // Re-announcing the same prefix is a no-op.
  EXPECT_TRUE(internet.announce_prefix(4, fresh, 600).empty());
}

TEST(Routing, MultiOriginTieBreaksDeterministically) {
  const auto topology = fig5_topology();
  RoutingEngine engine(topology);
  // Two origins at symmetric positions: every AS must pick exactly one,
  // and repeated computation gives the same assignment.
  const auto a = engine.compute({Seed{4, 0, {}}, Seed{6, 0, {}}});
  const auto b = engine.compute({Seed{4, 0, {}}, Seed{6, 0, {}}});
  for (AsNumber as = 1; as < topology.as_count(); ++as) {
    EXPECT_EQ(a.has_route(as), b.has_route(as));
    if (a.has_route(as)) {
      EXPECT_EQ(a.seed_index(as), b.seed_index(as));
      EXPECT_EQ(a.path(as), b.path(as));
    }
  }
}

TEST(Workload, ActionCommunityValueSpace) {
  EXPECT_TRUE(is_action_community_value(0x0600));
  EXPECT_TRUE(is_action_community_value(0x063F));
  EXPECT_FALSE(is_action_community_value(0x0400));
  EXPECT_FALSE(is_action_community_value(0x0200));
}

}  // namespace
}  // namespace gill::sim
