#include <gtest/gtest.h>

#include "collector/platform.hpp"
#include "collector/vetting.hpp"

namespace gill::collect {
namespace {

net::Prefix pfx(const char* text) { return net::Prefix::parse(text).value(); }

// ---------------------------------------------------------------------------
// Peering vetting (§9).
// ---------------------------------------------------------------------------

TEST(Vetting, HappyPathTwoStepAuthentication) {
  AsOwnershipRegistry registry;
  registry.register_owner("example.net", 65010);
  PeeringVetting vetting(registry);

  const auto token = vetting.submit(
      PeeringRequest{65010, "noc@example.net", "192.0.2.1"});
  EXPECT_EQ(vetting.pending_count(), 1u);
  EXPECT_EQ(vetting.confirm(token, "noc@example.net"),
            VettingOutcome::kAccepted);
  ASSERT_EQ(vetting.accepted().size(), 1u);
  EXPECT_EQ(vetting.accepted()[0].as, 65010u);
  EXPECT_EQ(vetting.pending_count(), 0u);
}

TEST(Vetting, EmailMismatchKeepsRequestPending) {
  AsOwnershipRegistry registry;
  registry.register_owner("example.net", 65010);
  PeeringVetting vetting(registry);
  const auto token = vetting.submit(
      PeeringRequest{65010, "noc@example.net", "192.0.2.1"});
  EXPECT_EQ(vetting.confirm(token, "attacker@evil.example"),
            VettingOutcome::kEmailMismatch);
  EXPECT_EQ(vetting.pending_count(), 1u);  // a retry is still possible
  EXPECT_EQ(vetting.confirm(token, "noc@example.net"),
            VettingOutcome::kAccepted);
}

TEST(Vetting, NonOwnerRejectedViaRegistryCrossCheck) {
  AsOwnershipRegistry registry;
  registry.register_owner("example.net", 65010);
  PeeringVetting vetting(registry);
  // Correct email flow, but the domain does not operate that AS.
  const auto token = vetting.submit(
      PeeringRequest{65999, "noc@example.net", "192.0.2.1"});
  EXPECT_EQ(vetting.confirm(token, "noc@example.net"),
            VettingOutcome::kNotAsOwner);
  EXPECT_TRUE(vetting.accepted().empty());
}

TEST(Vetting, UnknownTokenRejected) {
  AsOwnershipRegistry registry;
  PeeringVetting vetting(registry);
  EXPECT_EQ(vetting.confirm(12345, "noc@example.net"),
            VettingOutcome::kUnknownRequest);
}

TEST(Vetting, DomainParsing) {
  EXPECT_EQ(PeeringVetting::domain_of("a@b.c"), "b.c");
  EXPECT_EQ(PeeringVetting::domain_of("nodomain"), "");
  EXPECT_EQ(PeeringVetting::domain_of("trailing@"), "");
}

// ---------------------------------------------------------------------------
// Platform orchestration (Fig. 9).
// ---------------------------------------------------------------------------

TEST(Platform, PeersEstablishAndUpdatesAreStored) {
  Platform platform;
  const auto vp0 = platform.add_peer(65010, 0);
  const auto vp1 = platform.add_peer(65011, 0);
  platform.step(1);  // handshakes complete
  EXPECT_EQ(platform.daemon_of(vp0).state(),
            daemon::SessionState::kEstablished);
  EXPECT_EQ(platform.daemon_of(vp1).state(),
            daemon::SessionState::kEstablished);

  bgp::Update update;
  update.prefix = pfx("10.0.0.0/24");
  update.path = bgp::AsPath{65010, 65020};
  platform.remote(vp0).send_update(update);
  platform.step(2);
  EXPECT_EQ(platform.store().stored(), 1u);
  EXPECT_EQ(platform.mirror().size(), 1u);
}

TEST(Platform, RefreshInstallsFiltersAndDropsMirror) {
  Platform platform;
  const auto vp0 = platform.add_peer(65010, 0);
  const auto vp1 = platform.add_peer(65011, 0);
  platform.step(1);

  // Two VPs repeatedly announce identical correlated updates for two
  // prefixes — classic redundancy.
  for (int round = 0; round < 6; ++round) {
    const auto t = static_cast<bgp::Timestamp>(2 + round * 1000);
    for (const char* prefix : {"10.0.0.0/24", "10.0.1.0/24"}) {
      bgp::Update update;
      update.prefix = pfx(prefix);
      update.path = round % 2 == 0 ? bgp::AsPath{65010, 65020}
                                   : bgp::AsPath{65010, 65021, 65020};
      platform.remote(vp0).send_update(update);
      platform.remote(vp1).send_update(update);
      platform.step(t);
    }
  }
  EXPECT_GT(platform.mirror().size(), 0u);
  platform.refresh_filters(10000);
  EXPECT_TRUE(platform.mirror().empty());  // Fig. 9: mirror dropped
  EXPECT_GT(platform.filters().drop_rule_count(), 0u);

  const std::string filter_doc = platform.published_filter_document();
  EXPECT_NE(filter_doc.find("drop rules"), std::string::npos);
  const std::string anchor_doc = platform.published_anchor_document();
  EXPECT_NE(anchor_doc.find("anchor"), std::string::npos);
}

TEST(Platform, FiltersApplyToSubsequentTraffic) {
  Platform platform;
  const auto vp0 = platform.add_peer(65010, 0);
  const auto vp1 = platform.add_peer(65011, 0);
  platform.step(1);

  auto send_round = [&](bgp::Timestamp t, const bgp::AsPath& path) {
    bgp::Update update;
    update.prefix = pfx("10.0.0.0/24");
    update.path = path;
    platform.remote(vp0).send_update(update);
    platform.remote(vp1).send_update(update);
    platform.step(t);
  };
  for (int round = 0; round < 6; ++round) {
    send_round(2 + round * 1000, round % 2 == 0
                                     ? bgp::AsPath{65010, 65020}
                                     : bgp::AsPath{65010, 65021, 65020});
  }
  const std::size_t stored_before = platform.store().stored();
  platform.refresh_filters(10000);

  // After the refresh, redundant (vp, prefix) traffic is filtered out for
  // the non-anchor VP.
  send_round(20000, bgp::AsPath{65010, 65020});
  const std::size_t stored_after = platform.store().stored();
  const std::size_t newly_stored = stored_after - stored_before;
  EXPECT_LT(newly_stored, 2u);  // at most the anchor's copy got stored
}

TEST(Platform, ScheduledRefreshFiresAfterInterval) {
  PlatformConfig config;
  config.component1_refresh = 1000;  // speed the §7 16-day cycle up
  Platform platform(config);
  const auto vp0 = platform.add_peer(65010, 0);
  const auto vp1 = platform.add_peer(65011, 0);
  platform.step(1);

  auto send_round = [&](bgp::Timestamp t) {
    for (const bgp::VpId vp : {vp0, vp1}) {
      bgp::Update update;
      update.prefix = pfx("10.0.0.0/24");
      update.path = bgp::AsPath{65010, 64500};
      platform.remote(vp).send_update(update);
    }
    platform.step(t);
  };
  send_round(10);
  send_round(200);
  EXPECT_GT(platform.mirror().size(), 0u);
  EXPECT_EQ(platform.filters().drop_rule_count(), 0u);  // not yet refreshed

  // Crossing the refresh interval triggers the §7 cycle automatically and
  // drops the mirror.
  send_round(1500);
  EXPECT_TRUE(platform.mirror().empty());
  EXPECT_GE(platform.filters().drop_rule_count() +
                platform.filters().anchors().size(),
            1u);
}

// ---------------------------------------------------------------------------
// Growth model (Fig. 2 / Fig. 3).
// ---------------------------------------------------------------------------

TEST(GrowthModel, CalibratedEndpoints) {
  EXPECT_NEAR(GrowthModel::internet_ases(2023), 74000.0, 1000.0);
  EXPECT_NEAR(GrowthModel::vp_hosting_ases(2023), 950.0, 50.0);
  // Fig. 2 bottom: coverage stays flat in the ~1-2% band over two decades.
  for (double year = 2003; year <= 2023; year += 1.0) {
    const double coverage = GrowthModel::coverage(year);
    EXPECT_GT(coverage, 0.008) << year;
    EXPECT_LT(coverage, 0.02) << year;
  }
  EXPECT_NEAR(GrowthModel::updates_per_vp_hour(2023), 28000.0, 2000.0);
}

TEST(GrowthModel, TotalUpdatesGrowSuperlinearly) {
  // The compound effect (§3.2): total hourly updates grow faster than the
  // per-VP rate.
  const double per_vp_growth = GrowthModel::updates_per_vp_hour(2023) /
                               GrowthModel::updates_per_vp_hour(2008);
  const double total_growth = GrowthModel::total_updates_per_hour(2023) /
                              GrowthModel::total_updates_per_hour(2008);
  EXPECT_GT(total_growth, per_vp_growth * 1.5);
  // Billions per day in 2023 across all VPs (Fig. 3b: ~10^8 per hour).
  EXPECT_GT(GrowthModel::total_updates_per_hour(2023) * 24.0, 1e9);
}

}  // namespace
}  // namespace gill::collect
