// The metrics registry: registration semantics, the Prometheus text
// exposition (golden), JSON/Prometheus consistency, and a multi-threaded
// increment smoke that the sanitizer build turns into a race detector.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "feed/json.hpp"
#include "metrics/metrics.hpp"

namespace gill::metrics {
namespace {

// ---------------------------------------------------------------------------
// Registration semantics.
// ---------------------------------------------------------------------------

TEST(Registry, SameNameAndLabelsReturnTheSameCounter) {
  Registry registry;
  Counter& a = registry.counter("gill_test_events_total", "Events", {{"vp", "1"}});
  Counter& b = registry.counter("gill_test_events_total", "Events", {{"vp", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, LabelOrderDoesNotMatter) {
  Registry registry;
  Counter& a = registry.counter("gill_test_events_total", "Events",
                                {{"vp", "1"}, {"kind", "open"}});
  Counter& b = registry.counter("gill_test_events_total", "Events",
                                {{"kind", "open"}, {"vp", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(Registry, DifferentLabelsAreDifferentChildren) {
  Registry registry;
  Counter& a = registry.counter("gill_test_events_total", "Events", {{"vp", "1"}});
  Counter& b = registry.counter("gill_test_events_total", "Events", {{"vp", "2"}});
  EXPECT_NE(&a, &b);
  a.inc(3);
  b.inc(5);
  EXPECT_EQ(registry.counter_total("gill_test_events_total"), 8u);
  EXPECT_EQ(registry.counter_total("gill_test_absent_total"), 0u);
}

TEST(Gauge, AddAndSubAreExact) {
  Gauge gauge;
  gauge.set(2.5);
  gauge.add(1.0);
  gauge.sub(0.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
}

// ---------------------------------------------------------------------------
// Histogram bucketing.
// ---------------------------------------------------------------------------

TEST(Histogram, Log2BucketBoundaries) {
  Histogram histogram(4);  // le = 1, 2, 4, 8, +Inf
  ASSERT_EQ(histogram.finite_buckets(), 4u);
  EXPECT_EQ(histogram.bucket_le(0), 1u);
  EXPECT_EQ(histogram.bucket_le(3), 8u);
  histogram.observe(0);
  histogram.observe(1);    // bucket 0 (le=1)
  histogram.observe(2);    // bucket 1 (le=2)
  histogram.observe(3);    // bucket 2 (le=4)
  histogram.observe(8);    // bucket 3 (le=8)
  histogram.observe(9);    // overflow
  histogram.observe(1'000'000);  // overflow
  EXPECT_EQ(histogram.bucket_count(0), 2u);
  EXPECT_EQ(histogram.bucket_count(1), 1u);
  EXPECT_EQ(histogram.bucket_count(2), 1u);
  EXPECT_EQ(histogram.bucket_count(3), 1u);
  EXPECT_EQ(histogram.overflow(), 2u);
  EXPECT_EQ(histogram.count(), 7u);
  EXPECT_EQ(histogram.sum(), 1'000'023u);
}

TEST(Timer, ObservesOnceOnDestruction) {
  Histogram histogram(8);
  {
    const Timer timer(histogram);
    EXPECT_EQ(histogram.count(), 0u);
  }
  EXPECT_EQ(histogram.count(), 1u);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition, golden. Families are alphabetical; children
// within a family follow the sorted label values; histogram buckets are
// cumulative and the +Inf bucket equals _count.
// ---------------------------------------------------------------------------

TEST(Exposition, PrometheusGolden) {
  Registry registry;
  Histogram& bytes =
      registry.histogram("gill_test_bytes", "Message sizes", {{"vp", "9"}}, 4);
  bytes.observe(0);
  bytes.observe(1);
  bytes.observe(2);
  bytes.observe(3);
  bytes.observe(5);
  bytes.observe(100);  // above le=8: +Inf only
  registry.counter("gill_test_events_total", "Events seen", {{"vp", "1"}})
      .inc(3);
  registry.counter("gill_test_events_total", "Events seen", {{"vp", "2"}})
      .inc(5);
  registry.gauge("gill_test_peers", "Connected peers").set(4);
  registry
      .counter("gill_test_weird_total", "Escaping check",
               {{"path", "a\\b\"c\nd"}})
      .inc();

  const std::string expected =
      "# HELP gill_test_bytes Message sizes\n"
      "# TYPE gill_test_bytes histogram\n"
      "gill_test_bytes_bucket{vp=\"9\",le=\"1\"} 2\n"
      "gill_test_bytes_bucket{vp=\"9\",le=\"2\"} 3\n"
      "gill_test_bytes_bucket{vp=\"9\",le=\"4\"} 4\n"
      "gill_test_bytes_bucket{vp=\"9\",le=\"8\"} 5\n"
      "gill_test_bytes_bucket{vp=\"9\",le=\"+Inf\"} 6\n"
      "gill_test_bytes_sum{vp=\"9\"} 111\n"
      "gill_test_bytes_count{vp=\"9\"} 6\n"
      "# HELP gill_test_events_total Events seen\n"
      "# TYPE gill_test_events_total counter\n"
      "gill_test_events_total{vp=\"1\"} 3\n"
      "gill_test_events_total{vp=\"2\"} 5\n"
      "# HELP gill_test_peers Connected peers\n"
      "# TYPE gill_test_peers gauge\n"
      "gill_test_peers 4\n"
      "# HELP gill_test_weird_total Escaping check\n"
      "# TYPE gill_test_weird_total counter\n"
      "gill_test_weird_total{path=\"a\\\\b\\\"c\\nd\"} 1\n";
  EXPECT_EQ(registry.expose_prometheus(), expected);
}

TEST(Exposition, EscapeLabelValue) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(escape_label_value("a\nb"), "a\\nb");
}

// ---------------------------------------------------------------------------
// JSON/Prometheus consistency: both expositions are views of the same
// snapshot, so every JSON sample must appear verbatim in the text format
// and agree with the typed snapshot().
// ---------------------------------------------------------------------------

TEST(Exposition, JsonMatchesSnapshotAndPrometheus) {
  Registry registry;
  for (int vp = 0; vp < 5; ++vp) {
    registry
        .counter("gill_test_updates_total", "Updates",
                 {{"vp", std::to_string(vp)}})
        .inc(static_cast<std::uint64_t>(vp) * 7 + 1);
  }
  registry.gauge("gill_test_load", "Load").set(0.375);  // non-integral
  Histogram& latency =
      registry.histogram("gill_test_latency_us", "Latency", {}, 10);
  for (std::uint64_t i = 0; i < 300; ++i) latency.observe(i * i % 4096);

  const auto parsed = feed::Json::parse(registry.expose_json());
  ASSERT_TRUE(parsed.has_value());
  const feed::Json* samples = parsed->find("metrics");
  ASSERT_NE(samples, nullptr);
  ASSERT_TRUE(samples->is_array());

  const auto snapshot = registry.snapshot();
  ASSERT_EQ(samples->as_array().size(), snapshot.size());
  const std::string text = registry.expose_prometheus();

  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const feed::Json& sample = samples->as_array()[i];
    const MetricSnapshot& truth = snapshot[i];
    EXPECT_EQ(sample.find("name")->as_string(), truth.name);
    EXPECT_EQ(sample.find("type")->as_string(), to_string(truth.type));
    ASSERT_EQ(sample.find("labels")->as_object().size(), truth.labels.size());
    for (const auto& [label, value] : truth.labels) {
      const feed::Json* got = sample.find("labels")->find(label);
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(got->as_string(), value);
    }
    if (truth.type == MetricType::kHistogram) {
      EXPECT_EQ(sample.find("count")->as_number(),
                static_cast<double>(truth.count));
      EXPECT_EQ(sample.find("sum")->as_number(),
                static_cast<double>(truth.sum));
      const auto& buckets = sample.find("buckets")->as_array();
      ASSERT_EQ(buckets.size(), truth.buckets.size());
      std::uint64_t previous = 0;
      for (std::size_t b = 0; b < buckets.size(); ++b) {
        const auto cumulative = static_cast<std::uint64_t>(
            buckets[b].find("count")->as_number());
        EXPECT_EQ(cumulative, truth.buckets[b].cumulative);
        EXPECT_GE(cumulative, previous) << "buckets must be cumulative";
        EXPECT_LE(cumulative, truth.count);
        previous = cumulative;
      }
    } else {
      EXPECT_EQ(sample.find("value")->as_number(), truth.value);
      // The exact scrape line for this child exists in the text format.
      std::string line = truth.name;
      if (!truth.labels.empty()) {
        line += '{';
        for (std::size_t l = 0; l < truth.labels.size(); ++l) {
          if (l > 0) line += ',';
          line += truth.labels[l].first + "=\"" +
                  escape_label_value(truth.labels[l].second) + '"';
        }
        line += '}';
      }
      EXPECT_NE(text.find(line + ' '), std::string::npos) << line;
    }
  }
}

// ---------------------------------------------------------------------------
// Concurrency smoke: many threads on the same children. Run under the
// sanitize label so a TSan build checks the relaxed-atomic claims.
// ---------------------------------------------------------------------------

TEST(Concurrency, ParallelIncrementsAllLand) {
  Registry registry;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  Counter& counter = registry.counter("gill_test_hits_total", "Hits");
  Histogram& histogram =
      registry.histogram("gill_test_sizes_bytes", "Sizes", {}, 12);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.inc();
        histogram.observe((i + static_cast<std::uint64_t>(t)) % 5000);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// Per-metric last-update timestamps: stamped by every counter/gauge write,
// exposed in the JSON exposition only (the Prometheus text is golden).
// ---------------------------------------------------------------------------

TEST(Timestamps, CounterAndGaugeStampWrites) {
  Registry registry;
  Counter& counter = registry.counter("gill_test_stamped_total", "Stamped");
  Gauge& gauge = registry.gauge("gill_test_stamped", "Stamped");
  EXPECT_EQ(counter.last_update_ms(), 0) << "never written yet";
  EXPECT_EQ(gauge.last_update_ms(), 0);

  counter.inc();
  const std::int64_t first = counter.last_update_ms();
  EXPECT_GT(first, 0);
  counter.inc(5);
  EXPECT_GE(counter.last_update_ms(), first) << "coarse clock is monotonic";

  gauge.set(1.0);
  const std::int64_t set_stamp = gauge.last_update_ms();
  EXPECT_GT(set_stamp, 0);
  gauge.add(2.0);
  EXPECT_GE(gauge.last_update_ms(), set_stamp);

  const auto snapshot = registry.snapshot();
  for (const auto& sample : snapshot) {
    EXPECT_GT(sample.updated_ms, 0) << sample.name;
  }
}

TEST(Timestamps, JsonExposesUpdatedMsPrometheusDoesNot) {
  Registry registry;
  registry.counter("gill_test_events_total", "Events").inc(3);
  registry.gauge("gill_test_level", "Level").set(7);
  registry.histogram("gill_test_lat_us", "Latency", {}, 4).observe(2);

  const auto parsed = feed::Json::parse(registry.expose_json());
  ASSERT_TRUE(parsed.has_value());
  const auto snapshot = registry.snapshot();
  const auto& samples = parsed->find("metrics")->as_array();
  ASSERT_EQ(samples.size(), snapshot.size());
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const feed::Json* stamp = samples[i].find("updated_ms");
    if (snapshot[i].type == MetricType::kHistogram) {
      EXPECT_EQ(stamp, nullptr) << "histograms carry no timestamp";
    } else {
      ASSERT_NE(stamp, nullptr) << snapshot[i].name;
      EXPECT_EQ(static_cast<std::int64_t>(stamp->as_number()),
                snapshot[i].updated_ms);
      EXPECT_GT(stamp->as_number(), 0.0);
    }
  }
  // The text exposition is consumed by version-pinned scrapers: no new
  // fields, ever (the golden test above freezes the exact bytes).
  EXPECT_EQ(registry.expose_prometheus().find("updated_ms"),
            std::string::npos);
}

TEST(Concurrency, HistogramObserveWhileScraping) {
  // N writer threads hammer one histogram (plus a stamped counter) while
  // this thread scrapes both expositions: under TSan this verifies the
  // whole exposition path against the relaxed-atomic write path.
  Registry registry;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  Histogram& histogram =
      registry.histogram("gill_test_lat_us", "Latency", {}, 16);
  Counter& counter = registry.counter("gill_test_obs_total", "Observations");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, &counter, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        histogram.observe((i * 37 + static_cast<std::uint64_t>(t)) % 60'000);
        counter.inc();
      }
    });
  }
  for (int scrape = 0; scrape < 50; ++scrape) {
    const std::string text = registry.expose_prometheus();
    EXPECT_NE(text.find("gill_test_lat_us_count"), std::string::npos);
    EXPECT_FALSE(registry.expose_json().empty());
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  std::uint64_t bucketed = histogram.overflow();
  for (std::size_t i = 0; i < histogram.finite_buckets(); ++i) {
    bucketed += histogram.bucket_count(i);
  }
  EXPECT_EQ(bucketed, histogram.count()) << "no observation lost a bucket";
}

TEST(Concurrency, ParallelRegistrationIsIdempotent) {
  Registry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      seen[static_cast<std::size_t>(t)] = &registry.counter(
          "gill_test_shared_total", "Shared", {{"vp", "7"}});
      seen[static_cast<std::size_t>(t)]->inc();
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0], seen[t]);
  EXPECT_EQ(registry.counter_total("gill_test_shared_total"),
            static_cast<std::uint64_t>(kThreads));
}

}  // namespace
}  // namespace gill::metrics
